//! # slam-kdv — exact Kernel Density Visualization with sweep lines
//!
//! Facade crate for the SLAM-KDV workspace, a from-scratch Rust
//! reproduction of *SLAM: Efficient Sweep Line Algorithms for Kernel
//! Density Visualization* (Chan, U, Choi, Xu — SIGMOD 2022). It re-exports
//! the member crates under one roof:
//!
//! * [`core`] (`kdv-core`) — the SLAM engines and the resolution-aware
//!   optimization; the paper's contribution.
//! * [`index`] (`kdv-index`) — kd-tree, ball-tree, aggregate quadtree and
//!   Z-order substrates.
//! * [`baselines`] (`kdv-baselines`) — SCAN, RQS, Z-order sampling, aKDE
//!   and QUAD comparators.
//! * [`data`] (`kdv-data`) — synthetic city datasets, Scott's rule,
//!   sampling, CSV I/O.
//! * [`explore`] (`kdv-explore`) — zoom/pan/filter sessions.
//! * [`temporal`] (`kdv-temporal`) — spatial-temporal KDV animations.
//! * [`analysis`] (`kdv-analysis`) — hotspot extraction, grid metrics,
//!   Ripley's K-function.
//! * [`network`] (`kdv-network`) — network KDV over road graphs.
//! * [`viz`] (`kdv-viz`) — heat-map rendering.
//!
//! The most common entry points are lifted to the top level; see
//! `examples/quickstart.rs` for a tour.

pub use kdv_analysis as analysis;
pub use kdv_baselines as baselines;
pub use kdv_core as core;
pub use kdv_data as data;
pub use kdv_explore as explore;
pub use kdv_index as index;
pub use kdv_network as network;
pub use kdv_temporal as temporal;
pub use kdv_viz as viz;

pub use kdv_baselines::AnyMethod;
pub use kdv_core::{
    DensityGrid, GridSpec, KdvEngine, KdvError, KdvParams, KernelType, Method, Point, Rect,
};
pub use kdv_data::{City, Dataset};
pub use kdv_explore::{ExploreSession, Viewport};
