//! Coarse performance-shape assertions tied to the paper's headline
//! claims. These are deliberately loose (≥2–3× margins) so they stay
//! robust across machines and debug builds, while still catching a
//! regression that destroys the asymptotic advantage.

use std::time::Instant;

use slam_kdv::baselines::AnyMethod;
use slam_kdv::core::driver::KdvParams;
use slam_kdv::{GridSpec, KernelType, Method, Point, Rect};

fn pseudo_points(n: usize) -> Vec<Point> {
    let mut state = 0xD00Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Point::new(next() * 10_000.0, next() * 10_000.0)).collect()
}

fn time_of(m: &AnyMethod, params: &KdvParams, pts: &[Point]) -> f64 {
    let t0 = Instant::now();
    m.compute(params, pts).unwrap();
    t0.elapsed().as_secs_f64()
}

/// Headline claim: SLAM beats the naive scan by a large factor at
/// realistic bandwidth/raster combinations.
#[test]
fn slam_bucket_rao_beats_scan_by_a_wide_margin() {
    let pts = pseudo_points(5_000);
    let grid = GridSpec::new(Rect::new(0.0, 0.0, 10_000.0, 10_000.0), 128, 96).unwrap();
    let params = KdvParams::new(grid, KernelType::Epanechnikov, 800.0);
    let t_scan = time_of(&AnyMethod::Scan, &params, &pts);
    let t_slam = time_of(&AnyMethod::Slam(Method::SlamBucketRao), &params, &pts);
    assert!(t_scan > 3.0 * t_slam, "expected SCAN ({t_scan:.3}s) >> SLAM ({t_slam:.3}s)");
}

/// Theorem 2 vs Theorem 1: bucketing removes the sort bottleneck, so on
/// envelope-heavy workloads SLAM_BUCKET should not lose badly to
/// SLAM_SORT (paper measures 1.57–1.65x in BUCKET's favour).
#[test]
fn bucket_not_slower_than_sort() {
    let pts = pseudo_points(60_000);
    let grid = GridSpec::new(Rect::new(0.0, 0.0, 10_000.0, 10_000.0), 256, 64).unwrap();
    // large bandwidth = large envelope sets = sort bottleneck dominates
    let params = KdvParams::new(grid, KernelType::Epanechnikov, 2_500.0);
    let t_sort = time_of(&AnyMethod::Slam(Method::SlamSort), &params, &pts);
    let t_bucket = time_of(&AnyMethod::Slam(Method::SlamBucket), &params, &pts);
    assert!(
        t_bucket < 1.5 * t_sort,
        "bucket ({t_bucket:.3}s) should not trail sort ({t_sort:.3}s)"
    );
}

/// Theorem 3: on a tall raster, RAO must not lose to the fixed row sweep
/// (it sweeps min(X, Y) rows instead of Y).
#[test]
fn rao_helps_on_tall_rasters() {
    let pts = pseudo_points(60_000);
    // Y = 16 * X: the fixed sweep runs 768 rows over n points, RAO runs 48
    let grid = GridSpec::new(Rect::new(0.0, 0.0, 10_000.0, 10_000.0), 48, 768).unwrap();
    let params = KdvParams::new(grid, KernelType::Epanechnikov, 500.0);
    let t_fixed = time_of(&AnyMethod::Slam(Method::SlamBucket), &params, &pts);
    let t_rao = time_of(&AnyMethod::Slam(Method::SlamBucketRao), &params, &pts);
    assert!(
        t_rao < t_fixed,
        "RAO ({t_rao:.3}s) should beat the fixed sweep ({t_fixed:.3}s) at Y >> X"
    );
}

/// Space claim (Theorem 4): SLAM's auxiliary space is O(n), far below the
/// O(XY) raster for high resolutions, and comparable to the baselines'.
#[test]
fn slam_aux_space_is_linear_in_n() {
    let pts = pseudo_points(20_000);
    let grid = GridSpec::new(Rect::new(0.0, 0.0, 10_000.0, 10_000.0), 64, 48).unwrap();
    let params = KdvParams::new(grid, KernelType::Epanechnikov, 500.0);
    let slam = AnyMethod::Slam(Method::SlamBucketRao).compute(&params, &pts).unwrap();
    let rqs = AnyMethod::RqsKd.compute(&params, &pts).unwrap();
    // both are O(n); ratios must be small constants
    let ratio = slam.aux_space_bytes as f64 / rqs.aux_space_bytes as f64;
    assert!((0.05..20.0).contains(&ratio), "aux space ratio {ratio} out of the O(n) family");
    // and both scale roughly linearly with n
    let half = AnyMethod::Slam(Method::SlamBucketRao).compute(&params, &pts[..10_000]).unwrap();
    let growth = slam.aux_space_bytes as f64 / half.aux_space_bytes as f64;
    assert!((1.2..3.5).contains(&growth), "space growth {growth} not ~2x");
}

/// The paper's exploratory-use claim: a full render of a modest window is
/// interactive with SLAM even in a debug build.
#[test]
fn exploratory_render_is_fast() {
    let pts = pseudo_points(50_000);
    let grid = GridSpec::new(Rect::new(0.0, 0.0, 10_000.0, 10_000.0), 320, 240).unwrap();
    let params = KdvParams::new(grid, KernelType::Epanechnikov, 400.0);
    let t = time_of(&AnyMethod::Slam(Method::SlamBucketRao), &params, &pts);
    assert!(t < 5.0, "render took {t:.3}s; SLAM should be interactive");
}
