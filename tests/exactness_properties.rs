//! Property-based exactness tests: the central claim of the paper is that
//! SLAM produces the *exact* KDV. For arbitrary point clouds, rasters,
//! bandwidths and kernels, every SLAM variant (and every exact baseline)
//! must agree with the naive SCAN evaluation up to floating-point rounding.

use proptest::prelude::*;
use slam_kdv::baselines::AnyMethod;
use slam_kdv::core::driver::KdvParams;
use slam_kdv::core::stats::max_rel_error;
use slam_kdv::{DensityGrid, GridSpec, KernelType, Method, Point, Rect};

/// Maximum error between two rasters, normalised by the reference raster's
/// peak density. Near the kernel-support boundary the density itself tends
/// to 0 while the aggregate expansion keeps absolute error at a few ulps of
/// the aggregate magnitudes, so a per-pixel *relative* comparison is the
/// wrong yardstick — error relative to the raster scale is what "exact up
/// to floating point" means here.
fn max_scaled_error(got: &DensityGrid, reference: &DensityGrid) -> f64 {
    let scale = reference.max_value().max(1e-300);
    got.values()
        .iter()
        .zip(reference.values())
        .map(|(a, b)| (a - b).abs() / scale)
        .fold(0.0_f64, f64::max)
}

/// Strategy for a modest random KDV problem.
#[allow(clippy::type_complexity)]
fn problem() -> impl Strategy<
    Value = (
        Vec<(f64, f64)>, // points
        (usize, usize),  // resolution
        f64,             // bandwidth
        u8,              // kernel selector
    ),
> {
    (
        prop::collection::vec(
            (
                // points may fall outside the query region on purpose
                prop::num::f64::NORMAL.prop_map(|v| (v % 150.0) - 25.0),
                prop::num::f64::NORMAL.prop_map(|v| (v % 150.0) - 25.0),
            ),
            0..120,
        ),
        (1usize..24, 1usize..24),
        0.5f64..60.0,
        0u8..3,
    )
}

fn kernel_of(sel: u8) -> KernelType {
    KernelType::ALL[sel as usize % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every SLAM variant equals SCAN within rounding on random inputs.
    #[test]
    fn slam_variants_match_scan((pts, (rx, ry), bandwidth, ksel) in problem()) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let region = Rect::new(0.0, 0.0, 100.0, 100.0);
        let grid = GridSpec::new(region, rx, ry).unwrap();
        let kernel = kernel_of(ksel);
        let weight = 0.01;
        let params = KdvParams::new(grid, kernel, bandwidth).with_weight(weight);

        let reference = AnyMethod::Scan.compute(&params, &points).unwrap().grid;
        // The sweep engines evaluate in a rolling recentred frame (see the
        // sweep_sort module docs), which keeps the aggregate expansion's
        // error at O(eps·|E(k)|) no matter how small b is relative to the
        // region — a flat tolerance suffices.
        let tol = 1e-9;
        for m in Method::ALL {
            let got = AnyMethod::Slam(m).compute(&params, &points).unwrap().grid;
            let err = max_scaled_error(&got, &reference);
            prop_assert!(err < tol, "{m} kernel={kernel} err={err} tol={tol}");
        }
    }

    /// The exact baselines (RQS_kd, RQS_ball, QUAD) also equal SCAN.
    #[test]
    fn exact_baselines_match_scan((pts, (rx, ry), bandwidth, ksel) in problem()) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let region = Rect::new(0.0, 0.0, 100.0, 100.0);
        let grid = GridSpec::new(region, rx, ry).unwrap();
        let params = KdvParams::new(grid, kernel_of(ksel), bandwidth).with_weight(1.0);

        let reference = AnyMethod::Scan.compute(&params, &points).unwrap().grid;
        // Unlike the sweep engines, the tree baselines evaluate the
        // aggregate expansion (Eq. 5) in the globally recentred frame, so
        // their achievable f64 error keeps the inherent (c/b)^4 (quartic)
        // conditioning term for coordinate magnitude c ~ 160 here.
        let tol = 1e-9 + 1e-12 * (160.0 / bandwidth).powi(4);
        for m in [AnyMethod::RqsKd, AnyMethod::RqsBall, AnyMethod::Quad] {
            let got = m.compute(&params, &points).unwrap().grid;
            let err = max_scaled_error(&got, &reference);
            prop_assert!(err < tol, "{m} err={err} tol={tol}");
        }
    }

    /// aKDE's absolute error guarantee holds: |err| ≤ w·n·ε/2.
    #[test]
    fn akde_error_bound_holds(
        (pts, (rx, ry), bandwidth, ksel) in problem(),
        eps in 0.0f64..0.5,
    ) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let region = Rect::new(0.0, 0.0, 100.0, 100.0);
        let grid = GridSpec::new(region, rx, ry).unwrap();
        let params = KdvParams::new(grid, kernel_of(ksel), bandwidth).with_weight(1.0);

        let reference = AnyMethod::Scan.compute(&params, &points).unwrap().grid;
        let approx = AnyMethod::Akde { epsilon: eps }
            .compute(&params, &points)
            .unwrap()
            .grid;
        let bound = points.len() as f64 * eps * 0.5 + 1e-9;
        for (a, e) in approx.values().iter().zip(reference.values()) {
            prop_assert!((a - e).abs() <= bound, "|{a}-{e}| > {bound}");
        }
    }

    /// Density is translation-invariant: shifting points and region
    /// together leaves the raster unchanged (up to rounding).
    #[test]
    fn translation_invariance(
        (pts, (rx, ry), bandwidth, ksel) in problem(),
        dx in -1e5f64..1e5,
        dy in -1e5f64..1e5,
    ) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let region = Rect::new(0.0, 0.0, 100.0, 100.0);
        let kernel = kernel_of(ksel);

        let grid_a = GridSpec::new(region, rx, ry).unwrap();
        let params_a = KdvParams::new(grid_a, kernel, bandwidth);
        let a = AnyMethod::Slam(Method::SlamBucketRao)
            .compute(&params_a, &points)
            .unwrap()
            .grid;

        let shifted: Vec<Point> = points.iter().map(|p| Point::new(p.x + dx, p.y + dy)).collect();
        let region_b = region.translated(dx, dy);
        let grid_b = GridSpec::new(region_b, rx, ry).unwrap();
        let params_b = KdvParams::new(grid_b, kernel, bandwidth);
        let b = AnyMethod::Slam(Method::SlamBucketRao)
            .compute(&params_b, &shifted)
            .unwrap()
            .grid;

        // translated pixel centres differ by rounding, so tolerate a
        // slightly looser bound than the exactness tests
        let err = max_scaled_error(&a, &b).min(max_rel_error(a.values(), b.values()));
        prop_assert!(err < 1e-5, "err={err}");
    }

    /// Densities are non-negative and bounded by w·n·K_max for every
    /// kernel (quartic/epanechnikov peak at 1, uniform at 1/b).
    #[test]
    fn density_bounds((pts, (rx, ry), bandwidth, ksel) in problem()) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let region = Rect::new(0.0, 0.0, 100.0, 100.0);
        let grid = GridSpec::new(region, rx, ry).unwrap();
        let kernel = kernel_of(ksel);
        let params = KdvParams::new(grid, kernel, bandwidth).with_weight(1.0);
        let out = AnyMethod::Slam(Method::SlamBucket)
            .compute(&params, &points)
            .unwrap()
            .grid;
        let k_max = match kernel {
            KernelType::Uniform => 1.0 / bandwidth,
            _ => 1.0,
        };
        let upper = points.len() as f64 * k_max + 1e-9;
        for &v in out.values() {
            prop_assert!(v >= -1e-9, "negative density {v}");
            prop_assert!(v <= upper, "density {v} above bound {upper}");
        }
    }
}
