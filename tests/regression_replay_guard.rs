//! Guards the regression-replay machinery itself: a `.proptest-regressions`
//! file that was silently ignored (or silently stopped parsing) would stop
//! guarding without any test going red. Two checks:
//!
//! 1. Every committed `.proptest-regressions` file has a live sibling `.rs`
//!    test source that still declares `proptest!` properties — a renamed or
//!    deleted test would orphan its recorded seeds.
//! 2. End to end, in a subprocess: a property pointed (via
//!    `PROPTEST_REGRESSIONS_FILE`) at a corrupted regressions file must
//!    fail, and pointed at a well-formed one must pass. This proves the
//!    file is read, parsed, and replayed on every `cargo test` run.

use std::path::{Path, PathBuf};
use std::process::Command;

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Trivially true probe property: the subprocess checks below re-run
    /// it with `PROPTEST_REGRESSIONS_FILE` injected, so its outcome is
    /// decided purely by the replay machinery.
    #[test]
    fn replay_guard_probe(v in 0u64..1_000) {
        prop_assert!(v < 1_000);
    }
}

fn workspace_root() -> PathBuf {
    // this test belongs to the root package, so the manifest dir IS the
    // workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn find_regression_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                find_regression_files(&path, out);
            }
        } else if name.ends_with(".proptest-regressions") {
            out.push(path);
        }
    }
}

#[test]
fn every_regressions_file_has_a_live_proptest_sibling() {
    let mut files = Vec::new();
    find_regression_files(&workspace_root(), &mut files);
    assert!(!files.is_empty(), "no .proptest-regressions files found — the walk itself is broken");
    for file in files {
        let sibling = file.with_extension("rs");
        assert!(
            sibling.exists(),
            "{} has no sibling test source {} — recorded seeds are orphaned",
            file.display(),
            sibling.display()
        );
        let source = std::fs::read_to_string(&sibling).unwrap();
        assert!(
            source.contains("proptest!"),
            "{} no longer declares proptest! properties, so {} is never replayed",
            sibling.display(),
            file.display()
        );
    }
}

/// Re-runs only the probe property in a child process with the regressions
/// file overridden to `contents`, returning whether the child passed.
fn probe_with_regressions(label: &str, contents: &str) -> bool {
    let dir = std::env::temp_dir().join("kdv-replay-guard");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join(format!("{label}.proptest-regressions"));
    std::fs::write(&file, contents).unwrap();
    let status = Command::new(std::env::current_exe().unwrap())
        .args(["--exact", "replay_guard_probe"])
        .env("PROPTEST_REGRESSIONS_FILE", &file)
        .status()
        .expect("spawning the test binary");
    let _ = std::fs::remove_file(&file);
    status.success()
}

#[test]
fn corrupted_regressions_file_fails_the_replaying_test() {
    assert!(
        probe_with_regressions("valid", "# header\ncc 00000000000000aa # fine\n"),
        "a well-formed regressions file must replay cleanly"
    );
    assert!(
        !probe_with_regressions("corrupt", "# header\ncc XYZ-not-hex # corrupted\n"),
        "a corrupted regressions file must fail the test run, not be skipped"
    );
}
