//! Smoke tests over the committed benchmark result files: `./ci.sh bench`
//! appends entries to `results/BENCH_*.json`, and a malformed append (a
//! bad suffix splice, a truncated run) must fail CI rather than silently
//! corrupt the history. The checks are a hand-rolled JSON well-formedness
//! pass plus presence of the keys downstream tooling reads — no JSON
//! dependency in the budget.

use std::path::Path;

/// Minimal recursive-descent JSON well-formedness check (objects, arrays,
/// strings with escapes, numbers, true/false/null). Returns the byte
/// offset that failed, if any.
fn validate_json(s: &str) -> Result<(), usize> {
    let b = s.as_bytes();
    let mut i = 0usize;
    fn ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }
    fn value(b: &[u8], i: &mut usize, depth: usize) -> Result<(), usize> {
        if depth > 64 {
            return Err(*i);
        }
        ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    ws(b, i);
                    string(b, i)?;
                    ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err(*i);
                    }
                    *i += 1;
                    value(b, i, depth + 1)?;
                    ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(*i),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    value(b, i, depth + 1)?;
                    ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(*i),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(b't') => literal(b, i, b"true"),
            Some(b'f') => literal(b, i, b"false"),
            Some(b'n') => literal(b, i, b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                // lenient number scan: digits, sign, dot, exponent
                let start = *i;
                while *i < b.len()
                    && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *i += 1;
                }
                if *i == start {
                    Err(start)
                } else {
                    Ok(())
                }
            }
            _ => Err(*i),
        }
    }
    fn string(b: &[u8], i: &mut usize) -> Result<(), usize> {
        if b.get(*i) != Some(&b'"') {
            return Err(*i);
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                b'\\' => *i += 2,
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                _ => *i += 1,
            }
        }
        Err(*i)
    }
    fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), usize> {
        if b.len() >= *i + lit.len() && &b[*i..*i + lit.len()] == lit {
            *i += lit.len();
            Ok(())
        } else {
            Err(*i)
        }
    }
    value(b, &mut i, 0)?;
    ws(b, &mut i);
    if i == b.len() {
        Ok(())
    } else {
        Err(i)
    }
}

fn read_results(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("results").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} missing (run ./ci.sh bench): {e}", path.display()))
}

#[test]
fn bench_tiles_json_parses_with_expected_keys() {
    let text = read_results("BENCH_tiles.json");
    validate_json(&text).unwrap_or_else(|off| {
        panic!(
            "BENCH_tiles.json is not valid JSON near byte {off}: ...{:?}",
            &text[off.saturating_sub(30)..(off + 30).min(text.len())]
        )
    });
    for key in [
        "\"runs\"",
        "\"date\"",
        "\"n\"",
        "\"tile_size\"",
        "\"configs\"",
        "\"trace\"",
        "\"requests\"",
        "\"cold_s\"",
        "\"warm_s\"",
        "\"speedup\"",
        "\"hits\"",
        "\"misses\"",
        "\"evictions\"",
    ] {
        assert!(text.contains(key), "BENCH_tiles.json missing key {key}");
    }
    // the three committed trace configs
    for trace in ["\"trace\": \"pan\"", "\"trace\": \"zoom\"", "\"trace\": \"revisit\""] {
        assert!(text.contains(trace), "BENCH_tiles.json missing config {trace}");
    }
}

#[test]
fn bench_envelope_json_parses_with_expected_keys() {
    let text = read_results("BENCH_envelope.json");
    validate_json(&text)
        .unwrap_or_else(|off| panic!("BENCH_envelope.json is not valid JSON near byte {off}"));
    for key in
        ["\"rows\"", "\"bandwidth\"", "\"extract_scan_s\"", "\"extract_banded_s\"", "\"mean_band\""]
    {
        assert!(text.contains(key), "BENCH_envelope.json missing key {key}");
    }
}

#[test]
fn validator_accepts_and_rejects() {
    assert!(validate_json(r#"{"a": [1, 2.5e-3, "x\"y", true, null]}"#).is_ok());
    assert!(validate_json("{\n  \"runs\": []\n}\n").is_ok());
    assert!(validate_json(r#"{"a": }"#).is_err());
    assert!(validate_json(r#"{"a": 1} trailing"#).is_err());
    assert!(validate_json(r#"["unterminated]"#).is_err());
}
