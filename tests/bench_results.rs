//! Smoke tests over the committed benchmark result files: `./ci.sh bench`
//! appends entries to `results/BENCH_*.json`, and a malformed append (a
//! bad suffix splice, a truncated run) must fail CI rather than silently
//! corrupt the history. The checks are [`kdv_obs::validate_json`] (a
//! recursive-descent well-formedness pass — no JSON dependency in the
//! budget) plus presence of the keys downstream tooling reads.

use std::path::Path;

use kdv_obs::validate_json;

/// Reads `results/<name>` and runs the well-formedness pass, panicking
/// with the offending file's full path (and the bytes around the error)
/// so a malformed append is traceable straight from the CI log.
fn validated(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("results").join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} missing (run ./ci.sh bench): {e}", path.display()));
    validate_json(&text).unwrap_or_else(|off| {
        panic!(
            "{} is not valid JSON near byte {off}: ...{:?}",
            path.display(),
            &text[off.saturating_sub(30)..(off + 30).min(text.len())]
        )
    });
    text
}

#[test]
fn bench_tiles_json_parses_with_expected_keys() {
    let text = validated("BENCH_tiles.json");
    for key in [
        "\"runs\"",
        "\"date\"",
        "\"n\"",
        "\"tile_size\"",
        "\"configs\"",
        "\"trace\"",
        "\"requests\"",
        "\"cold_s\"",
        "\"warm_s\"",
        "\"speedup\"",
        "\"hits\"",
        "\"misses\"",
        "\"evictions\"",
    ] {
        assert!(text.contains(key), "BENCH_tiles.json missing key {key}");
    }
    // the three committed trace configs
    for trace in ["\"trace\": \"pan\"", "\"trace\": \"zoom\"", "\"trace\": \"revisit\""] {
        assert!(text.contains(trace), "BENCH_tiles.json missing config {trace}");
    }
}

#[test]
fn bench_envelope_json_parses_with_expected_keys() {
    let text = validated("BENCH_envelope.json");
    for key in [
        "\"rows\"",
        "\"bandwidth\"",
        "\"extract_scan_s\"",
        "\"extract_banded_s\"",
        "\"mean_band\"",
        "\"emit_scalar_s\"",
        "\"emit_simd_s\"",
        "\"fill_scalar_s\"",
        "\"fill_simd_s\"",
    ] {
        assert!(text.contains(key), "BENCH_envelope.json missing key {key}");
    }
}

#[test]
fn bench_simd_json_parses_with_expected_keys() {
    let text = validated("BENCH_simd.json");
    for key in [
        "\"n\"",
        "\"vector_isa_detected\"",
        "\"min_speedup\"",
        "\"best_speedup\"",
        "\"rows\"",
        "\"kernel\"",
        "\"bandwidth\"",
        "\"scalar_fill_s\"",
        "\"scalar_emit_s\"",
        "\"simd_fill_s\"",
        "\"simd_emit_s\"",
        "\"simd_lane_pixels\"",
        "\"speedup\"",
    ] {
        assert!(text.contains(key), "BENCH_simd.json missing key {key}");
    }
}

#[test]
fn bench_obs_json_parses_with_expected_keys() {
    let text = validated("BENCH_obs.json");
    for key in [
        "\"runs\"",
        "\"date\"",
        "\"n\"",
        "\"requests\"",
        "\"spans\"",
        "\"disabled_s\"",
        "\"instrumented_s\"",
        "\"ratio\"",
        "\"max_ratio\"",
    ] {
        assert!(text.contains(key), "BENCH_obs.json missing key {key}");
    }
}

#[test]
fn bench_flight_json_parses_with_expected_keys() {
    let text = validated("BENCH_flight.json");
    for key in [
        "\"runs\"",
        "\"date\"",
        "\"n\"",
        "\"requests\"",
        "\"ring_off_s\"",
        "\"ring_on_s\"",
        "\"overhead_ratio\"",
        "\"max_ratio\"",
        "\"bitwise\"",
        "\"shed_incidents\"",
        "\"slo_incidents\"",
        "\"prometheus_series\"",
    ] {
        assert!(text.contains(key), "BENCH_flight.json missing key {key}");
    }
    // the run itself asserts these, but the committed history must agree:
    // a non-bitwise recorder-on replay or a missed/duplicated incident
    // dump must never be recorded
    assert!(text.contains("\"bitwise\": true"), "BENCH_flight.json recorded a non-bitwise replay");
    assert!(
        text.contains("\"shed_incidents\": 1") && text.contains("\"slo_incidents\": 1"),
        "BENCH_flight.json recorded a missed or duplicated incident dump"
    );
}

/// Extracts every numeric value of `"key": <number>` in file order.
fn numeric_series(text: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// Trajectory guard: `./ci.sh` bench gates append one dated entry per
/// run, and the gated headline ratio of the *latest* entry must not
/// regress by more than 25% against the entry before it. A fresh file
/// with fewer than two entries passes trivially.
#[test]
fn bench_trajectories_do_not_regress() {
    const MAX_REGRESSION: f64 = 0.25;
    // (file, headline key, higher-is-better)
    for (file, key, higher) in [
        ("BENCH_stream.json", "speedup", true),
        ("BENCH_simd.json", "best_speedup", true),
        ("BENCH_obs.json", "ratio", false),
        ("BENCH_flight.json", "overhead_ratio", false),
        ("BENCH_coreset.json", "speedup", true),
    ] {
        let text = validated(file);
        let series = numeric_series(&text, key);
        assert!(!series.is_empty(), "{file} has no {key} entries");
        if series.len() < 2 {
            continue;
        }
        let prior = series[series.len() - 2];
        let latest = series[series.len() - 1];
        assert!(prior > 0.0, "{file}: non-positive prior {key} {prior}");
        let regression = if higher { (prior - latest) / prior } else { (latest - prior) / prior };
        assert!(
            regression <= MAX_REGRESSION,
            "{file}: {key} regressed {:.0}% ({prior} -> {latest}); rerun the gate on a quiet \
             machine or investigate before committing",
            regression * 100.0
        );
    }
}

#[test]
fn bench_serve_json_parses_with_expected_keys() {
    let text = validated("BENCH_serve.json");
    for key in [
        "\"runs\"",
        "\"date\"",
        "\"sessions\"",
        "\"requests\"",
        "\"distinct_bands\"",
        "\"sequential_s\"",
        "\"concurrent_s\"",
        "\"p50_ms\"",
        "\"p99_ms\"",
        "\"bands_computed\"",
        "\"bands_joined\"",
        "\"duplicate_computes\"",
        "\"saturation_shed\"",
    ] {
        assert!(text.contains(key), "BENCH_serve.json missing key {key}");
    }
    // the run itself asserts these, but the committed history must agree:
    // a nonzero duplicate count must never be recorded
    assert!(
        text.contains("\"duplicate_computes\": 0"),
        "BENCH_serve.json recorded duplicate band computes"
    );
}

#[test]
fn bench_coreset_json_parses_with_expected_keys() {
    let text = validated("BENCH_coreset.json");
    for key in [
        "\"runs\"",
        "\"date\"",
        "\"n\"",
        "\"method\"",
        "\"target_rel\"",
        "\"epsilon\"",
        "\"coreset_size\"",
        "\"sup_error\"",
        "\"build_s\"",
        "\"exact_overview_s\"",
        "\"coreset_overview_s\"",
        "\"speedup\"",
        "\"deep_bitwise\"",
    ] {
        assert!(text.contains(key), "BENCH_coreset.json missing key {key}");
    }
    // the run itself asserts these, but the committed history must agree:
    // an approximation leaking into the exact tier must never be recorded
    assert!(
        text.contains("\"deep_bitwise\": true"),
        "BENCH_coreset.json recorded a non-bitwise deep zoom"
    );
}

#[test]
fn bench_stream_json_parses_with_expected_keys() {
    let text = validated("BENCH_stream.json");
    for key in [
        "\"runs\"",
        "\"date\"",
        "\"n\"",
        "\"generations\"",
        "\"batch\"",
        "\"requests\"",
        "\"patch_s\"",
        "\"recompute_s\"",
        "\"speedup\"",
        "\"patched_bands\"",
        "\"folded_batches\"",
        "\"duplicate_computes\"",
    ] {
        assert!(text.contains(key), "BENCH_stream.json missing key {key}");
    }
    // the run itself asserts these, but the committed history must agree:
    // a torn or duplicated streaming serve must never be recorded
    assert!(
        text.contains("\"duplicate_computes\": 0"),
        "BENCH_stream.json recorded duplicate band computes"
    );
}

#[test]
fn validator_accepts_and_rejects() {
    assert!(validate_json(r#"{"a": [1, 2.5e-3, "x\"y", true, null]}"#).is_ok());
    assert!(validate_json("{\n  \"runs\": []\n}\n").is_ok());
    assert!(validate_json(r#"{"a": }"#).is_err());
    assert!(validate_json(r#"{"a": 1} trailing"#).is_err());
    assert!(validate_json(r#"["unterminated]"#).is_err());
}
