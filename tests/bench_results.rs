//! Smoke tests over the committed benchmark result files: `./ci.sh bench`
//! appends entries to `results/BENCH_*.json`, and a malformed append (a
//! bad suffix splice, a truncated run) must fail CI rather than silently
//! corrupt the history. The checks are [`kdv_obs::validate_json`] (a
//! recursive-descent well-formedness pass — no JSON dependency in the
//! budget) plus presence of the keys downstream tooling reads.

use std::path::Path;

use kdv_obs::validate_json;

fn read_results(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("results").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} missing (run ./ci.sh bench): {e}", path.display()))
}

#[test]
fn bench_tiles_json_parses_with_expected_keys() {
    let text = read_results("BENCH_tiles.json");
    validate_json(&text).unwrap_or_else(|off| {
        panic!(
            "BENCH_tiles.json is not valid JSON near byte {off}: ...{:?}",
            &text[off.saturating_sub(30)..(off + 30).min(text.len())]
        )
    });
    for key in [
        "\"runs\"",
        "\"date\"",
        "\"n\"",
        "\"tile_size\"",
        "\"configs\"",
        "\"trace\"",
        "\"requests\"",
        "\"cold_s\"",
        "\"warm_s\"",
        "\"speedup\"",
        "\"hits\"",
        "\"misses\"",
        "\"evictions\"",
    ] {
        assert!(text.contains(key), "BENCH_tiles.json missing key {key}");
    }
    // the three committed trace configs
    for trace in ["\"trace\": \"pan\"", "\"trace\": \"zoom\"", "\"trace\": \"revisit\""] {
        assert!(text.contains(trace), "BENCH_tiles.json missing config {trace}");
    }
}

#[test]
fn bench_envelope_json_parses_with_expected_keys() {
    let text = read_results("BENCH_envelope.json");
    validate_json(&text)
        .unwrap_or_else(|off| panic!("BENCH_envelope.json is not valid JSON near byte {off}"));
    for key in [
        "\"rows\"",
        "\"bandwidth\"",
        "\"extract_scan_s\"",
        "\"extract_banded_s\"",
        "\"mean_band\"",
        "\"emit_scalar_s\"",
        "\"emit_simd_s\"",
        "\"fill_scalar_s\"",
        "\"fill_simd_s\"",
    ] {
        assert!(text.contains(key), "BENCH_envelope.json missing key {key}");
    }
}

#[test]
fn bench_simd_json_parses_with_expected_keys() {
    let text = read_results("BENCH_simd.json");
    validate_json(&text)
        .unwrap_or_else(|off| panic!("BENCH_simd.json is not valid JSON near byte {off}"));
    for key in [
        "\"n\"",
        "\"vector_isa_detected\"",
        "\"min_speedup\"",
        "\"best_speedup\"",
        "\"rows\"",
        "\"kernel\"",
        "\"bandwidth\"",
        "\"scalar_fill_s\"",
        "\"scalar_emit_s\"",
        "\"simd_fill_s\"",
        "\"simd_emit_s\"",
        "\"simd_lane_pixels\"",
        "\"speedup\"",
    ] {
        assert!(text.contains(key), "BENCH_simd.json missing key {key}");
    }
}

#[test]
fn bench_obs_json_parses_with_expected_keys() {
    let text = read_results("BENCH_obs.json");
    validate_json(&text)
        .unwrap_or_else(|off| panic!("BENCH_obs.json is not valid JSON near byte {off}"));
    for key in [
        "\"n\"",
        "\"requests\"",
        "\"spans\"",
        "\"disabled_s\"",
        "\"instrumented_s\"",
        "\"ratio\"",
        "\"max_ratio\"",
    ] {
        assert!(text.contains(key), "BENCH_obs.json missing key {key}");
    }
}

#[test]
fn bench_serve_json_parses_with_expected_keys() {
    let text = read_results("BENCH_serve.json");
    validate_json(&text)
        .unwrap_or_else(|off| panic!("BENCH_serve.json is not valid JSON near byte {off}"));
    for key in [
        "\"runs\"",
        "\"date\"",
        "\"sessions\"",
        "\"requests\"",
        "\"distinct_bands\"",
        "\"sequential_s\"",
        "\"concurrent_s\"",
        "\"p50_ms\"",
        "\"p99_ms\"",
        "\"bands_computed\"",
        "\"bands_joined\"",
        "\"duplicate_computes\"",
        "\"saturation_shed\"",
    ] {
        assert!(text.contains(key), "BENCH_serve.json missing key {key}");
    }
    // the run itself asserts these, but the committed history must agree:
    // a nonzero duplicate count must never be recorded
    assert!(
        text.contains("\"duplicate_computes\": 0"),
        "BENCH_serve.json recorded duplicate band computes"
    );
}

#[test]
fn validator_accepts_and_rejects() {
    assert!(validate_json(r#"{"a": [1, 2.5e-3, "x\"y", true, null]}"#).is_ok());
    assert!(validate_json("{\n  \"runs\": []\n}\n").is_ok());
    assert!(validate_json(r#"{"a": }"#).is_err());
    assert!(validate_json(r#"{"a": 1} trailing"#).is_err());
    assert!(validate_json(r#"["unterminated]"#).is_err());
}
