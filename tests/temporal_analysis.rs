//! Integration tests spanning the temporal and analysis crates with the
//! SLAM engines: an animated outbreak must be *trackable* — hotspot
//! extraction per frame should recover the moving epicentre, contours
//! should enclose it, and the K-function should flag the clustering.

use slam_kdv::analysis::{
    contours, grid_diff, hotspot_jaccard, hotspots_by_peak_fraction, k_function,
};
use slam_kdv::core::driver::KdvParams;
use slam_kdv::core::geom::{Point, Rect};
use slam_kdv::core::grid::GridSpec;
use slam_kdv::data::record::EventRecord;
use slam_kdv::temporal::{compute_stkdv, FrameSpec, StKdvConfig, TemporalKernel};
use slam_kdv::{KdvEngine, KernelType, Method};

/// A burst that jumps between three sites over three epochs.
fn moving_bursts() -> Vec<EventRecord> {
    let sites = [Point::new(20.0, 20.0), Point::new(60.0, 50.0), Point::new(85.0, 15.0)];
    let mut out = Vec::new();
    let mut state = 31u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for (epoch, site) in sites.iter().enumerate() {
        for _ in 0..200 {
            out.push(EventRecord {
                point: Point::new(site.x + next() * 6.0 - 3.0, site.y + next() * 6.0 - 3.0),
                timestamp: epoch as i64 * 10_000 + (next() * 1_000.0) as i64,
                category: epoch as u16,
            });
        }
    }
    out
}

fn config() -> StKdvConfig {
    let grid = GridSpec::new(Rect::new(0.0, 0.0, 100.0, 70.0), 50, 35).unwrap();
    StKdvConfig {
        params: KdvParams::new(grid, KernelType::Epanechnikov, 8.0).with_weight(1.0 / 200.0),
        frames: FrameSpec::new(500, 10_000, 3),
        temporal_bandwidth: 2_000,
        temporal_kernel: TemporalKernel::Epanechnikov,
    }
}

#[test]
fn stkdv_frames_track_the_moving_hotspot() {
    let cfg = config();
    let frames = compute_stkdv(&cfg, &moving_bursts()).unwrap();
    assert_eq!(frames.len(), 3);
    let expected = [Point::new(20.0, 20.0), Point::new(60.0, 50.0), Point::new(85.0, 15.0)];
    for (frame, site) in frames.iter().zip(expected) {
        assert!(frame.events > 0, "frame at t={} lost its burst", frame.time);
        let hs = hotspots_by_peak_fraction(&frame.grid, &cfg.params.grid, 0.5);
        assert!(!hs.is_empty());
        let top = &hs[0];
        assert!(
            top.centroid.dist(&site) < 6.0,
            "frame t={}: hotspot at {} expected near {}",
            frame.time,
            top.centroid,
            site
        );
    }
}

#[test]
fn contours_enclose_the_frame_hotspot() {
    let cfg = config();
    let frames = compute_stkdv(&cfg, &moving_bursts()).unwrap();
    let frame = &frames[1];
    let threshold = frame.grid.max_value() * 0.5;
    let cs = contours(&frame.grid, &cfg.params.grid, threshold);
    assert!(!cs.is_empty());
    // the longest contour should be a closed ring around (60, 50)
    let longest = cs.iter().max_by(|a, b| a.length().total_cmp(&b.length())).unwrap();
    assert!(longest.closed, "hotspot boundary must be a ring");
    let cx = longest.points.iter().map(|p| p.x).sum::<f64>() / longest.points.len() as f64;
    let cy = longest.points.iter().map(|p| p.y).sum::<f64>() / longest.points.len() as f64;
    assert!(Point::new(cx, cy).dist(&Point::new(60.0, 50.0)) < 8.0, "ring centre ({cx}, {cy})");
}

#[test]
fn per_frame_grids_equal_direct_slam_on_uniform_kernel() {
    // with a uniform temporal kernel, a frame is exactly a filtered SLAM run
    let mut cfg = config();
    cfg.temporal_kernel = TemporalKernel::Uniform;
    let records = moving_bursts();
    let frames = compute_stkdv(&cfg, &records).unwrap();
    for frame in &frames {
        let window: Vec<Point> = records
            .iter()
            .filter(|r| (r.timestamp - frame.time).abs() <= cfg.temporal_bandwidth)
            .map(|r| r.point)
            .collect();
        let direct = KdvEngine::new(Method::SlamBucketRao).compute(&cfg.params, &window).unwrap();
        let diff = grid_diff(&frame.grid, &direct);
        assert!(diff.max_rel_to_peak < 1e-9, "t={}: {diff:?}", frame.time);
        assert_eq!(hotspot_jaccard(&frame.grid, &direct, direct.max_value() * 0.3), 1.0);
    }
}

#[test]
fn k_function_detects_burst_clustering() {
    let records = moving_bursts();
    let points: Vec<Point> = records.iter().map(|r| r.point).collect();
    let window = Rect::new(0.0, 0.0, 100.0, 70.0);
    let k = k_function(&points, window, &[5.0, 15.0]);
    // three tight bursts: strong clustering at small scales
    let l = k.l_minus_r();
    assert!(l[0] > 5.0, "L(5) - 5 = {}", l[0]);
    assert!(l[1] > 5.0, "L(15) - 15 = {}", l[1]);
}
