//! Integration tests spanning the workspace crates: data generation →
//! exploration → SLAM engines → baselines → visualisation.

use slam_kdv::baselines::AnyMethod;
use slam_kdv::core::driver::KdvParams;
use slam_kdv::core::stats::max_rel_error;
use slam_kdv::data::csvio;
use slam_kdv::data::record::year_start;
use slam_kdv::explore::{pan_regions, zoom_regions, Bandwidth, ExploreSession, Viewport};
use slam_kdv::viz::{ascii_art, render, write_pgm, ColorMap, Scale};
use slam_kdv::{City, GridSpec, KdvEngine, KernelType, Method};

/// Full happy path: synthesise a city, render a KDV with every SLAM
/// variant, check exactness against SCAN and produce an image.
#[test]
fn city_to_image_pipeline() {
    let dataset = City::SanFrancisco.dataset(0.0005);
    let points = dataset.points();
    assert!(points.len() > 1000);
    let bandwidth = slam_kdv::data::scott_bandwidth(&points);
    let grid = GridSpec::new(dataset.mbr(), 96, 72).unwrap();
    let params = KdvParams::new(grid, KernelType::Epanechnikov, bandwidth)
        .with_weight(1.0 / points.len() as f64);

    let reference = AnyMethod::Scan.compute(&params, &points).unwrap().grid;
    for m in Method::ALL {
        let got = KdvEngine::new(m).compute(&params, &points).unwrap();
        let err = max_rel_error(got.values(), reference.values());
        assert!(err < 1e-9, "{m}: err {err}");
    }

    let img = render(&reference, ColorMap::Heat, Scale::Sqrt);
    assert_eq!(img.dimensions(), (96, 72));
    // hotspots exist: some pixel is hot (red channel dominant)
    let has_hot = (0..72).any(|y| (0..96).any(|x| img.pixel(x, y).0 > 150));
    assert!(has_hot, "expected at least one hot pixel");
}

/// CSV round trip feeds the engines identically to the in-memory path.
#[test]
fn csv_round_trip_preserves_density() {
    let dataset = City::Seattle.dataset(0.0005);
    let dir = std::env::temp_dir().join("kdv_it_csv");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("seattle.csv");
    csvio::write_csv_file(&path, &dataset).unwrap();
    let reloaded = csvio::read_csv_file(&path).unwrap();
    assert_eq!(reloaded.len(), dataset.len());

    let grid = GridSpec::new(dataset.mbr(), 40, 30).unwrap();
    let params = KdvParams::new(grid, KernelType::Quartic, 1500.0);
    let a = KdvEngine::new(Method::SlamBucketRao).compute(&params, &dataset.points()).unwrap();
    let b = KdvEngine::new(Method::SlamBucketRao).compute(&params, &reloaded.points()).unwrap();
    assert_eq!(a, b, "CSV round trip must be lossless for the engines");
    std::fs::remove_dir_all(&dir).ok();
}

/// The exploration session reproduces the paper's Figure-16 protocol:
/// year-filtered events, zoomed and panned windows, all rendering
/// successfully with plausible statistics.
#[test]
fn figure16_protocol_via_session() {
    let dataset = City::LosAngeles.dataset(0.001);
    let mbr = dataset.mbr();
    let full_n = dataset.len();
    let mut session = ExploreSession::new(dataset);
    session
        .set_time_window(Some((year_start(2019), year_start(2020))))
        .set_bandwidth(Bandwidth::ScottRule);

    // zoom protocol
    for (i, region) in zoom_regions(mbr, &[0.25, 0.5, 0.75, 1.0]).into_iter().enumerate() {
        session.set_viewport(Viewport::new(region, 64, 48));
        let r = session.render().unwrap();
        assert!(r.points_used > 0, "zoom step {i} lost all points");
        assert!(r.points_used < full_n, "year filter must bite");
        assert_eq!(r.grid.res_x(), 64);
    }
    // pan protocol
    for region in pan_regions(mbr, 5, 7) {
        session.set_viewport(Viewport::new(region, 64, 48));
        let r = session.render().unwrap();
        assert_eq!(r.grid.res_y(), 48);
    }
}

/// Attribute and time filters compose; a filtered render is equivalent to
/// computing over the pre-filtered points directly.
#[test]
fn filters_equal_manual_prefilter() {
    let dataset = City::NewYork.dataset(0.0005);
    let mbr = dataset.mbr();
    let manual: Vec<slam_kdv::Point> = dataset
        .records
        .iter()
        .filter(|r| r.category == 2 && r.timestamp >= year_start(2015))
        .map(|r| r.point)
        .collect();

    let mut session = ExploreSession::new(dataset);
    session
        .set_viewport(Viewport::new(mbr, 48, 36))
        .set_category(Some(2))
        .set_time_window(Some((year_start(2015), i64::MAX)))
        .set_bandwidth(Bandwidth::Fixed(1200.0));
    let via_session = session.render().unwrap();
    assert_eq!(via_session.points_used, manual.len());

    let grid = GridSpec::new(mbr, 48, 36).unwrap();
    let params = KdvParams::new(grid, KernelType::Epanechnikov, 1200.0)
        .with_weight(1.0 / manual.len() as f64);
    let direct = KdvEngine::new(Method::SlamBucketRao).compute(&params, &manual).unwrap();
    assert_eq!(via_session.grid, direct);
}

/// Z-order sampling stays within a loose error band on a real-shaped
/// dataset and is consistent with its configured reduction.
#[test]
fn zorder_sampling_quality_on_city_data() {
    let dataset = City::SanFrancisco.dataset(0.001);
    let points = dataset.points();
    let grid = GridSpec::new(dataset.mbr(), 48, 36).unwrap();
    let b = slam_kdv::data::scott_bandwidth(&points);
    let params =
        KdvParams::new(grid, KernelType::Epanechnikov, b).with_weight(1.0 / points.len() as f64);
    let exact = AnyMethod::Scan.compute(&params, &points).unwrap().grid;
    let approx = AnyMethod::ZOrder { sample_fraction: 0.1 }.compute(&params, &points).unwrap().grid;
    let mass_err = (approx.total() - exact.total()).abs() / exact.total();
    assert!(mass_err < 0.1, "sampled mass error {mass_err}");
}

/// The viz stack renders paper-style artifacts from real engine output.
#[test]
fn viz_outputs_from_engine_grid() {
    let dataset = City::Seattle.dataset(0.0002);
    let points = dataset.points();
    let grid = GridSpec::new(dataset.mbr(), 32, 24).unwrap();
    let params = KdvParams::new(grid, KernelType::Epanechnikov, 2500.0);
    let density = KdvEngine::new(Method::SlamBucketRao).compute(&params, &points).unwrap();

    let art = ascii_art(&density, Scale::Log);
    assert_eq!(art.lines().count(), 24);

    let mut pgm = Vec::new();
    write_pgm(&mut pgm, &density, Scale::Linear).unwrap();
    assert!(pgm.starts_with(b"P5\n32 24\n255\n"));

    let img = render(&density, ColorMap::Viridis, Scale::Sqrt);
    let mut ppm = Vec::new();
    img.write_ppm(&mut ppm).unwrap();
    assert_eq!(ppm.len(), "P6\n32 24\n255\n".len() + 32 * 24 * 3);
}
