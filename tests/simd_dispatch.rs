//! SIMD dispatch contract, end to end: a forced-scalar process and an
//! auto-dispatch process must produce bitwise-identical rasters on every
//! engine family.
//!
//! `KDV_SIMD` is resolved once at startup (a `OnceLock` behind
//! [`kdv_core::simd::mode`]), so exercising the environment path needs
//! fresh processes: a probe test computes one raster per engine family —
//! both sweep engines, RAO, weighted, multi-bandwidth, stitched tiles and
//! STKDV frames — and prints an FNV-1a checksum of each; the driver test
//! re-runs the probe in two child processes (`KDV_SIMD=scalar` and
//! `KDV_SIMD=auto`) and compares the checksum tables. Policy is Bitwise:
//! the checksums must match exactly, not approximately.

use std::collections::BTreeMap;
use std::process::Command;

use kdv_core::driver::KdvParams;
use kdv_core::geom::{Point, Rect};
use kdv_core::grid::GridSpec;
use kdv_core::KernelType;
use kdv_data::record::EventRecord;
use kdv_temporal::{compute_stkdv, FrameSpec, StKdvConfig, TemporalKernel};

use kdv_core::digest::grid_checksum as checksum;

fn test_points(n: usize, extent: Rect) -> Vec<Point> {
    let mut state = 77u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            Point::new(
                extent.min_x + next() * (extent.max_x - extent.min_x),
                extent.min_y + next() * (extent.max_y - extent.min_y),
            )
        })
        .collect()
}

/// One raster per engine family, deterministic input. Kernel varies so
/// both the quadratic and quartic emit polynomials are covered.
fn family_checksums() -> Vec<(&'static str, u64)> {
    let extent = Rect::new(0.0, 0.0, 300.0, 200.0);
    let points = test_points(900, extent);
    let grid = GridSpec::new(extent, 96, 64).unwrap();
    let params = KdvParams::new(grid, KernelType::Epanechnikov, 18.0).with_weight(0.25);
    let quartic = KdvParams::new(grid, KernelType::Quartic, 25.0).with_weight(0.25);

    let mut out = Vec::new();
    out.push(("bucket", checksum(&kdv_core::sweep_bucket::compute(&params, &points).unwrap())));
    out.push(("sort", checksum(&kdv_core::sweep_sort::compute(&quartic, &points).unwrap())));
    // tall raster forces the RAO transpose branch
    let tall = GridSpec::new(Rect::new(0.0, 0.0, 200.0, 300.0), 48, 96).unwrap();
    let tall_params = KdvParams::new(tall, KernelType::Quartic, 20.0).with_weight(0.25);
    let tall_points = test_points(700, Rect::new(0.0, 0.0, 200.0, 300.0));
    out.push((
        "rao",
        checksum(&kdv_core::rao::compute_bucket(&tall_params, &tall_points).unwrap()),
    ));
    let weights: Vec<f64> = (0..points.len()).map(|i| 0.5 + (i % 7) as f64 * 0.25).collect();
    out.push((
        "weighted",
        checksum(&kdv_core::weighted::compute_weighted(&params, &points, &weights).unwrap()),
    ));
    let multi =
        kdv_core::multi_bandwidth::compute_multi_bandwidth(&params, &points, &[9.0, 18.0, 36.0])
            .unwrap();
    for (grid, name) in multi.iter().zip(["multi_b9", "multi_b18", "multi_b36"]) {
        out.push((name, checksum(grid)));
    }
    out.push(("tiles", checksum(&kdv_core::tile::compute_stitched(&params, &points, 32).unwrap())));
    let events: Vec<EventRecord> = points
        .iter()
        .enumerate()
        .map(|(i, &point)| EventRecord { point, timestamp: 1_000 + (i as i64 % 240), category: 0 })
        .collect();
    let config = StKdvConfig {
        params,
        frames: FrameSpec::new(1_000, 80, 3),
        temporal_bandwidth: 120,
        temporal_kernel: TemporalKernel::Epanechnikov,
    };
    for (i, frame) in compute_stkdv(&config, &events).unwrap().iter().enumerate() {
        out.push((["stkdv_f0", "stkdv_f1", "stkdv_f2"][i], checksum(&frame.grid)));
    }
    out
}

/// Probe: prints one `kdv-dispatch-checksum:<family>=<hex>` line per
/// engine family under whatever dispatch the environment resolved. The
/// driver test below runs this in child processes; standalone (plain
/// `cargo test`) it is a cheap smoke test of every family.
#[test]
fn simd_dispatch_probe() {
    for (name, sum) in family_checksums() {
        println!("kdv-dispatch-checksum:{name}={sum:016x}");
    }
}

fn probe_checksums(simd_env: &str) -> BTreeMap<String, String> {
    let output = Command::new(std::env::current_exe().unwrap())
        .args(["--exact", "simd_dispatch_probe", "--nocapture"])
        .env("KDV_SIMD", simd_env)
        .output()
        .expect("spawning the test binary");
    assert!(
        output.status.success(),
        "probe child (KDV_SIMD={simd_env}) failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let map: BTreeMap<String, String> = stdout
        .lines()
        .filter_map(|l| l.strip_prefix("kdv-dispatch-checksum:"))
        .filter_map(|l| l.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    assert!(!map.is_empty(), "probe child (KDV_SIMD={simd_env}) printed no checksums");
    map
}

/// Forced-scalar vs auto dispatch over every engine family, in fresh
/// processes so `KDV_SIMD` goes through the real startup resolution.
#[test]
fn forced_scalar_and_auto_dispatch_agree_bitwise_per_family() {
    let scalar = probe_checksums("scalar");
    let auto = probe_checksums("auto");
    assert_eq!(
        scalar.keys().collect::<Vec<_>>(),
        auto.keys().collect::<Vec<_>>(),
        "both probes must cover the same engine families"
    );
    for (family, sum) in &scalar {
        assert_eq!(
            sum, &auto[family],
            "family '{family}': scalar and auto dispatch rasters diverged (Bitwise policy)"
        );
    }
}
