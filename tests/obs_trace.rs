//! Golden-schema test: an instrumented parallel sweep must emit a Chrome
//! trace-event JSON file that Perfetto / `chrome://tracing` can load —
//! well-formed JSON with `ph`/`ts`/`dur`/`tid` fields, thread-name
//! metadata, and per-worker tracks for the envelope-fill and row-sweep
//! phases.
//!
//! The span recorder is process-global, so the whole test runs under
//! [`kdv_obs::span::exclusive`] and this file stays a dedicated
//! integration-test binary (one process, no sibling tests racing the
//! sink).

use std::collections::BTreeSet;

use kdv_core::driver::KdvParams;
use kdv_core::geom::{Point, Rect};
use kdv_core::grid::GridSpec;
use kdv_core::parallel::{compute_parallel, ParallelEngine};
use kdv_core::KernelType;
use kdv_data::synth::{generate, SynthConfig};
use kdv_obs::{chrome_trace_json, validate_json};

#[test]
fn instrumented_sweep_emits_loadable_chrome_trace() {
    let _guard = kdv_obs::span::exclusive();
    let extent = Rect::new(0.0, 0.0, 4_000.0, 4_000.0);
    let points: Vec<Point> =
        generate(&SynthConfig::simple(extent), 4_000, 7).into_iter().map(|r| r.point).collect();
    let grid = GridSpec::new(extent, 64, 512).expect("valid grid");
    let params = KdvParams::new(grid, KernelType::Epanechnikov, 300.0).with_weight(1.0 / 4_000.0);

    kdv_obs::span::clear();
    kdv_obs::set_enabled(true);
    let result = compute_parallel(&params, &points, ParallelEngine::Bucket, 4);
    kdv_obs::set_enabled(false);
    kdv_obs::span::flush_thread();
    let trace = kdv_obs::span::take_trace();
    result.expect("instrumented sweep must succeed");

    assert!(trace.is_balanced(), "unmatched spans: {trace:?}");
    assert!(!trace.events.is_empty());

    // 512 rows over 4 workers: fill and sweep phases must appear on at
    // least two distinct thread tracks (work stealing may idle a worker,
    // but never 3 of 4 on a 512-row raster).
    let tids_of = |name: &str| -> BTreeSet<u64> {
        trace.events.iter().filter(|e| e.name == name).map(|e| e.tid).collect()
    };
    assert!(tids_of("envelope.fill").len() >= 2, "envelope.fill on one track only");
    assert!(tids_of("row.sweep").len() >= 2, "row.sweep on one track only");
    assert_eq!(tids_of("sweep.parallel").len(), 1, "one parent span on the calling thread");

    let json = chrome_trace_json(&trace);
    validate_json(&json).unwrap_or_else(|off| {
        panic!(
            "chrome trace is not valid JSON near byte {off}: ...{:?}",
            &json[off.saturating_sub(40)..(off + 40).min(json.len())]
        )
    });

    // The trace-event fields Perfetto keys on.
    for needle in
        ["\"traceEvents\"", "\"ph\":\"X\"", "\"ph\":\"M\"", "\"ts\":", "\"dur\":", "\"tid\":"]
    {
        assert!(json.contains(needle), "trace JSON missing {needle}");
    }
    // Thread-name metadata and the span names the registry promises.
    for needle in ["thread_name", "envelope.fill", "row.sweep", "band.search", "sweep.parallel"] {
        assert!(json.contains(needle), "trace JSON missing {needle}");
    }
}
