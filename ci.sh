#!/usr/bin/env bash
# Local CI gate: build, tests, conformance, formatting, lints. Run before
# every push.
#
#   ./ci.sh            full gate (includes the quick conformance matrix)
#   ./ci.sh soak [N]   extended differential fuzzing: N fresh seeds
#                      (default 20000) through every engine×oracle pair
#   ./ci.sh bench      timing benches: bench_envelope + bench_tiles,
#                      appending dated entries under results/BENCH_*.json,
#                      then a smoke check that the JSON parses with the
#                      expected keys
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "soak" ]]; then
    n="${2:-20000}"
    echo "==> kdv-conformance --soak $n"
    exec cargo run --release -p kdv-conformance -- --soak "$n"
fi

if [[ "${1:-}" == "bench" ]]; then
    echo "==> bench_envelope"
    cargo run --release -p kdv-bench --bin bench_envelope
    echo "==> bench_tiles"
    cargo run --release -p kdv-bench --bin bench_tiles
    echo "==> bench results smoke test"
    cargo test -q --test bench_results
    echo "==> BENCH OK"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> kdv-conformance --quick"
cargo run --release -p kdv-conformance -- --quick

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> CI OK"
