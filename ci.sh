#!/usr/bin/env bash
# Local CI gate: build, tests, formatting, lints. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> CI OK"
