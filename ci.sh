#!/usr/bin/env bash
# Local CI gate: build, tests, conformance, formatting, lints. Run before
# every push.
#
#   ./ci.sh            full gate (includes the quick conformance matrix)
#   ./ci.sh soak [N]   extended differential fuzzing: N fresh seeds
#                      (default 20000) through every engine×oracle pair
#   ./ci.sh bench      timing benches: bench_envelope + bench_tiles,
#                      appending dated entries under results/BENCH_*.json,
#                      then a smoke check that the JSON parses with the
#                      expected keys
#   ./ci.sh obs        observability gate: instrumented sweep + serve
#                      trace replay through the CLI export flags, JSON
#                      well-formedness smoke, and the bench_obs
#                      instrumented-vs-disabled overhead assertion
#   ./ci.sh obs-live   live-observability gate: bench_flight (flight-
#                      recorder ring overhead <= 1.1x with bitwise
#                      responses, injected deadline-shed and SLO-breach
#                      incident dumps, prometheus/snapshot agreement),
#                      the trigger-injection tests, the prometheus
#                      golden-format tests, and a CLI serve replay
#                      through --slo-p99-ms/--incident-dir/--prom-out/
#                      --top
#   ./ci.sh serve-load concurrent serving gate: bench_serve (multi-
#                      session replay, bitwise sequential==concurrent,
#                      zero duplicate band computes, p99 cap, explicit
#                      load-shed under saturation), a v2 trace replay
#                      through the CLI front end, and the serve hammer
#                      tests
#   ./ci.sh coreset    approximate-overview gate: bench_coreset at
#                      n=10^6 (sup-error <= advertised eps, deep zoom
#                      bitwise vs the exact server, >=5x cold overview
#                      speedup, appended to results/BENCH_coreset.json),
#                      the kdv-coreset property suite, the tier-boundary
#                      regression + hammer tests, and the quick
#                      conformance matrix (four coreset pairs included)
#   ./ci.sh stream     streaming ingestion gate: bench_stream (pan trace
#                      under a live append feed, every patched response
#                      bitwise-equal to the cold recompute arm, zero
#                      duplicate band computes, >=5x patch-vs-recompute
#                      speedup, appended to results/BENCH_stream.json),
#                      the kdv-stream unit + property suites, the live
#                      server tests incl. the 8-thread hammer, a live
#                      feed replay through the CLI, and the quick
#                      conformance matrix (three streaming pairs
#                      included)
#   ./ci.sh simd       SIMD dispatch gate: bench_simd (scalar vs f64x4
#                      A/B with the >=2x fill+emit speedup assertion and
#                      bitwise grid equality, appended to
#                      results/BENCH_simd.json), the forced-scalar vs
#                      auto subprocess dispatch tests, the simd unit
#                      suite, and the quick conformance matrix (three
#                      scalar-vs-vector oracle pairs included)
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "soak" ]]; then
    n="${2:-20000}"
    echo "==> kdv-conformance --soak $n"
    exec cargo run --release -p kdv-conformance -- --soak "$n"
fi

if [[ "${1:-}" == "bench" ]]; then
    echo "==> bench_envelope"
    cargo run --release -p kdv-bench --bin bench_envelope
    echo "==> bench_tiles"
    cargo run --release -p kdv-bench --bin bench_tiles
    echo "==> bench results smoke test"
    cargo test -q --test bench_results
    echo "==> BENCH OK"
    exit 0
fi

if [[ "${1:-}" == "obs" ]]; then
    echo "==> bench_obs (bitwise + overhead-ratio assertions)"
    cargo run --release -p kdv-bench --bin bench_obs
    echo "==> instrumented sweep + serve replay through the CLI flags"
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    cargo run --release -p kdv-cli -- generate --city seattle --scale 0.02 --out "$tmp/city.csv"
    cargo run --release -p kdv-cli -- render --input "$tmp/city.csv" --res 256x192 \
        --threads 4 --stats --out "$tmp/kdv.ppm" \
        --trace-out "$tmp/render_trace.json" --metrics-out "$tmp/render_metrics.json"
    printf '0 0 0 128 128\n1 10 10 128 128\n1 20 10 128 128\n0 0 0 128 128\n' > "$tmp/pan.txt"
    cargo run --release -p kdv-cli -- serve --input "$tmp/city.csv" --batch "$tmp/pan.txt" \
        --tile-size 64 --base-res 128x128 --max-zoom 2 --threads 2 --stats \
        --trace-out "$tmp/serve_trace.json" --metrics-out "$tmp/serve_metrics.json"
    for f in render_trace render_metrics serve_trace serve_metrics; do
        [[ -s "$tmp/$f.json" ]] || { echo "missing export $f.json" >&2; exit 1; }
    done
    echo "==> exported JSON well-formedness + schema smoke"
    cargo test -q --test obs_trace --test bench_results
    cargo test -q -p kdv-obs
    cargo test -q -p kdv-core --test obs_properties
    echo "==> OBS OK"
    exit 0
fi

if [[ "${1:-}" == "obs-live" ]]; then
    echo "==> bench_flight (ring overhead, trigger injection, prometheus agreement)"
    cargo run --release -p kdv-bench --bin bench_flight
    echo "==> trigger-injection tests (incident dumps)"
    cargo test -q -p kdv-serve --test incidents
    echo "==> prometheus golden-format + parser tests"
    cargo test -q -p kdv-obs prometheus
    echo "==> CLI serve replay through the telemetry flags"
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    cargo run --release -p kdv-cli -- generate --city seattle --scale 0.02 --out "$tmp/city.csv"
    printf '0 0 0 128 128\n1 10 10 128 128\n1 20 10 128 128\n0 0 0 128 128\n' > "$tmp/pan.txt"
    out="$(cargo run --release -p kdv-cli -- serve --input "$tmp/city.csv" --batch "$tmp/pan.txt" \
        --tile-size 64 --base-res 128x128 --max-zoom 2 --threads 2 \
        --slo-p99-ms 250 --incident-dir "$tmp/incidents" --prom-out "$tmp/prom.txt" --top)"
    echo "$out" | tail -4
    echo "$out" | grep -q "^\[top\] qps " \
        || { echo "missing [top] stats line" >&2; exit 1; }
    grep -q "^# TYPE kdv_" "$tmp/prom.txt" \
        || { echo "prometheus export missing or malformed" >&2; exit 1; }
    echo "==> bench results smoke test (incl. trajectory guard)"
    cargo test -q --test bench_results
    echo "==> OBS-LIVE OK"
    exit 0
fi

if [[ "${1:-}" == "coreset" ]]; then
    echo "==> bench_coreset at n=10^6 (eps-certificate, deep-zoom-bitwise, >=5x speedup gates)"
    cargo run --release -p kdv-bench --bin bench_coreset -- --scale 0.5
    echo "==> coreset unit + property suites"
    cargo test -q -p kdv-coreset
    echo "==> tier boundary regression + hammer"
    cargo test -q -p kdv-serve --test tier_boundary
    echo "==> quick conformance matrix (includes the four coreset pairs)"
    cargo run --release -p kdv-conformance -- --quick
    echo "==> bench results smoke test"
    cargo test -q --test bench_results
    echo "==> CORESET OK"
    exit 0
fi

if [[ "${1:-}" == "simd" ]]; then
    echo "==> bench_simd (bitwise + >=2x fill+emit speedup assertions)"
    cargo run --release -p kdv-bench --bin bench_simd -- --scale 0.001 --res 1280x960
    echo "==> forced-scalar vs auto dispatch subprocess tests"
    cargo test -q --test simd_dispatch
    echo "==> simd unit suite (lanes, clamp, bitwise emit/fill pairs)"
    cargo test -q -p kdv-core --lib simd
    echo "==> quick conformance matrix (includes scalar-vs-vector pairs)"
    cargo run --release -p kdv-conformance -- --quick
    echo "==> bench results smoke test"
    cargo test -q --test bench_results
    echo "==> SIMD OK"
    exit 0
fi

if [[ "${1:-}" == "stream" ]]; then
    echo "==> bench_stream (bitwise patch-vs-recompute, zero-duplicate, >=5x speedup gates)"
    cargo run --release -p kdv-bench --bin bench_stream
    echo "==> kdv-stream unit + property suites"
    cargo test -q -p kdv-stream
    echo "==> live server tests (patch/rebuild equality, counters, 8-thread hammer)"
    cargo test -q -p kdv-serve
    echo "==> live feed replay through the CLI"
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    cargo run --release -p kdv-cli -- generate --city seattle --scale 0.05 --out "$tmp/city.csv"
    out="$(cargo run --release -p kdv-cli -- serve --input "$tmp/city.csv" \
        --live traces/live_feed.trace --max-zoom 2 --cache-mb 128 --threads 2 --stats)"
    echo "$out" | tail -2
    echo "$out" | grep -Eq "bands: [1-9][0-9]* patched" \
        || { echo "live CLI replay never patched a band" >&2; exit 1; }
    echo "==> quick conformance matrix (includes the three streaming pairs)"
    cargo run --release -p kdv-conformance -- --quick
    echo "==> bench results smoke test"
    cargo test -q --test bench_results
    echo "==> STREAM OK"
    exit 0
fi

if [[ "${1:-}" == "serve-load" ]]; then
    echo "==> bench_serve (bitwise, zero-duplicate-band, p99 and load-shed assertions)"
    cargo run --release -p kdv-bench --bin bench_serve
    echo "==> v2 multi-session trace replay through the CLI front end"
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    cargo run --release -p kdv-cli -- generate --city seattle --scale 0.05 --out "$tmp/city.csv"
    out="$(cargo run --release -p kdv-cli -- serve --input "$tmp/city.csv" \
        --batch traces/pan_sessions.trace --max-zoom 2 --cache-mb 128 \
        --workers 4 --queue-depth 64 --stats)"
    echo "$out" | tail -4
    echo "$out" | grep -q ", 0 duplicate compute(s)" \
        || { echo "duplicate band computes in CLI replay" >&2; exit 1; }
    echo "$out" | grep -q ", 0 shed (0 queue-full, 0 deadline)" \
        || { echo "unexpected load shedding in unsaturated CLI replay" >&2; exit 1; }
    echo "==> serve hammer + front-end tests"
    cargo test -q -p kdv-serve
    cargo test -q --test bench_results
    echo "==> SERVE-LOAD OK"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> kdv-conformance --quick"
cargo run --release -p kdv-conformance -- --quick

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> CI OK"
