#!/usr/bin/env bash
# Local CI gate: build, tests, conformance, formatting, lints. Run before
# every push.
#
#   ./ci.sh            full gate (includes the quick conformance matrix)
#   ./ci.sh soak [N]   extended differential fuzzing: N fresh seeds
#                      (default 20000) through every engine×oracle pair
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "soak" ]]; then
    n="${2:-20000}"
    echo "==> kdv-conformance --soak $n"
    exec cargo run --release -p kdv-conformance -- --soak "$n"
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> kdv-conformance --quick"
cargo run --release -p kdv-conformance -- --quick

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> CI OK"
