//! # kdv-analysis — analysis on top of KDV rasters
//!
//! The paper's motivation is hotspot *detection*; this crate provides the
//! downstream analysis a KDV consumer runs once the raster exists, plus
//! the first of the paper's future-work GIS operations:
//!
//! * [`hotspot`] — threshold + connected-component hotspot extraction
//!   with per-region summaries (mass, peak, centroid, area).
//! * [`contour`] — marching-squares iso-density contours (hotspot
//!   boundary polylines).
//! * [`metrics`] — raster difference metrics (L∞/RMSE/MAE) and
//!   hotspot-mask Jaccard overlap, used to grade the approximate methods.
//! * [`kfunction`] — Ripley's K-function (naive and kd-tree-accelerated),
//!   the "other GIS operation" the paper's conclusion names first.

pub mod contour;
pub mod hotspot;
pub mod kfunction;
pub mod metrics;

pub use contour::{contour_segments, contours, Contour};
pub use hotspot::{extract_hotspots, hotspots_by_peak_fraction, Hotspot};
pub use kfunction::{k_function, k_function_naive, KFunction};
pub use metrics::{grid_diff, hotspot_jaccard, GridDiff};
