//! Ripley's K-function (Baddeley et al. 2015) — listed by the paper as
//! the next GIS operation to accelerate.
//!
//! For a point process observed in a window of area `A`,
//!
//! ```text
//! K(r) = A / n² · Σ_i |{ j ≠ i : dist(p_i, p_j) ≤ r }|
//! ```
//!
//! estimates the expected number of neighbours within `r` of a typical
//! point, normalised by intensity. Complete spatial randomness gives
//! `K(r) = πr²`; values above indicate clustering (hotspots). We provide
//! the naive `O(n²)` estimator and a kd-tree-accelerated one, evaluated at
//! many radii in one pass by sorting each point's neighbour distances.

use kdv_core::geom::{Point, Rect};
use kdv_index::KdTree;

/// K-function estimates at a set of radii.
#[derive(Debug, Clone, PartialEq)]
pub struct KFunction {
    /// Radii `r` at which `K` was evaluated (ascending).
    pub radii: Vec<f64>,
    /// `K(r)` estimates, one per radius.
    pub k_values: Vec<f64>,
}

impl KFunction {
    /// `L(r) − r = sqrt(K(r)/π) − r`: the variance-stabilised transform;
    /// positive values indicate clustering at that scale.
    pub fn l_minus_r(&self) -> Vec<f64> {
        self.radii
            .iter()
            .zip(&self.k_values)
            .map(|(&r, &k)| (k / std::f64::consts::PI).sqrt() - r)
            .collect()
    }
}

fn validate(radii: &[f64]) {
    assert!(!radii.is_empty(), "at least one radius");
    assert!(radii.windows(2).all(|w| w[0] <= w[1]), "radii must be ascending");
    assert!(radii.iter().all(|r| *r >= 0.0 && r.is_finite()));
}

/// Naive `O(n²)` estimator (no edge correction), the correctness baseline.
pub fn k_function_naive(points: &[Point], window: Rect, radii: &[f64]) -> KFunction {
    validate(radii);
    let n = points.len();
    let area = window.width() * window.height();
    let mut counts = vec![0u64; radii.len()];
    for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            let d = p.dist(q);
            // count into every radius ≥ d
            for (ri, &r) in radii.iter().enumerate() {
                if d <= r {
                    counts[ri] += 1;
                }
            }
        }
    }
    finish(counts, n, area, radii)
}

/// kd-tree-accelerated estimator: one range query of the largest radius
/// per point, then a sort of that point's neighbour distances to bin all
/// radii at once. `O(n·(log n + k log k))` for `k` neighbours in range.
pub fn k_function(points: &[Point], window: Rect, radii: &[f64]) -> KFunction {
    validate(radii);
    let n = points.len();
    let area = window.width() * window.height();
    let r_max = *radii.last().unwrap();
    let tree = KdTree::build(points);
    let mut counts = vec![0u64; radii.len()];
    let mut dists: Vec<f64> = Vec::new();
    for p in points {
        dists.clear();
        tree.for_each_in_range(p, r_max, |q| {
            let d2 = p.dist_sq(q);
            if d2 > 0.0 {
                dists.push(d2.sqrt());
            }
        });
        // self-point excluded via d2 > 0; coincident other points at d = 0
        // are also dropped by both estimators? No — the naive version keeps
        // j ≠ i duplicates at distance 0. Track them separately:
        let dup_zeros = tree.count_in_range(p, 0.0) - 1;
        dists.sort_unstable_by(f64::total_cmp);
        let mut idx = 0usize;
        for (ri, &r) in radii.iter().enumerate() {
            while idx < dists.len() && dists[idx] <= r {
                idx += 1;
            }
            counts[ri] += idx as u64 + dup_zeros as u64;
        }
    }
    finish(counts, n, area, radii)
}

fn finish(counts: Vec<u64>, n: usize, area: f64, radii: &[f64]) -> KFunction {
    let norm = if n >= 2 { area / (n as f64 * n as f64) } else { 0.0 };
    KFunction {
        radii: radii.to_vec(),
        k_values: counts.into_iter().map(|c| c as f64 * norm).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 100.0)
    }

    fn scattered(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::new(next() * 100.0, next() * 100.0)).collect()
    }

    #[test]
    fn fast_matches_naive() {
        let pts = scattered(300, 17);
        let radii = [1.0, 5.0, 10.0, 25.0, 60.0];
        let naive = k_function_naive(&pts, window(), &radii);
        let fast = k_function(&pts, window(), &radii);
        for (a, b) in naive.k_values.iter().zip(&fast.k_values) {
            assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn fast_matches_naive_with_duplicates() {
        let mut pts = scattered(100, 3);
        // duplicate a handful of points exactly
        for i in 0..10 {
            let p = pts[i];
            pts.push(p);
        }
        let radii = [0.5, 2.0, 8.0];
        let naive = k_function_naive(&pts, window(), &radii);
        let fast = k_function(&pts, window(), &radii);
        for (a, b) in naive.k_values.iter().zip(&fast.k_values) {
            assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    /// On (pseudo)uniform data, K(r) ≈ πr² away from the window edges.
    #[test]
    fn csr_baseline_shape() {
        let pts = scattered(3_000, 99);
        let radii = [2.0, 5.0, 10.0];
        let k = k_function(&pts, window(), &radii);
        for (&r, &kv) in radii.iter().zip(&k.k_values) {
            let expect = std::f64::consts::PI * r * r;
            // no edge correction → slight downward bias; allow 25%
            let rel = (kv - expect).abs() / expect;
            assert!(rel < 0.25, "r={r}: K={kv} vs πr²={expect}");
        }
    }

    /// A tight cluster shows strong clustering: K far above πr² and
    /// L(r) − r > 0.
    #[test]
    fn clustered_data_exceeds_csr() {
        let mut pts = Vec::new();
        let mut state = 5u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..500 {
            pts.push(Point::new(50.0 + next() * 2.0, 50.0 + next() * 2.0));
        }
        let radii = [5.0];
        let k = k_function(&pts, window(), &radii);
        assert!(k.k_values[0] > 10.0 * std::f64::consts::PI * 25.0);
        assert!(k.l_minus_r()[0] > 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        let k = k_function(&[], window(), &[1.0]);
        assert_eq!(k.k_values, vec![0.0]);
        let k = k_function(&[Point::new(1.0, 1.0)], window(), &[1.0]);
        assert_eq!(k.k_values, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_radii_rejected() {
        let _ = k_function(&scattered(10, 1), window(), &[5.0, 1.0]);
    }
}
