//! Hotspot extraction from density rasters.
//!
//! KDV's downstream task is hotspot *detection*: planners want the regions
//! where density exceeds a threshold, not the raw raster. This module
//! thresholds a [`DensityGrid`] and extracts 4-connected components, each
//! summarised by pixel count, area, density mass, peak value and
//! density-weighted centroid — the quantities a patrol-planning or
//! outbreak-triage tool consumes.

use kdv_core::geom::Point;
use kdv_core::grid::{DensityGrid, GridSpec};

/// One connected hotspot region.
#[derive(Debug, Clone, PartialEq)]
pub struct Hotspot {
    /// Number of pixels in the component.
    pub pixels: usize,
    /// Geographic area (pixels × pixel area).
    pub area: f64,
    /// Sum of density over the component.
    pub mass: f64,
    /// Peak density inside the component.
    pub peak: f64,
    /// Pixel coordinates of the peak.
    pub peak_pixel: (usize, usize),
    /// Density-weighted centroid in geographic coordinates.
    pub centroid: Point,
}

/// Extracts all hotspots with density `≥ threshold`, sorted by descending
/// mass. Components are 4-connected.
///
/// ```
/// use kdv_analysis::extract_hotspots;
/// use kdv_core::{DensityGrid, GridSpec, Rect};
///
/// let spec = GridSpec::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8)?;
/// let mut grid = DensityGrid::zeroed(8, 8);
/// grid.set(2, 2, 5.0);
/// grid.set(6, 6, 3.0);
/// let hotspots = extract_hotspots(&grid, &spec, 1.0);
/// assert_eq!(hotspots.len(), 2);
/// assert_eq!(hotspots[0].peak, 5.0); // ranked by mass
/// # Ok::<(), kdv_core::KdvError>(())
/// ```
pub fn extract_hotspots(grid: &DensityGrid, spec: &GridSpec, threshold: f64) -> Vec<Hotspot> {
    let (w, h) = (grid.res_x(), grid.res_y());
    debug_assert_eq!((spec.res_x, spec.res_y), (w, h), "grid/spec mismatch");
    let mut visited = vec![false; w * h];
    let mut hotspots = Vec::new();
    let pixel_area = spec.gap_x() * spec.gap_y();
    let mut stack: Vec<(usize, usize)> = Vec::new();

    for j in 0..h {
        for i in 0..w {
            if visited[j * w + i] || grid.get(i, j) < threshold {
                continue;
            }
            // flood fill one component
            let mut hs = Hotspot {
                pixels: 0,
                area: 0.0,
                mass: 0.0,
                peak: f64::MIN,
                peak_pixel: (i, j),
                centroid: Point::new(0.0, 0.0),
            };
            let (mut cx, mut cy) = (0.0_f64, 0.0_f64);
            stack.push((i, j));
            visited[j * w + i] = true;
            while let Some((x, y)) = stack.pop() {
                let v = grid.get(x, y);
                hs.pixels += 1;
                hs.mass += v;
                if v > hs.peak {
                    hs.peak = v;
                    hs.peak_pixel = (x, y);
                }
                let c = spec.pixel_center(x, y);
                cx += v * c.x;
                cy += v * c.y;
                let mut push = |nx: usize, ny: usize| {
                    if !visited[ny * w + nx] && grid.get(nx, ny) >= threshold {
                        visited[ny * w + nx] = true;
                        stack.push((nx, ny));
                    }
                };
                if x > 0 {
                    push(x - 1, y);
                }
                if x + 1 < w {
                    push(x + 1, y);
                }
                if y > 0 {
                    push(x, y - 1);
                }
                if y + 1 < h {
                    push(x, y + 1);
                }
            }
            hs.area = hs.pixels as f64 * pixel_area;
            hs.centroid = if hs.mass > 0.0 {
                Point::new(cx / hs.mass, cy / hs.mass)
            } else {
                spec.pixel_center(hs.peak_pixel.0, hs.peak_pixel.1)
            };
            hotspots.push(hs);
        }
    }
    hotspots.sort_by(|a, b| b.mass.total_cmp(&a.mass));
    hotspots
}

/// Convenience: threshold at `fraction` of the raster's peak density
/// (`0 < fraction ≤ 1`), the common "top X% of the peak" hotspot rule.
pub fn hotspots_by_peak_fraction(
    grid: &DensityGrid,
    spec: &GridSpec,
    fraction: f64,
) -> Vec<Hotspot> {
    let threshold = grid.max_value() * fraction.clamp(0.0, 1.0);
    if threshold <= 0.0 {
        return Vec::new();
    }
    extract_hotspots(grid, spec, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::geom::Rect;

    fn spec(w: usize, h: usize) -> GridSpec {
        GridSpec::new(Rect::new(0.0, 0.0, w as f64, h as f64), w, h).unwrap()
    }

    /// Two separated blobs must come back as two components with the
    /// heavier one first.
    #[test]
    fn two_blobs() {
        let s = spec(10, 8);
        let mut g = DensityGrid::zeroed(10, 8);
        // blob A: 2x2 at (1..2, 1..2), values 2.0
        for j in 1..3 {
            for i in 1..3 {
                g.set(i, j, 2.0);
            }
        }
        // blob B: single pixel at (7, 6), value 9.0
        g.set(7, 6, 9.0);
        let hs = extract_hotspots(&g, &s, 1.0);
        assert_eq!(hs.len(), 2);
        // B has mass 9, A has mass 8 → B first
        assert_eq!(hs[0].pixels, 1);
        assert_eq!(hs[0].peak, 9.0);
        assert_eq!(hs[0].peak_pixel, (7, 6));
        assert_eq!(hs[1].pixels, 4);
        assert!((hs[1].mass - 8.0).abs() < 1e-12);
        // A's centroid is the centre of the 2x2 block: pixels (1,1)..(2,2)
        // have centres 1.5..2.5 → centroid (2.0, 2.0)
        assert!((hs[1].centroid.x - 2.0).abs() < 1e-12);
        assert!((hs[1].centroid.y - 2.0).abs() < 1e-12);
    }

    /// Diagonal pixels are NOT connected (4-connectivity).
    #[test]
    fn diagonal_not_connected() {
        let s = spec(4, 4);
        let mut g = DensityGrid::zeroed(4, 4);
        g.set(1, 1, 1.0);
        g.set(2, 2, 1.0);
        let hs = extract_hotspots(&g, &s, 0.5);
        assert_eq!(hs.len(), 2);
    }

    #[test]
    fn threshold_is_inclusive() {
        let s = spec(3, 3);
        let mut g = DensityGrid::zeroed(3, 3);
        g.set(1, 1, 1.0);
        assert_eq!(extract_hotspots(&g, &s, 1.0).len(), 1);
        assert_eq!(extract_hotspots(&g, &s, 1.0001).len(), 0);
    }

    #[test]
    fn empty_grid_no_hotspots() {
        let s = spec(5, 5);
        let g = DensityGrid::zeroed(5, 5);
        assert!(extract_hotspots(&g, &s, 0.1).is_empty());
        assert!(hotspots_by_peak_fraction(&g, &s, 0.5).is_empty());
    }

    #[test]
    fn whole_grid_one_component() {
        let s = spec(6, 4);
        let g = DensityGrid::from_values(6, 4, vec![1.0; 24]);
        let hs = extract_hotspots(&g, &s, 0.5);
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].pixels, 24);
        assert!((hs[0].area - 24.0).abs() < 1e-12);
        // uniform density → centroid at the region centre
        assert!((hs[0].centroid.x - 3.0).abs() < 1e-12);
        assert!((hs[0].centroid.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn peak_fraction_rule() {
        let s = spec(5, 1);
        let g = DensityGrid::from_values(5, 1, vec![0.1, 0.2, 1.0, 0.6, 0.05]);
        // threshold = 0.5 → pixels 2 and 3 form one component
        let hs = hotspots_by_peak_fraction(&g, &s, 0.5);
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].pixels, 2);
    }
}
