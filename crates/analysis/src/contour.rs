//! Iso-density contour extraction (marching squares).
//!
//! GIS tools draw hotspot *boundaries* as iso-density contours on top of
//! the heat map. This module runs marching squares over a
//! [`DensityGrid`]: for a threshold `t`, every grid cell (quad of four
//! adjacent pixel centres) is classified by which corners are ≥ `t`, and
//! the crossing segments are emitted with linear interpolation along the
//! cell edges. Segments are then stitched into polylines (closed rings
//! for interior contours, open chains where a contour exits the raster).

use kdv_core::geom::Point;
use kdv_core::grid::{DensityGrid, GridSpec};

/// A contour polyline; `closed` is true when the line forms a ring.
#[derive(Debug, Clone, PartialEq)]
pub struct Contour {
    /// Polyline vertices in geographic coordinates.
    pub points: Vec<Point>,
    /// Whether the polyline closes back onto its first vertex.
    pub closed: bool,
}

impl Contour {
    /// Total polyline length.
    pub fn length(&self) -> f64 {
        let mut len = 0.0;
        for w in self.points.windows(2) {
            len += w[0].dist(&w[1]);
        }
        if self.closed && self.points.len() > 1 {
            len += self.points[self.points.len() - 1].dist(&self.points[0]);
        }
        len
    }
}

/// Linear interpolation parameter of the threshold crossing between two
/// corner values (`va` at 0, `vb` at 1). Assumes `va` and `vb` straddle
/// `t`; clamps for robustness at near-equal values.
#[inline]
fn cross(va: f64, vb: f64, t: f64) -> f64 {
    let d = vb - va;
    if d.abs() < 1e-300 {
        0.5
    } else {
        ((t - va) / d).clamp(0.0, 1.0)
    }
}

/// Extracts iso-density segments at `threshold` (inclusive side: a corner
/// with `v ≥ t` is "inside"). Returns raw, unstitched segments.
pub fn contour_segments(
    grid: &DensityGrid,
    spec: &GridSpec,
    threshold: f64,
) -> Vec<(Point, Point)> {
    let (w, h) = (grid.res_x(), grid.res_y());
    let mut segments = Vec::new();
    if w < 2 || h < 2 {
        return segments;
    }
    for j in 0..h - 1 {
        for i in 0..w - 1 {
            // corner values, CCW from bottom-left (pixel centres)
            let v =
                [grid.get(i, j), grid.get(i + 1, j), grid.get(i + 1, j + 1), grid.get(i, j + 1)];
            let inside =
                [v[0] >= threshold, v[1] >= threshold, v[2] >= threshold, v[3] >= threshold];
            let case = (inside[0] as u8)
                | (inside[1] as u8) << 1
                | (inside[2] as u8) << 2
                | (inside[3] as u8) << 3;
            if case == 0 || case == 15 {
                continue;
            }
            // corner coordinates
            let (x0, y0) = (spec.pixel_x(i), spec.pixel_y(j));
            let (x1, y1) = (spec.pixel_x(i + 1), spec.pixel_y(j + 1));
            // edge crossing points (bottom, right, top, left)
            let bottom = || Point::new(x0 + cross(v[0], v[1], threshold) * (x1 - x0), y0);
            let right = || Point::new(x1, y0 + cross(v[1], v[2], threshold) * (y1 - y0));
            let top = || Point::new(x0 + cross(v[3], v[2], threshold) * (x1 - x0), y1);
            let left = || Point::new(x0, y0 + cross(v[0], v[3], threshold) * (y1 - y0));
            // marching-squares case table (ambiguous saddles split by the
            // cell-centre average, the standard disambiguation)
            match case {
                1 => segments.push((left(), bottom())),
                2 => segments.push((bottom(), right())),
                3 => segments.push((left(), right())),
                4 => segments.push((right(), top())),
                5 => {
                    let avg = (v[0] + v[1] + v[2] + v[3]) * 0.25;
                    if avg >= threshold {
                        segments.push((left(), top()));
                        segments.push((bottom(), right()));
                    } else {
                        segments.push((left(), bottom()));
                        segments.push((right(), top()));
                    }
                }
                6 => segments.push((bottom(), top())),
                7 => segments.push((left(), top())),
                8 => segments.push((top(), left())),
                9 => segments.push((top(), bottom())),
                10 => {
                    let avg = (v[0] + v[1] + v[2] + v[3]) * 0.25;
                    if avg >= threshold {
                        segments.push((top(), right()));
                        segments.push((bottom(), left()));
                    } else {
                        segments.push((top(), left()));
                        segments.push((bottom(), right()));
                    }
                }
                11 => segments.push((top(), right())),
                12 => segments.push((right(), left())),
                13 => segments.push((right(), bottom())),
                14 => segments.push((bottom(), left())),
                _ => unreachable!(),
            }
        }
    }
    segments
}

/// Extracts contours at `threshold`, stitched into polylines.
pub fn contours(grid: &DensityGrid, spec: &GridSpec, threshold: f64) -> Vec<Contour> {
    let segments = contour_segments(grid, spec, threshold);
    stitch(segments)
}

/// Quantised endpoint key for stitching (contour endpoints are computed
/// identically from both adjacent cells, so exact bit-level matches are
/// expected; quantisation adds robustness at no cost).
fn key(p: &Point) -> (i64, i64) {
    ((p.x * 1e7).round() as i64, (p.y * 1e7).round() as i64)
}

/// Stitches segments into polylines by walking endpoint adjacency.
fn stitch(segments: Vec<(Point, Point)>) -> Vec<Contour> {
    use std::collections::HashMap;
    let n = segments.len();
    let mut adjacency: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
    for (idx, (a, b)) in segments.iter().enumerate() {
        adjacency.entry(key(a)).or_default().push(idx);
        adjacency.entry(key(b)).or_default().push(idx);
    }
    let mut used = vec![false; n];
    let mut out = Vec::new();

    for start in 0..n {
        if used[start] {
            continue;
        }
        used[start] = true;
        let (a, b) = segments[start];
        let mut chain = vec![a, b];
        // extend forward from the tail, then backward from the head
        for end in [true, false] {
            loop {
                let tip = if end { *chain.last().unwrap() } else { chain[0] };
                let Some(cands) = adjacency.get(&key(&tip)) else { break };
                let mut advanced = false;
                for &idx in cands {
                    if used[idx] {
                        continue;
                    }
                    let (sa, sb) = segments[idx];
                    let next = if key(&sa) == key(&tip) {
                        sb
                    } else if key(&sb) == key(&tip) {
                        sa
                    } else {
                        continue;
                    };
                    used[idx] = true;
                    if end {
                        chain.push(next);
                    } else {
                        chain.insert(0, next);
                    }
                    advanced = true;
                    break;
                }
                if !advanced {
                    break;
                }
            }
        }
        let closed = chain.len() > 2 && key(&chain[0]) == key(chain.last().unwrap());
        if closed {
            chain.pop();
        }
        out.push(Contour { points: chain, closed });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::geom::Rect;

    fn spec(w: usize, h: usize) -> GridSpec {
        GridSpec::new(Rect::new(0.0, 0.0, w as f64, h as f64), w, h).unwrap()
    }

    /// A single hot pixel in the middle yields one closed ring around it.
    #[test]
    fn single_peak_closed_ring() {
        let s = spec(5, 5);
        let mut g = DensityGrid::zeroed(5, 5);
        g.set(2, 2, 1.0);
        let cs = contours(&g, &s, 0.5);
        assert_eq!(cs.len(), 1);
        assert!(cs[0].closed, "interior contour must close");
        assert_eq!(cs[0].points.len(), 4, "diamond around the peak");
        // ring length: diamond with vertices at half-gap crossings
        assert!(cs[0].length() > 0.0);
        // all vertices within one pixel of the peak centre (2.5, 2.5)
        for p in &cs[0].points {
            assert!(p.dist(&Point::new(2.5, 2.5)) < 1.5);
        }
    }

    /// A vertical density step produces one open contour spanning the rows.
    #[test]
    fn step_open_contour() {
        let s = spec(6, 4);
        let mut g = DensityGrid::zeroed(6, 4);
        for j in 0..4 {
            for i in 3..6 {
                g.set(i, j, 1.0);
            }
        }
        let cs = contours(&g, &s, 0.5);
        assert_eq!(cs.len(), 1);
        assert!(!cs[0].closed, "contour exits the raster top/bottom");
        // crossing sits halfway between columns 2 and 3 → x = 3.0
        // (pixel centres 2.5 and 3.5)
        for p in &cs[0].points {
            assert!((p.x - 3.0).abs() < 1e-9, "x = {}", p.x);
        }
        // spans from the first to the last row of cell corners
        let ys: Vec<f64> = cs[0].points.iter().map(|p| p.y).collect();
        assert!((ys.iter().cloned().fold(f64::MAX, f64::min) - 0.5).abs() < 1e-9);
        assert!((ys.iter().cloned().fold(f64::MIN, f64::max) - 3.5).abs() < 1e-9);
    }

    /// Interpolation lands proportionally between corner values.
    #[test]
    fn interpolation_position() {
        let s = spec(2, 2);
        let mut g = DensityGrid::zeroed(2, 2);
        // left column 0, right column 1.0 → crossing at t of the gap
        g.set(1, 0, 1.0);
        g.set(1, 1, 1.0);
        let cs = contour_segments(&g, &s, 0.25);
        assert_eq!(cs.len(), 1);
        // pixel centres x = 0.5 and 1.5; crossing at 0.5 + 0.25·1 = 0.75
        assert!((cs[0].0.x - 0.75).abs() < 1e-9);
        assert!((cs[0].1.x - 0.75).abs() < 1e-9);
    }

    /// Two separated peaks → two disjoint rings.
    #[test]
    fn two_peaks_two_rings() {
        let s = spec(9, 5);
        let mut g = DensityGrid::zeroed(9, 5);
        g.set(2, 2, 1.0);
        g.set(6, 2, 1.0);
        let cs = contours(&g, &s, 0.5);
        assert_eq!(cs.len(), 2);
        assert!(cs.iter().all(|c| c.closed));
    }

    /// Saddle cells (case 5/10) must not crash and produce consistent
    /// segment counts.
    #[test]
    fn saddle_cases() {
        let s = spec(2, 2);
        let mut g = DensityGrid::zeroed(2, 2);
        g.set(0, 0, 1.0);
        g.set(1, 1, 1.0); // case 5 within the single cell
        let segs = contour_segments(&g, &s, 0.5);
        assert_eq!(segs.len(), 2, "saddle emits two segments");
    }

    #[test]
    fn empty_and_degenerate() {
        let s = spec(5, 5);
        let g = DensityGrid::zeroed(5, 5);
        assert!(contours(&g, &s, 0.5).is_empty());
        // uniform grid entirely above threshold: no crossings
        let g = DensityGrid::from_values(5, 5, vec![2.0; 25]);
        assert!(contours(&g, &s, 0.5).is_empty());
        // 1-row raster cannot host cells
        let s1 = GridSpec::new(Rect::new(0.0, 0.0, 5.0, 1.0), 5, 1).unwrap();
        let g1 = DensityGrid::from_values(5, 1, vec![0.0, 1.0, 0.0, 1.0, 0.0]);
        assert!(contour_segments(&g1, &s1, 0.5).is_empty());
    }
}
