//! Raster comparison metrics.
//!
//! Used to quantify how far an approximate method (Z-order, aKDE) strays
//! from the exact raster, and to report exactness in the experiment logs.

use kdv_core::grid::DensityGrid;

/// Summary of the pointwise differences between two rasters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridDiff {
    /// Maximum absolute difference (`L∞`).
    pub max_abs: f64,
    /// Root-mean-square difference.
    pub rmse: f64,
    /// Mean absolute difference.
    pub mae: f64,
    /// `max_abs` normalised by the reference raster's peak.
    pub max_rel_to_peak: f64,
}

/// Computes difference metrics of `got` against `reference`.
///
/// # Panics
/// Panics if the rasters have different resolutions.
pub fn grid_diff(got: &DensityGrid, reference: &DensityGrid) -> GridDiff {
    assert_eq!(
        (got.res_x(), got.res_y()),
        (reference.res_x(), reference.res_y()),
        "raster resolution mismatch"
    );
    let n = got.values().len().max(1) as f64;
    let mut max_abs = 0.0_f64;
    let mut sum_sq = 0.0_f64;
    let mut sum_abs = 0.0_f64;
    for (a, b) in got.values().iter().zip(reference.values()) {
        let d = (a - b).abs();
        max_abs = max_abs.max(d);
        sum_sq += d * d;
        sum_abs += d;
    }
    let peak = reference.max_value().max(1e-300);
    GridDiff {
        max_abs,
        rmse: (sum_sq / n).sqrt(),
        mae: sum_abs / n,
        max_rel_to_peak: max_abs / peak,
    }
}

/// Jaccard overlap of the two rasters' hotspot masks at `threshold`
/// (|A ∩ B| / |A ∪ B|, 1.0 when both masks are empty). Measures whether an
/// approximation preserves *where* the hotspots are, which for KDV matters
/// more than pointwise error.
pub fn hotspot_jaccard(a: &DensityGrid, b: &DensityGrid, threshold: f64) -> f64 {
    assert_eq!((a.res_x(), a.res_y()), (b.res_x(), b.res_y()));
    let mut inter = 0usize;
    let mut union = 0usize;
    for (x, y) in a.values().iter().zip(b.values()) {
        let (ha, hb) = (*x >= threshold, *y >= threshold);
        if ha && hb {
            inter += 1;
        }
        if ha || hb {
            union += 1;
        }
    }
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(vals: &[f64]) -> DensityGrid {
        DensityGrid::from_values(vals.len(), 1, vals.to_vec())
    }

    #[test]
    fn identical_grids_zero_diff() {
        let g = grid(&[1.0, 2.0, 3.0]);
        let d = grid_diff(&g, &g);
        assert_eq!(d.max_abs, 0.0);
        assert_eq!(d.rmse, 0.0);
        assert_eq!(d.mae, 0.0);
        assert_eq!(d.max_rel_to_peak, 0.0);
    }

    #[test]
    fn known_differences() {
        let a = grid(&[1.0, 2.0, 3.0, 4.0]);
        let b = grid(&[1.0, 2.0, 3.0, 2.0]); // one diff of 2
        let d = grid_diff(&a, &b);
        assert_eq!(d.max_abs, 2.0);
        assert!((d.mae - 0.5).abs() < 1e-12);
        assert!((d.rmse - 1.0).abs() < 1e-12);
        assert!((d.max_rel_to_peak - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_resolutions_panic() {
        let _ = grid_diff(&grid(&[1.0]), &grid(&[1.0, 2.0]));
    }

    #[test]
    fn jaccard_cases() {
        let a = grid(&[1.0, 0.0, 1.0, 1.0]);
        let b = grid(&[1.0, 1.0, 0.0, 1.0]);
        // masks at 0.5: A = {0,2,3}, B = {0,1,3}: inter 2, union 4
        assert!((hotspot_jaccard(&a, &b, 0.5) - 0.5).abs() < 1e-12);
        // empty masks
        assert_eq!(hotspot_jaccard(&a, &b, 10.0), 1.0);
        // identical masks
        assert_eq!(hotspot_jaccard(&a, &a, 0.5), 1.0);
    }
}
