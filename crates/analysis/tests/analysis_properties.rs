//! Integration tests for the analysis crate on hand-built synthetic grids
//! whose hotspots, contours, and diff metrics are known in closed form —
//! plus agreement checks between the accelerated and naive K-function
//! estimators on deterministic point sets.

use kdv_analysis::{
    contour_segments, contours, extract_hotspots, grid_diff, hotspot_jaccard,
    hotspots_by_peak_fraction, k_function, k_function_naive,
};
use kdv_core::{DensityGrid, GridSpec, Point, Rect};

/// Unit-pixel spec: pixel (i, j) is centred at (i + 0.5, j + 0.5).
fn unit_spec(w: usize, h: usize) -> GridSpec {
    GridSpec::new(Rect::new(0.0, 0.0, w as f64, h as f64), w, h).unwrap()
}

/// 10×8 grid with two well-separated rectangular blobs:
///   A: 2×2 block at (1..=2, 1..=2), value 4.0 except peak 6.0 at (2, 2)
///   B: 3×1 row   at (6..=8, 5),     value 3.0 each
/// Mass A = 3·4 + 6 = 18, mass B = 9; A outranks B.
fn two_blob_grid() -> (DensityGrid, GridSpec) {
    let mut g = DensityGrid::zeroed(10, 8);
    for (i, j) in [(1, 1), (2, 1), (1, 2)] {
        g.set(i, j, 4.0);
    }
    g.set(2, 2, 6.0);
    for i in 6..=8 {
        g.set(i, 5, 3.0);
    }
    (g, unit_spec(10, 8))
}

#[test]
fn hotspots_on_the_known_grid_have_exact_count_rank_and_mass() {
    let (grid, spec) = two_blob_grid();
    let hs = extract_hotspots(&grid, &spec, 1.0);
    assert_eq!(hs.len(), 2, "two separated blobs → two components");
    // ranked by descending mass
    assert_eq!(hs[0].mass, 18.0);
    assert_eq!(hs[1].mass, 9.0);
    assert_eq!(hs[0].pixels, 4);
    assert_eq!(hs[1].pixels, 3);
    // unit pixels → area equals pixel count
    assert_eq!(hs[0].area, 4.0);
    assert_eq!(hs[1].area, 3.0);
    assert_eq!(hs[0].peak, 6.0);
    assert_eq!(hs[0].peak_pixel, (2, 2));
    assert_eq!(hs[1].peak, 3.0);
    // blob B is symmetric around pixel (7, 5) → centroid at its centre
    assert!((hs[1].centroid.x - 7.5).abs() < 1e-12);
    assert!((hs[1].centroid.y - 5.5).abs() < 1e-12);
    // blob A centroid is the density-weighted mean of the four pixels
    let cx = (4.0 * 1.5 + 4.0 * 2.5 + 4.0 * 1.5 + 6.0 * 2.5) / 18.0;
    let cy = (4.0 * 1.5 + 4.0 * 1.5 + 4.0 * 2.5 + 6.0 * 2.5) / 18.0;
    assert!((hs[0].centroid.x - cx).abs() < 1e-12);
    assert!((hs[0].centroid.y - cy).abs() < 1e-12);
}

#[test]
fn hotspot_threshold_is_inclusive_and_connectivity_is_4_not_8() {
    let spec = unit_spec(6, 6);
    let mut g = DensityGrid::zeroed(6, 6);
    // two pixels touching only diagonally: 8-connectivity would merge them
    g.set(1, 1, 2.0);
    g.set(2, 2, 2.0);
    let hs = extract_hotspots(&g, &spec, 2.0);
    assert_eq!(hs.len(), 2, "diagonal neighbours must stay separate (4-connected)");
    // threshold is inclusive: a pixel exactly at the threshold belongs
    assert!(extract_hotspots(&g, &spec, 2.0 + 1e-9).is_empty());
    // an orthogonal bridge merges them into one component
    g.set(2, 1, 2.0);
    assert_eq!(extract_hotspots(&g, &spec, 2.0).len(), 1);
}

#[test]
fn peak_fraction_thresholding_tracks_the_global_peak() {
    let (grid, spec) = two_blob_grid();
    // 60% of peak 6.0 = 3.6 → only blob A qualifies (blob B tops at 3.0)
    let hs = hotspots_by_peak_fraction(&grid, &spec, 0.6);
    assert_eq!(hs.len(), 1);
    assert_eq!(hs[0].peak, 6.0);
    // 50% of peak = 3.0, inclusive → both blobs
    assert_eq!(hotspots_by_peak_fraction(&grid, &spec, 0.5).len(), 2);
    // all-zero raster: no spurious hotspot at threshold 0
    let zero = DensityGrid::zeroed(10, 8);
    assert!(hotspots_by_peak_fraction(&zero, &spec, 0.5).is_empty());
}

#[test]
fn contour_around_an_interior_blob_is_a_single_closed_ring() {
    // one hot 3×3 plateau in the middle of a cold 9×9 grid
    let spec = unit_spec(9, 9);
    let mut g = DensityGrid::zeroed(9, 9);
    for j in 3..=5 {
        for i in 3..=5 {
            g.set(i, j, 10.0);
        }
    }
    let cs = contours(&g, &spec, 5.0);
    assert_eq!(cs.len(), 1, "one interior blob → one contour");
    let ring = &cs[0];
    assert!(ring.closed, "an interior iso-line must close into a ring");
    assert!(ring.points.len() >= 8);
    // the ring must strictly separate hot from cold: every vertex lies
    // between the plateau boundary pixels (centres 3.5..5.5) and their
    // cold neighbours (centres 2.5 / 6.5)
    for p in &ring.points {
        assert!(p.x > 2.5 && p.x < 6.5, "vertex x={} escapes the transition band", p.x);
        assert!(p.y > 2.5 && p.y < 6.5, "vertex y={} escapes the transition band", p.y);
    }
    // threshold halfway between 0 and 10 crosses each cell edge at its
    // midpoint, so the ring is the square through x,y ∈ {3.0, 6.0} with
    // its four corners clipped to diagonals: 4·3 − 4·(1 − √½) ≈ 10.828
    let expected = 12.0 - 4.0 * (1.0 - 0.5_f64.sqrt());
    let len = ring.length();
    assert!(
        (len - expected).abs() < 1e-9,
        "ring length {len}, expected {expected} for the 3×3 plateau"
    );
}

#[test]
fn contour_degenerate_and_out_of_range_thresholds_yield_nothing() {
    let (grid, spec) = two_blob_grid();
    // marching squares needs a 2×2 cell: 1×N and N×1 grids have none
    let thin = DensityGrid::from_values(8, 1, vec![5.0; 8]);
    assert!(contour_segments(&thin, &unit_spec(8, 1), 1.0).is_empty());
    let tall = DensityGrid::from_values(1, 8, vec![5.0; 8]);
    assert!(contour_segments(&tall, &unit_spec(1, 8), 1.0).is_empty());
    // threshold above the global max: nothing is inside
    assert!(contour_segments(&grid, &spec, 100.0).is_empty());
    // threshold at/below zero: everything is inside, no crossings
    assert!(contour_segments(&grid, &spec, -1.0).is_empty());
}

#[test]
fn contour_count_tracks_the_number_of_blobs() {
    let (grid, spec) = two_blob_grid();
    let cs = contours(&grid, &spec, 1.5);
    assert_eq!(cs.len(), 2, "two blobs → two separate iso-rings");
    assert!(cs.iter().all(|c| c.closed));
}

#[test]
fn grid_diff_metrics_match_hand_computation() {
    let reference = DensityGrid::from_values(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
    let got = DensityGrid::from_values(2, 2, vec![1.0, 2.5, 2.0, 4.0]);
    let d = grid_diff(&got, &reference);
    // diffs: [0, 0.5, 1, 0]
    assert_eq!(d.max_abs, 1.0);
    assert!((d.mae - 0.375).abs() < 1e-15);
    assert!((d.rmse - (1.25_f64 / 4.0).sqrt()).abs() < 1e-15);
    assert!((d.max_rel_to_peak - 0.25).abs() < 1e-15);
    // identical rasters → all-zero metrics
    let z = grid_diff(&reference, &reference);
    assert_eq!((z.max_abs, z.rmse, z.mae, z.max_rel_to_peak), (0.0, 0.0, 0.0, 0.0));
}

#[test]
#[should_panic(expected = "resolution mismatch")]
fn grid_diff_rejects_mismatched_resolutions() {
    let a = DensityGrid::zeroed(2, 3);
    let b = DensityGrid::zeroed(3, 2);
    let _ = grid_diff(&a, &b);
}

#[test]
fn hotspot_jaccard_spans_disjoint_to_identical() {
    let a = DensityGrid::from_values(2, 2, vec![5.0, 5.0, 0.0, 0.0]);
    let b = DensityGrid::from_values(2, 2, vec![0.0, 0.0, 5.0, 5.0]);
    let c = DensityGrid::from_values(2, 2, vec![5.0, 0.0, 5.0, 0.0]);
    assert_eq!(hotspot_jaccard(&a, &a, 1.0), 1.0);
    assert_eq!(hotspot_jaccard(&a, &b, 1.0), 0.0);
    // a ∩ c = 1 pixel, a ∪ c = 3 pixels
    assert!((hotspot_jaccard(&a, &c, 1.0) - 1.0 / 3.0).abs() < 1e-15);
    // both masks empty → defined as perfect agreement
    let zero = DensityGrid::zeroed(2, 2);
    assert_eq!(hotspot_jaccard(&zero, &zero, 1.0), 1.0);
}

#[test]
fn k_function_matches_the_naive_estimator_and_known_values() {
    // deterministic lattice-with-jitter point set (no RNG: jitter from a
    // fixed integer recurrence)
    let window = Rect::new(0.0, 0.0, 10.0, 10.0);
    let mut pts = Vec::new();
    let mut s: u64 = 12345;
    for gy in 0..7 {
        for gx in 0..7 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let jx = (s >> 40) as f64 / (1u64 << 24) as f64 - 0.5;
            let jy = (s >> 16 & 0xFFFFFF) as f64 / (1u64 << 24) as f64 - 0.5;
            pts.push(Point::new(
                1.0 + gx as f64 * 1.4 + 0.4 * jx,
                1.0 + gy as f64 * 1.4 + 0.4 * jy,
            ));
        }
    }
    let radii = [0.1, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 14.2];
    let naive = k_function_naive(&pts, window, &radii);
    let fast = k_function(&pts, window, &radii);
    assert_eq!(naive.radii, fast.radii);
    for (r, (a, b)) in radii.iter().zip(naive.k_values.iter().zip(&fast.k_values)) {
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "K({r}): {a} vs {b}");
    }
    // closed-form anchors: no pairs within r=0.1 (min spacing ≈ 1), and at
    // r ≥ the window diagonal every ordered pair counts:
    // K = A/n² · n(n−1) = 100·48/49
    assert_eq!(naive.k_values[0], 0.0);
    let all_pairs = 100.0 * 48.0 / 49.0;
    assert!((naive.k_values[7] - all_pairs).abs() < 1e-9);
    // K is non-decreasing in r
    for w in naive.k_values.windows(2) {
        assert!(w[1] >= w[0]);
    }
}

#[test]
fn l_transform_flags_a_clustered_pattern() {
    // a tight cluster of 20 points in a large window is maximally
    // clustered at small r: L(r) − r must be strongly positive there
    let window = Rect::new(0.0, 0.0, 100.0, 100.0);
    let pts: Vec<Point> = (0..20)
        .map(|i| Point::new(50.0 + (i % 5) as f64 * 0.1, 50.0 + (i / 5) as f64 * 0.1))
        .collect();
    let kf = k_function_naive(&pts, window, &[1.0, 2.0]);
    let l = kf.l_minus_r();
    assert!(l[0] > 10.0, "clustered pattern must show L(r)−r ≫ 0, got {}", l[0]);
}
