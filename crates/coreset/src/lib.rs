//! # kdv-coreset — ε-coresets for KDV overview tiles
//!
//! An ε-coreset is a small weighted point set `Q` whose kernel density is
//! within `ε` of the full set's density: `sup_q |F_Q(q) − F_P(q)| ≤ ε`.
//! Coresets for KDE (Zheng et al.; Phillips & Tai) let a server answer
//! low-zoom overview tiles — where every tile aggregates the whole dataset —
//! from `O(√n)`-ish points instead of `n`, while deep zooms stay exact.
//!
//! ## Certification model
//!
//! The advertised `ε` is *measured, not analytic*: the builder evaluates the
//! coreset density and the exact density on every **registered evaluation
//! grid** (exactly the pixel grids the serving tier will answer on — one per
//! coreset-served pyramid level) and takes the sup of the absolute error,
//! then adds a float-noise slack of [`CERT_SLACK_REL`]` · scale`, where
//! `scale = |w|·n·K(0)` is the largest density any point set of this size
//! can produce. The slack covers the reassociation noise between the
//! different exact evaluators in the tree (bucket sweep, sort sweep, RAO
//! transpose, direct scan), whose mutual disagreement is bounded well below
//! `2⁻²⁴` relative by the conformance suite, so a downstream check of
//! coreset-vs-*any* exact engine on a registered grid stays within the
//! advertised bound. This measured contract is exact for all pixel centres
//! the server evaluates, works for every kernel including the discontinuous
//! Uniform kernel, and is deterministic: a fixed seed reproduces the same
//! coreset and the same certificate bit for bit.
//!
//! ## Sizing
//!
//! Each construction method exposes a coarse→fine ladder (grid cells per
//! axis doubling, sort-run length halving, sample size doubling) ending in
//! the identity coreset (the full set, unit multiplicities). The builder
//! walks the ladder from the coarsest rung and stops at the **first** rung
//! whose certified error is within the target; because the feasible set can
//! only grow as the target loosens and rung sizes are monotone along the
//! ladder, the returned coreset size is monotone non-increasing in the
//! target ε. If no rung meets the target (targets below the float-noise
//! slack are infeasible by construction) the identity rung is returned and
//! the *achieved* ε — which is what [`Coreset::epsilon`] always reports —
//! exceeds the request.

use std::collections::BTreeMap;
use std::str::FromStr;

use kdv_core::driver::KdvParams;
use kdv_core::geom::Point;
use kdv_core::grid::GridSpec;
use kdv_core::weighted::compute_weighted;
use kdv_core::{KdvError, KernelType, Result};

/// Relative float-noise slack (`2⁻²⁴`) folded into the certificate, in
/// units of the density scale `|w|·n·K(0)`. Roughly 30× the measured
/// cross-engine reassociation noise of the exact sweeps, so coreset output
/// may be compared against any exact engine, not just the builder's.
pub const CERT_SLACK_REL: f64 = 1.0 / 16_777_216.0;

/// Coreset construction method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoresetMethod {
    /// Nested dyadic grid over the point MBR; one weighted centroid per
    /// occupied cell. The grid/discrepancy construction of Zheng et al.
    Grid,
    /// Z-order (Morton) sort; consecutive runs of power-of-two length
    /// collapse to their weighted centroid. The sort-based construction.
    Sort,
    /// Seeded uniform sample of `m` points, each weighted `n/m`. The
    /// random-sampling baseline the discrepancy constructions improve on.
    Sample,
}

impl CoresetMethod {
    /// Stable lowercase name, e.g. for CLI flags and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            CoresetMethod::Grid => "grid",
            CoresetMethod::Sort => "sort",
            CoresetMethod::Sample => "sample",
        }
    }
}

impl std::fmt::Display for CoresetMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for CoresetMethod {
    type Err = KdvError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "grid" => Ok(CoresetMethod::Grid),
            "sort" => Ok(CoresetMethod::Sort),
            "sample" => Ok(CoresetMethod::Sample),
            _ => Err(KdvError::Internal("unknown coreset method (grid|sort|sample)")),
        }
    }
}

/// Everything the builder needs: the KDE the coreset must approximate and
/// the grids the certificate must hold on.
#[derive(Debug, Clone)]
pub struct CoresetSpec {
    /// Construction method.
    pub method: CoresetMethod,
    /// Target absolute sup-error, in density units. The builder stops at
    /// the coarsest ladder rung meeting it; see [`Coreset::epsilon`] for
    /// what was actually achieved.
    pub target_epsilon: f64,
    /// Kernel of the KDE being approximated.
    pub kernel: KernelType,
    /// Bandwidth of the KDE being approximated.
    pub bandwidth: f64,
    /// Global per-point weight `w` of the KDE being approximated.
    pub weight: f64,
    /// Seed for the `Sample` method (ignored, but still part of the
    /// certificate identity, for `Grid`/`Sort`).
    pub seed: u64,
    /// Evaluation grids the certificate is measured on — exactly the
    /// pyramid-level grids the serving tier will answer from the coreset.
    pub eval_grids: Vec<GridSpec>,
}

/// A built coreset with its certified error bound.
#[derive(Debug, Clone)]
pub struct Coreset {
    /// Representative points (weighted centroids or sampled originals).
    pub points: Vec<Point>,
    /// Multiplicity of each representative; `Σ weights[i] == n` up to
    /// rounding, so the same global weight `w` applies unchanged.
    pub weights: Vec<f64>,
    /// Certified sup-error bound on the registered evaluation grids:
    /// measured sup-error plus the [`CERT_SLACK_REL`] float slack. This is
    /// the *achieved* bound — it may exceed an infeasibly small target.
    pub epsilon: f64,
    /// Raw measured sup-error (before slack), for diagnostics.
    pub measured_sup_error: f64,
    /// Number of points in the source set.
    pub source_len: usize,
}

impl Coreset {
    /// Number of representatives.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the source set was empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// The density scale `|w|·n·K(0)`: an upper bound on any pixel's density,
/// used to convert relative tolerances (CLI `--coreset-eps`, conformance
/// generator targets) into the absolute units of [`CoresetSpec`].
pub fn density_scale(kernel: KernelType, bandwidth: f64, weight: f64, n: usize) -> f64 {
    let origin = Point::new(0.0, 0.0);
    weight.abs() * n as f64 * kernel.eval(&origin, &origin, bandwidth)
}

/// One weighted-centroid accumulator (plain sums; the summation order is
/// deterministic, so so is the centroid).
#[derive(Debug, Clone, Copy, Default)]
struct CellAcc {
    sum_x: f64,
    sum_y: f64,
    count: u64,
}

impl CellAcc {
    fn push(&mut self, p: &Point) {
        self.sum_x += p.x;
        self.sum_y += p.y;
        self.count += 1;
    }

    fn centroid(&self) -> Point {
        let c = self.count as f64;
        Point::new(self.sum_x / c, self.sum_y / c)
    }
}

fn mbr(points: &[Point]) -> (Point, Point) {
    let mut min = Point::new(f64::INFINITY, f64::INFINITY);
    let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in points {
        min.x = min.x.min(p.x);
        min.y = min.y.min(p.y);
        max.x = max.x.max(p.x);
        max.y = max.y.max(p.y);
    }
    (min, max)
}

/// Cell index of `x` on a `g`-cell axis over `[min, min+extent]`, clamped
/// so `x == min+extent` lands in the last cell. Dyadic refinement is
/// nested: the cell at `2g` is always a child of the cell at `g`, so the
/// occupied-cell count is monotone non-decreasing in `g`.
fn axis_cell(x: f64, min: f64, extent: f64, g: u32) -> u32 {
    if extent <= 0.0 {
        return 0;
    }
    let t = ((x - min) / extent * g as f64) as u32;
    t.min(g - 1)
}

/// Grid construction: weighted centroid of every occupied cell of a `g×g`
/// dyadic grid over the MBR. BTreeMap keeps the output order deterministic.
fn grid_coreset(points: &[Point], g: u32) -> (Vec<Point>, Vec<f64>) {
    let (min, max) = mbr(points);
    let (ext_x, ext_y) = (max.x - min.x, max.y - min.y);
    let mut cells: BTreeMap<(u32, u32), CellAcc> = BTreeMap::new();
    for p in points {
        let cx = axis_cell(p.x, min.x, ext_x, g);
        let cy = axis_cell(p.y, min.y, ext_y, g);
        cells.entry((cy, cx)).or_default().push(p);
    }
    cells.values().map(|acc| (acc.centroid(), acc.count as f64)).unzip()
}

/// 16-bit axis quantisation + bit interleave → 32-bit Morton key.
fn morton_key(p: &Point, min: &Point, ext_x: f64, ext_y: f64) -> u32 {
    let q = |x: f64, min: f64, ext: f64| -> u32 {
        if ext <= 0.0 {
            return 0;
        }
        (((x - min) / ext * 65_536.0) as u32).min(65_535)
    };
    let spread = |mut v: u32| -> u32 {
        v &= 0xffff;
        v = (v | (v << 8)) & 0x00ff_00ff;
        v = (v | (v << 4)) & 0x0f0f_0f0f;
        v = (v | (v << 2)) & 0x3333_3333;
        v = (v | (v << 1)) & 0x5555_5555;
        v
    };
    spread(q(p.x, min.x, ext_x)) | (spread(q(p.y, min.y, ext_y)) << 1)
}

/// Sort construction: z-order the points, then collapse consecutive runs
/// of length `s` to their weighted centroid.
fn sort_coreset(points: &[Point], run: usize) -> (Vec<Point>, Vec<f64>) {
    let (min, max) = mbr(points);
    let (ext_x, ext_y) = (max.x - min.x, max.y - min.y);
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        let (pa, pb) = (&points[a], &points[b]);
        morton_key(pa, &min, ext_x, ext_y)
            .cmp(&morton_key(pb, &min, ext_x, ext_y))
            .then(pa.x.total_cmp(&pb.x))
            .then(pa.y.total_cmp(&pb.y))
            .then(a.cmp(&b))
    });
    let mut reps = Vec::with_capacity(points.len().div_ceil(run));
    let mut weights = Vec::with_capacity(reps.capacity());
    for chunk in order.chunks(run) {
        let mut acc = CellAcc::default();
        for &i in chunk {
            acc.push(&points[i]);
        }
        reps.push(acc.centroid());
        weights.push(acc.count as f64);
    }
    (reps, weights)
}

/// SplitMix64 — the same tiny deterministic generator the conformance
/// corpus uses for auxiliary inputs.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Sample construction: the first `m` entries of a seeded Fisher–Yates
/// shuffle, each weighted `n/m`. Re-seeded per rung so a rung's output is
/// independent of how many rungs were tried before it.
fn sample_coreset(points: &[Point], m: usize, seed: u64) -> (Vec<Point>, Vec<f64>) {
    let n = points.len();
    let mut rng = SplitMix64(seed ^ 0x5eed_c0de_u64.rotate_left(m.trailing_zeros()));
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..m.min(n) {
        let j = i + (rng.next_u64() % (n - i) as u64) as usize;
        idx.swap(i, j);
    }
    let mut chosen: Vec<usize> = idx[..m.min(n)].to_vec();
    chosen.sort_unstable();
    let w = n as f64 / m as f64;
    (chosen.iter().map(|&i| points[i]).collect(), vec![w; m.min(n)])
}

/// The coarse→fine size ladder for a method: rung parameter values in the
/// order the builder tries them. `usize::MAX` marks the identity rung.
fn ladder(method: CoresetMethod, n: usize) -> Vec<usize> {
    let mut rungs = Vec::new();
    match method {
        CoresetMethod::Grid => {
            let mut g = 1usize;
            while g <= 8_192 {
                rungs.push(g);
                g *= 2;
            }
        }
        CoresetMethod::Sort => {
            let mut s = n.next_power_of_two().max(2);
            while s >= 2 {
                rungs.push(s);
                s /= 2;
            }
        }
        CoresetMethod::Sample => {
            let mut m = 1usize;
            while m < n {
                rungs.push(m);
                m *= 2;
            }
        }
    }
    rungs.push(usize::MAX);
    rungs
}

fn construct(
    method: CoresetMethod,
    points: &[Point],
    rung: usize,
    seed: u64,
) -> (Vec<Point>, Vec<f64>) {
    if rung == usize::MAX {
        return (points.to_vec(), vec![1.0; points.len()]);
    }
    match method {
        CoresetMethod::Grid => grid_coreset(points, rung as u32),
        CoresetMethod::Sort => sort_coreset(points, rung),
        CoresetMethod::Sample => sample_coreset(points, rung, seed),
    }
}

/// Builds an ε-coreset for `points` under `spec`, certifying the achieved
/// sup-error bound on the registered evaluation grids. See the crate docs
/// for the certification model and the monotone sizing guarantee.
pub fn build(spec: &CoresetSpec, points: &[Point]) -> Result<Coreset> {
    if spec.eval_grids.is_empty() {
        return Err(KdvError::Internal("coreset spec needs at least one evaluation grid"));
    }
    if !spec.target_epsilon.is_finite() || spec.target_epsilon < 0.0 {
        return Err(KdvError::Internal("coreset target epsilon must be finite and non-negative"));
    }
    let mut span = kdv_obs::span1("coreset.build", "n", points.len() as u64);
    kdv_obs::metrics::global().counter("coreset.build").bump();

    let slack =
        density_scale(spec.kernel, spec.bandwidth, spec.weight, points.len()) * CERT_SLACK_REL;
    if points.is_empty() {
        return Ok(Coreset {
            points: Vec::new(),
            weights: Vec::new(),
            epsilon: 0.0,
            measured_sup_error: 0.0,
            source_len: 0,
        });
    }

    // Exact references, once per registered grid — the expensive part,
    // amortised across every ladder rung.
    let mut references = Vec::with_capacity(spec.eval_grids.len());
    for grid in &spec.eval_grids {
        let params = KdvParams::new(*grid, spec.kernel, spec.bandwidth).with_weight(spec.weight);
        let exact = kdv_core::sweep_bucket::compute(&params, points)?;
        references.push((params, exact));
    }

    let mut best: Option<(Vec<Point>, Vec<f64>, f64)> = None;
    let mut last_size = usize::MAX;
    for rung in ladder(spec.method, points.len()) {
        let (reps, weights) = construct(spec.method, points, rung, spec.seed);
        // Nested dyadic refinement with an unchanged occupied-cell count
        // reproduces the identical coreset — skip the re-evaluation.
        if reps.len() == last_size && spec.method == CoresetMethod::Grid {
            continue;
        }
        last_size = reps.len();
        let mut measured = 0.0f64;
        for (params, reference) in &references {
            let approx = compute_weighted(params, &reps, &weights)?;
            for (a, r) in approx.values().iter().zip(reference.values()) {
                measured = measured.max((a - r).abs());
            }
        }
        let achieved = measured + slack;
        best = Some((reps, weights, measured));
        if achieved <= spec.target_epsilon {
            break;
        }
    }
    let (reps, weights, measured) = best.expect("ladder always yields at least the identity rung");
    span.arg("size", reps.len() as u64);
    Ok(Coreset {
        points: reps,
        weights,
        epsilon: measured + slack,
        measured_sup_error: measured,
        source_len: points.len(),
    })
}
