//! Property tests for the coreset builder, over random point sets and
//! seeds: the certificate is honest (measured sup-error vs an
//! *independent* exact engine never exceeds the advertised ε), sizing is
//! monotone non-increasing in the target ε, and construction is
//! deterministic for a fixed seed.

use kdv_core::geom::{Point, Rect};
use kdv_core::grid::GridSpec;
use kdv_core::weighted::compute_weighted;
use kdv_core::{KdvParams, KernelType};
use kdv_coreset::{build, density_scale, Coreset, CoresetMethod, CoresetSpec};

fn random_points(n: usize, seed: u64, extent: Rect) -> Vec<Point> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            // clustered: half the mass in a tight blob, half uniform
            let (x, y) = (next(), next());
            if next() < 0.5 {
                Point::new(
                    extent.min_x + (0.3 + 0.1 * x) * extent.width(),
                    extent.min_y + (0.6 + 0.1 * y) * extent.height(),
                )
            } else {
                Point::new(extent.min_x + x * extent.width(), extent.min_y + y * extent.height())
            }
        })
        .collect()
}

fn spec(
    method: CoresetMethod,
    kernel: KernelType,
    bandwidth: f64,
    weight: f64,
    target: f64,
    seed: u64,
    grids: Vec<GridSpec>,
) -> CoresetSpec {
    CoresetSpec {
        method,
        target_epsilon: target,
        kernel,
        bandwidth,
        weight,
        seed,
        eval_grids: grids,
    }
}

const METHODS: [CoresetMethod; 3] =
    [CoresetMethod::Grid, CoresetMethod::Sort, CoresetMethod::Sample];

/// The certificate must hold against an exact engine the builder did NOT
/// use (sort sweep vs the builder's bucket sweep) — that is what the
/// float-noise slack buys.
#[test]
fn measured_sup_error_never_exceeds_advertised_epsilon() {
    let extent = Rect::new(0.0, 0.0, 500.0, 400.0);
    for (case, (kernel, bandwidth, n)) in [
        (KernelType::Epanechnikov, 60.0, 600),
        (KernelType::Quartic, 90.0, 400),
        (KernelType::Uniform, 45.0, 500),
    ]
    .into_iter()
    .enumerate()
    {
        let points = random_points(n, 0xA11 + case as u64, extent);
        let weight = 1.0 / n as f64;
        let grids =
            vec![GridSpec::new(extent, 48, 40).unwrap(), GridSpec::new(extent, 24, 20).unwrap()];
        let scale = density_scale(kernel, bandwidth, weight, n);
        for method in METHODS {
            for rel in [0.2, 0.02] {
                let cs = build(
                    &spec(method, kernel, bandwidth, weight, rel * scale, 7, grids.clone()),
                    &points,
                )
                .unwrap();
                for grid in &grids {
                    let params = KdvParams::new(*grid, kernel, bandwidth).with_weight(weight);
                    let exact = kdv_core::sweep_sort::compute(&params, &points).unwrap();
                    let approx = compute_weighted(&params, &cs.points, &cs.weights).unwrap();
                    let sup = approx
                        .values()
                        .iter()
                        .zip(exact.values())
                        .map(|(a, r)| (a - r).abs())
                        .fold(0.0f64, f64::max);
                    assert!(
                        sup <= cs.epsilon,
                        "{kernel} {method} rel={rel}: sup {sup:e} > advertised {:e}",
                        cs.epsilon
                    );
                }
                // a generous target must actually be met
                if rel == 0.2 {
                    assert!(cs.epsilon <= rel * scale, "{kernel} {method}: generous target missed");
                }
            }
        }
    }
}

#[test]
fn coreset_size_is_monotone_non_increasing_in_epsilon() {
    let extent = Rect::new(-100.0, 50.0, 300.0, 250.0);
    let n = 800;
    let points = random_points(n, 0xB22, extent);
    let weight = 1.0 / n as f64;
    let (kernel, bandwidth) = (KernelType::Epanechnikov, 40.0);
    let grids = vec![GridSpec::new(extent, 32, 32).unwrap()];
    let scale = density_scale(kernel, bandwidth, weight, n);
    for method in METHODS {
        let mut last_size = usize::MAX;
        // loosening the target must never grow the coreset
        for rel in [1e-9, 0.001, 0.01, 0.05, 0.2, 1.0] {
            let cs = build(
                &spec(method, kernel, bandwidth, weight, rel * scale, 3, grids.clone()),
                &points,
            )
            .unwrap();
            assert!(
                cs.len() <= last_size,
                "{method}: size {} at rel={rel} after size {last_size}",
                cs.len()
            );
            assert!(cs.len() <= n);
            last_size = cs.len();
        }
    }
}

fn assert_identical(a: &Coreset, b: &Coreset) {
    assert_eq!(a.points.len(), b.points.len());
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.x.to_bits(), pb.x.to_bits());
        assert_eq!(pa.y.to_bits(), pb.y.to_bits());
    }
    assert_eq!(
        a.weights.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
        b.weights.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
    );
    assert_eq!(a.epsilon.to_bits(), b.epsilon.to_bits());
    assert_eq!(a.measured_sup_error.to_bits(), b.measured_sup_error.to_bits());
}

#[test]
fn construction_is_deterministic_for_a_fixed_seed() {
    let extent = Rect::new(0.0, 0.0, 200.0, 200.0);
    for trial in 0..4u64 {
        let points = random_points(300 + 37 * trial as usize, 0xC33 + trial, extent);
        let weight = 1.0 / points.len() as f64;
        let grids = vec![GridSpec::new(extent, 20, 24).unwrap()];
        let scale = density_scale(KernelType::Quartic, 35.0, weight, points.len());
        for method in METHODS {
            let s =
                spec(method, KernelType::Quartic, 35.0, weight, 0.03 * scale, 42, grids.clone());
            let first = build(&s, &points).unwrap();
            let second = build(&s, &points).unwrap();
            assert_identical(&first, &second);
        }
    }
}

#[test]
fn degenerate_inputs_build_cleanly() {
    let extent = Rect::new(0.0, 0.0, 100.0, 100.0);
    let grids = vec![GridSpec::new(extent, 8, 8).unwrap()];
    // empty set
    let s = spec(CoresetMethod::Grid, KernelType::Epanechnikov, 10.0, 1.0, 0.5, 1, grids.clone());
    let empty = build(&s, &[]).unwrap();
    assert!(empty.is_empty());
    assert_eq!(empty.epsilon, 0.0);
    // all points identical (zero-extent MBR)
    let same = vec![Point::new(50.0, 50.0); 64];
    for method in METHODS {
        let s = spec(method, KernelType::Epanechnikov, 10.0, 1.0 / 64.0, 1e-6, 1, grids.clone());
        let cs = build(&s, &same).unwrap();
        assert!(!cs.is_empty());
        let total: f64 = cs.weights.iter().sum();
        assert!((total - 64.0).abs() < 1e-9, "{method}: multiplicities sum to {total}");
    }
}
