//! Integration tests for the viz crate: colormap monotonicity and
//! continuity, normalisation round-trips, and legend/colour-bar layout
//! bounds. These pin the rendering contracts end-to-end (density grid →
//! normalised value → colour → composed image) rather than per-module
//! internals, which the inline unit tests already cover.

use kdv_core::grid::DensityGrid;
use kdv_viz::{ascii_art, color_bar, render, with_legend, ColorMap, Rgb, Scale};

const MAPS: [ColorMap; 3] = [ColorMap::Heat, ColorMap::Grayscale, ColorMap::Viridis];
const SCALES: [Scale; 3] = [Scale::Linear, Scale::Sqrt, Scale::Log];

/// Rec. 709 luminance of an 8-bit colour, the standard perceptual proxy.
fn luminance(c: Rgb) -> f64 {
    0.2126 * c.0 as f64 + 0.7152 * c.1 as f64 + 0.0722 * c.2 as f64
}

#[test]
fn grayscale_is_strictly_monotone_and_achromatic() {
    let mut prev = -1.0;
    for k in 0..=512 {
        let t = k as f64 / 512.0;
        let c = ColorMap::Grayscale.map(t);
        assert_eq!(c.0, c.1, "grayscale must be achromatic at t={t}");
        assert_eq!(c.1, c.2, "grayscale must be achromatic at t={t}");
        let l = luminance(c);
        assert!(l >= prev, "grayscale luminance decreased at t={t}: {l} < {prev}");
        prev = l;
    }
    // strict over any span wide enough to move one 8-bit step
    assert!(luminance(ColorMap::Grayscale.map(0.9)) > luminance(ColorMap::Grayscale.map(0.1)));
}

#[test]
fn viridis_luminance_is_monotone_nondecreasing() {
    // the point of a perceptually ordered map: brighter always means denser
    let mut prev = -1.0;
    for k in 0..=1000 {
        let t = k as f64 / 1000.0;
        let l = luminance(ColorMap::Viridis.map(t));
        assert!(
            l >= prev - 0.5, // one 8-bit rounding step of slack
            "viridis luminance decreased at t={t}: {l} < {prev}"
        );
        prev = l;
    }
}

#[test]
fn heat_channels_are_monotone_between_control_points() {
    // Heat is not luminance-monotone (yellow → red dims), but within each
    // piecewise-linear segment every channel must move monotonically
    // toward the next control point — a reordered or duplicated control
    // point would break this.
    let knots = [0.0, 0.25, 0.5, 0.75, 1.0];
    let channels = |c: Rgb| [c.0 as i16, c.1 as i16, c.2 as i16];
    for seg in knots.windows(2) {
        let (a, b) = (seg[0], seg[1]);
        let first = channels(ColorMap::Heat.map(a));
        let last = channels(ColorMap::Heat.map(b));
        let mut prev = first;
        for k in 1..=64 {
            let t = a + (b - a) * k as f64 / 64.0;
            let c = channels(ColorMap::Heat.map(t));
            for ch in 0..3 {
                let rising = last[ch] >= first[ch];
                // 1-count slack for 8-bit rounding of the linear ramp
                let ok = if rising { c[ch] >= prev[ch] - 1 } else { c[ch] <= prev[ch] + 1 };
                assert!(
                    ok,
                    "channel {ch} reversed direction inside segment [{a},{b}] at t={t}: \
                     {prev:?} -> {c:?}"
                );
            }
            prev = c;
        }
    }
}

#[test]
fn all_maps_are_continuous_clamped_and_nan_safe() {
    for map in MAPS {
        // continuity: a 1e-3 step in t moves each channel by at most a few
        // 8-bit counts (max control-point slope is 3.6/unit ≈ 0.92/step)
        let mut prev = map.map(0.0);
        for k in 1..=1000 {
            let t = k as f64 / 1000.0;
            let c = map.map(t);
            for (a, b) in [(prev.0, c.0), (prev.1, c.1), (prev.2, c.2)] {
                assert!(
                    (a as i16 - b as i16).abs() <= 3,
                    "{map:?} jumps by {} at t={t}",
                    (a as i16 - b as i16).abs()
                );
            }
            prev = c;
        }
        // clamping and NaN: out-of-domain inputs collapse to the endpoints
        assert_eq!(map.map(-5.0), map.map(0.0));
        assert_eq!(map.map(7.0), map.map(1.0));
        assert_eq!(map.map(f64::NAN), map.map(0.0));
    }
}

#[test]
fn normalize_hits_both_endpoints_and_stays_in_unit_range() {
    for scale in SCALES {
        for max in [1e-12, 1.0, 3.7e9] {
            assert_eq!(scale.normalize(0.0, max), 0.0, "{scale:?}: zero must map to 0");
            let top = scale.normalize(max, max);
            assert!((top - 1.0).abs() < 1e-12, "{scale:?}: max must map to 1, got {top}");
            for k in 0..=100 {
                let v = max * k as f64 / 100.0;
                let t = scale.normalize(v, max);
                assert!((0.0..=1.0).contains(&t), "{scale:?}: {t} out of [0,1]");
            }
            // values above max clamp to 1 rather than overflowing the ramp
            assert_eq!(scale.normalize(2.0 * max, max), 1.0);
        }
    }
}

#[test]
fn normalize_is_monotone_and_expands_the_low_end() {
    for scale in SCALES {
        let mut prev = 0.0;
        for k in 0..=1000 {
            let v = k as f64 / 1000.0;
            let t = scale.normalize(v, 1.0);
            assert!(t >= prev, "{scale:?} not monotone at v={v}");
            prev = t;
        }
    }
    // the documented reason Sqrt/Log exist: they lift low densities
    for v in [0.01, 0.1, 0.3] {
        let lin = Scale::Linear.normalize(v, 1.0);
        let sqrt = Scale::Sqrt.normalize(v, 1.0);
        let log = Scale::Log.normalize(v, 1.0);
        assert!(sqrt > lin, "sqrt must expand the low end at v={v}");
        assert!(log > sqrt, "log must expand harder than sqrt at v={v}");
    }
}

#[test]
fn normalize_round_trips_through_the_analytic_inverse() {
    // each scale is a bijection on [0, max]; applying the closed-form
    // inverse must recover the input to float precision
    let max = 42.5;
    for k in 0..=200 {
        let v = max * k as f64 / 200.0;
        let lin = Scale::Linear.normalize(v, max);
        assert!((lin * max - v).abs() <= 1e-12 * max);
        let sqrt = Scale::Sqrt.normalize(v, max);
        assert!((sqrt * sqrt * max - v).abs() <= 1e-11 * max);
        let log = Scale::Log.normalize(v, max);
        let inv = (1000.0_f64.powf(log) - 1.0) / 999.0 * max;
        assert!((inv - v).abs() <= 1e-9 * max, "log round-trip: {inv} vs {v}");
    }
}

#[test]
fn normalize_degenerate_rasters_are_all_zero() {
    for scale in SCALES {
        // all-zero raster: max = 0 ⇒ everything maps to 0, never NaN
        assert!(scale.normalize_all(&[0.0; 12]).iter().all(|&t| t == 0.0));
        assert!(scale.normalize_all(&[]).is_empty());
        assert_eq!(scale.normalize(1.0, 0.0), 0.0);
        assert_eq!(scale.normalize(1.0, -3.0), 0.0);
        assert_eq!(scale.normalize(1.0, f64::NAN), 0.0);
    }
    // a live raster hits 1.0 exactly at its peak
    let ts = Scale::Sqrt.normalize_all(&[0.0, 2.0, 8.0, 4.0]);
    assert_eq!(ts[2], 1.0);
    assert!(ts.iter().all(|t| (0.0..=1.0).contains(t)));
}

/// Small grid with a known peak at (res_x-1, res_y-1) (top-right in geo).
fn peaked_grid(res_x: usize, res_y: usize) -> DensityGrid {
    let mut g = DensityGrid::zeroed(res_x, res_y);
    for j in 0..res_y {
        for i in 0..res_x {
            g.set(i, j, (i + j) as f64);
        }
    }
    g
}

#[test]
fn render_dimensions_and_orientation() {
    let grid = peaked_grid(7, 5);
    for map in MAPS {
        for scale in SCALES {
            let img = render(&grid, map, scale);
            assert_eq!(img.dimensions(), (7, 5));
            assert_eq!(img.bytes().len(), 7 * 5 * 3);
            // grid row 0 (smallest y) is the bottom scanline, so the peak
            // pixel (6, 4) lands at image (6, 0) with the t=1 colour
            let hot = map.map(1.0);
            assert_eq!(img.pixel(6, 0), (hot.0, hot.1, hot.2));
            let cold = map.map(0.0);
            assert_eq!(img.pixel(0, 4), (cold.0, cold.1, cold.2));
        }
    }
}

#[test]
fn render_all_zero_grid_is_uniformly_cold() {
    let grid = DensityGrid::zeroed(6, 4);
    let img = render(&grid, ColorMap::Heat, Scale::Log);
    let cold = ColorMap::Heat.map(0.0);
    for y in 0..4 {
        for x in 0..6 {
            assert_eq!(img.pixel(x, y), (cold.0, cold.1, cold.2));
        }
    }
}

#[test]
fn pgm_header_payload_and_peak_byte() {
    let grid = peaked_grid(9, 4);
    let mut buf = Vec::new();
    kdv_viz::write_pgm(&mut buf, &grid, Scale::Linear).unwrap();
    let header = b"P5\n9 4\n255\n";
    assert_eq!(&buf[..header.len()], header);
    let payload = &buf[header.len()..];
    assert_eq!(payload.len(), 9 * 4);
    // peak pixel (8, 3) is on the top scanline at x=8
    assert_eq!(payload[8], 255);
    // coldest pixel (0, 0) is on the bottom scanline at x=0
    assert_eq!(payload[3 * 9], 0);
}

#[test]
fn ascii_art_shape_matches_the_grid() {
    let grid = peaked_grid(11, 3);
    let art = ascii_art(&grid, Scale::Sqrt);
    let lines: Vec<&str> = art.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines.iter().all(|l| l.len() == 11));
    // heaviest glyph at the peak (top-right), lightest at the bottom-left
    assert_eq!(lines[0].as_bytes()[10], b'@');
    assert_eq!(lines[2].as_bytes()[0], b' ');
}

#[test]
fn with_legend_bounds_are_exactly_heatmap_plus_margin_plus_bar() {
    for (w, h) in [(16usize, 12usize), (64, 48), (640, 480), (2000, 64)] {
        let img = render(&peaked_grid(w, h), ColorMap::Heat, Scale::Linear);
        let bar_w = (w / 20).clamp(8, 40);
        let margin = (w / 40).clamp(4, 20);
        let out = with_legend(&img, ColorMap::Heat, Scale::Linear);
        assert_eq!(out.dimensions(), (w + margin + bar_w, h), "legend layout for {w}x{h}");
        // heat map is blitted unchanged at the origin
        assert_eq!(out.pixel(0, 0), img.pixel(0, 0));
        assert_eq!(out.pixel(w - 1, h - 1), img.pixel(w - 1, h - 1));
        // the margin column is white background
        assert_eq!(out.pixel(w + margin / 2, h / 2), (255, 255, 255));
    }
}

#[test]
fn color_bar_is_hottest_at_the_top_with_dark_ticks() {
    let bar = color_bar(ColorMap::Heat, Scale::Linear, 12, 41, 5);
    assert_eq!(bar.dimensions(), (12, 41));
    let hot = ColorMap::Heat.map(1.0);
    let cold = ColorMap::Heat.map(0.0);
    // tick marks only darken x < 6; x = 8 shows the pure ramp
    assert_eq!(bar.pixel(8, 0), (hot.0, hot.1, hot.2));
    assert_eq!(bar.pixel(8, 40), (cold.0, cold.1, cold.2));
    // 5 ticks at even steps over height 41: rows 0, 10, 20, 30, 40
    for y in [0usize, 10, 20, 30, 40] {
        assert_eq!(bar.pixel(0, y), (20, 20, 20), "missing tick at y={y}");
    }
    // between ticks the left edge shows the ramp, not tick colour
    assert_ne!(bar.pixel(0, 5), (20, 20, 20));
    // luminance decreases monotonically down a grayscale bar
    let gbar = color_bar(ColorMap::Grayscale, Scale::Linear, 8, 30, 0);
    let mut prev = f64::INFINITY;
    for y in 0..30 {
        let l = luminance({
            let (r, g, b) = gbar.pixel(7, y);
            Rgb(r, g, b)
        });
        assert!(l <= prev + 0.5, "bar brightens going down at y={y}");
        prev = l;
    }
}
