//! Density normalisation: map raw kernel densities to `[0, 1]` before
//! colouring.
//!
//! Hotspot rasters are heavy-tailed — a linear scale shows one red dot in
//! a sea of blue — so GIS tools offer square-root and logarithmic scales
//! that expand the low end. All scales here are monotone and map
//! `[0, max]` onto `[0, 1]`.

/// Normalisation scale applied before the colour map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// `t = v / max`.
    #[default]
    Linear,
    /// `t = sqrt(v / max)` — expands the low end.
    Sqrt,
    /// `t = log(1 + s·v/max) / log(1 + s)` with boost `s = 999` — strongly
    /// expands the low end.
    Log,
}

impl Scale {
    /// Normalises `v` against `max` (both ≥ 0). Returns 0 for a
    /// non-positive `max` (all-zero raster).
    #[inline]
    pub fn normalize(&self, v: f64, max: f64) -> f64 {
        if max.is_nan() || max <= 0.0 {
            return 0.0;
        }
        let t = (v / max).clamp(0.0, 1.0);
        match self {
            Scale::Linear => t,
            Scale::Sqrt => t.sqrt(),
            Scale::Log => {
                const BOOST: f64 = 999.0;
                (1.0 + BOOST * t).ln() / (1.0 + BOOST).ln()
            }
        }
    }

    /// Normalises a whole raster into a fresh `[0, 1]` buffer.
    pub fn normalize_all(&self, values: &[f64]) -> Vec<f64> {
        let max = values.iter().copied().fold(0.0_f64, f64::max);
        values.iter().map(|&v| self.normalize(v, max)).collect()
    }
}

impl std::str::FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "linear" => Ok(Scale::Linear),
            "sqrt" => Ok(Scale::Sqrt),
            "log" => Ok(Scale::Log),
            other => Err(format!("unknown scale '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scales_fix_endpoints() {
        for s in [Scale::Linear, Scale::Sqrt, Scale::Log] {
            assert_eq!(s.normalize(0.0, 10.0), 0.0, "{s:?}");
            assert!((s.normalize(10.0, 10.0) - 1.0).abs() < 1e-12, "{s:?}");
        }
    }

    #[test]
    fn monotonicity() {
        for s in [Scale::Linear, Scale::Sqrt, Scale::Log] {
            let mut last = -1.0;
            for i in 0..=100 {
                let t = s.normalize(i as f64, 100.0);
                assert!(t >= last, "{s:?} not monotone at {i}");
                last = t;
            }
        }
    }

    #[test]
    fn nonlinear_scales_expand_low_end() {
        let lin = Scale::Linear.normalize(1.0, 100.0);
        let sqrt = Scale::Sqrt.normalize(1.0, 100.0);
        let log = Scale::Log.normalize(1.0, 100.0);
        assert!(sqrt > lin);
        assert!(log > sqrt);
    }

    #[test]
    fn zero_max_is_safe() {
        for s in [Scale::Linear, Scale::Sqrt, Scale::Log] {
            assert_eq!(s.normalize(5.0, 0.0), 0.0);
        }
        assert!(Scale::Linear.normalize_all(&[0.0, 0.0]).iter().all(|&t| t == 0.0));
    }

    #[test]
    fn normalize_all_uses_buffer_max() {
        let out = Scale::Linear.normalize_all(&[1.0, 2.0, 4.0]);
        assert_eq!(out, vec![0.25, 0.5, 1.0]);
    }
}
