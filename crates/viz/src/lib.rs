//! # kdv-viz — heat-map rendering for KDV
//!
//! Turns the density rasters produced by the engines into the hotspot
//! imagery of the paper's Figure 1:
//!
//! * [`normalize`] — linear / sqrt / log density scales.
//! * [`colormap`] — heat, grayscale and viridis-like gradients.
//! * [`image`] — RGB rendering plus PPM/PGM/ASCII output (hand-rolled;
//!   the formats are trivial and the dependency budget is spent on
//!   algorithmic crates).
//! * [`legend`] — colour-bar legends composed next to the heat map.

pub mod colormap;
pub mod image;
pub mod legend;
pub mod normalize;

pub use colormap::{ColorMap, Rgb};
pub use image::{ascii_art, render, render_with_max, shared_max, write_pgm, Image};
pub use legend::{color_bar, with_legend};
pub use normalize::Scale;
