//! Colour-bar legends and image composition.
//!
//! Published hotspot maps (paper Figure 1) carry a colour bar mapping
//! colours back to density. This module renders a vertical colour bar
//! with tick marks for a given colour map/scale, and composes it next to
//! a heat map into a single image.

use crate::colormap::ColorMap;
use crate::image::Image;
use crate::normalize::Scale;

/// A raw RGB buffer builder used for composition.
struct Canvas {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl Canvas {
    fn new(width: usize, height: usize, fill: (u8, u8, u8)) -> Self {
        let mut pixels = Vec::with_capacity(width * height * 3);
        for _ in 0..width * height {
            pixels.extend_from_slice(&[fill.0, fill.1, fill.2]);
        }
        Self { width, height, pixels }
    }

    #[inline]
    fn set(&mut self, x: usize, y: usize, rgb: (u8, u8, u8)) {
        if x < self.width && y < self.height {
            let i = (y * self.width + x) * 3;
            self.pixels[i] = rgb.0;
            self.pixels[i + 1] = rgb.1;
            self.pixels[i + 2] = rgb.2;
        }
    }

    fn blit(&mut self, img: &Image, ox: usize, oy: usize) {
        let (w, h) = img.dimensions();
        for y in 0..h {
            for x in 0..w {
                self.set(ox + x, oy + y, img.pixel(x, y));
            }
        }
    }

    fn into_image(self) -> Image {
        Image::from_raw(self.width, self.height, self.pixels)
    }
}

/// Renders a vertical colour bar of the given size: hottest at the top,
/// with `ticks` horizontal tick marks (dark lines) at even value steps.
pub fn color_bar(
    colormap: ColorMap,
    scale: Scale,
    width: usize,
    height: usize,
    ticks: usize,
) -> Image {
    let mut canvas = Canvas::new(width, height, (255, 255, 255));
    for y in 0..height {
        // top = max value
        let v = 1.0 - y as f64 / (height.max(2) - 1) as f64;
        // the bar shows normalised *output* of the scale: invert it so the
        // bar's vertical position is linear in displayed colour
        let c = colormap.map(scale.normalize(v, 1.0));
        for x in 0..width {
            canvas.set(x, y, (c.0, c.1, c.2));
        }
    }
    // tick marks
    if ticks > 1 && height > 1 {
        for t in 0..ticks {
            let y = (t * (height - 1)) / (ticks - 1);
            for x in 0..width.min(6) {
                canvas.set(x, y, (20, 20, 20));
            }
        }
    }
    canvas.into_image()
}

/// Composes a heat map with a colour bar on its right, separated by a
/// margin, on a white background.
pub fn with_legend(heatmap: &Image, colormap: ColorMap, scale: Scale) -> Image {
    let (w, h) = heatmap.dimensions();
    let bar_w = (w / 20).clamp(8, 40);
    let margin = (w / 40).clamp(4, 20);
    let bar = color_bar(colormap, scale, bar_w, h, 5);
    let mut canvas = Canvas::new(w + margin + bar_w, h, (255, 255, 255));
    canvas.blit(heatmap, 0, 0);
    canvas.blit(&bar, w + margin, 0);
    canvas.into_image()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::render;
    use kdv_core::grid::DensityGrid;

    #[test]
    fn color_bar_orientation_and_size() {
        let bar = color_bar(ColorMap::Grayscale, Scale::Linear, 10, 50, 0);
        assert_eq!(bar.dimensions(), (10, 50));
        // top is hottest (white for grayscale), bottom coldest (black)
        assert_eq!(bar.pixel(5, 0), (255, 255, 255));
        assert_eq!(bar.pixel(5, 49), (0, 0, 0));
    }

    #[test]
    fn ticks_are_drawn() {
        let bar = color_bar(ColorMap::Grayscale, Scale::Linear, 10, 50, 3);
        // tick rows at y = 0, 24(ish), 49 have dark pixels at x < 6
        assert_eq!(bar.pixel(0, 0), (20, 20, 20));
        assert_eq!(bar.pixel(0, 49), (20, 20, 20));
        // non-tick interior pixel keeps the gradient colour
        assert_ne!(bar.pixel(9, 25), (20, 20, 20));
    }

    #[test]
    fn composition_dimensions_and_content() {
        let mut g = DensityGrid::zeroed(40, 30);
        g.set(20, 15, 1.0);
        let hm = render(&g, ColorMap::Heat, Scale::Linear);
        let composed = with_legend(&hm, ColorMap::Heat, Scale::Linear);
        let (w, h) = composed.dimensions();
        assert_eq!(h, 30);
        assert!(w > 40, "legend adds width: {w}");
        // original heat map pixels preserved on the left
        assert_eq!(composed.pixel(20, 14), hm.pixel(20, 14));
        // margin column is white
        assert_eq!(composed.pixel(41, 10), (255, 255, 255));
    }
}
