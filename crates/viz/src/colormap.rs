//! Colour maps for heat-map rendering.
//!
//! KDV tools colour pixels from cold (low density) to hot (red = hotspot,
//! as in the paper's Figure 1). Maps here are small piecewise-linear
//! gradients over control points, evaluated at a normalised density in
//! `[0, 1]`.

/// An RGB colour with 8-bit channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rgb(pub u8, pub u8, pub u8);

/// Available colour maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColorMap {
    /// Blue → cyan → green → yellow → red: the classic KDV hotspot scheme.
    #[default]
    Heat,
    /// Black → white.
    Grayscale,
    /// Perceptually ordered dark-violet → teal → yellow gradient
    /// (viridis-like control points).
    Viridis,
}

impl ColorMap {
    fn control_points(&self) -> &'static [(f64, [f64; 3])] {
        match self {
            ColorMap::Heat => &[
                (0.00, [0.0, 0.0, 0.5]),
                (0.25, [0.0, 0.5, 1.0]),
                (0.50, [0.0, 0.9, 0.2]),
                (0.75, [1.0, 0.9, 0.0]),
                (1.00, [0.9, 0.05, 0.05]),
            ],
            ColorMap::Grayscale => &[(0.0, [0.0, 0.0, 0.0]), (1.0, [1.0, 1.0, 1.0])],
            ColorMap::Viridis => &[
                (0.00, [0.267, 0.005, 0.329]),
                (0.25, [0.230, 0.322, 0.546]),
                (0.50, [0.128, 0.567, 0.551]),
                (0.75, [0.369, 0.789, 0.383]),
                (1.00, [0.993, 0.906, 0.144]),
            ],
        }
    }

    /// Maps a normalised value `t ∈ [0, 1]` (clamped) to a colour.
    pub fn map(&self, t: f64) -> Rgb {
        let t = if t.is_nan() { 0.0 } else { t.clamp(0.0, 1.0) };
        let pts = self.control_points();
        let mut lo = pts[0];
        for &hi in &pts[1..] {
            if t <= hi.0 {
                let span = hi.0 - lo.0;
                let f = if span > 0.0 { (t - lo.0) / span } else { 0.0 };
                let c = [
                    lo.1[0] + f * (hi.1[0] - lo.1[0]),
                    lo.1[1] + f * (hi.1[1] - lo.1[1]),
                    lo.1[2] + f * (hi.1[2] - lo.1[2]),
                ];
                return Rgb(
                    (c[0] * 255.0).round() as u8,
                    (c[1] * 255.0).round() as u8,
                    (c[2] * 255.0).round() as u8,
                );
            }
            lo = hi;
        }
        let last = pts[pts.len() - 1].1;
        Rgb(
            (last[0] * 255.0).round() as u8,
            (last[1] * 255.0).round() as u8,
            (last[2] * 255.0).round() as u8,
        )
    }
}

impl std::str::FromStr for ColorMap {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "heat" => Ok(ColorMap::Heat),
            "gray" | "grayscale" | "grey" => Ok(ColorMap::Grayscale),
            "viridis" => Ok(ColorMap::Viridis),
            other => Err(format!("unknown colormap '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        assert_eq!(ColorMap::Grayscale.map(0.0), Rgb(0, 0, 0));
        assert_eq!(ColorMap::Grayscale.map(1.0), Rgb(255, 255, 255));
        assert_eq!(ColorMap::Grayscale.map(0.5), Rgb(128, 128, 128));
    }

    #[test]
    fn heat_goes_cold_to_hot() {
        let cold = ColorMap::Heat.map(0.0);
        let hot = ColorMap::Heat.map(1.0);
        assert!(cold.2 > cold.0, "cold end is blue-ish: {cold:?}");
        assert!(hot.0 > hot.2, "hot end is red-ish: {hot:?}");
    }

    #[test]
    fn out_of_range_clamped() {
        assert_eq!(ColorMap::Heat.map(-3.0), ColorMap::Heat.map(0.0));
        assert_eq!(ColorMap::Heat.map(7.0), ColorMap::Heat.map(1.0));
        assert_eq!(ColorMap::Heat.map(f64::NAN), ColorMap::Heat.map(0.0));
    }

    #[test]
    fn monotone_red_channel_on_upper_half() {
        // heat's red channel must not decrease between 0.5 and 1.0
        let mut last = ColorMap::Heat.map(0.5).0;
        for i in 1..=50 {
            let t = 0.5 + i as f64 * 0.01;
            let r = ColorMap::Heat.map(t).0;
            assert!(r as u16 + 1 >= last as u16, "red dipped at t={t}");
            last = r;
        }
    }

    #[test]
    fn parse() {
        assert_eq!("heat".parse::<ColorMap>().unwrap(), ColorMap::Heat);
        assert_eq!("GRAY".parse::<ColorMap>().unwrap(), ColorMap::Grayscale);
        assert!("plasma".parse::<ColorMap>().is_err());
    }
}
