//! Heat-map image rendering: density grid → RGB image → PPM/PGM/ASCII.
//!
//! Output formats are hand-rolled binary PPM (P6) / PGM (P5) — the
//! simplest formats every image viewer understands — plus an ASCII art
//! renderer for terminal-only smoke checks. The image is flipped
//! vertically relative to the grid: grid row 0 (smallest y) is the
//! *bottom* scanline, matching geographic orientation.

use std::io::{self, BufWriter, Write};
use std::path::Path;

use kdv_core::grid::DensityGrid;

use crate::colormap::ColorMap;
use crate::normalize::Scale;

/// An 8-bit RGB raster image.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    /// Row-major RGB bytes, top scanline first.
    pixels: Vec<u8>,
}

impl Image {
    /// Builds an image from a raw row-major RGB buffer.
    ///
    /// # Panics
    /// Panics if `pixels.len() != width * height * 3`.
    pub fn from_raw(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert_eq!(pixels.len(), width * height * 3, "RGB buffer size mismatch");
        Self { width, height, pixels }
    }

    /// Image dimensions `(width, height)`.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// RGB triple at image coordinates (x, y), y = 0 at the *top*.
    pub fn pixel(&self, x: usize, y: usize) -> (u8, u8, u8) {
        let i = (y * self.width + x) * 3;
        (self.pixels[i], self.pixels[i + 1], self.pixels[i + 2])
    }

    /// Raw RGB byte buffer.
    pub fn bytes(&self) -> &[u8] {
        &self.pixels
    }

    /// Writes the image as a binary PPM (P6).
    pub fn write_ppm<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut w = BufWriter::new(writer);
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        w.write_all(&self.pixels)?;
        w.flush()
    }

    /// Writes the image to a `.ppm` file.
    pub fn save_ppm(&self, path: &Path) -> io::Result<()> {
        self.write_ppm(std::fs::File::create(path)?)
    }
}

/// Renders a density grid to an RGB heat map, normalising against the
/// grid's own maximum.
pub fn render(grid: &DensityGrid, colormap: ColorMap, scale: Scale) -> Image {
    render_with_max(grid, colormap, scale, grid.max_value())
}

/// Renders a density grid normalised against a caller-supplied maximum.
///
/// This is the tile-mosaic entry point: a tile coloured against its *own*
/// max shifts hue whenever the viewport moves, so tiles of one zoom level
/// must share the level-wide maximum (see [`shared_max`]). With the same
/// `max`, rendering tiles independently and pasting them together is
/// pixel-identical to rendering the stitched grid in one call.
pub fn render_with_max(grid: &DensityGrid, colormap: ColorMap, scale: Scale, max: f64) -> Image {
    let (w, h) = (grid.res_x(), grid.res_y());
    let mut pixels = Vec::with_capacity(w * h * 3);
    for y in 0..h {
        let j = h - 1 - y; // flip: top scanline = largest y
        for i in 0..w {
            let t = scale.normalize(grid.get(i, j), max);
            let c = colormap.map(t);
            pixels.extend_from_slice(&[c.0, c.1, c.2]);
        }
    }
    Image { width: w, height: h, pixels }
}

/// Maximum density across several rasters (e.g. all tiles of a zoom
/// level), for use as the shared `max` of [`render_with_max`]. NaNs are
/// ignored; an empty input yields 0 (which renders all-black).
pub fn shared_max<'a, I>(rasters: I) -> f64
where
    I: IntoIterator<Item = &'a [f64]>,
{
    rasters
        .into_iter()
        .flat_map(|r| r.iter().copied())
        .filter(|v| !v.is_nan())
        .fold(0.0_f64, f64::max)
}

/// Writes a density grid as a binary PGM (P5) grayscale image.
pub fn write_pgm<W: Write>(writer: W, grid: &DensityGrid, scale: Scale) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    write!(w, "P5\n{} {}\n255\n", grid.res_x(), grid.res_y())?;
    let max = grid.max_value();
    for y in 0..grid.res_y() {
        let j = grid.res_y() - 1 - y;
        for i in 0..grid.res_x() {
            let t = scale.normalize(grid.get(i, j), max);
            w.write_all(&[(t * 255.0).round() as u8])?;
        }
    }
    w.flush()
}

/// Density ramp used by the ASCII renderer, light to heavy.
const ASCII_RAMP: &[u8] = b" .:-=+*#%@";

/// Renders the grid as ASCII art (one char per pixel, top row = largest y).
pub fn ascii_art(grid: &DensityGrid, scale: Scale) -> String {
    let max = grid.max_value();
    let mut out = String::with_capacity((grid.res_x() + 1) * grid.res_y());
    for y in 0..grid.res_y() {
        let j = grid.res_y() - 1 - y;
        for i in 0..grid.res_x() {
            let t = scale.normalize(grid.get(i, j), max);
            let idx =
                ((t * (ASCII_RAMP.len() - 1) as f64).round() as usize).min(ASCII_RAMP.len() - 1);
            out.push(ASCII_RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_grid() -> DensityGrid {
        // 4x3 grid with a single hot pixel at (3, 2) (top-right in geo)
        let mut g = DensityGrid::zeroed(4, 3);
        g.set(3, 2, 10.0);
        g.set(0, 0, 2.5);
        g
    }

    #[test]
    fn render_flips_vertically() {
        let img = render(&gradient_grid(), ColorMap::Grayscale, Scale::Linear);
        assert_eq!(img.dimensions(), (4, 3));
        // grid (3,2) — max — must be at image top-right (3,0), white
        assert_eq!(img.pixel(3, 0), (255, 255, 255));
        // grid (0,0) — 25% — at image bottom-left (0,2)
        assert_eq!(img.pixel(0, 2), (64, 64, 64));
        // an untouched pixel is black
        assert_eq!(img.pixel(1, 1), (0, 0, 0));
    }

    #[test]
    fn ppm_header_and_size() {
        let img = render(&gradient_grid(), ColorMap::Heat, Scale::Linear);
        let mut buf = Vec::new();
        img.write_ppm(&mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(buf.len(), "P6\n4 3\n255\n".len() + 4 * 3 * 3);
    }

    #[test]
    fn pgm_header_and_payload() {
        let mut buf = Vec::new();
        write_pgm(&mut buf, &gradient_grid(), Scale::Linear).unwrap();
        assert!(buf.starts_with(b"P5\n4 3\n255\n"));
        let payload = &buf["P5\n4 3\n255\n".len()..];
        assert_eq!(payload.len(), 12);
        assert_eq!(payload[3], 255, "hot pixel at top-right");
        assert_eq!(payload[8], 64, "quarter-bright pixel at bottom-left");
    }

    #[test]
    fn ascii_shape_and_extremes() {
        let art = ascii_art(&gradient_grid(), Scale::Linear);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == 4));
        assert_eq!(lines[0].as_bytes()[3], b'@', "hottest pixel heaviest glyph");
        assert_eq!(lines[1].as_bytes()[0], b' ', "zero density blank");
    }

    #[test]
    fn all_zero_grid_renders_black() {
        let g = DensityGrid::zeroed(2, 2);
        let img = render(&g, ColorMap::Grayscale, Scale::Log);
        assert!(img.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn shared_max_skips_nans_and_handles_empty() {
        let a = [1.0, f64::NAN, 3.0];
        let b = [2.0, 0.5];
        assert_eq!(shared_max([&a[..], &b[..]]), 3.0);
        assert_eq!(shared_max(std::iter::empty::<&[f64]>()), 0.0);
    }

    /// Tiles rendered independently against the level-wide shared max must
    /// paste into the exact pixel buffer of rendering the stitched grid in
    /// one call — the property that lets a tile server colour cached tiles
    /// without ever seeing the whole viewport.
    #[test]
    fn tile_mosaic_renders_pixel_identical_to_full_render() {
        use kdv_core::driver::KdvParams;
        use kdv_core::geom::{Point, Rect};
        use kdv_core::grid::GridSpec;
        use kdv_core::tile::{compute_tiles, stitch, Tiling};
        use kdv_core::KernelType;

        let region = Rect::new(0.0, 0.0, 100.0, 80.0);
        let points: Vec<Point> = (0..200)
            .map(|i| {
                let t = i as f64;
                Point::new(50.0 + 40.0 * (t * 0.37).sin(), 40.0 + 30.0 * (t * 0.53).cos())
            })
            .collect();
        let grid = GridSpec::new(region, 50, 36).unwrap();
        let params = KdvParams::new(grid, KernelType::Quartic, 18.0).with_weight(0.005);

        let tile_size = 16;
        let tiles = compute_tiles(&params, &points, tile_size).unwrap();
        let tiling = Tiling::new(50, 36, tile_size).unwrap();
        let full = stitch(&tiling, &tiles);

        for (colormap, scale) in [(ColorMap::Heat, Scale::Sqrt), (ColorMap::Viridis, Scale::Log)] {
            let max = shared_max(tiles.iter().map(|t| t.values()));
            assert_eq!(max, full.max_value(), "shared max must equal the stitched max");
            let reference = render(&full, colormap, scale);

            // render every tile on its own, then paste the scanlines
            let mut mosaic = vec![0u8; 50 * 36 * 3];
            for tile in &tiles {
                let tile_grid =
                    DensityGrid::from_values(tile.width, tile.height, tile.values().to_vec());
                let img = render_with_max(&tile_grid, colormap, scale, max);
                let x0 = tile.tx * tile_size;
                let rows = tiling.tile_rows(tile.ty);
                for iy in 0..tile.height {
                    // image row iy corresponds to grid row (height-1-iy);
                    // place it at the full image's row for that grid row
                    let grid_row = rows.start + (tile.height - 1 - iy);
                    let full_iy = 36 - 1 - grid_row;
                    let src = &img.bytes()[iy * tile.width * 3..(iy + 1) * tile.width * 3];
                    let dst_off = (full_iy * 50 + x0) * 3;
                    mosaic[dst_off..dst_off + src.len()].copy_from_slice(src);
                }
            }
            assert_eq!(mosaic, reference.bytes(), "{colormap:?}/{scale:?} mosaic diverged");
        }
    }
}
