//! Incremental re-rendering for panning (extension beyond the paper).
//!
//! When a viewport pans by an exact multiple of the pixel gap, most pixel
//! centres of the new raster coincide with pixel centres of the previous
//! one, so their densities can be copied instead of recomputed. Only the
//! newly exposed band needs a sweep:
//!
//! * a vertical pan of `dj` rows recomputes `|dj|` rows — `O(|dj|·(X+n))`
//!   instead of `O(Y·(X+n))`;
//! * a horizontal pan is handled by transposing the problem so the newly
//!   exposed columns become rows;
//! * diagonal or non-integral pans fall back to a full SLAM render.
//!
//! Copied pixels are bitwise-identical in real arithmetic; in `f64` they
//! can differ from a fresh render by rounding because the recentring
//! origin moves with the region, so [`pan_render`] recomputes the shared
//! band only when the caller asks for strict freshness.

use kdv_core::driver::KdvParams;
use kdv_core::geom::Point;
use kdv_core::grid::{DensityGrid, GridSpec};
use kdv_core::{rao, Result};

/// How a previous render can be reused for a new, panned viewport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanReuse {
    /// New region is the old region translated by whole pixels
    /// `(di, dj)`; the overlap can be copied.
    Shift {
        /// Pixel shift along x (positive = panned right).
        di: isize,
        /// Pixel shift along y (positive = panned up).
        dj: isize,
    },
    /// No exploitable relationship — full recompute.
    Full,
}

/// Classifies the relationship between two grids of equal resolution.
pub fn classify_pan(prev: &GridSpec, next: &GridSpec) -> PanReuse {
    if prev.res_x != next.res_x || prev.res_y != next.res_y {
        return PanReuse::Full;
    }
    let (gx, gy) = (prev.gap_x(), prev.gap_y());
    // same pixel gaps?
    if (next.gap_x() - gx).abs() > 1e-9 * gx || (next.gap_y() - gy).abs() > 1e-9 * gy {
        return PanReuse::Full;
    }
    let fx = (next.region.min_x - prev.region.min_x) / gx;
    let fy = (next.region.min_y - prev.region.min_y) / gy;
    let (ri, rj) = (fx.round(), fy.round());
    // integral shift within float tolerance?
    if (fx - ri).abs() > 1e-6 || (fy - rj).abs() > 1e-6 {
        return PanReuse::Full;
    }
    if ri.abs() >= prev.res_x as f64 || rj.abs() >= prev.res_y as f64 {
        return PanReuse::Full; // no overlap at all
    }
    PanReuse::Shift { di: ri as isize, dj: rj as isize }
}

/// Renders the KDV for `next_params`, reusing `prev` (rendered under
/// `prev_spec` with the same kernel/bandwidth/weight) when the viewport
/// pan allows it. Returns the new grid and the number of pixels actually
/// recomputed (for instrumentation; equals `X·Y` on a full render).
pub fn pan_render(
    prev: &DensityGrid,
    prev_spec: &GridSpec,
    next_params: &KdvParams,
    points: &[Point],
) -> Result<(DensityGrid, usize)> {
    let next_spec = next_params.grid;
    match classify_pan(prev_spec, &next_spec) {
        PanReuse::Shift { di, dj } if di == 0 && dj != 0 => {
            vertical_shift(prev, next_params, points, dj)
        }
        PanReuse::Shift { di, dj } if dj == 0 && di != 0 => {
            // transpose: horizontal pan becomes vertical in the transposed
            // problem, then transpose the result back
            let t_prev = prev.transposed();
            let t_params = next_params.transposed();
            let t_points: Vec<Point> = points.iter().map(Point::transposed).collect();
            let (t_out, recomputed) = vertical_shift(&t_prev, &t_params, &t_points, di)?;
            Ok((t_out.transposed(), recomputed))
        }
        PanReuse::Shift { di: 0, dj: 0 } => Ok((prev.clone(), 0)),
        _ => {
            let out = rao::compute_bucket(next_params, points)?;
            let n = out.res_x() * out.res_y();
            Ok((out, n))
        }
    }
}

/// Copies the overlapping rows and sweeps only the newly exposed band.
fn vertical_shift(
    prev: &DensityGrid,
    next_params: &KdvParams,
    points: &[Point],
    dj: isize,
) -> Result<(DensityGrid, usize)> {
    let res_x = next_params.grid.res_x;
    let res_y = next_params.grid.res_y;
    let mut out = DensityGrid::zeroed(res_x, res_y);

    // new row j corresponds to old row j + dj
    let mut missing_rows: Vec<usize> = Vec::new();
    for j in 0..res_y {
        let old_j = j as isize + dj;
        if (0..res_y as isize).contains(&old_j) {
            out.row_mut(j).copy_from_slice(prev.row(old_j as usize));
        } else {
            missing_rows.push(j);
        }
    }

    // sweep just the missing band: reuse the row driver manually
    use kdv_core::driver::{RowEngine, SweepContext};
    use kdv_core::envelope::EnvelopeBuffer;
    use kdv_core::sweep_bucket::BucketSweep;
    let ctx = SweepContext::new(next_params, points)?;
    let mut envelope = EnvelopeBuffer::with_capacity(points.len().min(1 << 20));
    let mut engine =
        BucketSweep::new(next_params.kernel, next_params.bandwidth, next_params.weight);
    for &j in &missing_rows {
        let k = ctx.ks[j];
        // banded extraction: the missing rows are a thin band, so the
        // O(log n) lookup beats a full point scan per row
        let band = ctx.index.band(next_params.bandwidth, k);
        if band.is_empty() {
            continue;
        }
        let intervals = envelope.fill_band(&ctx.index, band, next_params.bandwidth, k);
        engine.process_row(&ctx.xs, k, intervals, out.row_mut(j));
    }
    Ok((out, missing_rows.len() * res_x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::geom::Rect;
    use kdv_core::KernelType;

    fn setup() -> (KdvParams, Vec<Point>) {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 100.0, 80.0), 20, 16).unwrap();
        let params = KdvParams::new(grid, KernelType::Epanechnikov, 15.0).with_weight(0.01);
        let mut state = 77u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts =
            (0..400).map(|_| Point::new(next() * 140.0 - 20.0, next() * 120.0 - 20.0)).collect();
        (params, pts)
    }

    fn close(a: &DensityGrid, b: &DensityGrid) -> bool {
        let scale = b.max_value().max(1e-300);
        a.values().iter().zip(b.values()).all(|(x, y)| (x - y).abs() / scale < 1e-9)
    }

    #[test]
    fn classify_detects_integral_shifts() {
        let (params, _) = setup();
        let spec = params.grid;
        let (gx, gy) = (spec.gap_x(), spec.gap_y());
        let up3 = GridSpec::new(spec.region.translated(0.0, 3.0 * gy), 20, 16).unwrap();
        assert_eq!(classify_pan(&spec, &up3), PanReuse::Shift { di: 0, dj: 3 });
        let right2 = GridSpec::new(spec.region.translated(2.0 * gx, 0.0), 20, 16).unwrap();
        assert_eq!(classify_pan(&spec, &right2), PanReuse::Shift { di: 2, dj: 0 });
        let diag = GridSpec::new(spec.region.translated(gx, gy), 20, 16).unwrap();
        assert_eq!(classify_pan(&spec, &diag), PanReuse::Shift { di: 1, dj: 1 });
        let frac = GridSpec::new(spec.region.translated(0.5 * gx, 0.0), 20, 16).unwrap();
        assert_eq!(classify_pan(&spec, &frac), PanReuse::Full);
        let zoom = GridSpec::new(spec.region.scaled_about_center(0.5, 0.5), 20, 16).unwrap();
        assert_eq!(classify_pan(&spec, &zoom), PanReuse::Full);
    }

    #[test]
    fn vertical_pan_matches_full_render() {
        let (params, pts) = setup();
        let prev = rao::compute_bucket(&params, &pts).unwrap();
        for dj in [-5isize, -1, 1, 4, 15] {
            let region = params.grid.region.translated(0.0, dj as f64 * params.grid.gap_y());
            let next_grid = GridSpec::new(region, 20, 16).unwrap();
            let next_params = KdvParams { grid: next_grid, ..params };
            let (inc, recomputed) = pan_render(&prev, &params.grid, &next_params, &pts).unwrap();
            let full = rao::compute_bucket(&next_params, &pts).unwrap();
            assert!(close(&inc, &full), "dj={dj}");
            assert_eq!(recomputed, dj.unsigned_abs() * 20, "dj={dj}");
        }
    }

    #[test]
    fn horizontal_pan_matches_full_render() {
        let (params, pts) = setup();
        let prev = rao::compute_bucket(&params, &pts).unwrap();
        for di in [-3isize, 2, 7] {
            let region = params.grid.region.translated(di as f64 * params.grid.gap_x(), 0.0);
            let next_grid = GridSpec::new(region, 20, 16).unwrap();
            let next_params = KdvParams { grid: next_grid, ..params };
            let (inc, recomputed) = pan_render(&prev, &params.grid, &next_params, &pts).unwrap();
            let full = rao::compute_bucket(&next_params, &pts).unwrap();
            assert!(close(&inc, &full), "di={di}");
            assert_eq!(recomputed, di.unsigned_abs() * 16, "di={di}");
        }
    }

    #[test]
    fn diagonal_and_zoom_fall_back_to_full() {
        let (params, pts) = setup();
        let prev = rao::compute_bucket(&params, &pts).unwrap();
        let region = params.grid.region.translated(params.grid.gap_x(), params.grid.gap_y());
        let next_grid = GridSpec::new(region, 20, 16).unwrap();
        let next_params = KdvParams { grid: next_grid, ..params };
        let (inc, recomputed) = pan_render(&prev, &params.grid, &next_params, &pts).unwrap();
        assert_eq!(recomputed, 20 * 16, "diagonal pan must recompute fully");
        let full = rao::compute_bucket(&next_params, &pts).unwrap();
        assert!(close(&inc, &full));
    }

    #[test]
    fn zero_shift_returns_copy() {
        let (params, pts) = setup();
        let prev = rao::compute_bucket(&params, &pts).unwrap();
        let (inc, recomputed) = pan_render(&prev, &params.grid, &params, &pts).unwrap();
        assert_eq!(recomputed, 0);
        assert_eq!(inc, prev);
    }
}
