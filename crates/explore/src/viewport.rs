//! Viewports: the geographic window + raster resolution a user is looking
//! at, with the zoom/pan algebra of the paper's exploratory operations
//! (Figure 2, Section 4.2).
//!
//! The paper's zooming experiment scales the dataset MBR by a ratio while
//! holding the raster at 1280×960; panning slides a half-size window to
//! random positions inside the MBR. Both are pure `Rect` transformations
//! here, so a viewport can replay the exact experimental protocol.

use kdv_core::geom::{Point, Rect};
use kdv_core::grid::GridSpec;
use kdv_core::Result;

/// A geographic window rendered at a fixed pixel resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viewport {
    /// Geographic region currently visible.
    pub region: Rect,
    /// Raster width in pixels.
    pub res_x: usize,
    /// Raster height in pixels.
    pub res_y: usize,
}

impl Viewport {
    /// Creates a viewport; resolution defaults mirror the paper (1280×960).
    pub fn new(region: Rect, res_x: usize, res_y: usize) -> Self {
        Self { region, res_x, res_y }
    }

    /// The paper's default resolution over `region`.
    pub fn paper_default(region: Rect) -> Self {
        Self::new(region, 1280, 960)
    }

    /// The corresponding grid specification (validates the geometry).
    pub fn grid_spec(&self) -> Result<GridSpec> {
        GridSpec::new(self.region, self.res_x, self.res_y)
    }

    /// Zooms about the region centre: `ratio < 1` zooms in, `> 1` out.
    /// Resolution is unchanged (the paper fixes it during zooming).
    pub fn zoomed(&self, ratio: f64) -> Viewport {
        Viewport { region: self.region.scaled_about_center(ratio, ratio), ..*self }
    }

    /// Zooms about an arbitrary anchor point, keeping the anchor at the
    /// same relative position in the window (map-UI style zoom).
    pub fn zoomed_about(&self, anchor: Point, ratio: f64) -> Viewport {
        let r = &self.region;
        let min_x = anchor.x - (anchor.x - r.min_x) * ratio;
        let max_x = anchor.x + (r.max_x - anchor.x) * ratio;
        let min_y = anchor.y - (anchor.y - r.min_y) * ratio;
        let max_y = anchor.y + (r.max_y - anchor.y) * ratio;
        Viewport { region: Rect::new(min_x, min_y, max_x, max_y), ..*self }
    }

    /// Pans by a fraction of the current window size (e.g. `(0.5, 0)` is
    /// half a screen to the right).
    pub fn panned(&self, dx_frac: f64, dy_frac: f64) -> Viewport {
        Viewport {
            region: self
                .region
                .translated(dx_frac * self.region.width(), dy_frac * self.region.height()),
            ..*self
        }
    }
}

/// The zoom regions of the paper's Figure-16 zoom experiment: the MBR
/// scaled about its centre by each ratio (0.25 / 0.5 / 0.75 / 1).
pub fn zoom_regions(mbr: Rect, ratios: &[f64]) -> Vec<Rect> {
    ratios.iter().map(|&r| mbr.scaled_about_center(r, r)).collect()
}

/// The pan regions of the paper's Figure-16 pan experiment: `count`
/// randomly placed windows of size `0.5H × 0.5W` inside the MBR, seeded.
pub fn pan_regions(mbr: Rect, count: usize, seed: u64) -> Vec<Rect> {
    let (w, h) = (mbr.width() * 0.5, mbr.height() * 0.5);
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*: deterministic, dependency-free
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..count)
        .map(|_| {
            let x0 = mbr.min_x + next() * (mbr.width() - w);
            let y0 = mbr.min_y + next() * (mbr.height() - h);
            Rect::new(x0, y0, x0 + w, y0 + h)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp() -> Viewport {
        Viewport::new(Rect::new(0.0, 0.0, 100.0, 50.0), 64, 32)
    }

    #[test]
    fn zoom_in_shrinks_about_center() {
        let z = vp().zoomed(0.5);
        assert_eq!(z.region, Rect::new(25.0, 12.5, 75.0, 37.5));
        assert_eq!(z.res_x, 64, "resolution fixed during zoom");
    }

    #[test]
    fn zoom_about_anchor_keeps_anchor_fraction() {
        let v = vp();
        let anchor = Point::new(20.0, 10.0); // at 20% / 20% of the window
        let z = v.zoomed_about(anchor, 0.5);
        let fx = (anchor.x - z.region.min_x) / z.region.width();
        let fy = (anchor.y - z.region.min_y) / z.region.height();
        assert!((fx - 0.2).abs() < 1e-12);
        assert!((fy - 0.2).abs() < 1e-12);
        assert!((z.region.width() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn pan_moves_by_window_fraction() {
        let p = vp().panned(0.5, -0.25);
        assert_eq!(p.region, Rect::new(50.0, -12.5, 150.0, 37.5));
    }

    #[test]
    fn zoom_regions_match_paper_ratios() {
        let mbr = Rect::new(0.0, 0.0, 40.0, 40.0);
        let regions = zoom_regions(mbr, &[0.25, 0.5, 0.75, 1.0]);
        assert_eq!(regions.len(), 4);
        assert!((regions[0].width() - 10.0).abs() < 1e-12);
        assert_eq!(regions[3], mbr);
        for r in &regions {
            assert_eq!(r.center(), mbr.center());
        }
    }

    #[test]
    fn pan_regions_are_half_size_and_inside() {
        let mbr = Rect::new(10.0, 20.0, 110.0, 80.0);
        let regions = pan_regions(mbr, 5, 99);
        assert_eq!(regions.len(), 5);
        for r in &regions {
            assert!((r.width() - 50.0).abs() < 1e-9);
            assert!((r.height() - 30.0).abs() < 1e-9);
            assert!(r.min_x >= mbr.min_x - 1e-9 && r.max_x <= mbr.max_x + 1e-9);
            assert!(r.min_y >= mbr.min_y - 1e-9 && r.max_y <= mbr.max_y + 1e-9);
        }
        // deterministic
        assert_eq!(regions, pan_regions(mbr, 5, 99));
    }

    #[test]
    fn grid_spec_validation_propagates() {
        let bad = Viewport::new(Rect::new(0.0, 0.0, 10.0, 10.0), 0, 10);
        assert!(bad.grid_spec().is_err());
        assert!(vp().grid_spec().is_ok());
    }
}
