//! # kdv-explore — exploratory operations over KDV
//!
//! The paper motivates SLAM with exploratory visual analytics: a domain
//! expert generates *many* KDVs per dataset via zooming, panning, bandwidth
//! selection, attribute-based filtering and time-based filtering
//! (Figure 2). This crate models that workload:
//!
//! * [`viewport`] — the geographic window + raster resolution, with the
//!   zoom/pan algebra and the paper's Figure-16 region protocols.
//! * [`session`] — a stateful [`session::ExploreSession`] that applies
//!   operations and re-renders through a SLAM engine, reporting per-render
//!   workload statistics.
//! * [`incremental`] — copy-and-sweep re-rendering for whole-pixel pans
//!   (an extension beyond the paper).

pub mod incremental;
pub mod session;
pub mod viewport;

pub use session::{Bandwidth, ExploreSession, RenderResult};
pub use viewport::{pan_regions, zoom_regions, Viewport};
