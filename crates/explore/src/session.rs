//! Interactive exploration sessions.
//!
//! An [`ExploreSession`] bundles a dataset with the state a visual-analytic
//! tool mutates — viewport, kernel, bandwidth, time window, category — and
//! re-renders the KDV after each operation (the workload of the paper's
//! Figure 2 and the zoom/pan experiment of Figure 16). Rendering always
//! goes through a SLAM engine, the point the paper makes: with
//! `SLAM_BUCKET^(RAO)` each exploratory step is near-real-time.

use std::time::{Duration, Instant};

use kdv_core::driver::KdvParams;
use kdv_core::geom::Point;
use kdv_core::grid::DensityGrid;
use kdv_core::{KdvEngine, KernelType, Method, Result};
use kdv_data::record::Dataset;
use kdv_data::scott::scott_bandwidth;

use crate::viewport::Viewport;

/// Bandwidth policy: explicit, or Scott's rule over the *filtered* points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bandwidth {
    /// Fixed bandwidth in data units.
    Fixed(f64),
    /// Scott's rule, recomputed whenever the filters change.
    ScottRule,
}

/// Outcome of one render: the raster plus workload statistics.
#[derive(Debug, Clone)]
pub struct RenderResult {
    /// The density raster for the current viewport.
    pub grid: DensityGrid,
    /// Number of points that survived the filters.
    pub points_used: usize,
    /// Bandwidth actually applied.
    pub bandwidth: f64,
    /// Wall-clock time of the KDV computation itself.
    pub elapsed: Duration,
}

/// A stateful KDV exploration over one dataset.
///
/// ```
/// use kdv_data::City;
/// use kdv_explore::{Bandwidth, ExploreSession, Viewport};
///
/// let mut session = ExploreSession::new(City::Seattle.dataset(0.0005));
/// let mbr = session.viewport().region;
/// session.set_viewport(Viewport::new(mbr, 64, 48));
/// session.zoom(0.5).pan(0.25, 0.0).set_bandwidth(Bandwidth::Fixed(1_000.0));
/// let result = session.render()?;
/// assert_eq!(result.grid.res_x(), 64);
/// assert!(result.points_used > 0);
/// # Ok::<(), kdv_core::KdvError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExploreSession {
    dataset: Dataset,
    viewport: Viewport,
    kernel: KernelType,
    bandwidth: Bandwidth,
    method: Method,
    time_window: Option<(i64, i64)>,
    category: Option<u16>,
}

impl ExploreSession {
    /// A session over `dataset`, initially showing its full MBR at the
    /// paper's default resolution, Epanechnikov kernel, Scott's-rule
    /// bandwidth and the best SLAM variant.
    pub fn new(dataset: Dataset) -> Self {
        let viewport = Viewport::paper_default(dataset.mbr());
        Self {
            dataset,
            viewport,
            kernel: KernelType::Epanechnikov,
            bandwidth: Bandwidth::ScottRule,
            method: Method::SlamBucketRao,
            time_window: None,
            category: None,
        }
    }

    /// Current viewport.
    pub fn viewport(&self) -> Viewport {
        self.viewport
    }

    /// Replaces the viewport (arbitrary jump).
    pub fn set_viewport(&mut self, viewport: Viewport) -> &mut Self {
        self.viewport = viewport;
        self
    }

    /// Zooms about the window centre (`ratio < 1` zooms in).
    pub fn zoom(&mut self, ratio: f64) -> &mut Self {
        self.viewport = self.viewport.zoomed(ratio);
        self
    }

    /// Zooms about an anchor point.
    pub fn zoom_about(&mut self, anchor: Point, ratio: f64) -> &mut Self {
        self.viewport = self.viewport.zoomed_about(anchor, ratio);
        self
    }

    /// Pans by window-size fractions.
    pub fn pan(&mut self, dx_frac: f64, dy_frac: f64) -> &mut Self {
        self.viewport = self.viewport.panned(dx_frac, dy_frac);
        self
    }

    /// Switches the kernel function.
    pub fn set_kernel(&mut self, kernel: KernelType) -> &mut Self {
        self.kernel = kernel;
        self
    }

    /// Sets the bandwidth policy (bandwidth-selection operation).
    pub fn set_bandwidth(&mut self, bandwidth: Bandwidth) -> &mut Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Chooses the SLAM variant used for rendering.
    pub fn set_method(&mut self, method: Method) -> &mut Self {
        self.method = method;
        self
    }

    /// Restricts rendering to events with `from ≤ t < to`
    /// (time-based filtering); `None` clears the filter.
    pub fn set_time_window(&mut self, window: Option<(i64, i64)>) -> &mut Self {
        self.time_window = window;
        self
    }

    /// Restricts rendering to one category (attribute-based filtering);
    /// `None` clears the filter.
    pub fn set_category(&mut self, category: Option<u16>) -> &mut Self {
        self.category = category;
        self
    }

    /// The filtered point set the next render will use.
    pub fn filtered_points(&self) -> Vec<Point> {
        self.dataset
            .records
            .iter()
            .filter(|r| match self.time_window {
                Some((from, to)) => r.timestamp >= from && r.timestamp < to,
                None => true,
            })
            .filter(|r| match self.category {
                Some(c) => r.category == c,
                None => true,
            })
            .map(|r| r.point)
            .collect()
    }

    /// Renders the KDV for the current state.
    ///
    /// Weight is normalised to `1/n` over the filtered points, so densities
    /// are comparable across filter settings.
    pub fn render(&self) -> Result<RenderResult> {
        let points = self.filtered_points();
        let bandwidth = match self.bandwidth {
            Bandwidth::Fixed(b) => b,
            Bandwidth::ScottRule => {
                let b = scott_bandwidth(&points);
                if b > 0.0 {
                    b
                } else {
                    // degenerate (≤1 point): fall back to 1% of the window
                    0.01 * self.viewport.region.width().max(self.viewport.region.height())
                }
            }
        };
        let grid_spec = self.viewport.grid_spec()?;
        let weight = if points.is_empty() { 1.0 } else { 1.0 / points.len() as f64 };
        let params = KdvParams::new(grid_spec, self.kernel, bandwidth).with_weight(weight);
        let start = Instant::now();
        let grid = KdvEngine::new(self.method).compute(&params, &points)?;
        Ok(RenderResult { grid, points_used: points.len(), bandwidth, elapsed: start.elapsed() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::geom::Rect;
    use kdv_data::record::{year_start, EventRecord};

    fn dataset() -> Dataset {
        let mut records = Vec::new();
        for i in 0..400usize {
            let x = (i % 20) as f64 * 5.0;
            let y = (i / 20) as f64 * 5.0;
            records.push(EventRecord {
                point: Point::new(x, y),
                timestamp: year_start(2018) + (i as i64) * 86_400,
                category: (i % 3) as u16,
            });
        }
        Dataset::new("grid-city", records)
    }

    fn small_session() -> ExploreSession {
        let mut s = ExploreSession::new(dataset());
        let mbr = Rect::new(0.0, 0.0, 95.0, 95.0);
        s.set_viewport(Viewport::new(mbr, 32, 24));
        s
    }

    #[test]
    fn render_full_dataset() {
        let s = small_session();
        let r = s.render().unwrap();
        assert_eq!(r.points_used, 400);
        assert!(r.bandwidth > 0.0);
        assert!(r.grid.max_value() > 0.0);
        assert_eq!(r.grid.res_x(), 32);
    }

    #[test]
    fn filters_shrink_the_workload() {
        let mut s = small_session();
        s.set_category(Some(0));
        let r = s.render().unwrap();
        assert_eq!(r.points_used, 134); // ⌈400/3⌉ for category 0

        s.set_category(None);
        s.set_time_window(Some((year_start(2018), year_start(2018) + 100 * 86_400)));
        let r = s.render().unwrap();
        assert_eq!(r.points_used, 100);

        // composed filters
        s.set_category(Some(1));
        let r = s.render().unwrap();
        assert!(r.points_used < 100 && r.points_used > 0);
    }

    #[test]
    fn zoom_changes_region_not_resolution() {
        let mut s = small_session();
        let before = s.viewport().region;
        s.zoom(0.5);
        let after = s.viewport().region;
        assert!((after.width() - before.width() * 0.5).abs() < 1e-9);
        assert_eq!(s.viewport().res_x, 32);
        assert!(s.render().is_ok());
    }

    #[test]
    fn fixed_vs_scott_bandwidth() {
        let mut s = small_session();
        s.set_bandwidth(Bandwidth::Fixed(7.0));
        assert_eq!(s.render().unwrap().bandwidth, 7.0);
        s.set_bandwidth(Bandwidth::ScottRule);
        let b = s.render().unwrap().bandwidth;
        assert!(b > 0.0 && b != 7.0);
    }

    #[test]
    fn empty_filter_result_renders_zero_grid() {
        let mut s = small_session();
        s.set_category(Some(999));
        let r = s.render().unwrap();
        assert_eq!(r.points_used, 0);
        assert_eq!(r.grid.max_value(), 0.0);
    }

    #[test]
    fn all_slam_methods_render_identically() {
        let mut s = small_session();
        s.set_bandwidth(Bandwidth::Fixed(12.0));
        let reference = s.render().unwrap().grid;
        for m in Method::ALL {
            s.set_method(m);
            let got = s.render().unwrap().grid;
            let err = kdv_core::stats::max_rel_error(got.values(), reference.values());
            assert!(err < 1e-9, "{m}: {err}");
        }
    }
}
