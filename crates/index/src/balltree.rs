//! A ball-tree (metric tree) supporting circular range queries.
//!
//! Substrate for the paper's `RQS_ball` baseline. Each node stores a
//! bounding ball (centroid + radius); construction splits on the wider
//! coordinate axis, which for 2-d point data gives balanced, tight balls
//! without the anchor-selection machinery of the original formulation.
//! Pruning uses the triangle inequality: a subtree whose ball lies entirely
//! farther than `radius` from the query is skipped; one entirely inside can
//! be enumerated without per-point distance checks.

use kdv_core::geom::Point;

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Ball centre (centroid of the subtree's points).
    center: Point,
    /// Ball radius: max distance from `center` to any point in the subtree.
    radius: f64,
    left: u32,
    right: u32,
    start: u32,
    end: u32,
}

const NIL: u32 = u32::MAX;
const LEAF_SIZE: usize = 16;

/// A static ball-tree over a 2-d point set.
#[derive(Debug, Clone)]
pub struct BallTree {
    nodes: Vec<Node>,
    points: Vec<Point>,
    root: u32,
}

impl BallTree {
    /// Builds the tree in `O(n log n)`.
    pub fn build(points: &[Point]) -> Self {
        let mut pts = points.to_vec();
        let mut nodes = Vec::with_capacity(points.len() / LEAF_SIZE * 2 + 1);
        let n = pts.len();
        let root = if n == 0 { NIL } else { Self::build_rec(&mut pts, 0, n, &mut nodes) };
        Self { nodes, points: pts, root }
    }

    fn build_rec(pts: &mut [Point], start: usize, end: usize, nodes: &mut Vec<Node>) -> u32 {
        let slice = &mut pts[start..end];
        // centroid
        let inv = 1.0 / slice.len() as f64;
        let (mut cx, mut cy) = (0.0, 0.0);
        for p in slice.iter() {
            cx += p.x;
            cy += p.y;
        }
        let center = Point::new(cx * inv, cy * inv);
        let radius = slice.iter().map(|p| center.dist_sq(p)).fold(0.0_f64, f64::max).sqrt();
        let id = nodes.len() as u32;
        nodes.push(Node {
            center,
            radius,
            left: NIL,
            right: NIL,
            start: start as u32,
            end: end as u32,
        });
        if slice.len() > LEAF_SIZE {
            // split on the wider axis at the median
            let bounds = kdv_core::geom::Rect::mbr(slice);
            let mid = slice.len() / 2;
            if bounds.width() >= bounds.height() {
                slice.select_nth_unstable_by(mid, |a, b| a.x.total_cmp(&b.x));
            } else {
                slice.select_nth_unstable_by(mid, |a, b| a.y.total_cmp(&b.y));
            }
            let left = Self::build_rec(pts, start, start + mid, nodes);
            let right = Self::build_rec(pts, start + mid, end, nodes);
            nodes[id as usize].left = left;
            nodes[id as usize].right = right;
        }
        id
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Calls `f(p)` for every point with `dist(q, p) ≤ radius`.
    pub fn for_each_in_range<F: FnMut(&Point)>(&self, q: &Point, radius: f64, mut f: F) {
        if self.root == NIL {
            return;
        }
        self.range_rec(self.root, q, radius, &mut f);
    }

    fn range_rec<F: FnMut(&Point)>(&self, id: u32, q: &Point, radius: f64, f: &mut F) {
        let node = &self.nodes[id as usize];
        let d = q.dist(&node.center);
        if d > radius + node.radius {
            return; // ball entirely outside the query circle
        }
        if d + node.radius <= radius {
            // ball entirely inside: no per-point checks needed
            for p in &self.points[node.start as usize..node.end as usize] {
                f(p);
            }
            return;
        }
        if node.left == NIL {
            let r2 = radius * radius;
            for p in &self.points[node.start as usize..node.end as usize] {
                if q.dist_sq(p) <= r2 {
                    f(p);
                }
            }
            return;
        }
        self.range_rec(node.left, q, radius, f);
        self.range_rec(node.right, q, radius, f);
    }

    /// Counts points within `radius` of `q`.
    pub fn count_in_range(&self, q: &Point, radius: f64) -> usize {
        let mut n = 0usize;
        self.for_each_in_range(q, radius, |_| n += 1);
        n
    }

    /// Heap bytes held by the index.
    pub fn space_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.points.capacity() * std::mem::size_of::<Point>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_points() -> Vec<Point> {
        // two rings plus noise: exercises both prune directions
        let mut pts = Vec::new();
        for i in 0..200 {
            let a = i as f64 * 0.0314159;
            pts.push(Point::new(10.0 * a.cos(), 10.0 * a.sin()));
            pts.push(Point::new(50.0 + 3.0 * a.cos(), 3.0 * a.sin()));
        }
        for i in 0..100 {
            pts.push(Point::new((i * 7 % 60) as f64, (i * 13 % 40) as f64 - 20.0));
        }
        pts
    }

    #[test]
    fn empty_tree() {
        let t = BallTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.count_in_range(&Point::new(0.0, 0.0), 1.0), 0);
    }

    #[test]
    fn matches_linear_scan() {
        let pts = ring_points();
        let t = BallTree::build(&pts);
        for (q, r) in [
            (Point::new(0.0, 0.0), 10.0), // ring boundary exactly
            (Point::new(50.0, 0.0), 2.9),
            (Point::new(25.0, 0.0), 14.0),
            (Point::new(0.0, 0.0), 1000.0), // everything (inside-ball path)
            (Point::new(-100.0, 0.0), 5.0), // nothing
        ] {
            let expect = pts.iter().filter(|p| q.dist_sq(p) <= r * r).count();
            assert_eq!(t.count_in_range(&q, r), expect, "q={q}, r={r}");
        }
    }

    #[test]
    fn fully_contained_ball_fast_path() {
        // query circle covering the whole dataset triggers the
        // enumerate-without-checks branch; count must still be exact
        let pts: Vec<Point> =
            (0..100).map(|i| Point::new(i as f64 % 10.0, i as f64 / 10.0)).collect();
        let t = BallTree::build(&pts);
        assert_eq!(t.count_in_range(&Point::new(5.0, 5.0), 100.0), 100);
    }

    #[test]
    fn duplicates_preserved() {
        let pts = vec![Point::new(-2.0, 3.0); 33];
        let t = BallTree::build(&pts);
        assert_eq!(t.count_in_range(&Point::new(-2.0, 3.0), 0.1), 33);
    }
}
