//! An aggregate-augmented quadtree — substrate for the QUAD and aKDE
//! baselines.
//!
//! Each node stores the [`RangeAggregates`] of its subtree. During a query
//! for pixel `q` with bandwidth `b`:
//!
//! * a node entirely **outside** the circle (`min_dist > b`) contributes 0
//!   and is pruned;
//! * a node entirely **inside** (`max_dist ≤ b`) contributes its aggregates
//!   in O(1) — because the Table-2 kernels decompose over aggregates, this
//!   preserves exactness (the quadratic-bound idea of QUAD, Chan et al.
//!   SIGMOD 2020);
//! * straddling nodes recurse; leaves fall back to per-point evaluation.
//!
//! The node accessors additionally expose bounds/aggregates/children so the
//! aKDE (Gray & Moore 2003) baseline can run its own bounded traversal with
//! an approximation budget.

use kdv_core::aggregate::RangeAggregates;
use kdv_core::geom::{Point, Rect};

/// Sentinel child index meaning "absent".
pub(crate) const NIL: u32 = u32::MAX;
const LEAF_SIZE: usize = 32;
const MAX_DEPTH: usize = 24;

#[derive(Debug, Clone)]
struct Node {
    /// Tight bounding rectangle (MBR of the subtree's points).
    bounds: Rect,
    /// Aggregates of every point in the subtree.
    agg: RangeAggregates,
    /// Child node indices (SW, SE, NW, NE); `NIL` for absent. A leaf has
    /// all four absent.
    children: [u32; 4],
    /// Point range `[start, end)` owned by the subtree.
    start: u32,
    end: u32,
}

impl Node {
    #[inline]
    fn is_leaf(&self) -> bool {
        self.children == [NIL; 4]
    }
}

/// A static aggregate quadtree over a 2-d point set.
#[derive(Debug, Clone)]
pub struct QuadTree {
    nodes: Vec<Node>,
    points: Vec<Point>,
    root: u32,
}

impl QuadTree {
    /// Builds the tree in `O(n log n)` expected time.
    pub fn build(points: &[Point]) -> Self {
        let mut pts = points.to_vec();
        let mut nodes = Vec::new();
        let n = pts.len();
        let root = if n == 0 {
            NIL
        } else {
            let bounds = Rect::mbr(&pts);
            Self::build_rec(&mut pts, 0, n, bounds, 0, &mut nodes)
        };
        Self { nodes, points: pts, root }
    }

    fn build_rec(
        pts: &mut [Point],
        start: usize,
        end: usize,
        bounds: Rect,
        depth: usize,
        nodes: &mut Vec<Node>,
    ) -> u32 {
        let slice = &mut pts[start..end];
        let agg = RangeAggregates::from_points(slice);
        let tight = Rect::mbr(slice);
        let id = nodes.len() as u32;
        nodes.push(Node {
            bounds: tight,
            agg,
            children: [NIL; 4],
            start: start as u32,
            end: end as u32,
        });
        if slice.len() > LEAF_SIZE && depth < MAX_DEPTH {
            let c = bounds.center();
            // partition into quadrants [SW | SE | NW | NE] via two passes
            let split_y = partition(slice, |p| p.y < c.y);
            let split_x_bottom = partition(&mut slice[..split_y], |p| p.x < c.x);
            let split_x_top = partition(&mut slice[split_y..], |p| p.x < c.x);

            let q_bounds = [
                Rect::new(bounds.min_x, bounds.min_y, c.x, c.y),
                Rect::new(c.x, bounds.min_y, bounds.max_x, c.y),
                Rect::new(bounds.min_x, c.y, c.x, bounds.max_y),
                Rect::new(c.x, c.y, bounds.max_x, bounds.max_y),
            ];
            let ranges = [
                (start, start + split_x_bottom),
                (start + split_x_bottom, start + split_y),
                (start + split_y, start + split_y + split_x_top),
                (start + split_y + split_x_top, end),
            ];
            // a degenerate split (all points in one quadrant, e.g. all
            // identical) stays a leaf to guarantee termination
            let degenerate = ranges.iter().any(|(s, e)| e - s == end - start);
            if !degenerate {
                let mut children = [NIL; 4];
                for (slot, ((s, e), qb)) in ranges.iter().zip(q_bounds).enumerate() {
                    if e > s {
                        children[slot] = Self::build_rec(pts, *s, *e, qb, depth + 1, nodes);
                    }
                }
                nodes[id as usize].children = children;
            }
        }
        id
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Visits the tree for a circular query: `on_agg` receives the
    /// aggregates of subtrees entirely inside the circle, `on_point`
    /// each individual in-range point of straddling leaves.
    pub fn visit_range<A: FnMut(&RangeAggregates), P: FnMut(&Point)>(
        &self,
        q: &Point,
        radius: f64,
        mut on_agg: A,
        mut on_point: P,
    ) {
        if self.root == NIL {
            return;
        }
        self.visit_rec(self.root, q, radius * radius, &mut on_agg, &mut on_point);
    }

    fn visit_rec<A: FnMut(&RangeAggregates), P: FnMut(&Point)>(
        &self,
        id: u32,
        q: &Point,
        r2: f64,
        on_agg: &mut A,
        on_point: &mut P,
    ) {
        let node = &self.nodes[id as usize];
        if node.agg.count == 0 || node.bounds.min_dist_sq(q) > r2 {
            return;
        }
        if node.bounds.max_dist_sq(q) <= r2 {
            on_agg(&node.agg);
            return;
        }
        if node.is_leaf() {
            for p in &self.points[node.start as usize..node.end as usize] {
                if q.dist_sq(p) <= r2 {
                    on_point(p);
                }
            }
            return;
        }
        for &child in &node.children {
            if child != NIL {
                self.visit_rec(child, q, r2, on_agg, on_point);
            }
        }
    }

    /// Bounds and aggregates of the root (for aKDE's top-down refinement).
    pub fn root_info(&self) -> Option<(Rect, &RangeAggregates)> {
        if self.root == NIL {
            None
        } else {
            let n = &self.nodes[self.root as usize];
            Some((n.bounds, &n.agg))
        }
    }

    /// Root node id, or `u32::MAX` when the tree is empty.
    pub fn root_id(&self) -> u32 {
        self.root
    }

    /// Raw node accessor for custom traversals (aKDE): returns
    /// `(bounds, aggregates, children, point_range)`; children entries are
    /// `u32::MAX` when absent.
    pub fn node_info(&self, id: u32) -> (Rect, &RangeAggregates, [u32; 4], (u32, u32)) {
        let n = &self.nodes[id as usize];
        (n.bounds, &n.agg, n.children, (n.start, n.end))
    }

    /// The reordered point slice `[start, end)` of a node.
    pub fn points_slice(&self, start: u32, end: u32) -> &[Point] {
        &self.points[start as usize..end as usize]
    }

    /// Heap bytes held by the index.
    pub fn space_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.points.capacity() * std::mem::size_of::<Point>()
    }
}

/// In-place partition; returns the count of elements satisfying `pred`,
/// which end up in the prefix.
fn partition<F: Fn(&Point) -> bool>(slice: &mut [Point], pred: F) -> usize {
    let mut i = 0usize;
    for j in 0..slice.len() {
        if pred(&slice[j]) {
            slice.swap(i, j);
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_points() -> Vec<Point> {
        let mut pts = Vec::new();
        let mut state = 123u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..500 {
            pts.push(Point::new(next() * 100.0, next() * 100.0));
        }
        // dense clump to force deep subdivision
        for _ in 0..300 {
            pts.push(Point::new(20.0 + next(), 20.0 + next()));
        }
        pts
    }

    /// Count via the visitor must equal a linear scan: aggregates for
    /// inside nodes + per-point hits for straddlers.
    #[test]
    fn visit_range_counts_match_scan() {
        let pts = mixed_points();
        let t = QuadTree::build(&pts);
        for (q, r) in [
            (Point::new(20.5, 20.5), 2.0),
            (Point::new(50.0, 50.0), 30.0),
            (Point::new(-10.0, -10.0), 5.0),
            (Point::new(50.0, 50.0), 500.0),
        ] {
            let count = std::cell::Cell::new(0u64);
            t.visit_range(
                &q,
                r,
                |agg| count.set(count.get() + agg.count),
                |_| count.set(count.get() + 1),
            );
            let expect = pts.iter().filter(|p| q.dist_sq(p) <= r * r).count() as u64;
            assert_eq!(count.get(), expect, "q={q}, r={r}");
        }
    }

    /// Aggregate sums collected through the visitor must equal the sums
    /// over the scan-based range set.
    #[test]
    fn visit_range_aggregates_match_scan() {
        let pts = mixed_points();
        let t = QuadTree::build(&pts);
        let q = Point::new(40.0, 35.0);
        let r = 25.0;
        let got = std::cell::RefCell::new(RangeAggregates::default());
        t.visit_range(&q, r, |agg| got.borrow_mut().merge(agg), |p| got.borrow_mut().add(p));
        let got = got.into_inner();
        let mut expect = RangeAggregates::default();
        for p in pts.iter().filter(|p| q.dist_sq(p) <= r * r) {
            expect.add(p);
        }
        assert_eq!(got.count, expect.count);
        assert!((got.ax - expect.ax).abs() < 1e-9 * expect.ax.abs().max(1.0));
        assert!((got.s - expect.s).abs() < 1e-9 * expect.s.abs().max(1.0));
        assert!((got.q4 - expect.q4).abs() < 1e-9 * expect.q4.abs().max(1.0));
    }

    #[test]
    fn all_identical_points_degenerate_split() {
        let pts = vec![Point::new(5.0, 5.0); 200];
        let t = QuadTree::build(&pts);
        let count = std::cell::Cell::new(0u64);
        t.visit_range(
            &Point::new(5.0, 5.0),
            1.0,
            |agg| count.set(count.get() + agg.count),
            |_| count.set(count.get() + 1),
        );
        assert_eq!(count.get(), 200);
    }

    #[test]
    fn empty_tree() {
        let t = QuadTree::build(&[]);
        assert!(t.is_empty());
        assert!(t.root_info().is_none());
        let visited = std::cell::Cell::new(false);
        t.visit_range(&Point::new(0.0, 0.0), 10.0, |_| visited.set(true), |_| visited.set(true));
        assert!(!visited.get());
    }

    #[test]
    fn root_aggregates_cover_everything() {
        let pts = mixed_points();
        let t = QuadTree::build(&pts);
        let (bounds, agg) = t.root_info().unwrap();
        assert_eq!(agg.count as usize, pts.len());
        for p in &pts {
            assert!(bounds.contains(p));
        }
    }

    #[test]
    fn node_info_children_consistent() {
        let pts = mixed_points();
        let t = QuadTree::build(&pts);
        // BFS over the tree: every child's point range must nest within
        // its parent's and child counts must sum to the parent count when
        // all quadrants exist.
        let mut stack = vec![t.root_id()];
        while let Some(id) = stack.pop() {
            let (_, agg, children, (s, e)) = t.node_info(id);
            assert_eq!(agg.count as usize, (e - s) as usize);
            let mut child_total = 0u64;
            let mut has_children = false;
            for c in children {
                if c != NIL {
                    has_children = true;
                    let (_, cagg, _, (cs, ce)) = t.node_info(c);
                    assert!(cs >= s && ce <= e, "child range nests");
                    child_total += cagg.count;
                    stack.push(c);
                }
            }
            if has_children {
                assert_eq!(child_total, agg.count, "children partition parent");
            }
        }
    }
}
