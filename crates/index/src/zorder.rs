//! Z-order (Morton) curve utilities — substrate for the Z-order sampling
//! baseline (Zheng et al., SIGMOD 2013).
//!
//! The baseline sorts the dataset along the Z-order space-filling curve and
//! takes an evenly strided sample; because the curve preserves spatial
//! locality, the sample is a spatially stratified subset that yields a
//! probabilistic error guarantee for the density estimate. This module
//! provides the curve encoding, sorting, and strided sampling.

use kdv_core::geom::{Point, Rect};

/// Interleaves the lower 32 bits of `v` with zeros (Morton "part 1 by 1").
#[inline]
fn part1by1(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Morton code of a pair of 32-bit cell coordinates (x in even bits).
#[inline]
pub fn morton_encode(cx: u32, cy: u32) -> u64 {
    part1by1(cx) | (part1by1(cy) << 1)
}

/// Inverse of [`part1by1`].
#[inline]
fn compact1by1(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Decodes a Morton code back to cell coordinates `(cx, cy)`.
#[inline]
pub fn morton_decode(code: u64) -> (u32, u32) {
    (compact1by1(code), compact1by1(code >> 1))
}

/// Quantisation of continuous coordinates onto a `2^bits × 2^bits` cell
/// grid covering `bounds`, for Morton encoding.
#[derive(Debug, Clone, Copy)]
pub struct ZQuantizer {
    bounds: Rect,
    scale: f64,
    max_cell: u32,
}

impl ZQuantizer {
    /// A quantiser with `bits` bits per dimension (max 31).
    pub fn new(bounds: Rect, bits: u32) -> Self {
        assert!((1..=31).contains(&bits), "bits must be in 1..=31");
        let cells = (1u64 << bits) as f64;
        let extent = bounds.width().max(bounds.height()).max(f64::MIN_POSITIVE);
        Self { bounds, scale: cells / extent, max_cell: (1u32 << bits) - 1 }
    }

    /// Cell coordinates of `p` (clamped to the grid).
    #[inline]
    pub fn cell(&self, p: &Point) -> (u32, u32) {
        let cx = ((p.x - self.bounds.min_x) * self.scale).floor();
        let cy = ((p.y - self.bounds.min_y) * self.scale).floor();
        (
            (cx.max(0.0) as u64).min(self.max_cell as u64) as u32,
            (cy.max(0.0) as u64).min(self.max_cell as u64) as u32,
        )
    }

    /// Morton key of `p`.
    #[inline]
    pub fn key(&self, p: &Point) -> u64 {
        let (cx, cy) = self.cell(p);
        morton_encode(cx, cy)
    }
}

/// Returns `points` sorted by Z-order key (ties keep input order — the
/// sort is stable so results are deterministic across runs).
pub fn sort_by_zorder(points: &[Point], bits: u32) -> Vec<Point> {
    let bounds = Rect::mbr(points);
    if points.is_empty() {
        return Vec::new();
    }
    let q = ZQuantizer::new(bounds, bits);
    let mut keyed: Vec<(u64, Point)> = points.iter().map(|p| (q.key(p), *p)).collect();
    keyed.sort_by_key(|&(k, _)| k);
    keyed.into_iter().map(|(_, p)| p).collect()
}

/// Evenly strided sample of `sample_size` points from a Z-ordered list.
///
/// Stride-sampling a space-filling-curve ordering yields a spatially
/// stratified subset; each sampled point represents `n / m` originals, so
/// density estimates over the sample are scaled by that factor.
pub fn strided_sample(zsorted: &[Point], sample_size: usize) -> Vec<Point> {
    let n = zsorted.len();
    if sample_size == 0 || n == 0 {
        return Vec::new();
    }
    if sample_size >= n {
        return zsorted.to_vec();
    }
    let stride = n as f64 / sample_size as f64;
    (0..sample_size).map(|i| zsorted[((i as f64 + 0.5) * stride) as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton_round_trip() {
        for &(x, y) in &[(0u32, 0u32), (1, 0), (0, 1), (123_456, 654_321), (u32::MAX, 0)] {
            assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
        }
    }

    #[test]
    fn morton_orders_quadrants() {
        // the four unit cells follow the Z pattern: (0,0) < (1,0) < (0,1) < (1,1)
        let codes =
            [morton_encode(0, 0), morton_encode(1, 0), morton_encode(0, 1), morton_encode(1, 1)];
        assert!(codes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn quantizer_clamps_and_covers() {
        let q = ZQuantizer::new(Rect::new(0.0, 0.0, 10.0, 10.0), 4);
        assert_eq!(q.cell(&Point::new(-5.0, -5.0)), (0, 0));
        assert_eq!(q.cell(&Point::new(100.0, 100.0)), (15, 15));
        let (cx, cy) = q.cell(&Point::new(5.0, 5.0));
        assert_eq!((cx, cy), (8, 8));
    }

    #[test]
    fn zsort_groups_nearby_points() {
        // two spatial clusters must be contiguous after z-sorting
        let mut pts = Vec::new();
        for i in 0..50 {
            pts.push(Point::new(i as f64 * 0.01, i as f64 * 0.01)); // cluster A near origin
            pts.push(Point::new(100.0 + i as f64 * 0.01, 100.0)); // cluster B far away
        }
        let sorted = sort_by_zorder(&pts, 16);
        let first_b = sorted.iter().position(|p| p.x > 50.0).unwrap();
        assert!(sorted[first_b..].iter().all(|p| p.x > 50.0), "clusters must not interleave");
    }

    #[test]
    fn strided_sample_sizes() {
        let pts: Vec<Point> = (0..100).map(|i| Point::new(i as f64, 0.0)).collect();
        assert_eq!(strided_sample(&pts, 10).len(), 10);
        assert_eq!(strided_sample(&pts, 0).len(), 0);
        assert_eq!(strided_sample(&pts, 1000).len(), 100);
        assert_eq!(strided_sample(&[], 5).len(), 0);
    }

    #[test]
    fn strided_sample_spreads_across_input() {
        let pts: Vec<Point> = (0..1000).map(|i| Point::new(i as f64, 0.0)).collect();
        let s = strided_sample(&pts, 4);
        // samples land near the 12.5%, 37.5%, 62.5%, 87.5% quantiles
        assert_eq!(s.len(), 4);
        assert!((s[0].x - 125.0).abs() <= 1.0);
        assert!((s[3].x - 875.0).abs() <= 1.0);
    }
}
