//! A 2-d kd-tree (Bentley 1975) supporting circular range queries.
//!
//! This is the substrate for the paper's `RQS_kd` baseline (Section 2.2):
//! for every pixel `q`, find all points within distance `b` and sum the
//! kernel. The tree is built once per dataset (`O(n log n)` via
//! median-of-medians style `select_nth_unstable`), stored as an implicit
//! flat array of nodes for cache locality.

use kdv_core::geom::{Point, Rect};

/// A node of the flattened kd-tree.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Split coordinate (x at even depth, y at odd depth).
    split: f64,
    /// Bounding rectangle of the subtree, used for pruning.
    bounds: Rect,
    /// Index of the left child in `nodes`, `u32::MAX` for leaves.
    left: u32,
    /// Index of the right child in `nodes`, `u32::MAX` for leaves.
    right: u32,
    /// Range of `points` covered by this subtree: `[start, end)`.
    start: u32,
    end: u32,
}

const NIL: u32 = u32::MAX;
/// Subtrees of at most this many points become leaves.
const LEAF_SIZE: usize = 16;

/// A static 2-d kd-tree over a point set.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<Node>,
    /// Points reordered so each subtree owns a contiguous slice.
    points: Vec<Point>,
    root: u32,
}

impl KdTree {
    /// Builds the tree in `O(n log n)`; `points` may be empty.
    pub fn build(points: &[Point]) -> Self {
        let mut pts = points.to_vec();
        let mut nodes = Vec::with_capacity(points.len() / LEAF_SIZE * 2 + 1);
        let n = pts.len();
        let root = if n == 0 { NIL } else { Self::build_rec(&mut pts, 0, n, 0, &mut nodes) };
        Self { nodes, points: pts, root }
    }

    fn build_rec(
        pts: &mut [Point],
        start: usize,
        end: usize,
        depth: usize,
        nodes: &mut Vec<Node>,
    ) -> u32 {
        let slice = &mut pts[start..end];
        let bounds = Rect::mbr(slice);
        let id = nodes.len() as u32;
        nodes.push(Node {
            split: 0.0,
            bounds,
            left: NIL,
            right: NIL,
            start: start as u32,
            end: end as u32,
        });
        if slice.len() > LEAF_SIZE {
            let mid = slice.len() / 2;
            if depth.is_multiple_of(2) {
                slice.select_nth_unstable_by(mid, |a, b| a.x.total_cmp(&b.x));
                nodes[id as usize].split = slice[mid].x;
            } else {
                slice.select_nth_unstable_by(mid, |a, b| a.y.total_cmp(&b.y));
                nodes[id as usize].split = slice[mid].y;
            }
            let left = Self::build_rec(pts, start, start + mid, depth + 1, nodes);
            let right = Self::build_rec(pts, start + mid, end, depth + 1, nodes);
            nodes[id as usize].left = left;
            nodes[id as usize].right = right;
        }
        id
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Calls `f(p)` for every point with `dist(q, p) ≤ radius`.
    ///
    /// Classic branch-and-bound: a subtree is skipped when the query circle
    /// misses its bounding rectangle. Worst case `O(n)`, typical
    /// `O(√n + k)` for `k` results.
    pub fn for_each_in_range<F: FnMut(&Point)>(&self, q: &Point, radius: f64, mut f: F) {
        if self.root == NIL {
            return;
        }
        let r2 = radius * radius;
        self.range_rec(self.root, q, r2, &mut f);
    }

    fn range_rec<F: FnMut(&Point)>(&self, id: u32, q: &Point, r2: f64, f: &mut F) {
        let node = &self.nodes[id as usize];
        if node.bounds.min_dist_sq(q) > r2 {
            return;
        }
        if node.left == NIL {
            for p in &self.points[node.start as usize..node.end as usize] {
                if q.dist_sq(p) <= r2 {
                    f(p);
                }
            }
            return;
        }
        self.range_rec(node.left, q, r2, f);
        self.range_rec(node.right, q, r2, f);
    }

    /// Collects the range-query solution set `R(q)` (Eq. 3) into a vector.
    pub fn range_query(&self, q: &Point, radius: f64) -> Vec<Point> {
        let mut out = Vec::new();
        self.for_each_in_range(q, radius, |p| out.push(*p));
        out
    }

    /// Counts points within `radius` of `q` without materialising them.
    pub fn count_in_range(&self, q: &Point, radius: f64) -> usize {
        let mut n = 0usize;
        self.for_each_in_range(q, radius, |_| n += 1);
        n
    }

    /// Heap bytes held by the index (space-consumption experiment).
    pub fn space_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.points.capacity() * std::mem::size_of::<Point>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..30 {
            for j in 0..30 {
                pts.push(Point::new(i as f64, j as f64));
            }
        }
        pts
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.count_in_range(&Point::new(0.0, 0.0), 10.0), 0);
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let pts = grid_points();
        let t = KdTree::build(&pts);
        assert_eq!(t.len(), pts.len());
        for (q, r) in [
            (Point::new(15.0, 15.0), 4.5),
            (Point::new(0.0, 0.0), 2.0),
            (Point::new(-5.0, -5.0), 3.0),   // fully outside
            (Point::new(29.0, 29.0), 100.0), // covers everything
            (Point::new(10.5, 10.5), 0.0),   // zero radius between points
            (Point::new(10.0, 10.0), 0.0),   // zero radius on a point
        ] {
            let expect = pts.iter().filter(|p| q.dist_sq(p) <= r * r).count();
            assert_eq!(t.count_in_range(&q, r), expect, "q={q}, r={r}");
        }
    }

    #[test]
    fn range_query_returns_correct_points() {
        let pts = grid_points();
        let t = KdTree::build(&pts);
        let q = Point::new(3.0, 3.0);
        let mut got = t.range_query(&q, 1.0);
        got.sort_by(|a, b| (a.x, a.y).partial_cmp(&(b.x, b.y)).unwrap());
        let mut expect: Vec<Point> = pts.iter().filter(|p| q.dist(p) <= 1.0).copied().collect();
        expect.sort_by(|a, b| (a.x, a.y).partial_cmp(&(b.x, b.y)).unwrap());
        assert_eq!(got, expect);
        assert_eq!(got.len(), 5); // centre + 4 neighbours
    }

    #[test]
    fn duplicates_preserved() {
        let pts = vec![Point::new(1.0, 1.0); 40];
        let t = KdTree::build(&pts);
        assert_eq!(t.count_in_range(&Point::new(1.0, 1.0), 0.5), 40);
    }

    #[test]
    fn boundary_inclusive() {
        let pts = vec![Point::new(3.0, 4.0)];
        let t = KdTree::build(&pts);
        // dist from origin is exactly 5
        assert_eq!(t.count_in_range(&Point::new(0.0, 0.0), 5.0), 1);
        assert_eq!(t.count_in_range(&Point::new(0.0, 0.0), 4.999_999), 0);
    }
}
