//! # kdv-index — spatial index substrates for KDV baselines
//!
//! The paper's comparator methods (Table 6) all rest on classic spatial
//! data structures. This crate implements those substrates from scratch:
//!
//! * [`kdtree::KdTree`] — 2-d kd-tree (Bentley 1975) for the `RQS_kd`
//!   range-query baseline.
//! * [`balltree::BallTree`] — metric ball-tree (Moore 2000) for `RQS_ball`.
//! * [`quadtree::QuadTree`] — aggregate-augmented quadtree, the shared
//!   engine of the QUAD (exact, quadratic-bound) and aKDE (bounded
//!   approximation) baselines.
//! * [`zorder`] — Morton curve encode/decode, sorting and strided sampling
//!   for the Z-order data-sampling baseline (Zheng et al. 2013).
//!
//! Every structure exposes `space_bytes()` so the space-consumption
//! experiment (paper Figure 17) can account for index overhead.

pub mod balltree;
pub mod kdtree;
pub mod quadtree;
pub mod zorder;

pub use balltree::BallTree;
pub use kdtree::KdTree;
pub use quadtree::QuadTree;
