//! Property-based tests over the spatial index substrates: every index's
//! range query must agree with a linear scan on arbitrary inputs, and the
//! Z-order machinery must preserve its structural invariants.

use kdv_core::aggregate::RangeAggregates;
use kdv_core::geom::Point;
use kdv_index::zorder;
use kdv_index::{BallTree, KdTree, QuadTree};
use proptest::prelude::*;

fn points_strategy() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (-1_000.0f64..1_000.0, -1_000.0f64..1_000.0).prop_map(|(x, y)| Point::new(x, y)),
        0..400,
    )
}

fn query_strategy() -> impl Strategy<Value = (Point, f64)> {
    (
        (-1_200.0f64..1_200.0, -1_200.0f64..1_200.0).prop_map(|(x, y)| Point::new(x, y)),
        0.0f64..2_000.0,
    )
}

fn scan_count(pts: &[Point], q: &Point, r: f64) -> usize {
    pts.iter().filter(|p| q.dist_sq(p) <= r * r).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn kdtree_matches_scan(pts in points_strategy(), (q, r) in query_strategy()) {
        let tree = KdTree::build(&pts);
        prop_assert_eq!(tree.count_in_range(&q, r), scan_count(&pts, &q, r));
    }

    #[test]
    fn balltree_matches_scan(pts in points_strategy(), (q, r) in query_strategy()) {
        let tree = BallTree::build(&pts);
        prop_assert_eq!(tree.count_in_range(&q, r), scan_count(&pts, &q, r));
    }

    #[test]
    fn quadtree_count_and_aggregates_match_scan(
        pts in points_strategy(),
        (q, r) in query_strategy(),
    ) {
        let tree = QuadTree::build(&pts);
        let got = std::cell::RefCell::new(RangeAggregates::default());
        tree.visit_range(
            &q,
            r,
            |agg| got.borrow_mut().merge(agg),
            |p| got.borrow_mut().add(p),
        );
        let got = got.into_inner();
        let mut expect = RangeAggregates::default();
        for p in pts.iter().filter(|p| q.dist_sq(p) <= r * r) {
            expect.add(p);
        }
        prop_assert_eq!(got.count, expect.count);
        let tol = 1e-9 * expect.s.abs().max(1.0);
        prop_assert!((got.s - expect.s).abs() <= tol, "S: {} vs {}", got.s, expect.s);
        let tol = 1e-9 * expect.ax.abs().max(1.0);
        prop_assert!((got.ax - expect.ax).abs() <= tol);
    }

    #[test]
    fn kdtree_range_query_returns_exactly_in_range_points(
        pts in points_strategy(),
        (q, r) in query_strategy(),
    ) {
        let tree = KdTree::build(&pts);
        let found = tree.range_query(&q, r);
        // every returned point is in range
        for p in &found {
            prop_assert!(q.dist_sq(p) <= r * r + 1e-9);
        }
        // multiset cardinality matches the scan
        prop_assert_eq!(found.len(), scan_count(&pts, &q, r));
    }

    #[test]
    fn morton_round_trip_fuzz(x in 0u32.., y in 0u32..) {
        prop_assert_eq!(zorder::morton_decode(zorder::morton_encode(x, y)), (x, y));
    }

    #[test]
    fn morton_is_monotone_along_axes(x in 0u32..u32::MAX, y in 0u32..u32::MAX) {
        // increasing one cell coordinate strictly increases the code
        prop_assert!(zorder::morton_encode(x + 1, y) > zorder::morton_encode(x, y));
        prop_assert!(zorder::morton_encode(x, y + 1) > zorder::morton_encode(x, y));
    }

    #[test]
    fn zsort_is_a_permutation(pts in points_strategy()) {
        let sorted = zorder::sort_by_zorder(&pts, 16);
        prop_assert_eq!(sorted.len(), pts.len());
        // same multiset: compare coordinate sums (robust for a permutation)
        let sum = |v: &[Point]| v.iter().map(|p| p.x + 2.0 * p.y).sum::<f64>();
        prop_assert!((sum(&sorted) - sum(&pts)).abs() < 1e-6);
    }

    #[test]
    fn strided_sample_size_and_membership(
        pts in points_strategy(),
        frac in 0.0f64..1.0,
    ) {
        let sorted = zorder::sort_by_zorder(&pts, 16);
        let m = ((pts.len() as f64) * frac) as usize;
        let sample = zorder::strided_sample(&sorted, m);
        prop_assert_eq!(sample.len(), m.min(sorted.len()));
        for s in &sample {
            prop_assert!(sorted.contains(s));
        }
    }
}
