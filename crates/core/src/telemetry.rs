//! Execution telemetry for the parallel sweep runtime.
//!
//! The work-stealing scheduler in [`crate::parallel`] optionally records
//! what each worker did: which rows it claimed, how long it spent building
//! envelopes versus sweeping, how large the per-row envelope sets were, and
//! how much auxiliary heap it held. A [`SweepReport`] aggregates those
//! per-worker records so callers (the CLI's `--stats` flag, the bench
//! binaries) can inspect load balance and the envelope-size distribution —
//! the quantities that decide whether dynamic row scheduling pays off on
//! clustered data.

/// What one worker thread did during a parallel sweep.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Rows this worker claimed and swept.
    pub rows: usize,
    /// Nanoseconds spent building envelope sets (the `O(n)` per-row scan).
    pub fill_nanos: u64,
    /// Nanoseconds spent in the sweep phase proper.
    pub sweep_nanos: u64,
    /// Auxiliary heap bytes held at the end of the run (envelope buffer
    /// plus engine scratch — the parallel extension of
    /// [`crate::driver::RowEngine::space_bytes`]).
    pub aux_bytes: usize,
    /// Rows this worker claimed whose band was empty (skipped outright —
    /// no interval fill, no engine pass; the output row stays zero).
    pub rows_skipped: usize,
    /// `(row index, |E(k)|)` for every row this worker processed.
    pub envelope_sizes: Vec<(usize, usize)>,
}

/// Aggregated telemetry of one parallel sweep execution.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Worker threads the scheduler actually spawned.
    pub threads: usize,
    /// Total raster rows processed.
    pub rows: usize,
    /// Wall-clock nanoseconds of the whole parallel section.
    pub wall_nanos: u64,
    /// `|E(k)|` per row, indexed by row.
    pub envelope_sizes: Vec<usize>,
    /// Rows claimed per worker — unequal on clustered data, which is the
    /// point of dynamic scheduling.
    pub rows_per_worker: Vec<usize>,
    /// Envelope-fill nanoseconds per worker.
    pub fill_nanos: Vec<u64>,
    /// Sweep-phase nanoseconds per worker.
    pub sweep_nanos: Vec<u64>,
    /// Peak auxiliary heap bytes over all workers (their buffers coexist,
    /// so the parallel footprint is the *sum*; both are reported).
    pub peak_worker_bytes: usize,
    /// Total auxiliary heap bytes across workers plus shared context
    /// (including the banded index of the [`crate::driver::SweepContext`]).
    pub total_aux_bytes: usize,
    /// Rows skipped because their band was empty (densities exactly zero).
    pub rows_skipped: usize,
    /// Tile-cache hits observed while serving this computation (zero for
    /// plain sweeps; populated by the `kdv-serve` tile cache). All cache
    /// counters are **saturating**: a counter that reaches `u64::MAX`
    /// stays there instead of wrapping, so reported counters are monotone
    /// over the lifetime of a cache however long it runs.
    pub cache_hits: u64,
    /// Tile-cache misses (each miss triggered a band computation).
    pub cache_misses: u64,
    /// Tiles evicted to keep the cache inside its byte budget.
    pub cache_evictions: u64,
}

impl SweepReport {
    /// Builds a report from per-worker records.
    ///
    /// `shared_bytes` is the heap held by row-independent shared state
    /// (recentred points, pixel coordinates).
    pub fn from_workers(workers: Vec<WorkerStats>, rows: usize, shared_bytes: usize) -> Self {
        let mut envelope_sizes = vec![0usize; rows];
        let mut rows_per_worker = Vec::with_capacity(workers.len());
        let mut fill_nanos = Vec::with_capacity(workers.len());
        let mut sweep_nanos = Vec::with_capacity(workers.len());
        let mut peak_worker_bytes = 0usize;
        let mut total_aux_bytes = shared_bytes;
        let mut rows_skipped = 0usize;
        for w in &workers {
            rows_per_worker.push(w.rows);
            fill_nanos.push(w.fill_nanos);
            sweep_nanos.push(w.sweep_nanos);
            peak_worker_bytes = peak_worker_bytes.max(w.aux_bytes);
            total_aux_bytes += w.aux_bytes;
            rows_skipped += w.rows_skipped;
            for &(row, size) in &w.envelope_sizes {
                envelope_sizes[row] = size;
            }
        }
        Self {
            threads: workers.len(),
            rows,
            wall_nanos: 0,
            envelope_sizes,
            rows_per_worker,
            fill_nanos,
            sweep_nanos,
            peak_worker_bytes,
            total_aux_bytes,
            rows_skipped,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
        }
    }

    /// Attaches tile-cache counters (saturating, see the field docs).
    pub fn with_cache_counters(mut self, hits: u64, misses: u64, evictions: u64) -> Self {
        self.cache_hits = hits;
        self.cache_misses = misses;
        self.cache_evictions = evictions;
        self
    }

    /// Largest per-row envelope set.
    pub fn max_envelope(&self) -> usize {
        self.envelope_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Sum of all per-row envelope sizes (total interval insertions).
    pub fn total_envelope(&self) -> usize {
        self.envelope_sizes.iter().sum()
    }

    /// The `q`-th percentile (0.0–1.0, nearest-rank) of the per-row band
    /// sizes — the distribution that decides whether banded extraction
    /// beats a full scan on this dataset.
    pub fn envelope_percentile(&self, q: f64) -> usize {
        if self.envelope_sizes.is_empty() {
            return 0;
        }
        let mut sorted = self.envelope_sizes.clone();
        sorted.sort_unstable();
        let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }

    /// Total envelope-fill time across workers, in nanoseconds.
    pub fn total_fill_nanos(&self) -> u64 {
        self.fill_nanos.iter().sum()
    }

    /// Total sweep-phase time across workers, in nanoseconds.
    pub fn total_sweep_nanos(&self) -> u64 {
        self.sweep_nanos.iter().sum()
    }

    /// Ratio of the busiest worker's row count to the ideal equal share —
    /// 1.0 is perfect balance.
    pub fn imbalance(&self) -> f64 {
        let max = self.rows_per_worker.iter().copied().max().unwrap_or(0);
        if self.rows == 0 || self.rows_per_worker.is_empty() {
            return 1.0;
        }
        let ideal = self.rows as f64 / self.rows_per_worker.len() as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max as f64 / ideal
        }
    }

    /// Multi-line human-readable summary (what `--stats` prints).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "sweep stats: {} rows on {} workers, wall {:.3} ms",
            self.rows,
            self.threads,
            self.wall_nanos as f64 / 1e6
        );
        let _ = writeln!(
            s,
            "  phases: envelope extraction {:.3} ms, sweep {:.3} ms (cpu totals)",
            self.total_fill_nanos() as f64 / 1e6,
            self.total_sweep_nanos() as f64 / 1e6
        );
        let _ = writeln!(
            s,
            "  envelopes: total {} intervals, max/row {}, mean/row {:.1}",
            self.total_envelope(),
            self.max_envelope(),
            if self.rows == 0 { 0.0 } else { self.total_envelope() as f64 / self.rows as f64 }
        );
        let _ = writeln!(
            s,
            "  band sizes: p10 {} / p50 {} / p90 {}, {} empty rows skipped",
            self.envelope_percentile(0.10),
            self.envelope_percentile(0.50),
            self.envelope_percentile(0.90),
            self.rows_skipped
        );
        let _ = writeln!(
            s,
            "  rows/worker: {:?} (imbalance {:.2})",
            self.rows_per_worker,
            self.imbalance()
        );
        if self.cache_hits > 0 || self.cache_misses > 0 || self.cache_evictions > 0 {
            let _ = writeln!(
                s,
                "  tile cache: {} hit(s), {} miss(es), {} eviction(s)",
                self.cache_hits, self.cache_misses, self.cache_evictions
            );
        }
        let _ = write!(
            s,
            "  aux space: peak worker {} B, total {} B",
            self.peak_worker_bytes, self.total_aux_bytes
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(rows: &[(usize, usize)], fill: u64, sweep: u64, bytes: usize) -> WorkerStats {
        WorkerStats {
            rows: rows.len(),
            fill_nanos: fill,
            sweep_nanos: sweep,
            aux_bytes: bytes,
            rows_skipped: rows.iter().filter(|&&(_, size)| size == 0).count(),
            envelope_sizes: rows.to_vec(),
        }
    }

    #[test]
    fn merges_worker_records() {
        let report = SweepReport::from_workers(
            vec![worker(&[(0, 5), (2, 7)], 100, 300, 64), worker(&[(1, 1), (3, 0)], 50, 150, 128)],
            4,
            1000,
        );
        assert_eq!(report.threads, 2);
        assert_eq!(report.envelope_sizes, vec![5, 1, 7, 0]);
        assert_eq!(report.rows_per_worker, vec![2, 2]);
        assert_eq!(report.max_envelope(), 7);
        assert_eq!(report.total_envelope(), 13);
        assert_eq!(report.total_fill_nanos(), 150);
        assert_eq!(report.total_sweep_nanos(), 450);
        assert_eq!(report.peak_worker_bytes, 128);
        assert_eq!(report.total_aux_bytes, 1000 + 64 + 128);
        assert_eq!(report.rows_skipped, 1);
        assert!((report.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_of_band_sizes() {
        let report = SweepReport::from_workers(
            vec![worker(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 100)], 0, 0, 0)],
            5,
            0,
        );
        assert_eq!(report.envelope_percentile(0.0), 1);
        assert_eq!(report.envelope_percentile(0.5), 3);
        assert_eq!(report.envelope_percentile(1.0), 100);
        let empty = SweepReport::from_workers(Vec::new(), 0, 0);
        assert_eq!(empty.envelope_percentile(0.5), 0);
    }

    #[test]
    fn imbalance_reflects_skew() {
        let report = SweepReport::from_workers(
            vec![worker(&[(0, 1), (1, 1), (2, 1)], 0, 0, 0), worker(&[(3, 1)], 0, 0, 0)],
            4,
            0,
        );
        assert!((report.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_key_figures() {
        let mut report =
            SweepReport::from_workers(vec![worker(&[(0, 9)], 1_000_000, 2_000_000, 42)], 1, 0);
        report.wall_nanos = 3_000_000;
        let s = report.summary();
        assert!(s.contains("1 workers"));
        assert!(s.contains("max/row 9"));
        assert!(s.contains("imbalance"));
    }

    #[test]
    fn cache_counters_appear_only_when_used() {
        let plain = SweepReport::from_workers(vec![worker(&[(0, 1)], 0, 0, 0)], 1, 0);
        assert!(!plain.summary().contains("tile cache"));
        let served = plain.clone().with_cache_counters(7, 2, 1);
        assert_eq!(served.cache_hits, 7);
        let s = served.summary();
        assert!(s.contains("7 hit(s)") && s.contains("2 miss(es)") && s.contains("1 eviction(s)"));
    }

    #[test]
    fn empty_report_is_safe() {
        let report = SweepReport::from_workers(Vec::new(), 0, 0);
        assert_eq!(report.max_envelope(), 0);
        assert_eq!(report.imbalance(), 1.0);
        assert!(!report.summary().is_empty());
    }
}
