//! Execution telemetry for the parallel sweep runtime.
//!
//! The work-stealing scheduler in [`crate::parallel`] optionally records
//! what each worker did: which rows it claimed, how long it spent building
//! envelopes versus sweeping, how large the per-row envelope sets were, and
//! how much auxiliary heap it held. A [`SweepReport`] aggregates those
//! per-worker records so callers (the CLI's `--stats` flag, the bench
//! binaries) can inspect load balance and the envelope-size distribution —
//! the quantities that decide whether dynamic row scheduling pays off on
//! clustered data.
//!
//! Since the `kdv-obs` observability layer landed, the same quantities are
//! also emitted as structured spans (`band.search`, `envelope.fill`,
//! `row.sweep`, …) whenever the recorder is enabled. [`SweepReport`] is
//! kept as the stable *compatibility view*: [`SweepReport::from_trace`]
//! derives one from the span stream, and [`SweepReport::record_metrics`]
//! publishes its aggregates into the global metrics registry.

/// What one worker thread did during a parallel sweep.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Rows this worker claimed and swept.
    pub rows: usize,
    /// Nanoseconds spent building envelope sets (the `O(n)` per-row scan).
    pub fill_nanos: u64,
    /// Nanoseconds spent in the sweep phase proper.
    pub sweep_nanos: u64,
    /// Auxiliary heap bytes held at the end of the run (envelope buffer
    /// plus engine scratch — the parallel extension of
    /// [`crate::driver::RowEngine::space_bytes`]).
    pub aux_bytes: usize,
    /// Rows this worker claimed whose band was empty (skipped outright —
    /// no interval fill, no engine pass; the output row stays zero).
    pub rows_skipped: usize,
    /// `(row index, |E(k)|)` for every row this worker processed.
    pub envelope_sizes: Vec<(usize, usize)>,
}

/// Aggregated telemetry of one parallel sweep execution.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Worker threads the scheduler actually spawned.
    pub threads: usize,
    /// Total raster rows processed.
    pub rows: usize,
    /// Wall-clock nanoseconds of the whole parallel section.
    pub wall_nanos: u64,
    /// `|E(k)|` per row, indexed by row.
    pub envelope_sizes: Vec<usize>,
    /// Rows claimed per worker — unequal on clustered data, which is the
    /// point of dynamic scheduling.
    pub rows_per_worker: Vec<usize>,
    /// Envelope-fill nanoseconds per worker.
    pub fill_nanos: Vec<u64>,
    /// Sweep-phase nanoseconds per worker.
    pub sweep_nanos: Vec<u64>,
    /// Peak auxiliary heap bytes over all workers (their buffers coexist,
    /// so the parallel footprint is the *sum*; both are reported).
    pub peak_worker_bytes: usize,
    /// Total auxiliary heap bytes across workers plus shared context
    /// (including the banded index of the [`crate::driver::SweepContext`]).
    pub total_aux_bytes: usize,
    /// Rows skipped because their band was empty (densities exactly zero).
    pub rows_skipped: usize,
    /// Tile-cache hits observed while serving this computation (zero for
    /// plain sweeps; populated by the `kdv-serve` tile cache). All cache
    /// counters are **saturating**: a counter that reaches `u64::MAX`
    /// stays there instead of wrapping, so reported counters are monotone
    /// over the lifetime of a cache however long it runs.
    pub cache_hits: u64,
    /// Tile-cache misses (each miss triggered a band computation).
    pub cache_misses: u64,
    /// Tiles evicted to keep the cache inside its byte budget.
    pub cache_evictions: u64,
    /// Tiles the cache refused outright (oversized — computed, never
    /// cached, immediately dropped). Distinct from `cache_evictions`,
    /// which means an entry was cached and later displaced.
    pub cache_rejected: u64,
    /// Cached tiles updated *in place* by a streaming delta patch (the
    /// tile's bits were advanced to a newer delta generation without a
    /// fresh band sweep). A patch is neither a hit (the cached bits were
    /// not served as-is) nor a miss+insert (no full recompute happened) —
    /// conflating it with either would make the patch path invisible or
    /// look like churn.
    pub cache_patched: u64,
}

impl SweepReport {
    /// Builds a report from per-worker records.
    ///
    /// `shared_bytes` is the heap held by row-independent shared state
    /// (recentred points, pixel coordinates).
    pub fn from_workers(workers: Vec<WorkerStats>, rows: usize, shared_bytes: usize) -> Self {
        let mut envelope_sizes = vec![0usize; rows];
        let mut rows_per_worker = Vec::with_capacity(workers.len());
        let mut fill_nanos = Vec::with_capacity(workers.len());
        let mut sweep_nanos = Vec::with_capacity(workers.len());
        let mut peak_worker_bytes = 0usize;
        let mut total_aux_bytes = shared_bytes;
        let mut rows_skipped = 0usize;
        for w in &workers {
            rows_per_worker.push(w.rows);
            fill_nanos.push(w.fill_nanos);
            sweep_nanos.push(w.sweep_nanos);
            peak_worker_bytes = peak_worker_bytes.max(w.aux_bytes);
            total_aux_bytes += w.aux_bytes;
            rows_skipped += w.rows_skipped;
            for &(row, size) in &w.envelope_sizes {
                // A worker can only legitimately record rows it was handed;
                // an out-of-range index is a scheduler bug, but telemetry
                // must not panic a release sweep over it — drop the record.
                debug_assert!(row < rows, "worker recorded out-of-range row {row} of {rows}");
                if let Some(slot) = envelope_sizes.get_mut(row) {
                    *slot = size;
                }
            }
        }
        Self {
            threads: workers.len(),
            rows,
            wall_nanos: 0,
            envelope_sizes,
            rows_per_worker,
            fill_nanos,
            sweep_nanos,
            peak_worker_bytes,
            total_aux_bytes,
            rows_skipped,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            cache_rejected: 0,
            cache_patched: 0,
        }
    }

    /// Attaches tile-cache counters (saturating, see the field docs).
    pub fn with_cache_counters(mut self, hits: u64, misses: u64, evictions: u64) -> Self {
        self.cache_hits = hits;
        self.cache_misses = misses;
        self.cache_evictions = evictions;
        self
    }

    /// Attaches the count of cache-refused (oversized) tiles.
    pub fn with_cache_rejected(mut self, rejected: u64) -> Self {
        self.cache_rejected = rejected;
        self
    }

    /// Attaches the count of tiles advanced by an in-place delta patch.
    pub fn with_cache_patched(mut self, patched: u64) -> Self {
        self.cache_patched = patched;
        self
    }

    /// Accumulates tile-cache counters from another observation window,
    /// saturating at `u64::MAX` like the counters themselves — merging two
    /// near-full windows must stay monotone, not wrap.
    pub fn merge_cache_counters(&mut self, hits: u64, misses: u64, evictions: u64) {
        self.cache_hits = self.cache_hits.saturating_add(hits);
        self.cache_misses = self.cache_misses.saturating_add(misses);
        self.cache_evictions = self.cache_evictions.saturating_add(evictions);
    }

    /// Derives the compatibility view from a recorded span stream: rows
    /// and skips from `band.search`/`envelope.fill` counts, per-row
    /// envelope sizes from the `envelope.fill` `row`/`size` arguments,
    /// phase nanoseconds from span durations, and the wall clock from the
    /// enclosing `sweep.parallel`/`sweep.sequential` span. One worker per
    /// recorder thread id, in thread-id order.
    ///
    /// Heap accounting (`aux_bytes`) is not part of the span stream, so
    /// the byte fields of the derived report are zero — callers that need
    /// them use the report returned by the `*_with_report` entry points.
    pub fn from_trace(trace: &kdv_obs::Trace, rows: usize) -> Self {
        fn arg(e: &kdv_obs::TraceEvent, key: &str) -> Option<u64> {
            e.args.as_slice().iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
        }
        // events are sorted by (tid, ts), so each worker's rows replay in
        // the order it swept them: a `band.search` not followed by its
        // row's `envelope.fill` is a skipped (empty-band) row
        let mut workers: Vec<(u64, WorkerStats)> = Vec::new();
        let mut pending: Option<u64> = None;
        let mut wall_nanos = 0u64;
        let mut last_tid = None;
        for e in &trace.events {
            if last_tid != Some(e.tid) {
                if let (Some(row), Some((_, w))) = (pending.take(), workers.last_mut()) {
                    w.rows_skipped += 1;
                    w.envelope_sizes.push((row as usize, 0));
                }
                last_tid = Some(e.tid);
            }
            match e.name {
                "sweep.parallel" | "sweep.sequential" => wall_nanos = wall_nanos.max(e.dur_ns),
                "band.search" | "envelope.fill" | "row.sweep" => {
                    let w = match workers.last_mut() {
                        Some((tid, w)) if *tid == e.tid => w,
                        _ => {
                            workers.push((e.tid, WorkerStats::default()));
                            &mut workers.last_mut().expect("just pushed").1
                        }
                    };
                    match e.name {
                        "band.search" => {
                            if let Some(row) = pending.take() {
                                w.rows_skipped += 1;
                                w.envelope_sizes.push((row as usize, 0));
                            }
                            pending = arg(e, "row");
                            w.rows += 1;
                            w.fill_nanos += e.dur_ns;
                        }
                        "envelope.fill" => {
                            let row = arg(e, "row").or_else(|| pending.take());
                            pending = None;
                            w.fill_nanos += e.dur_ns;
                            if let (Some(row), Some(size)) = (row, arg(e, "size")) {
                                w.envelope_sizes.push((row as usize, size as usize));
                            }
                        }
                        _ => w.sweep_nanos += e.dur_ns,
                    }
                }
                _ => {}
            }
        }
        if let (Some(row), Some((_, w))) = (pending.take(), workers.last_mut()) {
            w.rows_skipped += 1;
            w.envelope_sizes.push((row as usize, 0));
        }
        let mut report = Self::from_workers(workers.into_iter().map(|(_, w)| w).collect(), rows, 0);
        report.wall_nanos = wall_nanos;
        report
    }

    /// Publishes the report's aggregates into the global `kdv-obs` metrics
    /// registry (counters `sweep.rows` / `sweep.rows_skipped`, histograms
    /// `sweep.fill_ns` / `sweep.sweep_ns` per worker and
    /// `sweep.envelope_size` per row). Called once per run by the CLI when
    /// a metrics export is requested — never from the per-row hot path.
    pub fn record_metrics(&self) {
        let reg = kdv_obs::metrics::global();
        reg.counter("sweep.rows").add(self.rows as u64);
        reg.counter("sweep.rows_skipped").add(self.rows_skipped as u64);
        let fill = reg.histogram("sweep.fill_ns");
        for &ns in &self.fill_nanos {
            fill.record(ns);
        }
        let sweep = reg.histogram("sweep.sweep_ns");
        for &ns in &self.sweep_nanos {
            sweep.record(ns);
        }
        let env = reg.histogram("sweep.envelope_size");
        for &size in &self.envelope_sizes {
            env.record(size as u64);
        }
        reg.counter("cache.hits").add(self.cache_hits);
        reg.counter("cache.misses").add(self.cache_misses);
        reg.counter("cache.evictions").add(self.cache_evictions);
        reg.counter("cache.rejected").add(self.cache_rejected);
        reg.counter("cache.patched").add(self.cache_patched);
    }

    /// Largest per-row envelope set.
    pub fn max_envelope(&self) -> usize {
        self.envelope_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Sum of all per-row envelope sizes (total interval insertions).
    pub fn total_envelope(&self) -> usize {
        self.envelope_sizes.iter().sum()
    }

    /// The `q`-th percentile (0.0–1.0, nearest-rank) of the per-row band
    /// sizes — the distribution that decides whether banded extraction
    /// beats a full scan on this dataset.
    pub fn envelope_percentile(&self, q: f64) -> usize {
        let sizes: Vec<u64> = self.envelope_sizes.iter().map(|&s| s as u64).collect();
        kdv_obs::stats::percentile_u64(&sizes, q).unwrap_or(0) as usize
    }

    /// Total envelope-fill time across workers, in nanoseconds.
    pub fn total_fill_nanos(&self) -> u64 {
        self.fill_nanos.iter().sum()
    }

    /// Total sweep-phase time across workers, in nanoseconds.
    pub fn total_sweep_nanos(&self) -> u64 {
        self.sweep_nanos.iter().sum()
    }

    /// Ratio of the busiest worker's row count to the ideal equal share —
    /// 1.0 is perfect balance.
    pub fn imbalance(&self) -> f64 {
        let max = self.rows_per_worker.iter().copied().max().unwrap_or(0);
        if self.rows == 0 || self.rows_per_worker.is_empty() {
            return 1.0;
        }
        let ideal = self.rows as f64 / self.rows_per_worker.len() as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max as f64 / ideal
        }
    }

    /// Multi-line human-readable summary (what `--stats` prints).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "sweep stats: {} rows on {} workers, wall {:.3} ms",
            self.rows,
            self.threads,
            self.wall_nanos as f64 / 1e6
        );
        let _ = writeln!(
            s,
            "  phases: envelope extraction {:.3} ms, sweep {:.3} ms (cpu totals)",
            self.total_fill_nanos() as f64 / 1e6,
            self.total_sweep_nanos() as f64 / 1e6
        );
        let _ = writeln!(
            s,
            "  envelopes: total {} intervals, max/row {}, mean/row {:.1}",
            self.total_envelope(),
            self.max_envelope(),
            if self.rows == 0 { 0.0 } else { self.total_envelope() as f64 / self.rows as f64 }
        );
        let _ = writeln!(
            s,
            "  band sizes: p10 {} / p50 {} / p90 {}, {} empty rows skipped",
            self.envelope_percentile(0.10),
            self.envelope_percentile(0.50),
            self.envelope_percentile(0.90),
            self.rows_skipped
        );
        let _ = writeln!(
            s,
            "  rows/worker: {:?} (imbalance {:.2})",
            self.rows_per_worker,
            self.imbalance()
        );
        if self.cache_hits > 0
            || self.cache_misses > 0
            || self.cache_evictions > 0
            || self.cache_rejected > 0
            || self.cache_patched > 0
        {
            let _ = writeln!(
                s,
                "  tile cache: {} hit(s), {} miss(es), {} eviction(s), {} rejected, {} patched",
                self.cache_hits,
                self.cache_misses,
                self.cache_evictions,
                self.cache_rejected,
                self.cache_patched
            );
        }
        let _ = write!(
            s,
            "  aux space: peak worker {} B, total {} B",
            self.peak_worker_bytes, self.total_aux_bytes
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(rows: &[(usize, usize)], fill: u64, sweep: u64, bytes: usize) -> WorkerStats {
        WorkerStats {
            rows: rows.len(),
            fill_nanos: fill,
            sweep_nanos: sweep,
            aux_bytes: bytes,
            rows_skipped: rows.iter().filter(|&&(_, size)| size == 0).count(),
            envelope_sizes: rows.to_vec(),
        }
    }

    #[test]
    fn merges_worker_records() {
        let report = SweepReport::from_workers(
            vec![worker(&[(0, 5), (2, 7)], 100, 300, 64), worker(&[(1, 1), (3, 0)], 50, 150, 128)],
            4,
            1000,
        );
        assert_eq!(report.threads, 2);
        assert_eq!(report.envelope_sizes, vec![5, 1, 7, 0]);
        assert_eq!(report.rows_per_worker, vec![2, 2]);
        assert_eq!(report.max_envelope(), 7);
        assert_eq!(report.total_envelope(), 13);
        assert_eq!(report.total_fill_nanos(), 150);
        assert_eq!(report.total_sweep_nanos(), 450);
        assert_eq!(report.peak_worker_bytes, 128);
        assert_eq!(report.total_aux_bytes, 1000 + 64 + 128);
        assert_eq!(report.rows_skipped, 1);
        assert!((report.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_of_band_sizes() {
        let report = SweepReport::from_workers(
            vec![worker(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 100)], 0, 0, 0)],
            5,
            0,
        );
        assert_eq!(report.envelope_percentile(0.0), 1);
        assert_eq!(report.envelope_percentile(0.5), 3);
        assert_eq!(report.envelope_percentile(1.0), 100);
        let empty = SweepReport::from_workers(Vec::new(), 0, 0);
        assert_eq!(empty.envelope_percentile(0.5), 0);
    }

    #[test]
    fn imbalance_reflects_skew() {
        let report = SweepReport::from_workers(
            vec![worker(&[(0, 1), (1, 1), (2, 1)], 0, 0, 0), worker(&[(3, 1)], 0, 0, 0)],
            4,
            0,
        );
        assert!((report.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_key_figures() {
        let mut report =
            SweepReport::from_workers(vec![worker(&[(0, 9)], 1_000_000, 2_000_000, 42)], 1, 0);
        report.wall_nanos = 3_000_000;
        let s = report.summary();
        assert!(s.contains("1 workers"));
        assert!(s.contains("max/row 9"));
        assert!(s.contains("imbalance"));
    }

    #[test]
    fn cache_counters_appear_only_when_used() {
        let plain = SweepReport::from_workers(vec![worker(&[(0, 1)], 0, 0, 0)], 1, 0);
        assert!(!plain.summary().contains("tile cache"));
        let served = plain.clone().with_cache_counters(7, 2, 1);
        assert_eq!(served.cache_hits, 7);
        let s = served.summary();
        assert!(s.contains("7 hit(s)") && s.contains("2 miss(es)") && s.contains("1 eviction(s)"));
    }

    #[test]
    fn out_of_range_row_is_clamped_in_release_and_asserts_in_debug() {
        let bad = worker(&[(0, 3), (9, 5)], 0, 0, 0); // row 9 of a 2-row raster
        if cfg!(debug_assertions) {
            let result = std::panic::catch_unwind(|| SweepReport::from_workers(vec![bad], 2, 0));
            assert!(result.is_err(), "debug build must flag the scheduler bug");
        } else {
            let report = SweepReport::from_workers(vec![bad], 2, 0);
            assert_eq!(report.envelope_sizes, vec![3, 0], "bad record dropped, not panicked");
            assert_eq!(report.rows_per_worker, vec![2]);
        }
    }

    #[test]
    fn merge_cache_counters_saturates() {
        let mut report = SweepReport::from_workers(Vec::new(), 0, 0).with_cache_counters(
            u64::MAX - 1,
            10,
            u64::MAX,
        );
        report.merge_cache_counters(5, 3, 1);
        assert_eq!(report.cache_hits, u64::MAX, "near-full counter saturates");
        assert_eq!(report.cache_misses, 13, "ordinary counters add");
        assert_eq!(report.cache_evictions, u64::MAX, "full counter stays pinned");
        report.merge_cache_counters(0, 0, 0);
        assert_eq!((report.cache_hits, report.cache_misses), (u64::MAX, 13));
    }

    #[test]
    fn from_trace_derives_the_compat_view() {
        use kdv_obs::{SpanArgs, Trace, TraceEvent};
        fn args(pairs: &[(&'static str, u64)]) -> SpanArgs {
            let mut a = SpanArgs::default();
            for &(k, v) in pairs {
                a.push(k, v);
            }
            a
        }
        fn ev(
            name: &'static str,
            tid: u64,
            ts: u64,
            dur: u64,
            a: &[(&'static str, u64)],
        ) -> TraceEvent {
            TraceEvent { name, tid, ts_ns: ts, dur_ns: dur, args: args(a) }
        }
        // worker 1 sweeps rows 0 (size 4) and 2 (empty band, skipped);
        // worker 2 sweeps row 1 (size 6); main thread holds the wall span
        let trace = Trace {
            events: vec![
                ev("sweep.parallel", 0, 0, 10_000, &[("rows", 3), ("threads", 2)]),
                ev("band.search", 1, 100, 50, &[("row", 0)]),
                ev("envelope.fill", 1, 160, 200, &[("row", 0), ("size", 4)]),
                ev("row.sweep", 1, 400, 700, &[("row", 0)]),
                ev("band.search", 1, 1200, 40, &[("row", 2)]),
                ev("band.search", 2, 150, 60, &[("row", 1)]),
                ev("envelope.fill", 2, 220, 300, &[("row", 1), ("size", 6)]),
                ev("row.sweep", 2, 600, 900, &[("row", 1)]),
            ],
            unmatched_begins: 0,
            unmatched_ends: 0,
        };
        let report = SweepReport::from_trace(&trace, 3);
        assert_eq!(report.threads, 2);
        assert_eq!(report.rows, 3);
        assert_eq!(report.wall_nanos, 10_000);
        assert_eq!(report.envelope_sizes, vec![4, 6, 0]);
        assert_eq!(report.rows_per_worker, vec![2, 1]);
        assert_eq!(report.rows_skipped, 1);
        assert_eq!(report.fill_nanos, vec![50 + 200 + 40, 60 + 300]);
        assert_eq!(report.sweep_nanos, vec![700, 900]);
    }

    #[test]
    fn record_metrics_publishes_aggregates() {
        let registry = kdv_obs::metrics::global();
        let before = registry.snapshot();
        let mut report =
            SweepReport::from_workers(vec![worker(&[(0, 5), (1, 0)], 120, 340, 0)], 2, 0);
        report.merge_cache_counters(3, 2, 1);
        report.record_metrics();
        let delta = registry.snapshot().diff(&before);
        // counters are cumulative across tests sharing the global registry,
        // so only the window delta is asserted
        assert_eq!(delta.counter("sweep.rows"), Some(2));
        assert_eq!(delta.counter("sweep.rows_skipped"), Some(1));
        assert_eq!(delta.counter("cache.hits"), Some(3));
        assert_eq!(delta.counter("cache.misses"), Some(2));
        assert_eq!(delta.counter("cache.evictions"), Some(1));
        match delta.get("sweep.envelope_size") {
            Some(kdv_obs::metrics::MetricValue::Histogram(h)) => assert_eq!(h.count, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_report_is_safe() {
        let report = SweepReport::from_workers(Vec::new(), 0, 0);
        assert_eq!(report.max_envelope(), 0);
        assert_eq!(report.imbalance(), 1.0);
        assert!(!report.summary().is_empty());
    }
}
