//! SLAM_SORT — the sorting-based sweep line algorithm (paper Section 3.4,
//! Algorithm 1).
//!
//! Per pixel row: sort the lower-bound values and the upper-bound values of
//! the envelope intervals, then move a sweep line left-to-right across the
//! (already sorted) pixel x-coordinates. Two merge pointers play the role of
//! the sorted list `𝓛`: before evaluating pixel `q_i`, every interval with
//! `LB ≤ q_i.x` has been inserted into the `L` accumulator and every
//! interval with `UB < q_i.x` into the `U` accumulator, so the aggregates of
//! `R(q_i) = L \ U` are available in O(1) (Lemma 3).
//!
//! Row cost: `O(|E(k)| log |E(k)| + X)`; whole raster `O(Y(n log n + X))`
//! (Theorem 1).
//!
//! # The rolling sweep frame
//!
//! The aggregate decomposition (Table 4) cancels terms up to `‖p‖⁴`, so its
//! rounding error grows like `ε·(c/b)⁴` where `c` is the magnitude of the
//! stored coordinates. Global recentring (`SweepContext`) bounds `c` by the
//! region half-extent, which is not enough when the region is much wider
//! than the bandwidth (the recorded quartic regression in
//! `tests/sweep_properties.proptest-regressions`). The engines therefore
//! evaluate in a *row-local rolling frame* `(frame_x, k)`:
//!
//! * points enter the accumulators as `(p.x − frame_x, p.y − k)`;
//! * a pixel is evaluated at `q = (x − frame_x, 0)`;
//! * when the sweep runs ahead of the frame by more than `4b`, the
//!   accumulators are translated with [`SweepAccumulator::shift_x`] (exact
//!   in real arithmetic) and the frame snaps to the current pixel;
//! * when the active set empties, both accumulators are reset outright,
//!   which also discards any accumulated rounding residue.
//!
//! Combined with two exactness-preserving event rules — intervals that
//! contain no pixel centre are never inserted (they would enter `L` and `U`
//! at the same pixel and cancel), and deactivation happens at the *last*
//! pixel an interval contains rather than the first one past it — every
//! coordinate handed to an accumulator is within `b` of its event pixel and
//! hence within `5b` of the frame. The decomposition error becomes
//! `O(ε·|E(k)|)` with a constant of a few hundred, independent of where on
//! Earth the data sits and of the raster/bandwidth ratio.

use crate::aggregate::SweepAccumulator;
use crate::driver::{sweep_grid, KdvParams, RowEngine};
use crate::envelope::SweepInterval;
use crate::error::Result;
use crate::geom::Point;
use crate::grid::DensityGrid;
use crate::kernel::KernelType;
use crate::simd::{density_at, EmitAggregates, EmitBuffer, SimdMode};

/// Reusable row engine implementing SLAM_SORT.
pub struct SortSweep {
    kernel: KernelType,
    bandwidth: f64,
    weight: f64,
    /// Intervals sorted by lower bound: `(LB_k(p), UB_k(p), p)`.
    lbs: Vec<(f64, f64, Point)>,
    /// Intervals sorted by upper bound: `(UB_k(p), LB_k(p), p)`.
    ubs: Vec<(f64, f64, Point)>,
    l_acc: SweepAccumulator,
    u_acc: SweepAccumulator,
    emit: EmitBuffer,
}

impl SortSweep {
    /// Creates an engine for the given kernel/bandwidth/weight.
    pub fn new(kernel: KernelType, bandwidth: f64, weight: f64) -> Self {
        let quartic = kernel.needs_quartic_terms();
        Self {
            kernel,
            bandwidth,
            weight,
            lbs: Vec::new(),
            ubs: Vec::new(),
            l_acc: SweepAccumulator::new(quartic),
            u_acc: SweepAccumulator::new(quartic),
            emit: EmitBuffer::default(),
        }
    }
}

impl RowEngine for SortSweep {
    fn process_row(&mut self, xs: &[f64], k: f64, intervals: &[SweepInterval], out: &mut [f64]) {
        // Build and sort the two endpoint lists — the row's bottleneck
        // (O(|E(k)| log |E(k)|), line 3 of Algorithm 1).
        {
            let _s = kdv_obs::span1("interval.sort", "intervals", intervals.len() as u64);
            self.lbs.clear();
            self.ubs.clear();
            self.lbs.extend(intervals.iter().map(|iv| (iv.lb, iv.ub, iv.point)));
            self.ubs.extend(intervals.iter().map(|iv| (iv.ub, iv.lb, iv.point)));
            self.lbs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            self.ubs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        }

        self.l_acc.reset();
        self.u_acc.reset();
        let (mut li, mut ui) = (0usize, 0usize);
        // Rolling frame: see the module docs. `4b` keeps shifts rare (at
        // most every ~4 bandwidths of sweep progress) while bounding every
        // accumulator coordinate by `5b`.
        let shift_limit = 4.0 * self.bandwidth;
        let mut frame_x = xs[0];
        let x_count = xs.len();

        // Two variants, dispatched once per row on [`crate::simd::mode`]:
        // the scalar fallback is the paper-faithful fused loop (one
        // `diff` + density evaluation per pixel, interleaved with the merge
        // pointers), while the vector path records event-free pixel runs —
        // between two events every pixel sees the *same* aggregate snapshot
        // in the *same* frame — and defers evaluation to
        // `EmitBuffer::flush`, which walks each run 4 pixels per iteration.
        // Event processing is identical, so the two variants are bitwise
        // identical (a conformance pair pins this).
        let mode = crate::simd::mode();
        let mut span = kdv_obs::span1("emit.simd", "mode", mode as u64);
        let lanes = match mode {
            SimdMode::Scalar => {
                for (i, &x) in xs.iter().enumerate() {
                    if self.l_acc.count() == self.u_acc.count() {
                        // Active set is empty: restart clean at the pixel.
                        self.l_acc.reset();
                        self.u_acc.reset();
                        frame_x = x;
                    } else if x - frame_x > shift_limit {
                        let delta = x - frame_x;
                        self.l_acc.shift_x(delta);
                        self.u_acc.shift_x(delta);
                        frame_x = x;
                    }
                    // Case 1: sweep passes lower bounds with LB ≤ x.
                    // Intervals that contain no pixel centre (UB < x
                    // already) would cancel against an immediate
                    // deactivation, so they are skipped on both sides.
                    while li < self.lbs.len() && self.lbs[li].0 <= x {
                        let (_, ub, p) = self.lbs[li];
                        if ub >= x {
                            self.l_acc.insert(&Point::new(p.x - frame_x, p.y - k));
                        }
                        li += 1;
                    }
                    // Case 3: evaluate the pixel from L − U aggregates
                    // (Lemma 3).
                    let agg = self.l_acc.diff(&self.u_acc);
                    let q = Point::new(x - frame_x, 0.0);
                    out[i] =
                        self.kernel.density_from_aggregates(&q, &agg, self.bandwidth, self.weight);
                    // Case 2: deactivate intervals ending before the next
                    // pixel (UB < xs[i+1]; strict, so a pixel exactly on an
                    // interval's right endpoint still counts, keeping
                    // R(q) = {dist ≤ b} inclusive). Doing this at the last
                    // pixel the interval contains — instead of the first
                    // pixel past it — keeps the deactivated coordinates
                    // within `b` of the current pixel.
                    if i + 1 < xs.len() {
                        let x_next = xs[i + 1];
                        while ui < self.ubs.len() && self.ubs[ui].0 < x_next {
                            let (ub, lb, p) = self.ubs[ui];
                            // Mirror of the insertion skip: only intervals
                            // that contained the current pixel were ever
                            // inserted.
                            if lb <= x && ub >= x {
                                self.u_acc.insert(&Point::new(p.x - frame_x, p.y - k));
                            }
                            ui += 1;
                        }
                    }
                }
                0
            }
            SimdMode::Vector => {
                self.emit.clear();
                let mut i = 0usize;
                while i < x_count {
                    let x = xs[i];
                    if self.l_acc.count() == self.u_acc.count() {
                        // Active set is empty: restart clean at the pixel.
                        self.l_acc.reset();
                        self.u_acc.reset();
                        frame_x = x;
                    } else if x - frame_x > shift_limit {
                        let delta = x - frame_x;
                        self.l_acc.shift_x(delta);
                        self.u_acc.shift_x(delta);
                        frame_x = x;
                    }
                    // Case 1: sweep passes lower bounds with LB ≤ x.
                    // Intervals that contain no pixel centre (UB < x
                    // already) would cancel against an immediate
                    // deactivation, so they are skipped on both sides.
                    while li < self.lbs.len() && self.lbs[li].0 <= x {
                        let (_, ub, p) = self.lbs[li];
                        if ub >= x {
                            self.l_acc.insert(&Point::new(p.x - frame_x, p.y - k));
                        }
                        li += 1;
                    }
                    // Extend the run until the next event: an activation at
                    // pixel `e`, a deactivation firing strictly below
                    // `xs[e]` (the merge pointer must advance there even if
                    // its interval never inserted — pointer timing is part
                    // of the replayed state), or a frame shift. Empty runs
                    // ignore the shift limit because the scalar loop resets
                    // the frame at every empty pixel.
                    let empty = self.l_acc.count() == self.u_acc.count();
                    let mut e = i + 1;
                    while e < x_count
                        && !(li < self.lbs.len() && self.lbs[li].0 <= xs[e])
                        && !(ui < self.ubs.len() && self.ubs[ui].0 < xs[e])
                        && (empty || xs[e] - frame_x <= shift_limit)
                    {
                        e += 1;
                    }
                    // Case 3: evaluate the run from L − U aggregates
                    // (Lemma 3).
                    if empty {
                        // Empty ⟹ the reset above ran and Case 1 inserted
                        // nothing: every run pixel evaluates at
                        // `q = (+0.0, 0.0)` with zeroed aggregates — a
                        // constant.
                        self.emit.push_fill(
                            i,
                            e,
                            density_at(
                                self.kernel,
                                &EmitAggregates::default(),
                                0.0,
                                self.bandwidth,
                                self.weight,
                            ),
                        );
                        frame_x = xs[e - 1];
                    } else {
                        let agg = self.l_acc.diff(&self.u_acc);
                        self.emit.push_run(i, e, frame_x, EmitAggregates::from(&agg));
                    }
                    // Case 2 for the run-final pixel `e − 1`: deactivate
                    // intervals ending before pixel `e` (UB < xs[e];
                    // strict, so a pixel exactly on an interval's right
                    // endpoint still counts, keeping R(q) = {dist ≤ b}
                    // inclusive). Deactivating at the last pixel an
                    // interval contains — instead of the first pixel past
                    // it — keeps the deactivated coordinates within `b` of
                    // the sweep position. Run pixels before `e − 1` have no
                    // deactivations by the scan above.
                    if e < x_count {
                        let x_last = xs[e - 1];
                        while ui < self.ubs.len() && self.ubs[ui].0 < xs[e] {
                            let (ub, lb, p) = self.ubs[ui];
                            // Mirror of the insertion skip: only intervals
                            // that contained the run-final pixel were ever
                            // inserted.
                            if lb <= x_last && ub >= x_last {
                                self.u_acc.insert(&Point::new(p.x - frame_x, p.y - k));
                            }
                            ui += 1;
                        }
                    }
                    i = e;
                }
                self.emit.flush(self.kernel, self.bandwidth, self.weight, xs, out)
            }
        };
        span.arg("lanes", lanes as u64);
    }

    fn space_bytes(&self) -> usize {
        (self.lbs.capacity() + self.ubs.capacity()) * std::mem::size_of::<(f64, f64, Point)>()
            + self.emit.space_bytes()
    }
}

/// Computes the full KDV raster with SLAM_SORT
/// (`O(Y(n log n + X))`, Theorem 1).
pub fn compute(params: &KdvParams, points: &[Point]) -> Result<DensityGrid> {
    let mut engine = SortSweep::new(params.kernel, params.bandwidth, params.weight);
    sweep_grid(params, points, &mut engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;
    use crate::grid::GridSpec;

    /// Brute-force reference (SCAN) for comparison.
    fn scan(params: &KdvParams, points: &[Point]) -> DensityGrid {
        let g = &params.grid;
        let mut out = DensityGrid::zeroed(g.res_x, g.res_y);
        for j in 0..g.res_y {
            for i in 0..g.res_x {
                let q = g.pixel_center(i, j);
                out.set(
                    i,
                    j,
                    params.kernel.density_scan(&q, points, params.bandwidth, params.weight),
                );
            }
        }
        out
    }

    fn params(kernel: KernelType) -> KdvParams {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 100.0, 50.0), 32, 16).unwrap();
        KdvParams::new(grid, kernel, 12.0).with_weight(0.125)
    }

    fn cluster_points() -> Vec<Point> {
        // deterministic pseudo-random cloud with clumps
        let mut pts = Vec::new();
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..400 {
            pts.push(Point::new(next() * 100.0, next() * 50.0));
        }
        for _ in 0..100 {
            pts.push(Point::new(20.0 + next() * 5.0, 30.0 + next() * 5.0));
        }
        pts
    }

    #[test]
    fn matches_scan_for_all_kernels() {
        let pts = cluster_points();
        for kernel in KernelType::ALL {
            let p = params(kernel);
            let fast = compute(&p, &pts).unwrap();
            let slow = scan(&p, &pts);
            let err = crate::stats::max_rel_error(fast.values(), slow.values());
            assert!(err < 1e-9, "{kernel}: max rel err {err}");
        }
    }

    #[test]
    fn empty_dataset_gives_zero_grid() {
        let p = params(KernelType::Epanechnikov);
        let grid = compute(&p, &[]).unwrap();
        assert_eq!(grid.max_value(), 0.0);
    }

    #[test]
    fn single_point_peak_at_nearest_pixel() {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 11, 11).unwrap();
        // 11 columns over width 10 → centres at ~0.45, 1.36, ...; put the
        // point exactly on the centre pixel (i=5 → x = 5.0)
        let p = KdvParams::new(grid, KernelType::Epanechnikov, 3.0);
        let pts = [Point::new(grid.pixel_x(5), grid.pixel_y(5))];
        let d = compute(&p, &pts).unwrap();
        assert!((d.get(5, 5) - 1.0).abs() < 1e-12);
        let mut max = 0.0;
        for j in 0..11 {
            for i in 0..11 {
                max = f64::max(max, d.get(i, j));
            }
        }
        assert_eq!(max, d.get(5, 5));
    }

    #[test]
    fn points_outside_region_still_contribute_within_bandwidth() {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 10, 10).unwrap();
        let p = KdvParams::new(grid, KernelType::Epanechnikov, 5.0);
        // point left of the region but within b of the first column
        let pts = [Point::new(-2.0, 5.0)];
        let d = compute(&p, &pts).unwrap();
        assert!(d.get(0, 4) > 0.0, "out-of-region point must contribute");
        assert_eq!(d.get(9, 4), 0.0);
    }
}
