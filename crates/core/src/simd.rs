//! Runtime-dispatched `f64x4` SIMD layer for the density emit loop and the
//! envelope fill (an implementation extension beyond the paper).
//!
//! Every SLAM engine ends in a per-pixel walk turning the `L − U` running
//! aggregates into densities, and envelope extraction spends one
//! `sqrt(b² − dy²)` per band point. Both are pure element-wise polynomial
//! kernels — embarrassingly vectorizable. This module provides:
//!
//! * [`F64x4`] — a dependency-free, array-backed 4-lane `f64` vector whose
//!   lane ops are `#[inline(always)]` element-wise loops. Instantiated
//!   inside a `#[target_feature(enable = "avx2")]` function they compile to
//!   256-bit AVX arithmetic; in the portable fallback they compile to
//!   whatever the baseline target supports.
//! * [`mode`] — process-wide dispatch, resolved **once** at first use:
//!   `KDV_SIMD=scalar` forces the scalar path, anything else (or unset)
//!   selects the vector path iff the CPU supports it
//!   (`is_x86_feature_detected!("avx2")` on x86-64, always on aarch64 where
//!   NEON is baseline). [`set_override`] / [`with_mode`] give the CLI
//!   `--simd` flag and the conformance harness scoped control.
//! * [`EmitBuffer`] — deferred run-based emit: the sweep loop records
//!   event-free pixel runs (constant aggregates, constant frame) and the
//!   flush evaluates them 4 pixels per iteration under the `emit.simd`
//!   span, so phase tables attribute emit cost separately from the
//!   accumulator drains.
//! * [`fill_intervals`] — the envelope bound computation
//!   (`b² − dy² → sqrt → x ∓ half`) 4 points per iteration with a scalar
//!   tail.
//!
//! # Bitwise conformance
//!
//! The vector paths are **bitwise identical** to the scalar paths (policy
//! `Bitwise` in the conformance harness), which the implementation earns by
//! construction rather than by tolerance:
//!
//! * every lane mirrors the scalar expression tree **operation for
//!   operation** — same association, same literal `q.y = 0` terms — and
//!   IEEE-754 ops are deterministic, so identical op sequences on identical
//!   inputs give identical bits;
//! * no FMA contraction: only the `avx2` target feature is enabled (never
//!   `fma`), and Rust/LLVM do not contract `a*b + c` without it.
//!   [`F64x4::mul_add`] exists for completeness/tests but is **not** used
//!   on any conformance-gated path;
//! * `sqrt` is correctly rounded in both scalar (`f64::sqrt`) and vector
//!   (`vsqrtpd`) form, per IEEE-754;
//! * the negative-underflow clamp before `sqrt` is written as an explicit
//!   `if rem < 0.0 { 0.0 } else { rem }` in both paths (not `f64::max`,
//!   whose `±0`/NaN behaviour is representation-dependent).

use crate::aggregate::RangeAggregates;
use crate::envelope::SweepInterval;
use crate::geom::Point;
use crate::kernel::KernelType;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Which implementation the emit/fill hot loops run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Portable per-element path (also the vector path's reference oracle).
    Scalar = 0,
    /// Four-lane [`F64x4`] path (AVX2 on x86-64, NEON baseline on aarch64).
    Vector = 1,
}

impl SimdMode {
    /// Human-readable name (`"scalar"` / `"f64x4"`).
    pub fn name(self) -> &'static str {
        match self {
            SimdMode::Scalar => "scalar",
            SimdMode::Vector => "f64x4",
        }
    }
}

impl std::fmt::Display for SimdMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether the running CPU supports the vector path.
pub fn detected() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(target_arch = "aarch64")]
    {
        true // NEON is part of the aarch64 baseline.
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// 0 = no override, 1 = scalar, 2 = vector.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// The startup-resolved mode: `KDV_SIMD=scalar` forces scalar, anything
/// else (including unset and `auto`) picks vector iff [`detected`].
fn resolved() -> SimdMode {
    static RESOLVED: OnceLock<SimdMode> = OnceLock::new();
    *RESOLVED.get_or_init(|| match std::env::var("KDV_SIMD").as_deref() {
        Ok("scalar") => SimdMode::Scalar,
        _ => {
            if detected() {
                SimdMode::Vector
            } else {
                SimdMode::Scalar
            }
        }
    })
}

/// The mode the hot loops dispatch on: a programmatic override if one is
/// set, else the startup-resolved mode. One relaxed load when no override
/// is active.
#[inline]
pub fn mode() -> SimdMode {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => SimdMode::Scalar,
        2 => SimdMode::Vector,
        _ => resolved(),
    }
}

/// Overrides the dispatch (`None` restores the startup resolution). A
/// `Vector` request on hardware without the feature is clamped to `Scalar`
/// — forcing an unsupported instruction set would be unsound, not slow.
pub fn set_override(mode: Option<SimdMode>) {
    let v = match mode {
        None => 0,
        Some(SimdMode::Scalar) => 1,
        Some(SimdMode::Vector) => {
            if detected() {
                2
            } else {
                1
            }
        }
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// Runs `f` with the dispatch forced to `mode`, restoring the previous
/// override afterwards (also on panic). Serialised behind a mutex — the
/// override is process-global, so concurrent `with_mode` scopes with
/// different modes would race each other's computations.
pub fn with_mode<R>(mode: SimdMode, f: impl FnOnce() -> R) -> R {
    static LOCK: Mutex<()> = Mutex::new(());
    let _guard = LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(OVERRIDE.load(Ordering::Relaxed));
    set_override(Some(mode));
    f()
}

// ---------------------------------------------------------------------------
// F64x4
// ---------------------------------------------------------------------------

/// A four-lane `f64` vector. Array-backed: the lane ops are plain
/// element-wise loops that LLVM turns into 256-bit arithmetic when compiled
/// under `target_feature(enable = "avx2")` (see the vector instantiations
/// below) and into baseline SSE2/NEON otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(align(32))]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// Lane count.
    pub const LANES: usize = 4;

    /// All four lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        Self([v; 4])
    }

    /// Loads the first four elements of `s`.
    ///
    /// # Panics
    /// If `s.len() < 4`.
    #[inline(always)]
    pub fn from_slice(s: &[f64]) -> Self {
        Self([s[0], s[1], s[2], s[3]])
    }

    /// Stores the lanes into the first four elements of `out`.
    ///
    /// # Panics
    /// If `out.len() < 4`.
    #[inline(always)]
    pub fn write_to(self, out: &mut [f64]) {
        out[..4].copy_from_slice(&self.0);
    }

    /// The lanes as a plain array.
    #[inline(always)]
    pub fn to_array(self) -> [f64; 4] {
        self.0
    }

    /// Lane `i`.
    #[inline(always)]
    pub fn lane(self, i: usize) -> f64 {
        self.0[i]
    }

    /// Lane-wise square root (correctly rounded, `vsqrtpd` under AVX).
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        Self([self.0[0].sqrt(), self.0[1].sqrt(), self.0[2].sqrt(), self.0[3].sqrt()])
    }

    /// Lane-wise fused multiply-add `self * a + b` (one rounding).
    ///
    /// **Not** used on the conformance-gated emit/fill paths: the scalar
    /// reference computes `mul` and `add` with two roundings, and the
    /// bitwise policy forbids contraction. Exposed for lane-op completeness
    /// and workloads that opt into fused arithmetic explicitly.
    #[inline(always)]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        Self([
            self.0[0].mul_add(a.0[0], b.0[0]),
            self.0[1].mul_add(a.0[1], b.0[1]),
            self.0[2].mul_add(a.0[2], b.0[2]),
            self.0[3].mul_add(a.0[3], b.0[3]),
        ])
    }

    /// Lane-wise clamp of negative values to `+0.0`, written as an explicit
    /// compare-select so scalar and vector agree on `-0.0` and NaN lanes
    /// (NaN is *kept*: `NaN < 0.0` is false, mirroring the scalar clamp).
    #[inline(always)]
    pub fn clamp_negative_to_zero(self) -> Self {
        #[inline(always)]
        fn clamp(v: f64) -> f64 {
            if v < 0.0 {
                0.0
            } else {
                v
            }
        }
        Self([clamp(self.0[0]), clamp(self.0[1]), clamp(self.0[2]), clamp(self.0[3])])
    }
}

macro_rules! lane_op {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl std::ops::$trait for F64x4 {
            type Output = F64x4;
            #[inline(always)]
            fn $fn(self, rhs: F64x4) -> F64x4 {
                F64x4([
                    self.0[0] $op rhs.0[0],
                    self.0[1] $op rhs.0[1],
                    self.0[2] $op rhs.0[2],
                    self.0[3] $op rhs.0[3],
                ])
            }
        }
    };
}
lane_op!(Add, add, +);
lane_op!(Sub, sub, -);
lane_op!(Mul, mul, *);
lane_op!(Div, div, /);

// ---------------------------------------------------------------------------
// Density emit
// ---------------------------------------------------------------------------

/// Plain-`f64` snapshot of the ten aggregate terms the emit polynomial
/// reads. `n` is `|R(q)|` for the plain engines and `Σ wᵢ` for the weighted
/// engine — the expression trees are identical (the weighted decomposition
/// replaces the count with the weight sum term-for-term).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EmitAggregates {
    /// `|R(q)|` (or `Σ wᵢ` for weighted sweeps).
    pub n: f64,
    /// `Σ p.x`.
    pub ax: f64,
    /// `Σ p.y`.
    pub ay: f64,
    /// `Σ ‖p‖²`.
    pub s: f64,
    /// `Σ ‖p‖²·p.x` (quartic only).
    pub cx: f64,
    /// `Σ ‖p‖²·p.y` (quartic only).
    pub cy: f64,
    /// `Σ ‖p‖⁴` (quartic only).
    pub q4: f64,
    /// `Σ p.x²` (quartic only).
    pub mxx: f64,
    /// `Σ p.x·p.y` (quartic only).
    pub mxy: f64,
    /// `Σ p.y²` (quartic only).
    pub myy: f64,
}

impl From<&RangeAggregates> for EmitAggregates {
    #[inline]
    fn from(a: &RangeAggregates) -> Self {
        Self {
            n: a.count as f64,
            ax: a.ax,
            ay: a.ay,
            s: a.s,
            cx: a.cx,
            cy: a.cy,
            q4: a.q4,
            mxx: a.mxx,
            mxy: a.mxy,
            myy: a.myy,
        }
    }
}

/// Scalar density at sweep offset `dx` (the pixel is `q = (dx, 0)` in the
/// rolling frame). This is [`KernelType::density_from_aggregates`] with the
/// count generalised to `f64` — **the expression trees must stay identical
/// op-for-op** (a unit test pins this), because the run-based emit below
/// replaces the per-pixel `density_from_aggregates` calls of the original
/// sweep loops and the vector lanes mirror this function in turn.
#[inline(always)]
pub fn density_at(
    kernel: KernelType,
    agg: &EmitAggregates,
    dx: f64,
    bandwidth: f64,
    weight: f64,
) -> f64 {
    let b2 = bandwidth * bandwidth;
    let qy = 0.0_f64; // the pixel row is y = 0 in the rolling frame
    match kernel {
        KernelType::Uniform => weight / bandwidth * agg.n,
        KernelType::Epanechnikov => {
            let qn = dx * dx + qy * qy;
            let qta = dx * agg.ax + qy * agg.ay;
            weight * (agg.n - (agg.n * qn - 2.0 * qta + agg.s) / b2)
        }
        KernelType::Quartic => {
            let qn = dx * dx + qy * qy;
            let qta = dx * agg.ax + qy * agg.ay;
            let qtc = dx * agg.cx + qy * agg.cy;
            let qmq = dx * dx * agg.mxx + 2.0 * dx * qy * agg.mxy + qy * qy * agg.myy;
            let sum_u = agg.n * qn - 2.0 * qta + agg.s;
            let sum_u2 = agg.n * qn * qn + 4.0 * qmq + agg.q4 - 4.0 * qn * qta + 2.0 * qn * agg.s
                - 4.0 * qtc;
            weight * (agg.n - 2.0 / b2 * sum_u + sum_u2 / (b2 * b2))
        }
    }
}

#[inline(always)]
fn emit_scalar(
    kernel: KernelType,
    agg: &EmitAggregates,
    xs: &[f64],
    frame_x: f64,
    bandwidth: f64,
    weight: f64,
    out: &mut [f64],
) {
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = density_at(kernel, agg, x - frame_x, bandwidth, weight);
    }
}

/// Vector emit body: 4 pixels per iteration, scalar tail. Every lane
/// mirrors [`density_at`] op-for-op (same association, same literal
/// `qy = 0` terms), so the result is bitwise identical to the scalar path.
/// Returns the number of pixels evaluated through full 4-lane groups.
#[inline(always)]
fn emit_vector_body(
    kernel: KernelType,
    agg: &EmitAggregates,
    xs: &[f64],
    frame_x: f64,
    bandwidth: f64,
    weight: f64,
    out: &mut [f64],
) -> usize {
    let n = xs.len();
    if kernel == KernelType::Uniform {
        // Constant per run: identical to the scalar per-pixel evaluation.
        let v = weight / bandwidth * agg.n;
        out.fill(v);
        return 0;
    }
    if n < F64x4::LANES {
        // Too short to fill one lane group: skip the constant splats and
        // evaluate the (bitwise-identical) scalar tree directly. Dense
        // rows are dominated by such runs, so this path is hot.
        emit_scalar(kernel, agg, xs, frame_x, bandwidth, weight, out);
        return 0;
    }
    let quads = n - (n % F64x4::LANES);
    let b2 = bandwidth * bandwidth;
    let fx = F64x4::splat(frame_x);
    let qy = F64x4::splat(0.0);
    let w4 = F64x4::splat(weight);
    let n4 = F64x4::splat(agg.n);
    let ax = F64x4::splat(agg.ax);
    let ay = F64x4::splat(agg.ay);
    let s4 = F64x4::splat(agg.s);
    let two = F64x4::splat(2.0);
    let b24 = F64x4::splat(b2);
    match kernel {
        KernelType::Uniform => unreachable!("handled above"),
        KernelType::Epanechnikov => {
            for j in (0..quads).step_by(F64x4::LANES) {
                let dx = F64x4::from_slice(&xs[j..]) - fx;
                let qn = dx * dx + qy * qy;
                let qta = dx * ax + qy * ay;
                let val = w4 * (n4 - (n4 * qn - two * qta + s4) / b24);
                val.write_to(&mut out[j..]);
            }
        }
        KernelType::Quartic => {
            let cx = F64x4::splat(agg.cx);
            let cy = F64x4::splat(agg.cy);
            let q44 = F64x4::splat(agg.q4);
            let mxx = F64x4::splat(agg.mxx);
            let mxy = F64x4::splat(agg.mxy);
            let myy = F64x4::splat(agg.myy);
            let four = F64x4::splat(4.0);
            // Splats of the scalar path's per-pixel constants: `2.0 / b2`
            // and `b2 * b2` are recomputed from the same inputs every pixel
            // there, so one shared division/multiply is value-identical.
            let two_over_b2 = F64x4::splat(2.0 / b2);
            let b44 = F64x4::splat(b2 * b2);
            for j in (0..quads).step_by(F64x4::LANES) {
                let dx = F64x4::from_slice(&xs[j..]) - fx;
                let qn = dx * dx + qy * qy;
                let qta = dx * ax + qy * ay;
                let qtc = dx * cx + qy * cy;
                let qmq = dx * dx * mxx + two * dx * qy * mxy + qy * qy * myy;
                let sum_u = n4 * qn - two * qta + s4;
                let sum_u2 =
                    n4 * qn * qn + four * qmq + q44 - four * qn * qta + two * qn * s4 - four * qtc;
                let val = w4 * (n4 - two_over_b2 * sum_u + sum_u2 / b44);
                val.write_to(&mut out[j..]);
            }
        }
    }
    emit_scalar(kernel, agg, &xs[quads..], frame_x, bandwidth, weight, &mut out[quads..]);
    quads
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn emit_vector_avx2(
    kernel: KernelType,
    agg: &EmitAggregates,
    xs: &[f64],
    frame_x: f64,
    bandwidth: f64,
    weight: f64,
    out: &mut [f64],
) -> usize {
    emit_vector_body(kernel, agg, xs, frame_x, bandwidth, weight, out)
}

#[inline]
fn emit_vector(
    kernel: KernelType,
    agg: &EmitAggregates,
    xs: &[f64],
    frame_x: f64,
    bandwidth: f64,
    weight: f64,
    out: &mut [f64],
) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `mode()` only returns `Vector` on x86-64 when AVX2 was
        // detected (`resolved`/`set_override` both clamp on `detected()`).
        unsafe { emit_vector_avx2(kernel, agg, xs, frame_x, bandwidth, weight, out) }
    }
    #[cfg(target_arch = "aarch64")]
    {
        emit_vector_body(kernel, agg, xs, frame_x, bandwidth, weight, out)
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        emit_scalar(kernel, agg, xs, frame_x, bandwidth, weight, out);
        0
    }
}

/// Emits densities for one event-free pixel run: `out[i] = F(xs[i])` with
/// the run's frozen aggregates and frame. Dispatches on [`mode`]; returns
/// the number of pixels evaluated through 4-lane groups (0 on the scalar
/// path).
pub fn emit_run(
    kernel: KernelType,
    agg: &EmitAggregates,
    xs: &[f64],
    frame_x: f64,
    bandwidth: f64,
    weight: f64,
    out: &mut [f64],
) -> usize {
    debug_assert_eq!(xs.len(), out.len());
    match mode() {
        SimdMode::Scalar => {
            emit_scalar(kernel, agg, xs, frame_x, bandwidth, weight, out);
            0
        }
        SimdMode::Vector => emit_vector(kernel, agg, xs, frame_x, bandwidth, weight, out),
    }
}

// ---------------------------------------------------------------------------
// Deferred run-based emit
// ---------------------------------------------------------------------------

/// One recorded pixel run `[start, end)`.
#[derive(Debug, Clone, Copy)]
enum EmitRun {
    /// Empty active set: every pixel emits the same constant (the original
    /// per-pixel loops evaluated at `q = (+0.0, 0.0)` with freshly reset
    /// accumulators — a constant).
    Fill { start: u32, end: u32, value: f64 },
    /// Non-empty active set: evaluate the polynomial at
    /// `dx = xs[i] − frame_x` with the run's aggregate snapshot.
    Poly { start: u32, end: u32, frame_x: f64, agg: EmitAggregates },
}

/// Deferred emit buffer for the vector path: the sweep loops record runs
/// while draining events, then [`EmitBuffer::flush`] evaluates all of
/// them in one tight lane-friendly pass (bumping the `simd.lanes`
/// counter). The scalar path keeps the original fused per-pixel loop and
/// never records runs; the engines wrap both variants in the `emit.simd`
/// span so phase tables compare symmetric scopes.
#[derive(Debug, Default)]
pub struct EmitBuffer {
    runs: Vec<EmitRun>,
}

impl EmitBuffer {
    /// Discards any recorded runs (start of a row).
    pub fn clear(&mut self) {
        self.runs.clear();
    }

    /// Records a constant-fill run (empty active set).
    #[inline]
    pub fn push_fill(&mut self, start: usize, end: usize, value: f64) {
        self.runs.push(EmitRun::Fill { start: start as u32, end: end as u32, value });
    }

    /// Records a polynomial run with its aggregate/frame snapshot.
    #[inline]
    pub fn push_run(&mut self, start: usize, end: usize, frame_x: f64, agg: EmitAggregates) {
        self.runs.push(EmitRun::Poly { start: start as u32, end: end as u32, frame_x, agg });
    }

    /// Evaluates every recorded run into `out` and clears the buffer.
    /// Returns the number of pixels that went through 4-lane groups,
    /// adding them to the `simd.lanes` counter (the engines record the
    /// `emit.simd` span around the whole sweep pass so scalar and vector
    /// modes time symmetric scopes).
    ///
    /// The dispatch happens once per flush, not per run: on the vector
    /// path the whole run loop (including sub-lane scalar tails) compiles
    /// inside one `target_feature` function, so dense rows with many
    /// short runs don't pay a dynamic-dispatch round trip each. The
    /// scalar instantiation exists for the non-AVX2 `mode() == Vector`
    /// fallback arches; `mode() == Scalar` engines never record runs.
    pub fn flush(
        &mut self,
        kernel: KernelType,
        bandwidth: f64,
        weight: f64,
        xs: &[f64],
        out: &mut [f64],
    ) -> usize {
        let lanes = flush_runs_vector(&self.runs, kernel, bandwidth, weight, xs, out);
        if kdv_obs::enabled() {
            kdv_obs::metrics::global().counter("simd.lanes").add(lanes as u64);
        }
        self.runs.clear();
        lanes
    }

    /// Heap bytes held by the run buffer (space accounting).
    pub fn space_bytes(&self) -> usize {
        self.runs.capacity() * std::mem::size_of::<EmitRun>()
    }
}

/// Run-loop body shared by both flush instantiations. `VECTOR` selects
/// the per-run evaluator; with `true` the caller guarantees the required
/// ISA (the loop is instantiated inside the `target_feature` wrapper).
#[inline(always)]
fn flush_runs_body<const VECTOR: bool>(
    runs: &[EmitRun],
    kernel: KernelType,
    bandwidth: f64,
    weight: f64,
    xs: &[f64],
    out: &mut [f64],
) -> usize {
    let mut lanes = 0usize;
    for run in runs {
        match *run {
            EmitRun::Fill { start, end, value } => {
                out[start as usize..end as usize].fill(value);
            }
            EmitRun::Poly { start, end, frame_x, ref agg } => {
                let (s, e) = (start as usize, end as usize);
                let (xs, out) = (&xs[s..e], &mut out[s..e]);
                if VECTOR {
                    lanes += emit_vector_body(kernel, agg, xs, frame_x, bandwidth, weight, out);
                } else {
                    emit_scalar(kernel, agg, xs, frame_x, bandwidth, weight, out);
                }
            }
        }
    }
    lanes
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn flush_runs_avx2(
    runs: &[EmitRun],
    kernel: KernelType,
    bandwidth: f64,
    weight: f64,
    xs: &[f64],
    out: &mut [f64],
) -> usize {
    flush_runs_body::<true>(runs, kernel, bandwidth, weight, xs, out)
}

#[inline]
fn flush_runs_vector(
    runs: &[EmitRun],
    kernel: KernelType,
    bandwidth: f64,
    weight: f64,
    xs: &[f64],
    out: &mut [f64],
) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        // `flush` is public and mode-independent, so it re-checks the
        // feature itself instead of trusting the caller's dispatch state
        // (std caches the cpuid probe — one atomic load per row-flush).
        if detected() {
            // SAFETY: AVX2 support was just verified.
            unsafe { flush_runs_avx2(runs, kernel, bandwidth, weight, xs, out) }
        } else {
            flush_runs_body::<false>(runs, kernel, bandwidth, weight, xs, out)
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        flush_runs_body::<true>(runs, kernel, bandwidth, weight, xs, out)
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        flush_runs_body::<false>(runs, kernel, bandwidth, weight, xs, out)
    }
}

// ---------------------------------------------------------------------------
// Envelope fill
// ---------------------------------------------------------------------------

#[inline(always)]
fn fill_scalar(out: &mut Vec<SweepInterval>, xs: &[f64], ys: &[f64], b2: f64, k: f64) {
    for (&x, &y) in xs.iter().zip(ys) {
        let dy = k - y;
        let rem = b2 - dy * dy;
        // `|k − y| = b` rows can underflow `b² − dy²` to a tiny negative in
        // a *caller-built* band; clamp deterministically before the sqrt
        // (never `f64::max` — its `-0.0` choice is representation-defined).
        // For `BandIndex`-produced bands the predicate used the identical
        // arithmetic, so `rem ≥ +0.0` and the clamp is a bitwise no-op.
        let rem = if rem < 0.0 { 0.0 } else { rem };
        let half = rem.sqrt();
        out.push(SweepInterval { point: Point::new(x, y), lb: x - half, ub: x + half });
    }
}

/// Vector fill body: 4 points per iteration, scalar tail; lanes mirror
/// [`fill_scalar`] op-for-op. Returns the pixel count that went through
/// full 4-lane groups.
///
/// Lane groups are written straight into the `Vec`'s spare capacity —
/// the scalar path's per-element `push` pays a length check and branch
/// per interval, which is most of its cost (the loop body itself is one
/// subtract/multiply/sqrt chain), so eliding it is where the vector
/// path's fill speedup comes from on top of the packed `sqrt`.
#[inline(always)]
fn fill_vector_body(
    out: &mut Vec<SweepInterval>,
    xs: &[f64],
    ys: &[f64],
    b2: f64,
    k: f64,
) -> usize {
    let n = xs.len();
    let quads = n - (n % F64x4::LANES);
    let k4 = F64x4::splat(k);
    let b24 = F64x4::splat(b2);
    let start = out.len();
    out.reserve(n);
    let spare = out.spare_capacity_mut();
    for j in (0..quads).step_by(F64x4::LANES) {
        let x4 = F64x4::from_slice(&xs[j..]);
        let y4 = F64x4::from_slice(&ys[j..]);
        let dy = k4 - y4;
        let rem = (b24 - dy * dy).clamp_negative_to_zero();
        let half = rem.sqrt();
        let lb = x4 - half;
        let ub = x4 + half;
        for l in 0..F64x4::LANES {
            spare[j + l].write(SweepInterval {
                point: Point::new(x4.lane(l), y4.lane(l)),
                lb: lb.lane(l),
                ub: ub.lane(l),
            });
        }
    }
    // SAFETY: the loop above initialised exactly the first `quads` spare
    // slots, and `reserve(n)` guaranteed they exist.
    unsafe { out.set_len(start + quads) };
    fill_scalar(out, &xs[quads..], &ys[quads..], b2, k);
    quads
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fill_vector_avx2(
    out: &mut Vec<SweepInterval>,
    xs: &[f64],
    ys: &[f64],
    b2: f64,
    k: f64,
) -> usize {
    fill_vector_body(out, xs, ys, b2, k)
}

/// Computes the sweep intervals `[x ∓ sqrt(b² − dy²)]` for a band of
/// points, appending to `out`. Dispatches on [`mode`]; returns the number
/// of points processed through 4-lane groups (0 on the scalar path).
///
/// Both paths clamp a negative `b² − dy²` (support-boundary underflow in a
/// caller-built band) to `+0.0` before the square root.
pub fn fill_intervals(
    out: &mut Vec<SweepInterval>,
    xs: &[f64],
    ys: &[f64],
    b2: f64,
    k: f64,
) -> usize {
    debug_assert_eq!(xs.len(), ys.len());
    match mode() {
        SimdMode::Scalar => {
            fill_scalar(out, xs, ys, b2, k);
            0
        }
        SimdMode::Vector => {
            #[cfg(target_arch = "x86_64")]
            {
                // SAFETY: `Vector` mode implies AVX2 was detected.
                unsafe { fill_vector_avx2(out, xs, ys, b2, k) }
            }
            #[cfg(target_arch = "aarch64")]
            {
                fill_vector_body(out, xs, ys, b2, k)
            }
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            {
                fill_scalar(out, xs, ys, b2, k);
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_load_store_round_trip() {
        let v = F64x4::splat(2.5);
        assert_eq!(v.to_array(), [2.5; 4]);
        let data = [1.0, -2.0, 3.5, f64::INFINITY, 9.0];
        let loaded = F64x4::from_slice(&data);
        assert_eq!(loaded.to_array(), [1.0, -2.0, 3.5, f64::INFINITY]);
        let mut out = [0.0; 6];
        loaded.write_to(&mut out);
        assert_eq!(&out[..4], &[1.0, -2.0, 3.5, f64::INFINITY]);
        assert_eq!(&out[4..], &[0.0, 0.0]);
        assert_eq!(loaded.lane(2), 3.5);
    }

    #[test]
    fn lane_arithmetic_matches_scalar() {
        let a = F64x4([1.5, -2.0, 1e300, 1e-300]);
        let b = F64x4([0.3, 7.0, 1e300, 1e-300]);
        for i in 0..4 {
            assert_eq!((a + b).lane(i).to_bits(), (a.lane(i) + b.lane(i)).to_bits());
            assert_eq!((a - b).lane(i).to_bits(), (a.lane(i) - b.lane(i)).to_bits());
            assert_eq!((a * b).lane(i).to_bits(), (a.lane(i) * b.lane(i)).to_bits());
            assert_eq!((a / b).lane(i).to_bits(), (a.lane(i) / b.lane(i)).to_bits());
            assert_eq!(a.sqrt().lane(i).to_bits(), a.lane(i).sqrt().to_bits());
            assert_eq!(
                a.mul_add(b, b).lane(i).to_bits(),
                a.lane(i).mul_add(b.lane(i), b.lane(i)).to_bits()
            );
        }
    }

    #[test]
    fn nan_propagates_through_lanes() {
        let v = F64x4([f64::NAN, 1.0, f64::NAN, 4.0]);
        let sum = v + F64x4::splat(1.0);
        assert!(sum.lane(0).is_nan());
        assert_eq!(sum.lane(1), 2.0);
        assert!(sum.lane(2).is_nan());
        assert!(v.sqrt().lane(0).is_nan());
        assert!(v.mul_add(F64x4::splat(2.0), F64x4::splat(1.0)).lane(0).is_nan());
        // the clamp keeps NaN (NaN < 0.0 is false), mirroring the scalar
        // `if rem < 0.0` branch
        assert!(v.clamp_negative_to_zero().lane(0).is_nan());
        assert_eq!(v.clamp_negative_to_zero().lane(1), 1.0);
    }

    #[test]
    fn clamp_negative_to_zero_handles_signed_zero() {
        let v = F64x4([-1e-300, -0.0, 0.0, 5.0]);
        let c = v.clamp_negative_to_zero();
        assert_eq!(c.lane(0).to_bits(), 0.0_f64.to_bits());
        // -0.0 is not < 0.0, so it is *kept* — same as the scalar branch
        assert_eq!(c.lane(1).to_bits(), (-0.0_f64).to_bits());
        assert_eq!(c.lane(2).to_bits(), 0.0_f64.to_bits());
        assert_eq!(c.lane(3), 5.0);
    }

    /// `density_at` must mirror `KernelType::density_from_aggregates`
    /// bit-for-bit: the run-based emit replaced the per-pixel calls, so any
    /// drift in either expression tree is an engine-output change.
    #[test]
    fn density_at_matches_density_from_aggregates_bitwise() {
        let mut agg = RangeAggregates::default();
        for p in [
            Point::new(0.4, -1.2),
            Point::new(-3.7, 2.2),
            Point::new(1e-3, 5.0),
            Point::new(2.5, 2.5),
        ] {
            agg.add(&p);
        }
        let emit = EmitAggregates::from(&agg);
        for kernel in KernelType::ALL {
            for dx in [-4.2, -0.0, 0.0, 1e-9, 0.7, 3.9, 12.5] {
                for b in [0.9, 7.3, 1234.5] {
                    let q = Point::new(dx, 0.0);
                    let reference = kernel.density_from_aggregates(&q, &agg, b, 0.37);
                    let got = density_at(kernel, &emit, dx, b, 0.37);
                    assert_eq!(
                        got.to_bits(),
                        reference.to_bits(),
                        "{kernel} dx={dx} b={b}: {got} vs {reference}"
                    );
                }
            }
        }
    }

    /// Vector emit must equal scalar emit bitwise for every kernel, run
    /// length (masked-tail coverage) and aggregate mix.
    #[test]
    fn emit_vector_matches_scalar_bitwise() {
        let mut agg = RangeAggregates::default();
        for i in 0..17 {
            let t = i as f64;
            agg.add(&Point::new((t * 0.37) - 3.0, (t * 0.91) - 7.0));
        }
        let emit = EmitAggregates::from(&agg);
        let xs: Vec<f64> = (0..23).map(|i| 100.0 + i as f64 * 0.625).collect();
        for kernel in KernelType::ALL {
            for len in [1, 2, 3, 4, 5, 7, 8, 9, 23] {
                let mut scalar = vec![0.0; len];
                let mut vector = vec![f64::NAN; len];
                with_mode(SimdMode::Scalar, || {
                    emit_run(kernel, &emit, &xs[..len], 99.0, 6.5, 0.01, &mut scalar)
                });
                with_mode(SimdMode::Vector, || {
                    emit_run(kernel, &emit, &xs[..len], 99.0, 6.5, 0.01, &mut vector)
                });
                for (i, (s, v)) in scalar.iter().zip(&vector).enumerate() {
                    assert_eq!(s.to_bits(), v.to_bits(), "{kernel} len={len} pixel {i}");
                }
            }
        }
    }

    /// Vector envelope fill must equal scalar fill bitwise, including the
    /// scalar tail and the negative-underflow clamp.
    #[test]
    fn fill_vector_matches_scalar_bitwise() {
        let n = 13;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 1.7 - 4.0).collect();
        let ys: Vec<f64> = (0..n).map(|i| (i as f64 * 0.73) - 3.0).collect();
        let b = 5.0;
        let b2 = b * b;
        for k in [-2.0, 0.0, 1.9, 2.0 + b] {
            let mut scalar = Vec::new();
            let mut vector = Vec::new();
            with_mode(SimdMode::Scalar, || fill_intervals(&mut scalar, &xs, &ys, b2, k));
            with_mode(SimdMode::Vector, || fill_intervals(&mut vector, &xs, &ys, b2, k));
            assert_eq!(scalar.len(), vector.len());
            for (s, v) in scalar.iter().zip(&vector) {
                assert_eq!(s.lb.to_bits(), v.lb.to_bits(), "k={k}");
                assert_eq!(s.ub.to_bits(), v.ub.to_bits(), "k={k}");
                assert_eq!(s.point, v.point, "k={k}");
            }
        }
    }

    /// Recorded regression: rows grazing the support boundary. When
    /// `dy` is within 1 ulp of `b`, `b² − dy²` rounds to a tiny negative
    /// value; both paths must clamp it to zero *before* the sqrt (a NaN
    /// here poisons the interval bounds) and produce the degenerate
    /// `lb == ub == x` interval with identical bits.
    #[test]
    fn fill_clamps_support_boundary_rows_bitwise() {
        let b = 5.0_f64;
        let b2 = b * b;
        let k = 10.0;
        let up = f64::from_bits(b.to_bits() + 1); // next_up(b)
        let down = f64::from_bits(b.to_bits() - 1); // next_down(b)
                                                    // dy = k − y hits exactly b, 1 ulp past it (rem underflows
                                                    // negative), 1 ulp inside it, and a comfortable interior value —
                                                    // spread over more than 4 points so the lane groups *and* the
                                                    // masked scalar tail both cross the boundary cases.
        let dys = [b, up, down, 0.5 * b, up, b, down, 1e-9, up];
        let xs: Vec<f64> = (0..dys.len()).map(|i| i as f64 * 3.25 - 7.0).collect();
        let ys: Vec<f64> = dys.iter().map(|dy| k - dy).collect();
        assert!(b2 - up * up < 0.0, "1 ulp past b must underflow negative");

        let mut scalar = Vec::new();
        let mut vector = Vec::new();
        with_mode(SimdMode::Scalar, || fill_intervals(&mut scalar, &xs, &ys, b2, k));
        with_mode(SimdMode::Vector, || fill_intervals(&mut vector, &xs, &ys, b2, k));
        assert_eq!(scalar.len(), xs.len());
        assert_eq!(scalar.len(), vector.len());
        for (i, (s, v)) in scalar.iter().zip(&vector).enumerate() {
            assert_eq!(s.lb.to_bits(), v.lb.to_bits(), "point {i}");
            assert_eq!(s.ub.to_bits(), v.ub.to_bits(), "point {i}");
            assert_eq!(s.point, v.point, "point {i}");
            assert!(s.lb.is_finite() && s.ub.is_finite(), "point {i} must not be NaN");
            if dys[i] >= b {
                // at or past the boundary: degenerate interval at x
                assert_eq!(s.lb.to_bits(), xs[i].to_bits(), "point {i}");
                assert_eq!(s.ub.to_bits(), xs[i].to_bits(), "point {i}");
            } else {
                assert!(s.lb < s.ub, "point {i} strictly inside the support");
            }
        }
    }

    #[test]
    fn with_mode_restores_override_and_clamps() {
        set_override(None);
        let outer = mode();
        with_mode(SimdMode::Scalar, || assert_eq!(mode(), SimdMode::Scalar));
        assert_eq!(mode(), outer);
        // Vector requests clamp to hardware support instead of forcing UB.
        with_mode(SimdMode::Vector, || {
            if detected() {
                assert_eq!(mode(), SimdMode::Vector);
            } else {
                assert_eq!(mode(), SimdMode::Scalar);
            }
        });
        assert_eq!(mode(), outer);
    }

    #[test]
    fn emit_buffer_flush_covers_fill_and_poly_runs() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut out = vec![f64::NAN; 10];
        let mut buf = EmitBuffer::default();
        buf.push_fill(0, 3, 0.25);
        let agg = EmitAggregates { n: 2.0, s: 1.0, ..Default::default() };
        buf.push_run(3, 10, xs[3], agg);
        buf.flush(KernelType::Epanechnikov, 4.0, 0.5, &xs, &mut out);
        assert_eq!(&out[..3], &[0.25; 3]);
        for (i, &v) in out[3..].iter().enumerate() {
            let want = density_at(KernelType::Epanechnikov, &agg, xs[3 + i] - xs[3], 4.0, 0.5);
            assert_eq!(v.to_bits(), want.to_bits(), "pixel {i}");
        }
        assert!(buf.space_bytes() > 0);
        // buffer clears after flush: flushing again touches nothing
        let mut untouched = vec![7.0; 10];
        buf.flush(KernelType::Epanechnikov, 4.0, 0.5, &xs, &mut untouched);
        assert_eq!(untouched, vec![7.0; 10]);
    }
}
