//! Density-raster persistence.
//!
//! Exploratory tools cache computed rasters (panning back to a previous
//! viewport should not recompute), and experiment pipelines hand rasters
//! between processes. Two formats:
//!
//! * **binary** — a 24-byte header (`KDVG` magic, format version, X, Y)
//!   followed by `X·Y` little-endian `f64`s; lossless and compact.
//! * **TSV** — one row per pixel row, tab-separated, `{:?}` formatting
//!   (shortest round-trip floats); interoperable with
//!   spreadsheet/pandas-style tooling and still lossless.

use std::io::{self, BufRead, BufWriter, Read, Write};

use crate::grid::DensityGrid;

/// Magic bytes of the binary format.
const MAGIC: &[u8; 4] = b"KDVG";
/// Current binary format version.
const VERSION: u32 = 1;

/// Errors raised while reading a persisted raster.
#[derive(Debug)]
pub enum GridIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a KDVG file / corrupted header or payload.
    Format(String),
}

impl std::fmt::Display for GridIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridIoError::Io(e) => write!(f, "io error: {e}"),
            GridIoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for GridIoError {}

impl From<io::Error> for GridIoError {
    fn from(e: io::Error) -> Self {
        GridIoError::Io(e)
    }
}

/// Writes the binary format.
pub fn write_binary<W: Write>(writer: W, grid: &DensityGrid) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(grid.res_x() as u64).to_le_bytes())?;
    w.write_all(&(grid.res_y() as u64).to_le_bytes())?;
    for &v in grid.values() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Reads the binary format.
pub fn read_binary<R: Read>(mut reader: R) -> Result<DensityGrid, GridIoError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GridIoError::Format("bad magic (not a KDVG file)".into()));
    }
    let mut buf4 = [0u8; 4];
    reader.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(GridIoError::Format(format!("unsupported version {version}")));
    }
    let mut buf8 = [0u8; 8];
    reader.read_exact(&mut buf8)?;
    let res_x = u64::from_le_bytes(buf8) as usize;
    reader.read_exact(&mut buf8)?;
    let res_y = u64::from_le_bytes(buf8) as usize;
    let count = res_x
        .checked_mul(res_y)
        .ok_or_else(|| GridIoError::Format("resolution overflow".into()))?;
    // sanity cap: a raster larger than 1 GiB of f64s is a corrupt header
    if count > (1 << 27) {
        return Err(GridIoError::Format(format!("implausible raster size {res_x}x{res_y}")));
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        reader.read_exact(&mut buf8)?;
        values.push(f64::from_le_bytes(buf8));
    }
    // trailing garbage check
    if reader.read(&mut [0u8; 1])? != 0 {
        return Err(GridIoError::Format("trailing bytes after payload".into()));
    }
    Ok(DensityGrid::from_values(res_x, res_y, values))
}

/// Writes the TSV format (row 0 first).
pub fn write_tsv<W: Write>(writer: W, grid: &DensityGrid) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for j in 0..grid.res_y() {
        let row = grid.row(j);
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                w.write_all(b"\t")?;
            }
            write!(w, "{v:?}")?;
        }
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Reads the TSV format; all rows must have equal width.
pub fn read_tsv<R: BufRead>(reader: R) -> Result<DensityGrid, GridIoError> {
    let mut values = Vec::new();
    let mut res_x = None;
    let mut res_y = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> = line.split('\t').map(str::parse::<f64>).collect();
        let row = row.map_err(|e| GridIoError::Format(format!("line {}: {e}", lineno + 1)))?;
        match res_x {
            None => res_x = Some(row.len()),
            Some(w) if w != row.len() => {
                return Err(GridIoError::Format(format!(
                    "line {}: width {} != {}",
                    lineno + 1,
                    row.len(),
                    w
                )))
            }
            _ => {}
        }
        values.extend(row);
        res_y += 1;
    }
    let res_x = res_x.ok_or_else(|| GridIoError::Format("empty file".into()))?;
    Ok(DensityGrid::from_values(res_x, res_y, values))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DensityGrid {
        let values = vec![
            0.0,
            1.5,
            -2.25,
            f64::MIN_POSITIVE,
            1e300,
            0.1 + 0.2, // a value with no short decimal representation
        ];
        DensityGrid::from_values(3, 2, values)
    }

    #[test]
    fn binary_round_trip_bitexact() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &g).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn tsv_round_trip_bitexact() {
        let g = sample();
        let mut buf = Vec::new();
        write_tsv(&mut buf, &g).unwrap();
        let back = read_tsv(io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back, g, "{{:?}} formatting must round-trip f64 exactly");
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &g).unwrap();
        // wrong magic
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(read_binary(bad.as_slice()), Err(GridIoError::Format(_))));
        // truncated payload
        let short = &buf[..buf.len() - 3];
        assert!(matches!(read_binary(short), Err(GridIoError::Io(_))));
        // trailing garbage
        let mut long = buf.clone();
        long.push(0);
        assert!(matches!(read_binary(long.as_slice()), Err(GridIoError::Format(_))));
        // wrong version
        let mut vbad = buf;
        vbad[4] = 99;
        assert!(matches!(read_binary(vbad.as_slice()), Err(GridIoError::Format(_))));
    }

    #[test]
    fn binary_rejects_implausible_header() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(read_binary(buf.as_slice()), Err(GridIoError::Format(_))));
    }

    #[test]
    fn tsv_rejects_ragged_rows() {
        let text = "1\t2\n3\n";
        assert!(matches!(
            read_tsv(io::BufReader::new(text.as_bytes())),
            Err(GridIoError::Format(_))
        ));
        let empty = "";
        assert!(matches!(
            read_tsv(io::BufReader::new(empty.as_bytes())),
            Err(GridIoError::Format(_))
        ));
    }
}
