//! Shared row-by-row driver for the sweep-line engines.
//!
//! Both SLAM variants process the raster one pixel row at a time (Figure 4):
//! extract the envelope point set `E(k)` of the row, turn it into sweep
//! intervals, and hand the row to an engine that fills the `X` densities.
//! This module owns everything row-independent: input validation, numerical
//! recentring, pixel-centre precomputation and buffer reuse.

use crate::envelope::{BandIndex, EnvelopeBuffer, SweepInterval};
use crate::error::{KdvError, Result};
use crate::grid::{DensityGrid, GridSpec};
use crate::kernel::KernelType;

/// Parameters of one KDV computation (Problem 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KdvParams {
    /// The query region and raster resolution.
    pub grid: GridSpec,
    /// Kernel function `K` (Table 2).
    pub kernel: KernelType,
    /// Kernel bandwidth `b` in data units (metres).
    pub bandwidth: f64,
    /// Normalisation constant `w` of Eq. 1.
    pub weight: f64,
}

impl KdvParams {
    /// Creates parameters with weight 1.
    pub fn new(grid: GridSpec, kernel: KernelType, bandwidth: f64) -> Self {
        Self { grid, kernel, bandwidth, weight: 1.0 }
    }

    /// Replaces the normalisation weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Validates bandwidth, weight and (via `GridSpec`) the raster.
    pub fn validate(&self) -> Result<()> {
        if !self.bandwidth.is_finite() || self.bandwidth <= 0.0 {
            return Err(KdvError::InvalidBandwidth(self.bandwidth));
        }
        if !self.weight.is_finite() {
            return Err(KdvError::InvalidWeight(self.weight));
        }
        // GridSpec::new re-runs the resolution/region checks.
        GridSpec::new(self.grid.region, self.grid.res_x, self.grid.res_y)?;
        Ok(())
    }

    /// Parameters for the transposed problem (RAO).
    pub fn transposed(&self) -> KdvParams {
        KdvParams { grid: self.grid.transposed(), ..*self }
    }
}

/// Validates that every input coordinate is finite.
pub fn validate_points(points: &[crate::geom::Point]) -> Result<()> {
    for (i, p) in points.iter().enumerate() {
        if !p.x.is_finite() || !p.y.is_finite() {
            return Err(KdvError::NonFinitePoint { index: i });
        }
    }
    Ok(())
}

/// A sweep engine that can fill one pixel row.
///
/// `xs` are the recentred pixel-centre x-coordinates (strictly increasing),
/// `k` the recentred row y-coordinate, `intervals` the row's envelope point
/// set with bounds, and `out` the `X` output densities.
pub trait RowEngine {
    /// Fills `out[i] = F_P(q_i)` for every pixel of the row.
    fn process_row(&mut self, xs: &[f64], k: f64, intervals: &[SweepInterval], out: &mut [f64]);

    /// Auxiliary heap bytes currently held by the engine (for the paper's
    /// space-consumption experiment, Figure 17).
    fn space_bytes(&self) -> usize {
        0
    }
}

/// Pre-processed, recentred inputs shared by every row of one computation.
///
/// The points are stored in the **canonical sweep order** — ascending y,
/// ties in input order — which is what both the banded index and the
/// full-scan reference emit, so every extraction path hands intervals to
/// the engines in the same sequence (bitwise-reproducible accumulation).
pub struct SweepContext {
    /// Points shifted so the region centre is the origin, sorted by
    /// ascending y (stable, so runs are deterministic).
    pub points: Vec<crate::geom::Point>,
    /// Banded envelope index over `points`: y-sorted SoA coordinates plus
    /// the permutation back to the caller's input order.
    pub index: BandIndex,
    /// Recentred pixel-centre x-coordinates, strictly increasing.
    pub xs: Vec<f64>,
    /// Recentred pixel-centre y-coordinates, one per row.
    pub ks: Vec<f64>,
    /// Offset that was subtracted (region centre).
    pub center: crate::geom::Point,
}

impl SweepContext {
    /// Recentres points, sorts them by y into the banded index, and
    /// precomputes pixel coordinates — O(n log n), once per computation.
    ///
    /// Shifting both the data and the query raster by the region centre is
    /// exact in real arithmetic (kernels depend only on `q − p`) and keeps
    /// the aggregate expansion (Eq. 5) well conditioned when coordinates
    /// are large (city projections are ~1e5–1e7 metres).
    pub fn new(params: &KdvParams, points: &[crate::geom::Point]) -> Result<Self> {
        params.validate()?;
        validate_points(points)?;
        let grid = &params.grid;
        let center = grid.region.center();
        let shifted: Vec<_> = points.iter().map(|p| p.shifted(center.x, center.y)).collect();
        let index = BandIndex::build(&shifted);
        let sorted: Vec<_> = (0..index.len()).map(|i| index.point(i)).collect();
        let xs: Vec<f64> = (0..grid.res_x).map(|i| grid.pixel_x(i) - center.x).collect();
        let ks: Vec<f64> = (0..grid.res_y).map(|j| grid.pixel_y(j) - center.y).collect();
        Ok(Self { points: sorted, index, xs, ks, center })
    }

    /// Heap bytes held by the context (points, index, pixel coordinates).
    pub fn space_bytes(&self) -> usize {
        self.points.capacity() * std::mem::size_of::<crate::geom::Point>()
            + self.index.space_bytes()
            + (self.xs.capacity() + self.ks.capacity()) * std::mem::size_of::<f64>()
    }
}

/// Runs `engine` over every row of the raster with banded envelope
/// extraction: O(n log n) once, then `Y` iterations of an
/// `O(log n + |E(k)| + X)` row (rows with an empty band are skipped
/// outright — their densities are exactly zero).
pub fn sweep_grid<E: RowEngine>(
    params: &KdvParams,
    points: &[crate::geom::Point],
    engine: &mut E,
) -> Result<DensityGrid> {
    let ctx = SweepContext::new(params, points)?;
    let mut grid = DensityGrid::zeroed(params.grid.res_x, params.grid.res_y);
    let mut envelope = EnvelopeBuffer::for_points(ctx.points.len());
    let _sweep = kdv_obs::span2(
        "sweep.sequential",
        "rows",
        params.grid.res_y as u64,
        "points",
        points.len() as u64,
    );
    for j in 0..params.grid.res_y {
        let k = ctx.ks[j];
        let band = {
            let _s = kdv_obs::span1("band.search", "row", j as u64);
            ctx.index.band(params.bandwidth, k)
        };
        if band.is_empty() {
            continue;
        }
        let intervals = {
            let mut s = kdv_obs::span1("envelope.fill", "row", j as u64);
            let intervals = envelope.fill_band(&ctx.index, band, params.bandwidth, k);
            s.arg("size", intervals.len() as u64);
            intervals
        };
        let _s = kdv_obs::span1("row.sweep", "row", j as u64);
        engine.process_row(&ctx.xs, k, intervals, grid.row_mut(j));
    }
    Ok(grid)
}

/// [`sweep_grid`] with the paper's original full-scan extraction (`O(n)`
/// per row over the same canonical point order). Kept as the reference
/// implementation: regression tests assert the banded path is bitwise
/// identical to it, and the extraction benchmarks measure it.
pub fn sweep_grid_scan<E: RowEngine>(
    params: &KdvParams,
    points: &[crate::geom::Point],
    engine: &mut E,
) -> Result<DensityGrid> {
    let ctx = SweepContext::new(params, points)?;
    let mut grid = DensityGrid::zeroed(params.grid.res_x, params.grid.res_y);
    let mut envelope = EnvelopeBuffer::for_points(ctx.points.len());
    for j in 0..params.grid.res_y {
        let k = ctx.ks[j];
        let intervals = envelope.fill(&ctx.points, params.bandwidth, k);
        if intervals.is_empty() {
            continue;
        }
        engine.process_row(&ctx.xs, k, intervals, grid.row_mut(j));
    }
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point, Rect};

    struct CountingEngine {
        rows_seen: usize,
        envelope_sizes: Vec<usize>,
    }

    impl RowEngine for CountingEngine {
        fn process_row(
            &mut self,
            xs: &[f64],
            _k: f64,
            intervals: &[SweepInterval],
            out: &mut [f64],
        ) {
            assert_eq!(xs.len(), out.len());
            self.rows_seen += 1;
            self.envelope_sizes.push(intervals.len());
            out.fill(intervals.len() as f64);
        }
    }

    fn params(res_x: usize, res_y: usize) -> KdvParams {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), res_x, res_y).unwrap();
        KdvParams::new(grid, KernelType::Epanechnikov, 2.0)
    }

    #[test]
    fn validation_rejects_bad_bandwidth_and_points() {
        let mut p = params(4, 4);
        p.bandwidth = 0.0;
        assert!(matches!(p.validate(), Err(KdvError::InvalidBandwidth(_))));
        p.bandwidth = f64::NAN;
        assert!(p.validate().is_err());
        assert!(matches!(
            validate_points(&[Point::new(0.0, f64::INFINITY)]),
            Err(KdvError::NonFinitePoint { index: 0 })
        ));
    }

    #[test]
    fn driver_visits_every_nonempty_row_with_envelope_sets() {
        let p = params(8, 5);
        // one point near the bottom, one near the top
        let pts = [Point::new(5.0, 1.0), Point::new(5.0, 9.0)];
        let mut eng = CountingEngine { rows_seen: 0, envelope_sizes: vec![] };
        let grid = sweep_grid(&p, &pts, &mut eng).unwrap();
        // row centres are y = 1,3,5,7,9; b = 2 ⇒ row 0 sees pt0 only,
        // row 1 sees pt0, row 2 sees none (skipped outright), row 3 sees
        // pt1, row 4 sees pt1.
        assert_eq!(eng.rows_seen, 4);
        assert_eq!(eng.envelope_sizes, vec![1, 1, 1, 1]);
        assert_eq!(grid.get(0, 2), 0.0, "skipped row stays exactly zero");
        assert_eq!(grid.get(0, 0), 1.0);
    }

    #[test]
    fn banded_driver_matches_full_scan_driver_bitwise() {
        let p = params(16, 11);
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> =
            (0..250).map(|_| Point::new(next() * 12.0 - 1.0, next() * 12.0 - 1.0)).collect();
        for bandwidth in [0.3, 2.0, 25.0] {
            let mut params = p;
            params.bandwidth = bandwidth;
            let mut a = crate::sweep_bucket::BucketSweep::new(params.kernel, bandwidth, 1.0);
            let mut b = crate::sweep_bucket::BucketSweep::new(params.kernel, bandwidth, 1.0);
            let banded = sweep_grid(&params, &pts, &mut a).unwrap();
            let scan = sweep_grid_scan(&params, &pts, &mut b).unwrap();
            assert_eq!(banded, scan, "b={bandwidth}");
        }
    }

    #[test]
    fn context_recentres_about_region_center() {
        let p = params(4, 4);
        let ctx = SweepContext::new(&p, &[Point::new(5.0, 5.0)]).unwrap();
        assert_eq!(ctx.center, Point::new(5.0, 5.0));
        assert_eq!(ctx.points[0], Point::new(0.0, 0.0));
        // xs symmetric about 0
        assert!((ctx.xs[0] + ctx.xs[3]).abs() < 1e-12);
    }

    #[test]
    fn transposed_params_swap_resolution() {
        let p = params(8, 5).transposed();
        assert_eq!(p.grid.res_x, 5);
        assert_eq!(p.grid.res_y, 8);
    }
}
