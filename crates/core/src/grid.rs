//! Raster grid mapping and the density output buffer.
//!
//! [`GridSpec`] describes the paper's setting: a geographical query region
//! covered by an `X × Y` pixel raster. Each pixel `(i, j)` is evaluated at
//! its *centre* coordinate. [`DensityGrid`] is the row-major `f64` output
//! buffer (`O(XY)` space — the dominant term of Theorem 4).

use crate::error::{KdvError, Result};
use crate::geom::{Point, Rect};

/// A query region discretised into an `X × Y` pixel raster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    /// Geographical region covered by the raster.
    pub region: Rect,
    /// Number of pixels along the x-axis (paper's `X`).
    pub res_x: usize,
    /// Number of pixels along the y-axis (paper's `Y`).
    pub res_y: usize,
}

impl GridSpec {
    /// Creates a grid, validating the resolution and region.
    pub fn new(region: Rect, res_x: usize, res_y: usize) -> Result<Self> {
        if res_x == 0 || res_y == 0 {
            return Err(KdvError::EmptyResolution { x: res_x, y: res_y });
        }
        let (w, h) = (region.width(), region.height());
        if !w.is_finite() || !h.is_finite() || w <= 0.0 || h <= 0.0 {
            return Err(KdvError::DegenerateRegion { width: w, height: h });
        }
        Ok(Self { region, res_x, res_y })
    }

    /// Pixel gap along x (paper's `g_x`): the horizontal distance between
    /// two consecutive pixel centres.
    #[inline]
    pub fn gap_x(&self) -> f64 {
        self.region.width() / self.res_x as f64
    }

    /// Pixel gap along y (`g_y`).
    #[inline]
    pub fn gap_y(&self) -> f64 {
        self.region.height() / self.res_y as f64
    }

    /// x-coordinate of the centre of pixel column `i` (0-based).
    #[inline]
    pub fn pixel_x(&self, i: usize) -> f64 {
        self.region.min_x + (i as f64 + 0.5) * self.gap_x()
    }

    /// y-coordinate of the centre of pixel row `j` (0-based).
    #[inline]
    pub fn pixel_y(&self, j: usize) -> f64 {
        self.region.min_y + (j as f64 + 0.5) * self.gap_y()
    }

    /// Centre point of pixel `(i, j)`.
    #[inline]
    pub fn pixel_center(&self, i: usize, j: usize) -> Point {
        Point::new(self.pixel_x(i), self.pixel_y(j))
    }

    /// Total number of pixels `X · Y`.
    #[inline]
    pub fn num_pixels(&self) -> usize {
        self.res_x * self.res_y
    }

    /// The transposed grid (swap x/y), used by the resolution-aware
    /// optimization to sweep along the shorter dimension.
    #[inline]
    pub fn transposed(&self) -> GridSpec {
        GridSpec { region: self.region.transposed(), res_x: self.res_y, res_y: self.res_x }
    }
}

/// Row-major density raster: `values[j * res_x + i]` is `F_P(q_{i,j})`.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityGrid {
    res_x: usize,
    res_y: usize,
    values: Vec<f64>,
}

impl DensityGrid {
    /// A zero-filled grid of the given resolution.
    pub fn zeroed(res_x: usize, res_y: usize) -> Self {
        Self { res_x, res_y, values: vec![0.0; res_x * res_y] }
    }

    /// Builds a grid from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `values.len() != res_x * res_y`.
    pub fn from_values(res_x: usize, res_y: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), res_x * res_y, "buffer/resolution mismatch");
        Self { res_x, res_y, values }
    }

    /// Number of pixel columns.
    #[inline]
    pub fn res_x(&self) -> usize {
        self.res_x
    }

    /// Number of pixel rows.
    #[inline]
    pub fn res_y(&self) -> usize {
        self.res_y
    }

    /// Density at pixel `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[j * self.res_x + i]
    }

    /// Sets the density at pixel `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.values[j * self.res_x + i] = v;
    }

    /// Immutable view of row `j`.
    #[inline]
    pub fn row(&self, j: usize) -> &[f64] {
        &self.values[j * self.res_x..(j + 1) * self.res_x]
    }

    /// Mutable view of row `j`; the row sweeps write a full row at a time.
    #[inline]
    pub fn row_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.values[j * self.res_x..(j + 1) * self.res_x]
    }

    /// The whole raster as a flat row-major slice.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the grid, returning the flat buffer.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Maximum density value (0 for an all-zero grid).
    pub fn max_value(&self) -> f64 {
        self.values.iter().copied().fold(0.0_f64, f64::max)
    }

    /// Sum of all density values, useful as a cheap checksum in tests.
    pub fn total(&self) -> f64 {
        crate::stats::kahan_sum(&self.values)
    }

    /// Returns the transposed grid: output `(i, j)` = input `(j, i)`.
    ///
    /// RAO computes on the transposed raster and transposes the result
    /// back, so this must be exact (pure element moves, no arithmetic).
    pub fn transposed(&self) -> DensityGrid {
        let mut out = DensityGrid::zeroed(self.res_y, self.res_x);
        for j in 0..self.res_y {
            for i in 0..self.res_x {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Heap bytes held by this grid (for the space-consumption experiment).
    pub fn space_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GridSpec {
        GridSpec::new(Rect::new(0.0, 0.0, 10.0, 20.0), 5, 4).unwrap()
    }

    #[test]
    fn rejects_invalid_inputs() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert!(matches!(GridSpec::new(r, 0, 4), Err(KdvError::EmptyResolution { .. })));
        let deg = Rect::new(0.0, 0.0, 0.0, 1.0);
        assert!(matches!(GridSpec::new(deg, 2, 2), Err(KdvError::DegenerateRegion { .. })));
    }

    #[test]
    fn pixel_centers() {
        let g = spec();
        assert_eq!(g.gap_x(), 2.0);
        assert_eq!(g.gap_y(), 5.0);
        assert_eq!(g.pixel_x(0), 1.0);
        assert_eq!(g.pixel_x(4), 9.0);
        assert_eq!(g.pixel_y(0), 2.5);
        assert_eq!(g.pixel_center(1, 1), Point::new(3.0, 7.5));
    }

    #[test]
    fn grid_spec_transpose_swaps_dims() {
        let g = spec();
        let t = g.transposed();
        assert_eq!(t.res_x, 4);
        assert_eq!(t.res_y, 5);
        assert_eq!(t.gap_x(), g.gap_y());
        // pixel (i,j) in t corresponds to pixel (j,i) in g
        let p = t.pixel_center(2, 3);
        let q = g.pixel_center(3, 2);
        assert_eq!(p.x, q.y);
        assert_eq!(p.y, q.x);
    }

    #[test]
    fn density_grid_round_trip() {
        let mut d = DensityGrid::zeroed(3, 2);
        d.set(2, 1, 7.0);
        assert_eq!(d.get(2, 1), 7.0);
        assert_eq!(d.row(1), &[0.0, 0.0, 7.0]);
        assert_eq!(d.max_value(), 7.0);
        assert_eq!(d.total(), 7.0);
    }

    #[test]
    fn transpose_is_involution() {
        let vals: Vec<f64> = (0..12).map(|v| v as f64).collect();
        let d = DensityGrid::from_values(4, 3, vals);
        let t = d.transposed();
        assert_eq!(t.res_x(), 3);
        assert_eq!(t.get(0, 1), d.get(1, 0));
        assert_eq!(t.transposed(), d);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn from_values_checks_len() {
        let _ = DensityGrid::from_values(2, 2, vec![0.0; 3]);
    }
}
