//! The representative kernel functions of the paper (Table 2) and their
//! aggregate decompositions (Section 3.7, Table 4).
//!
//! All three kernels have finite support `dist(q, p) ≤ b` and decompose the
//! density `F_P(q) = Σ w·K(q, p)` into a closed form of a handful of
//! aggregate sums over the range set `R(q)`:
//!
//! * **Uniform** — needs only the count `|R(q)|`.
//! * **Epanechnikov** — needs `|R(q)|`, `A = Σ p`, `S = Σ‖p‖²` (Eq. 5).
//! * **Quartic** — additionally needs `C = Σ‖p‖²·p`, `Q = Σ‖p‖⁴` and the
//!   outer-product sum `M = Σ p·pᵀ`.
//!
//! The Gaussian kernel has no such decomposition (and infinite support), so —
//! exactly as the paper notes — it is out of scope for SLAM.

use crate::aggregate::RangeAggregates;
use crate::geom::Point;

/// Which kernel function to use; see Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelType {
    /// `K = 1/b` inside the bandwidth, 0 outside.
    Uniform,
    /// `K = 1 − dist²/b²` inside the bandwidth (the paper's default).
    #[default]
    Epanechnikov,
    /// `K = (1 − dist²/b²)²` inside the bandwidth (QGIS/ArcGIS default).
    Quartic,
}

impl KernelType {
    /// All supported kernels, in Table-2 order.
    pub const ALL: [KernelType; 3] =
        [KernelType::Uniform, KernelType::Epanechnikov, KernelType::Quartic];

    /// Human-readable name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            KernelType::Uniform => "uniform",
            KernelType::Epanechnikov => "epanechnikov",
            KernelType::Quartic => "quartic",
        }
    }

    /// Direct kernel evaluation `K(q, p)` (without the weight `w`).
    ///
    /// The support is closed: `dist(q, p) = b` is *inside* (contributing 0
    /// for Epanechnikov/quartic and `1/b` for uniform), matching Eq. 2.
    #[inline]
    pub fn eval(&self, q: &Point, p: &Point, bandwidth: f64) -> f64 {
        let d2 = q.dist_sq(p);
        let b2 = bandwidth * bandwidth;
        if d2 > b2 {
            return 0.0;
        }
        match self {
            KernelType::Uniform => 1.0 / bandwidth,
            KernelType::Epanechnikov => 1.0 - d2 / b2,
            KernelType::Quartic => {
                let t = 1.0 - d2 / b2;
                t * t
            }
        }
    }

    /// Density at `q` by direct summation — the reference `O(n)` evaluation
    /// used by the SCAN baseline and by the exactness tests.
    pub fn density_scan(&self, q: &Point, points: &[Point], bandwidth: f64, weight: f64) -> f64 {
        let mut acc = crate::stats::Kahan::new();
        for p in points {
            acc.add(self.eval(q, p, bandwidth));
        }
        weight * acc.value()
    }

    /// Density at `q` from pre-maintained range aggregates (the O(1)
    /// sweep-line evaluation of Lemma 3 / Section 3.7).
    ///
    /// `agg` must aggregate exactly the range set
    /// `R(q) = {p : dist(q,p) ≤ b}`.
    #[inline]
    pub fn density_from_aggregates(
        &self,
        q: &Point,
        agg: &RangeAggregates,
        bandwidth: f64,
        weight: f64,
    ) -> f64 {
        let b2 = bandwidth * bandwidth;
        let count = agg.count as f64;
        match self {
            KernelType::Uniform => weight / bandwidth * count,
            KernelType::Epanechnikov => {
                // F = w|R| − w/b² (|R|·‖q‖² − 2 qᵀA + S)      (Eq. 5)
                let qn = q.norm_sq();
                let qta = q.x * agg.ax + q.y * agg.ay;
                weight * (count - (count * qn - 2.0 * qta + agg.s) / b2)
            }
            KernelType::Quartic => {
                // Expand Σ (1 − dist²/b²)² = Σ (1 − u/b²)² with
                // u = ‖q‖² − 2qᵀp + ‖p‖²:
                //   Σ 1 − (2/b²) Σ u + (1/b⁴) Σ u².
                // Σ u   = |R|‖q‖² − 2 qᵀA + S
                // Σ u²  = |R|‖q‖⁴ + 4 qᵀM q + Q
                //         − 4‖q‖² qᵀA + 2‖q‖² S − 4 qᵀC
                let qn = q.norm_sq();
                let qta = q.x * agg.ax + q.y * agg.ay;
                let qtc = q.x * agg.cx + q.y * agg.cy;
                let qmq = q.x * q.x * agg.mxx + 2.0 * q.x * q.y * agg.mxy + q.y * q.y * agg.myy;
                let sum_u = count * qn - 2.0 * qta + agg.s;
                let sum_u2 = count * qn * qn + 4.0 * qmq + agg.q4 - 4.0 * qn * qta
                    + 2.0 * qn * agg.s
                    - 4.0 * qtc;
                weight * (count - 2.0 / b2 * sum_u + sum_u2 / (b2 * b2))
            }
        }
    }

    /// Whether the kernel needs the quartic-only aggregate terms
    /// (`C`, `Q`, `M`); lets hot loops skip maintaining them.
    #[inline]
    pub fn needs_quartic_terms(&self) -> bool {
        matches!(self, KernelType::Quartic)
    }
}

impl std::fmt::Display for KernelType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for KernelType {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "uniform" => Ok(KernelType::Uniform),
            "epanechnikov" | "epan" => Ok(KernelType::Epanechnikov),
            "quartic" => Ok(KernelType::Quartic),
            other => Err(format!("unknown kernel '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::RangeAggregates;

    #[test]
    fn eval_inside_outside_boundary() {
        let q = Point::new(0.0, 0.0);
        let b = 2.0;
        // centre
        assert_eq!(KernelType::Uniform.eval(&q, &q, b), 0.5);
        assert_eq!(KernelType::Epanechnikov.eval(&q, &q, b), 1.0);
        assert_eq!(KernelType::Quartic.eval(&q, &q, b), 1.0);
        // boundary dist == b: inside, value 0 for epan/quartic, 1/b uniform
        let p = Point::new(2.0, 0.0);
        assert_eq!(KernelType::Uniform.eval(&q, &p, b), 0.5);
        assert_eq!(KernelType::Epanechnikov.eval(&q, &p, b), 0.0);
        assert_eq!(KernelType::Quartic.eval(&q, &p, b), 0.0);
        // outside
        let far = Point::new(2.0001, 0.0);
        for k in KernelType::ALL {
            assert_eq!(k.eval(&q, &far, b), 0.0);
        }
    }

    #[test]
    fn halfway_values() {
        let q = Point::new(0.0, 0.0);
        let p = Point::new(1.0, 0.0);
        let b = 2.0;
        // dist²/b² = 1/4
        assert!((KernelType::Epanechnikov.eval(&q, &p, b) - 0.75).abs() < 1e-15);
        assert!((KernelType::Quartic.eval(&q, &p, b) - 0.5625).abs() < 1e-15);
    }

    /// The aggregate-based evaluation must agree with direct summation for
    /// every kernel when the aggregates cover exactly the in-range points.
    #[test]
    fn aggregate_evaluation_matches_direct() {
        let q = Point::new(0.3, -0.2);
        let b = 1.5;
        let w = 0.01;
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.5),
            Point::new(-0.7, 0.4),
            Point::new(5.0, 5.0),  // out of range
            Point::new(0.3, -1.7), // exactly at dist 1.5
        ];
        for kernel in KernelType::ALL {
            let direct = kernel.density_scan(&q, &pts, b, w);
            let mut agg = RangeAggregates::default();
            for p in &pts {
                if q.dist(p) <= b {
                    agg.add(p);
                }
            }
            let via_agg = kernel.density_from_aggregates(&q, &agg, b, w);
            assert!(
                (direct - via_agg).abs() <= 1e-12 * direct.abs().max(1.0),
                "{kernel}: direct {direct} vs aggregate {via_agg}"
            );
        }
    }

    #[test]
    fn parse_round_trip() {
        for k in KernelType::ALL {
            assert_eq!(k.name().parse::<KernelType>().unwrap(), k);
        }
        assert!("gaussian".parse::<KernelType>().is_err());
    }
}
