//! SLAM_BUCKET — the bucket-based sweep line algorithm (paper Section 3.5,
//! Algorithm 2).
//!
//! The sorting step of SLAM_SORT is replaced by pixel-gap bucketing: because
//! the pixel x-coordinates are evenly spaced, the pixel index at which an
//! interval endpoint takes effect can be computed in O(1) (Eqs. 19–20). Each
//! envelope point is dropped into one lower-bound bucket and one upper-bound
//! bucket; the sweep then visits pixels left to right, folding each pixel's
//! buckets into the `L`/`U` accumulators before evaluating (Lemma 5).
//!
//! Buckets are materialised as intrusive singly linked lists over the
//! interval array (`head[bucket] → next[point] → …`), so a row needs exactly
//! two `O(X)` head resets and two `O(|E(k)|)` scatter passes — no nested
//! allocations. Row cost `O(X + |E(k)|)`; whole raster `O(Y(X + n))`
//! (Theorem 2).
//!
//! Accumulation uses the same rolling recentred frame as SLAM_SORT (see the
//! `sweep_sort` module docs): intervals containing no pixel centre are
//! dropped at scatter time (`bl == bu` — they would activate and deactivate
//! at the same pixel), deactivation is processed at the last pixel an
//! interval contains, and the accumulators are periodically translated so
//! every stored coordinate stays within `5b` of the frame origin.

use crate::aggregate::SweepAccumulator;
use crate::driver::{sweep_grid, KdvParams, RowEngine};
use crate::envelope::SweepInterval;
use crate::error::Result;
use crate::geom::Point;
use crate::grid::DensityGrid;
use crate::kernel::KernelType;
use crate::simd::{density_at, EmitAggregates, EmitBuffer, SimdMode};

const NIL: u32 = u32::MAX;

/// Reusable row engine implementing SLAM_BUCKET.
pub struct BucketSweep {
    kernel: KernelType,
    bandwidth: f64,
    weight: f64,
    /// `head_l[i]` — first interval whose lower bound activates at pixel `i`
    /// (index `X` = activates past the last pixel, i.e. never).
    head_l: Vec<u32>,
    /// `head_u[i]` — first interval whose upper bound deactivates at pixel `i`.
    head_u: Vec<u32>,
    next_l: Vec<u32>,
    next_u: Vec<u32>,
    l_acc: SweepAccumulator,
    u_acc: SweepAccumulator,
    emit: EmitBuffer,
}

impl BucketSweep {
    /// Creates an engine for the given kernel/bandwidth/weight.
    pub fn new(kernel: KernelType, bandwidth: f64, weight: f64) -> Self {
        let quartic = kernel.needs_quartic_terms();
        Self {
            kernel,
            bandwidth,
            weight,
            head_l: Vec::new(),
            head_u: Vec::new(),
            next_l: Vec::new(),
            next_u: Vec::new(),
            l_acc: SweepAccumulator::new(quartic),
            u_acc: SweepAccumulator::new(quartic),
            emit: EmitBuffer::default(),
        }
    }

    /// Rebinds the engine to a new bandwidth, keeping the bucket scratch
    /// buffers warm — multi-bandwidth passes share one engine instead of
    /// holding `B` copies of the `O(X + |E|)` scratch. All per-row state is
    /// reinitialised at the top of [`RowEngine::process_row`], so a rebound
    /// engine is bitwise identical to a freshly constructed one.
    pub fn set_bandwidth(&mut self, bandwidth: f64) {
        self.bandwidth = bandwidth;
    }

    /// First pixel index `i` with `xs[i] ≥ lb`, clamped to `[0, X]`
    /// (Eq. 19 rewritten 0-based). The O(1) division is verified and, if
    /// floating-point rounding put it one slot off, corrected by at most a
    /// couple of comparisons against the true pixel coordinates — keeping
    /// the bucket invariant *exact* rather than approximately right.
    ///
    /// Exposed crate-wide so the weighted sweep shares the exact same
    /// bucketing semantics.
    #[inline]
    pub(crate) fn lower_bucket_index(xs: &[f64], x0: f64, inv_gap: f64, lb: f64) -> usize {
        let raw = ((lb - x0) * inv_gap).ceil();
        let mut i = if raw <= 0.0 { 0 } else { (raw as usize).min(xs.len()) };
        while i > 0 && xs[i - 1] >= lb {
            i -= 1;
        }
        while i < xs.len() && xs[i] < lb {
            i += 1;
        }
        i
    }

    /// First pixel index `i` with `xs[i] > ub` *strictly*, clamped to
    /// `[0, X]` (Eq. 20, with the closed-boundary convention: a pixel lying
    /// exactly on `UB` still counts the point).
    #[inline]
    pub(crate) fn upper_bucket_index(xs: &[f64], x0: f64, inv_gap: f64, ub: f64) -> usize {
        let raw = ((ub - x0) * inv_gap).floor() + 1.0;
        let mut i = if raw <= 0.0 { 0 } else { (raw as usize).min(xs.len()) };
        while i > 0 && xs[i - 1] > ub {
            i -= 1;
        }
        while i < xs.len() && xs[i] <= ub {
            i += 1;
        }
        i
    }
}

impl RowEngine for BucketSweep {
    fn process_row(&mut self, xs: &[f64], k: f64, intervals: &[SweepInterval], out: &mut [f64]) {
        let x_count = xs.len();
        debug_assert_eq!(out.len(), x_count);
        // Reset bucket heads: X+1 buckets, index X meaning "never".
        self.head_l.clear();
        self.head_l.resize(x_count + 1, NIL);
        self.head_u.clear();
        self.head_u.resize(x_count + 1, NIL);
        self.next_l.clear();
        self.next_l.resize(intervals.len(), NIL);
        self.next_u.clear();
        self.next_u.resize(intervals.len(), NIL);

        let x0 = xs[0];
        let inv_gap = if x_count > 1 { (x_count - 1) as f64 / (xs[x_count - 1] - x0) } else { 0.0 };

        // Scatter pass (lines 6–9 of Algorithm 2): O(1) per point.
        // `bl == bu` means the interval contains no pixel centre: it would
        // activate and deactivate at the same pixel, contributing nothing,
        // so it is dropped here (saving work *and* rounding noise).
        {
            let _s = kdv_obs::span1("bucket.scatter", "intervals", intervals.len() as u64);
            for (idx, iv) in intervals.iter().enumerate() {
                let bl = Self::lower_bucket_index(xs, x0, inv_gap, iv.lb);
                let bu = Self::upper_bucket_index(xs, x0, inv_gap, iv.ub);
                if bl == bu {
                    continue;
                }
                self.next_l[idx] = self.head_l[bl];
                self.head_l[bl] = idx as u32;
                self.next_u[idx] = self.head_u[bu];
                self.head_u[bu] = idx as u32;
            }
        }

        // Sweep pass (lines 13–20): each interval visited at most once per
        // side across the whole row, so O(X + |E(k)|) total. Accumulation
        // runs in the rolling frame `(frame_x, k)` — see the module docs of
        // `sweep_sort` for the conditioning argument.
        //
        // Two variants, dispatched once per row on [`crate::simd::mode`]:
        // the scalar fallback is the paper-faithful fused loop (one
        // `diff` + density evaluation per pixel, interleaved with the
        // bucket drains), while the vector path records event-free pixel
        // runs — between two events every pixel sees the *same* aggregate
        // snapshot in the *same* frame — and defers evaluation to
        // `EmitBuffer::flush`, which walks each run 4 pixels per
        // iteration. Event processing is identical, so the two variants
        // are bitwise identical (a conformance pair pins this).
        self.l_acc.reset();
        self.u_acc.reset();
        let shift_limit = 4.0 * self.bandwidth;
        let mut frame_x = xs[0];
        let mode = crate::simd::mode();
        let mut span = kdv_obs::span1("emit.simd", "mode", mode as u64);
        let lanes = match mode {
            SimdMode::Scalar => {
                for (i, &x) in xs.iter().enumerate() {
                    if self.l_acc.count() == self.u_acc.count() {
                        // Active set is empty: restart clean at the pixel.
                        self.l_acc.reset();
                        self.u_acc.reset();
                        frame_x = x;
                    } else if x - frame_x > shift_limit {
                        let delta = x - frame_x;
                        self.l_acc.shift_x(delta);
                        self.u_acc.shift_x(delta);
                        frame_x = x;
                    }
                    let mut cur = self.head_l[i];
                    while cur != NIL {
                        let p = &intervals[cur as usize].point;
                        self.l_acc.insert(&Point::new(p.x - frame_x, p.y - k));
                        cur = self.next_l[cur as usize];
                    }
                    let agg = self.l_acc.diff(&self.u_acc);
                    let q = Point::new(x - frame_x, 0.0);
                    out[i] =
                        self.kernel.density_from_aggregates(&q, &agg, self.bandwidth, self.weight);
                    // Deactivate intervals whose bucket is the next pixel —
                    // i.e. whose last contained pixel is the current one —
                    // while their coordinates are still within `b` of the
                    // sweep position.
                    let mut cur = self.head_u[i + 1];
                    while cur != NIL {
                        let p = &intervals[cur as usize].point;
                        self.u_acc.insert(&Point::new(p.x - frame_x, p.y - k));
                        cur = self.next_u[cur as usize];
                    }
                }
                0
            }
            SimdMode::Vector => {
                self.emit.clear();
                let mut i = 0usize;
                while i < x_count {
                    let x = xs[i];
                    if self.l_acc.count() == self.u_acc.count() {
                        self.l_acc.reset();
                        self.u_acc.reset();
                        frame_x = x;
                    } else if x - frame_x > shift_limit {
                        let delta = x - frame_x;
                        self.l_acc.shift_x(delta);
                        self.u_acc.shift_x(delta);
                        frame_x = x;
                    }
                    let mut cur = self.head_l[i];
                    while cur != NIL {
                        let p = &intervals[cur as usize].point;
                        self.l_acc.insert(&Point::new(p.x - frame_x, p.y - k));
                        cur = self.next_l[cur as usize];
                    }
                    // Extend the run over event-free pixels. An empty
                    // active set can only stay empty (activations end
                    // runs), and the scalar loop resets the frame at every
                    // empty pixel, so empty runs ignore the shift limit
                    // and emit a constant instead.
                    let empty = self.l_acc.count() == self.u_acc.count();
                    let mut e = i + 1;
                    if empty {
                        while e < x_count && self.head_l[e] == NIL && self.head_u[e] == NIL {
                            e += 1;
                        }
                    } else {
                        while e < x_count
                            && self.head_l[e] == NIL
                            && self.head_u[e] == NIL
                            && xs[e] - frame_x <= shift_limit
                        {
                            e += 1;
                        }
                    }
                    if empty {
                        // Empty ⟹ the reset above ran at pixel `i` and
                        // nothing was inserted, so the scalar loop
                        // evaluates every run pixel at `q = (+0.0, 0.0)`
                        // with zeroed aggregates: a constant.
                        self.emit.push_fill(
                            i,
                            e,
                            density_at(
                                self.kernel,
                                &EmitAggregates::default(),
                                0.0,
                                self.bandwidth,
                                self.weight,
                            ),
                        );
                        frame_x = xs[e - 1];
                    } else {
                        let agg = self.l_acc.diff(&self.u_acc);
                        self.emit.push_run(i, e, frame_x, EmitAggregates::from(&agg));
                    }
                    // Deactivate intervals whose bucket is pixel `e` —
                    // their last contained pixel is `e − 1` — while their
                    // coordinates are still within `b` of the sweep
                    // position. (For run pixels before `e − 1` the
                    // deactivation buckets are NIL by the scan above, so
                    // only the run-final drain can do work.)
                    let mut cur = self.head_u[e];
                    while cur != NIL {
                        let p = &intervals[cur as usize].point;
                        self.u_acc.insert(&Point::new(p.x - frame_x, p.y - k));
                        cur = self.next_u[cur as usize];
                    }
                    i = e;
                }
                self.emit.flush(self.kernel, self.bandwidth, self.weight, xs, out)
            }
        };
        span.arg("lanes", lanes as u64);
    }

    fn space_bytes(&self) -> usize {
        (self.head_l.capacity()
            + self.head_u.capacity()
            + self.next_l.capacity()
            + self.next_u.capacity())
            * std::mem::size_of::<u32>()
            + self.emit.space_bytes()
    }
}

/// Computes the full KDV raster with SLAM_BUCKET
/// (`O(Y(X + n))`, Theorem 2).
pub fn compute(params: &KdvParams, points: &[Point]) -> Result<DensityGrid> {
    let mut engine = BucketSweep::new(params.kernel, params.bandwidth, params.weight);
    sweep_grid(params, points, &mut engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;
    use crate::grid::GridSpec;
    use crate::sweep_sort;

    fn params(kernel: KernelType, b: f64) -> KdvParams {
        let grid = GridSpec::new(Rect::new(-20.0, 0.0, 80.0, 50.0), 25, 19).unwrap();
        KdvParams::new(grid, kernel, b).with_weight(1.0 / 500.0)
    }

    fn pseudo_random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::new(-30.0 + next() * 120.0, -10.0 + next() * 70.0)).collect()
    }

    #[test]
    fn bucket_matches_sort_exactly_for_all_kernels() {
        let pts = pseudo_random_points(600, 42);
        for kernel in KernelType::ALL {
            for &b in &[1.0, 7.3, 40.0, 200.0] {
                let p = params(kernel, b);
                let bucket = compute(&p, &pts).unwrap();
                let sort = sweep_sort::compute(&p, &pts).unwrap();
                let err = crate::stats::max_rel_error(bucket.values(), sort.values());
                assert!(err < 1e-12, "{kernel} b={b}: max rel err {err}");
            }
        }
    }

    #[test]
    fn bucket_index_helpers_honor_invariants() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 2.0 + 1.0).collect(); // 1,3,..,19
        let x0 = xs[0];
        let inv = 0.5;
        // lower: first xs[i] >= lb
        assert_eq!(BucketSweep::lower_bucket_index(&xs, x0, inv, -5.0), 0);
        assert_eq!(BucketSweep::lower_bucket_index(&xs, x0, inv, 1.0), 0); // xs[0] == lb
        assert_eq!(BucketSweep::lower_bucket_index(&xs, x0, inv, 1.0001), 1);
        assert_eq!(BucketSweep::lower_bucket_index(&xs, x0, inv, 19.0), 9);
        assert_eq!(BucketSweep::lower_bucket_index(&xs, x0, inv, 19.1), 10); // never
                                                                             // upper: first xs[i] > ub strictly
        assert_eq!(BucketSweep::upper_bucket_index(&xs, x0, inv, 0.0), 0);
        assert_eq!(BucketSweep::upper_bucket_index(&xs, x0, inv, 1.0), 1); // pixel 0 keeps it
        assert_eq!(BucketSweep::upper_bucket_index(&xs, x0, inv, 18.99), 9);
        assert_eq!(BucketSweep::upper_bucket_index(&xs, x0, inv, 19.0), 10);
        assert_eq!(BucketSweep::upper_bucket_index(&xs, x0, inv, 25.0), 10);
    }

    #[test]
    fn single_pixel_row_degenerate_grid() {
        // X = 1 exercises the inv_gap = 0 path.
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 2.0, 2.0), 1, 1).unwrap();
        let p = KdvParams::new(grid, KernelType::Epanechnikov, 5.0);
        let pts = [Point::new(1.0, 1.0), Point::new(0.0, 0.0)];
        let d = compute(&p, &pts).unwrap();
        let q = grid.pixel_center(0, 0);
        let expect = KernelType::Epanechnikov.density_scan(&q, &pts, 5.0, 1.0);
        assert!((d.get(0, 0) - expect).abs() < 1e-12);
    }

    #[test]
    fn duplicate_points_accumulate() {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 5, 5).unwrap();
        let p = KdvParams::new(grid, KernelType::Uniform, 4.0);
        let pt = Point::new(5.0, 5.0);
        let one = compute(&p, &[pt]).unwrap();
        let three = compute(&p, &[pt, pt, pt]).unwrap();
        for j in 0..5 {
            for i in 0..5 {
                assert!((three.get(i, j) - 3.0 * one.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn all_points_far_right_of_region() {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 8, 8).unwrap();
        let p = KdvParams::new(grid, KernelType::Quartic, 1.0);
        let pts = [Point::new(100.0, 5.0), Point::new(200.0, 5.0)];
        let d = compute(&p, &pts).unwrap();
        assert_eq!(d.max_value(), 0.0);
    }
}
