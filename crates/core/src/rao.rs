//! Resolution-Aware Optimization — RAO (paper Section 3.6).
//!
//! The row engines cost `O(Y · row(X, n))`: the per-row term is multiplied
//! by the number of rows. When `Y > X` it is cheaper to sweep the *columns*
//! instead (Figure 12). RAO achieves this by transposing the problem —
//! swap every point's coordinates and the raster's axes, run the unchanged
//! row engine, and transpose the resulting grid back. Transposition is pure
//! data movement, so the result is bit-identical to a native column sweep,
//! and the complexity becomes
//! `O(min(X,Y) · (max(X,Y) + n))` for SLAM_BUCKET^(RAO) and
//! `O(min(X,Y) · (max(X,Y) + n log n))` for SLAM_SORT^(RAO) (Theorem 3).

use crate::driver::KdvParams;
use crate::error::Result;
use crate::geom::Point;
use crate::grid::DensityGrid;
use crate::{sweep_bucket, sweep_sort};

/// Whether RAO would transpose this problem (i.e. `Y > X`).
#[inline]
pub fn should_transpose(params: &KdvParams) -> bool {
    params.grid.res_y > params.grid.res_x
}

/// Runs `f` on the original problem when `X ≥ Y`, or on the transposed
/// problem (transposing the output back) when `Y > X`.
pub fn with_rao<F>(params: &KdvParams, points: &[Point], f: F) -> Result<DensityGrid>
where
    F: Fn(&KdvParams, &[Point]) -> Result<DensityGrid>,
{
    if !should_transpose(params) {
        return f(params, points);
    }
    let t_params = params.transposed();
    let t_points: Vec<Point> = points.iter().map(Point::transposed).collect();
    let t_grid = f(&t_params, &t_points)?;
    Ok(t_grid.transposed())
}

/// SLAM_SORT^(RAO): sorting-based sweep along the shorter raster dimension.
pub fn compute_sort(params: &KdvParams, points: &[Point]) -> Result<DensityGrid> {
    with_rao(params, points, sweep_sort::compute)
}

/// SLAM_BUCKET^(RAO): bucket-based sweep along the shorter raster dimension —
/// the paper's overall best method.
pub fn compute_bucket(params: &KdvParams, points: &[Point]) -> Result<DensityGrid> {
    with_rao(params, points, sweep_bucket::compute)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;
    use crate::grid::GridSpec;
    use crate::kernel::KernelType;

    fn points() -> Vec<Point> {
        let mut state = 7u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..300).map(|_| Point::new(next() * 60.0, next() * 90.0)).collect()
    }

    fn tall_params(kernel: KernelType) -> KdvParams {
        // Y (24) > X (9): RAO transposes.
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 60.0, 90.0), 9, 24).unwrap();
        KdvParams::new(grid, kernel, 15.0).with_weight(0.01)
    }

    #[test]
    fn should_transpose_only_when_taller() {
        assert!(should_transpose(&tall_params(KernelType::Epanechnikov)));
        let wide = GridSpec::new(Rect::new(0.0, 0.0, 60.0, 90.0), 24, 9).unwrap();
        let p = KdvParams::new(wide, KernelType::Epanechnikov, 15.0);
        assert!(!should_transpose(&p));
        let square = GridSpec::new(Rect::new(0.0, 0.0, 1.0, 1.0), 8, 8).unwrap();
        let p = KdvParams::new(square, KernelType::Epanechnikov, 1.0);
        assert!(!should_transpose(&p), "ties keep the default row sweep");
    }

    #[test]
    fn rao_matches_non_rao_for_all_kernels() {
        // Transposed and plain sweeps roll their recentred frames along
        // different axes, so they agree only up to the frame-shift rounding
        // bound (ε·|E(k)|·5⁴ per sweep_sort's docs, a few e-12 here) — not
        // bitwise. 1e-10 leaves a ~30× margin over the observed ~2.6e-12.
        let pts = points();
        for kernel in KernelType::ALL {
            let p = tall_params(kernel);
            let plain = sweep_bucket::compute(&p, &pts).unwrap();
            let rao = compute_bucket(&p, &pts).unwrap();
            let err = crate::stats::max_rel_error(plain.values(), rao.values());
            assert!(err < 1e-10, "{kernel}: bucket RAO err {err}");

            let plain = sweep_sort::compute(&p, &pts).unwrap();
            let rao = compute_sort(&p, &pts).unwrap();
            let err = crate::stats::max_rel_error(plain.values(), rao.values());
            assert!(err < 1e-10, "{kernel}: sort RAO err {err}");
        }
    }

    #[test]
    fn rao_output_has_original_orientation() {
        let p = tall_params(KernelType::Epanechnikov);
        let g = compute_bucket(&p, &points()).unwrap();
        assert_eq!(g.res_x(), 9);
        assert_eq!(g.res_y(), 24);
    }
}
