//! Bitwise-sensitive raster fingerprints.
//!
//! One FNV-1a digest definition shared by every layer that compares
//! rasters across process or thread boundaries (the SIMD dispatch probe,
//! the serve replayers): dimensions first, then the raw bit pattern of
//! every density value, so a single-ULP difference — or a transposed
//! grid with the same values — changes the digest.

use crate::grid::DensityGrid;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `res_x`, `res_y` and the bit pattern of every value, in
/// row-major order. Not a cryptographic hash — a cheap, stable
/// fingerprint for bitwise-equality checks.
pub fn grid_checksum(grid: &DensityGrid) -> u64 {
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix(grid.res_x() as u64);
    mix(grid.res_y() as u64);
    for &v in grid.values() {
        mix(v.to_bits());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the digest of a known grid: the definition (offset, prime,
    /// byte order, dims-then-values layout) must never drift, or every
    /// cross-process comparison silently loses its baseline.
    #[test]
    fn known_grid_digest_is_pinned() {
        let grid = DensityGrid::from_values(2, 2, vec![0.0, 1.0, -2.5, 3.25]);
        assert_eq!(grid_checksum(&grid), 0x036a_1054_d9ac_6306);
    }

    #[test]
    fn digest_sees_single_ulp_and_shape() {
        let a = DensityGrid::from_values(2, 2, vec![0.0, 1.0, 2.0, 3.0]);
        let mut b = a.clone();
        assert_eq!(grid_checksum(&a), grid_checksum(&b));
        b.set(1, 0, 1.0 + f64::EPSILON);
        assert_ne!(grid_checksum(&a), grid_checksum(&b));
        // same values, transposed shape
        let wide = DensityGrid::from_values(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let tall = DensityGrid::from_values(1, 4, vec![0.0, 1.0, 2.0, 3.0]);
        assert_ne!(grid_checksum(&wide), grid_checksum(&tall));
    }
}
