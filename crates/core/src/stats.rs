//! Numeric helpers: compensated summation and tolerant float comparison.
//!
//! The sweep-line algorithms accumulate and cancel aggregate sums over long
//! runs of insertions; Kahan–Babuška (Neumaier) compensation keeps the
//! accumulated error independent of the number of operations, which is what
//! lets the test suite hold SLAM to a tight exactness tolerance against the
//! naive SCAN evaluation.

/// Kahan–Babuška (Neumaier variant) compensated accumulator.
///
/// Supports subtraction as well as addition, which the sweep line needs when
/// aggregates are maintained as `L − U` differences.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Kahan {
    sum: f64,
    comp: f64,
}

impl Kahan {
    /// A fresh accumulator holding 0.
    #[inline]
    pub const fn new() -> Self {
        Self { sum: 0.0, comp: 0.0 }
    }

    /// An accumulator initialised to `v`.
    #[inline]
    pub const fn from_value(v: f64) -> Self {
        Self { sum: v, comp: 0.0 }
    }

    /// Adds `v` with error compensation.
    #[inline]
    pub fn add(&mut self, v: f64) {
        let t = self.sum + v;
        if self.sum.abs() >= v.abs() {
            self.comp += (self.sum - t) + v;
        } else {
            self.comp += (v - t) + self.sum;
        }
        self.sum = t;
    }

    /// Subtracts `v` with error compensation.
    #[inline]
    pub fn sub(&mut self, v: f64) {
        self.add(-v);
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }

    /// Resets to zero without reallocating.
    #[inline]
    pub fn reset(&mut self) {
        self.sum = 0.0;
        self.comp = 0.0;
    }
}

/// Sums a slice with compensation; reference implementation for tests.
pub fn kahan_sum(values: &[f64]) -> f64 {
    let mut acc = Kahan::new();
    for &v in values {
        acc.add(v);
    }
    acc.value()
}

/// Relative-or-absolute float comparison used throughout the test suite.
///
/// Returns `true` when `|a − b| ≤ atol + rtol·max(|a|, |b|)`.
#[inline]
pub fn approx_eq(a: f64, b: f64, rtol: f64, atol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= atol + rtol * a.abs().max(b.abs())
}

/// Maximum relative error between two equally long slices
/// (∞ if lengths differ), used to report grid agreement in experiments.
pub fn max_rel_error(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    let mut worst = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let scale = x.abs().max(y.abs()).max(1e-300);
        worst = worst.max((x - y).abs() / scale);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_beats_naive_on_cancellation() {
        // 1 + 1e-16 added 10^6 times then subtracting 1: naive f64 loses the
        // small parts entirely; Kahan keeps them.
        let mut k = Kahan::new();
        k.add(1.0);
        for _ in 0..1_000_000 {
            k.add(1e-16);
        }
        k.sub(1.0);
        let got = k.value();
        assert!(approx_eq(got, 1e-10, 1e-6, 0.0), "kahan total {got} should be ~1e-10");
    }

    #[test]
    fn kahan_sum_matches_exact_for_integers() {
        let vals: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        assert_eq!(kahan_sum(&vals), 500_500.0);
    }

    #[test]
    fn kahan_reset() {
        let mut k = Kahan::from_value(5.0);
        k.add(1.0);
        k.reset();
        assert_eq!(k.value(), 0.0);
    }

    #[test]
    fn approx_eq_behaviour() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9, 0.0));
        assert!(!approx_eq(1.0, 1.001, 1e-9, 0.0));
        assert!(approx_eq(0.0, 1e-15, 0.0, 1e-12));
    }

    #[test]
    fn max_rel_error_basics() {
        assert_eq!(max_rel_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!(max_rel_error(&[1.0], &[1.0, 2.0]).is_infinite());
        let e = max_rel_error(&[100.0], &[101.0]);
        assert!(approx_eq(e, 1.0 / 101.0, 1e-12, 0.0));
    }
}
