//! Range-set aggregates (paper Table 4) with compensated maintenance.
//!
//! A [`RangeAggregates`] value summarises a point multiset well enough to
//! evaluate any Table-2 kernel in O(1): count, coordinate sums `A`, the
//! squared-norm sum `S`, plus the quartic-only terms `C = Σ‖p‖²p`,
//! `Q = Σ‖p‖⁴` and the symmetric outer-product matrix `M = Σ p·pᵀ`
//! (stored as its three distinct entries).
//!
//! The sweep line maintains two such states (`L` and `U`, Eqs. 12–13) and
//! evaluates densities from their difference (Lemma 3 / Lemma 5). Every
//! scalar is held in a Kahan accumulator so the error after millions of
//! insertions stays at a few ulps.

use crate::geom::Point;
use crate::stats::Kahan;

/// Aggregates of a point multiset sufficient for O(1) kernel evaluation.
///
/// Plain-`f64` snapshot form; produced from a [`SweepAccumulator`] or built
/// directly (e.g. per quadtree node in the QUAD baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RangeAggregates {
    /// `|R(q)|` — number of points.
    pub count: u64,
    /// `Σ p.x`.
    pub ax: f64,
    /// `Σ p.y`.
    pub ay: f64,
    /// `S = Σ ‖p‖²`.
    pub s: f64,
    /// `Σ ‖p‖²·p.x` (quartic only).
    pub cx: f64,
    /// `Σ ‖p‖²·p.y` (quartic only).
    pub cy: f64,
    /// `Q = Σ ‖p‖⁴` (quartic only).
    pub q4: f64,
    /// `M₁₁ = Σ p.x²` (quartic only).
    pub mxx: f64,
    /// `M₁₂ = M₂₁ = Σ p.x·p.y` (quartic only).
    pub mxy: f64,
    /// `M₂₂ = Σ p.y²` (quartic only).
    pub myy: f64,
}

impl RangeAggregates {
    /// Adds one point to every aggregate (simple uncompensated form for
    /// small sets such as index-node summaries).
    pub fn add(&mut self, p: &Point) {
        let n2 = p.norm_sq();
        self.count += 1;
        self.ax += p.x;
        self.ay += p.y;
        self.s += n2;
        self.cx += n2 * p.x;
        self.cy += n2 * p.y;
        self.q4 += n2 * n2;
        self.mxx += p.x * p.x;
        self.mxy += p.x * p.y;
        self.myy += p.y * p.y;
    }

    /// Merges another aggregate into this one (quadtree node roll-up).
    pub fn merge(&mut self, other: &RangeAggregates) {
        self.count += other.count;
        self.ax += other.ax;
        self.ay += other.ay;
        self.s += other.s;
        self.cx += other.cx;
        self.cy += other.cy;
        self.q4 += other.q4;
        self.mxx += other.mxx;
        self.mxy += other.mxy;
        self.myy += other.myy;
    }

    /// Builds aggregates over a point slice.
    pub fn from_points(points: &[Point]) -> Self {
        let mut a = RangeAggregates::default();
        for p in points {
            a.add(p);
        }
        a
    }
}

/// Compensated accumulator for one side of the sweep (the `L` or `U` set).
///
/// Tracks the same ten quantities as [`RangeAggregates`] but with
/// Kahan-compensated sums; `maintain_quartic` lets Epanechnikov/uniform runs
/// skip the six extra accumulators.
#[derive(Debug, Clone, Default)]
pub struct SweepAccumulator {
    count: u64,
    ax: Kahan,
    ay: Kahan,
    s: Kahan,
    cx: Kahan,
    cy: Kahan,
    q4: Kahan,
    mxx: Kahan,
    mxy: Kahan,
    myy: Kahan,
    maintain_quartic: bool,
}

impl SweepAccumulator {
    /// A fresh accumulator. `maintain_quartic` enables the `C`/`Q`/`M`
    /// terms (needed only by the quartic kernel).
    pub fn new(maintain_quartic: bool) -> Self {
        Self { maintain_quartic, ..Self::default() }
    }

    /// Inserts `p` (sweep case 1 or 2: an interval endpoint was passed).
    #[inline]
    pub fn insert(&mut self, p: &Point) {
        self.count += 1;
        self.ax.add(p.x);
        self.ay.add(p.y);
        let n2 = p.norm_sq();
        self.s.add(n2);
        if self.maintain_quartic {
            self.cx.add(n2 * p.x);
            self.cy.add(n2 * p.y);
            self.q4.add(n2 * n2);
            self.mxx.add(p.x * p.x);
            self.mxy.add(p.x * p.y);
            self.myy.add(p.y * p.y);
        }
    }

    /// Number of points inserted so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Clears the accumulator for reuse on the next row (keeps the
    /// `maintain_quartic` flag).
    pub fn reset(&mut self) {
        let mq = self.maintain_quartic;
        *self = SweepAccumulator::new(mq);
    }

    /// Translates the accumulated coordinate frame along x by `delta`:
    /// afterwards the aggregates describe the same point multiset expressed
    /// in coordinates `x' = x − delta` (y unchanged).
    ///
    /// Exact in real arithmetic — each power sum is a polynomial in the
    /// coordinates, so a translation is a binomial re-expansion in terms of
    /// the pre-shift sums. The engines use this to keep every stored
    /// magnitude `O(b)` as the sweep advances (the rolling frame described
    /// in `sweep_sort`), which is what keeps the quartic decomposition
    /// conditioned at city-scale coordinates.
    pub fn shift_x(&mut self, delta: f64) {
        if self.count == 0 {
            return;
        }
        let n = self.count as f64;
        let d = delta;
        // Snapshot pre-shift values: every update below must see the old
        // frame, not a partially shifted one.
        let ax = self.ax.value();
        self.ax.add(-n * d);
        if self.maintain_quartic {
            let ay = self.ay.value();
            let s = self.s.value();
            let cx = self.cx.value();
            let mxx = self.mxx.value();
            let mxy = self.mxy.value();
            let d2 = d * d;
            self.s.add(-2.0 * d * ax + n * d2);
            self.q4.add(
                -4.0 * d * cx + 2.0 * d2 * s + 4.0 * d2 * mxx - 4.0 * d * d2 * ax + n * d2 * d2,
            );
            self.cx.add(-d * (s + 2.0 * mxx) + 3.0 * d2 * ax - n * d * d2);
            self.cy.add(-2.0 * d * mxy + d2 * ay);
            self.mxx.add(-2.0 * d * ax + n * d2);
            self.mxy.add(-d * ay);
            // myy is y-only: unchanged by an x-translation.
        } else {
            self.s.add(-2.0 * d * ax + n * d * d);
        }
    }

    /// Snapshot of the difference `self − other`, i.e. the aggregates of
    /// `L \ U` (valid because `U ⊆ L`, proven in Lemma 5).
    ///
    /// # Panics
    /// Debug-panics if `other.count > self.count`, which would violate the
    /// sweep invariant `U ⊆ L`.
    #[inline]
    pub fn diff(&self, other: &SweepAccumulator) -> RangeAggregates {
        debug_assert!(other.count <= self.count, "sweep invariant U ⊆ L violated");
        RangeAggregates {
            count: self.count - other.count,
            ax: self.ax.value() - other.ax.value(),
            ay: self.ay.value() - other.ay.value(),
            s: self.s.value() - other.s.value(),
            cx: self.cx.value() - other.cx.value(),
            cy: self.cy.value() - other.cy.value(),
            q4: self.q4.value() - other.q4.value(),
            mxx: self.mxx.value() - other.mxx.value(),
            mxy: self.mxy.value() - other.mxy.value(),
            myy: self.myy.value() - other.myy.value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> Vec<Point> {
        vec![
            Point::new(1.0, 2.0),
            Point::new(-0.5, 0.25),
            Point::new(3.0, -4.0),
            Point::new(0.0, 0.0),
        ]
    }

    #[test]
    fn from_points_matches_manual() {
        let pts = sample_points();
        let a = RangeAggregates::from_points(&pts);
        assert_eq!(a.count, 4);
        assert!((a.ax - 3.5).abs() < 1e-12);
        assert!((a.ay - (-1.75)).abs() < 1e-12);
        // S = 5 + 0.3125 + 25 + 0 = 30.3125
        assert!((a.s - 30.3125).abs() < 1e-12);
        // M entries
        assert!((a.mxx - (1.0 + 0.25 + 9.0)).abs() < 1e-12);
        assert!((a.myy - (4.0 + 0.0625 + 16.0)).abs() < 1e-12);
        assert!((a.mxy - (2.0 - 0.125 - 12.0)).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_concatenation() {
        let pts = sample_points();
        let (left, right) = pts.split_at(2);
        let mut a = RangeAggregates::from_points(left);
        a.merge(&RangeAggregates::from_points(right));
        let whole = RangeAggregates::from_points(&pts);
        assert_eq!(a.count, whole.count);
        assert!((a.s - whole.s).abs() < 1e-12);
        assert!((a.q4 - whole.q4).abs() < 1e-12);
    }

    #[test]
    fn sweep_diff_equals_set_difference() {
        let pts = sample_points();
        let mut l = SweepAccumulator::new(true);
        let mut u = SweepAccumulator::new(true);
        for p in &pts {
            l.insert(p);
        }
        // U gets the first two points (they have "left" the range)
        u.insert(&pts[0]);
        u.insert(&pts[1]);
        let diff = l.diff(&u);
        let expect = RangeAggregates::from_points(&pts[2..]);
        assert_eq!(diff.count, expect.count);
        assert!((diff.ax - expect.ax).abs() < 1e-12);
        assert!((diff.s - expect.s).abs() < 1e-12);
        assert!((diff.q4 - expect.q4).abs() < 1e-12);
        assert!((diff.mxy - expect.mxy).abs() < 1e-12);
    }

    #[test]
    fn reset_keeps_quartic_flag() {
        let mut acc = SweepAccumulator::new(true);
        acc.insert(&Point::new(1.0, 1.0));
        acc.reset();
        assert_eq!(acc.count(), 0);
        acc.insert(&Point::new(2.0, 0.0));
        let diff = acc.diff(&SweepAccumulator::new(true));
        assert!((diff.q4 - 16.0).abs() < 1e-12, "quartic terms still maintained");
    }

    #[test]
    fn shift_x_matches_rebuilding_in_new_frame() {
        let pts = sample_points();
        for quartic in [false, true] {
            let mut acc = SweepAccumulator::new(quartic);
            for p in &pts {
                acc.insert(p);
            }
            let delta = 3.75;
            acc.shift_x(delta);
            let shifted: Vec<Point> = pts.iter().map(|p| Point::new(p.x - delta, p.y)).collect();
            let mut expect = SweepAccumulator::new(quartic);
            for p in &shifted {
                expect.insert(p);
            }
            let got = acc.diff(&SweepAccumulator::new(quartic));
            let want = expect.diff(&SweepAccumulator::new(quartic));
            assert_eq!(got.count, want.count);
            for (g, w) in [
                (got.ax, want.ax),
                (got.ay, want.ay),
                (got.s, want.s),
                (got.cx, want.cx),
                (got.cy, want.cy),
                (got.q4, want.q4),
                (got.mxx, want.mxx),
                (got.mxy, want.mxy),
                (got.myy, want.myy),
            ] {
                assert!((g - w).abs() <= 1e-10 * w.abs().max(1.0), "{g} vs {w}");
            }
        }
    }

    #[test]
    fn shift_x_on_empty_accumulator_is_a_noop() {
        let mut acc = SweepAccumulator::new(true);
        acc.shift_x(123.0);
        let d = acc.diff(&SweepAccumulator::new(true));
        assert_eq!(d.count, 0);
        assert_eq!(d.ax, 0.0);
        assert_eq!(d.q4, 0.0);
    }

    #[test]
    fn non_quartic_mode_skips_extras() {
        let mut acc = SweepAccumulator::new(false);
        acc.insert(&Point::new(2.0, 3.0));
        let d = acc.diff(&SweepAccumulator::new(false));
        assert_eq!(d.count, 1);
        assert_eq!(d.s, 13.0);
        assert_eq!(d.q4, 0.0, "quartic terms not maintained in cheap mode");
    }
}
