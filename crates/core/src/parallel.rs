//! Work-stealing row-parallel sweep runtime — an extension beyond the paper.
//!
//! The paper evaluates a single-CPU setting and lists parallel execution as
//! future work (Section 5, "Parallel/distributed and hardware-based
//! methods"). Rows are embarrassingly parallel: each row sweep touches only
//! its own envelope set and output row, so any row partition yields the
//! bitwise-sequential result. A *static* partition, however, balances badly
//! on clustered data — envelope sizes `|E(k)|` (and hence row cost) can vary
//! by orders of magnitude across rows, so contiguous bands leave most
//! workers idle while one grinds through the hotspot.
//!
//! This module therefore schedules rows dynamically: workers claim small
//! chunks of row indices from a shared atomic counter until the raster is
//! exhausted. Each row is still swept start-to-finish by exactly one engine,
//! so no floating-point reassociation crosses a row boundary and the output
//! is **bitwise identical** to the sequential sweep for every thread count.
//! One `fetch_add` per chunk keeps contention negligible next to an
//! `O(X + n)` row.
//!
//! The same scheduler drives every parallel entry point in the workspace:
//! plain sweeps ([`compute_parallel`]), RAO composition
//! ([`compute_parallel_rao`]), weighted sweeps
//! ([`compute_weighted_parallel`]), multi-bandwidth exploration
//! ([`compute_multi_bandwidth_parallel`]) and — via [`for_each_index`] —
//! the temporal frame driver in `kdv-temporal`. The `*_with_report`
//! variants additionally collect a [`SweepReport`] of per-row envelope
//! sizes, fill/sweep phase times and the rows-per-worker distribution.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crate::driver::{KdvParams, RowEngine, SweepContext};
use crate::envelope::EnvelopeBuffer;
use crate::error::Result;
use crate::geom::Point;
use crate::grid::DensityGrid;
use crate::sweep_bucket::BucketSweep;
use crate::sweep_sort::SortSweep;
use crate::telemetry::{SweepReport, WorkerStats};
use crate::weighted::WeightedWorkspace;

/// Which sequential engine each worker thread instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelEngine {
    /// SLAM_SORT per row.
    Sort,
    /// SLAM_BUCKET per row.
    Bucket,
}

/// Default worker count: the machine's available parallelism (1 if it
/// cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves a user-facing thread request: `0` means "auto".
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        default_threads()
    } else {
        threads
    }
}

/// Chunked claiming from a shared atomic row counter — the work-stealing
/// heart of the runtime.
struct RowClaimer {
    next: AtomicUsize,
    rows: usize,
    chunk: usize,
}

impl RowClaimer {
    fn new(rows: usize, workers: usize) -> Self {
        // Chunks small enough that a clustered hotspot cannot pin a worker
        // for long, large enough that the atomic traffic stays negligible.
        let chunk = (rows / (workers.max(1) * 8)).clamp(1, 64);
        Self { next: AtomicUsize::new(0), rows, chunk }
    }

    fn claim(&self) -> Option<std::ops::Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.rows {
            None
        } else {
            Some(start..(start + self.chunk).min(self.rows))
        }
    }
}

/// Hands out disjoint mutable raster rows to workers.
///
/// Safety contract: every row index is claimed by exactly one worker (the
/// `RowClaimer` guarantees unique claims), so the aliasing rules hold even
/// though the borrow checker cannot see it.
struct RowTable {
    base: *mut f64,
    row_len: usize,
    rows: usize,
}

unsafe impl Send for RowTable {}
unsafe impl Sync for RowTable {}

impl RowTable {
    fn new(values: &mut [f64], row_len: usize) -> Self {
        let rows = values.len().checked_div(row_len).unwrap_or(0);
        debug_assert_eq!(values.len(), rows * row_len);
        Self { base: values.as_mut_ptr(), row_len, rows }
    }

    /// # Safety
    /// `j` must be claimed by exactly one worker for the table's lifetime.
    #[allow(clippy::mut_from_ref)]
    unsafe fn row(&self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.rows);
        unsafe { std::slice::from_raw_parts_mut(self.base.add(j * self.row_len), self.row_len) }
    }
}

/// Generic work-stealing scheduler: spawns `workers` scoped threads, each
/// building private state with `make_state` and running `sweep_row` for
/// every claimed row. Returns the per-worker telemetry records in spawn
/// order.
fn run_scheduler<S>(
    rows: usize,
    workers: usize,
    make_state: &(impl Fn() -> S + Sync),
    sweep_row: &(impl Fn(&mut S, usize, &mut WorkerStats) + Sync),
    aux_bytes: &(impl Fn(&S) -> usize + Sync),
) -> Vec<WorkerStats> {
    let workers = workers.min(rows).max(1);
    let claimer = RowClaimer::new(rows, workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let claimer = &claimer;
                scope.spawn(move || {
                    let mut state = make_state();
                    let mut stats = WorkerStats::default();
                    while let Some(range) = claimer.claim() {
                        for j in range {
                            sweep_row(&mut state, j, &mut stats);
                            stats.rows += 1;
                        }
                    }
                    stats.aux_bytes = aux_bytes(&state);
                    stats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
    })
}

/// Sequential-engine dispatch for one worker.
enum AnyEngine {
    Sort(SortSweep),
    Bucket(BucketSweep),
}

impl AnyEngine {
    fn new(kind: ParallelEngine, params: &KdvParams) -> Self {
        match kind {
            ParallelEngine::Sort => {
                Self::Sort(SortSweep::new(params.kernel, params.bandwidth, params.weight))
            }
            ParallelEngine::Bucket => {
                Self::Bucket(BucketSweep::new(params.kernel, params.bandwidth, params.weight))
            }
        }
    }

    fn process_row(
        &mut self,
        xs: &[f64],
        k: f64,
        intervals: &[crate::envelope::SweepInterval],
        out: &mut [f64],
    ) {
        match self {
            Self::Sort(e) => e.process_row(xs, k, intervals, out),
            Self::Bucket(e) => e.process_row(xs, k, intervals, out),
        }
    }

    fn space_bytes(&self) -> usize {
        match self {
            Self::Sort(e) => e.space_bytes(),
            Self::Bucket(e) => e.space_bytes(),
        }
    }
}

/// Computes the raster with `threads` workers claiming rows dynamically.
/// `threads == 0` uses [`default_threads`]; `1` falls back to the
/// sequential path. Output is bitwise identical to the sequential sweep
/// for every thread count.
pub fn compute_parallel(
    params: &KdvParams,
    points: &[Point],
    engine: ParallelEngine,
    threads: usize,
) -> Result<DensityGrid> {
    let threads = resolve_threads(threads);
    if threads <= 1 {
        return match engine {
            ParallelEngine::Sort => crate::sweep_sort::compute(params, points),
            ParallelEngine::Bucket => crate::sweep_bucket::compute(params, points),
        };
    }
    compute_parallel_with_report(params, points, engine, threads).map(|(grid, _)| grid)
}

/// [`compute_parallel`] plus execution telemetry. Runs the scheduler even
/// for `threads == 1` so the report is always populated.
pub fn compute_parallel_with_report(
    params: &KdvParams,
    points: &[Point],
    engine: ParallelEngine,
    threads: usize,
) -> Result<(DensityGrid, SweepReport)> {
    let threads = resolve_threads(threads);
    let ctx = SweepContext::new(params, points)?;
    let res_x = params.grid.res_x;
    let res_y = params.grid.res_y;
    let mut values = vec![0.0_f64; res_x * res_y];
    let table = RowTable::new(&mut values, res_x);

    let start = Instant::now();
    let workers = {
        let _sweep =
            kdv_obs::span2("sweep.parallel", "rows", res_y as u64, "threads", threads as u64);
        run_scheduler(
            res_y,
            threads,
            &|| (EnvelopeBuffer::for_points(ctx.points.len()), AnyEngine::new(engine, params)),
            &|(envelope, eng), j, stats| {
                let k = ctx.ks[j];
                let t0 = Instant::now();
                let band = {
                    let _s = kdv_obs::span1("band.search", "row", j as u64);
                    ctx.index.band(params.bandwidth, k)
                };
                if band.is_empty() {
                    // the output row is already zeroed — skip the engine
                    stats.fill_nanos += t0.elapsed().as_nanos() as u64;
                    stats.rows_skipped += 1;
                    stats.envelope_sizes.push((j, 0));
                    return;
                }
                let intervals = {
                    let mut s = kdv_obs::span1("envelope.fill", "row", j as u64);
                    let intervals = envelope.fill_band(&ctx.index, band, params.bandwidth, k);
                    s.arg("size", intervals.len() as u64);
                    intervals
                };
                let t1 = Instant::now();
                // SAFETY: the scheduler claims each row exactly once.
                let out = unsafe { table.row(j) };
                {
                    let _s = kdv_obs::span1("row.sweep", "row", j as u64);
                    eng.process_row(&ctx.xs, k, intervals, out);
                }
                stats.fill_nanos += (t1 - t0).as_nanos() as u64;
                stats.sweep_nanos += t1.elapsed().as_nanos() as u64;
                stats.envelope_sizes.push((j, intervals.len()));
            },
            &|(envelope, eng)| envelope.space_bytes() + eng.space_bytes(),
        )
    };
    let mut report = SweepReport::from_workers(workers, res_y, ctx.space_bytes());
    report.wall_nanos = start.elapsed().as_nanos() as u64;
    Ok((DensityGrid::from_values(res_x, res_y, values), report))
}

/// Parallel sweep with the resolution-aware optimization: transposes when
/// the raster is taller than wide (Theorem 3), then runs the work-stealing
/// sweep over the (fewer, longer) rows.
pub fn compute_parallel_rao(
    params: &KdvParams,
    points: &[Point],
    engine: ParallelEngine,
    threads: usize,
) -> Result<DensityGrid> {
    compute_parallel_rao_with_report(params, points, engine, threads).map(|(grid, _)| grid)
}

/// [`compute_parallel_rao`] plus telemetry. When the problem transposes,
/// the report describes the *transposed* sweep (rows = original columns).
pub fn compute_parallel_rao_with_report(
    params: &KdvParams,
    points: &[Point],
    engine: ParallelEngine,
    threads: usize,
) -> Result<(DensityGrid, SweepReport)> {
    if crate::rao::should_transpose(params) {
        let t_params = params.transposed();
        let t_points: Vec<Point> = points.iter().map(Point::transposed).collect();
        let (grid, report) = compute_parallel_with_report(&t_params, &t_points, engine, threads)?;
        return Ok((grid.transposed(), report));
    }
    compute_parallel_with_report(params, points, engine, threads)
}

/// Parallel weighted sweep (bucket engine plus RAO dispatch), bitwise
/// identical to [`crate::weighted::compute_weighted`].
pub fn compute_weighted_parallel(
    params: &KdvParams,
    points: &[Point],
    weights: &[f64],
    threads: usize,
) -> Result<DensityGrid> {
    compute_weighted_parallel_with_report(params, points, weights, threads).map(|(g, _)| g)
}

/// [`compute_weighted_parallel`] plus telemetry (transposed semantics as in
/// [`compute_parallel_rao_with_report`]).
pub fn compute_weighted_parallel_with_report(
    params: &KdvParams,
    points: &[Point],
    weights: &[f64],
    threads: usize,
) -> Result<(DensityGrid, SweepReport)> {
    crate::weighted::validate_weights(points, weights)?;
    if params.grid.res_y > params.grid.res_x {
        let t_params = params.transposed();
        let t_points: Vec<Point> = points.iter().map(Point::transposed).collect();
        let (grid, report) =
            compute_weighted_rows_parallel(&t_params, &t_points, weights, threads)?;
        return Ok((grid.transposed(), report));
    }
    compute_weighted_rows_parallel(params, points, weights, threads)
}

fn compute_weighted_rows_parallel(
    params: &KdvParams,
    points: &[Point],
    weights: &[f64],
    threads: usize,
) -> Result<(DensityGrid, SweepReport)> {
    let threads = resolve_threads(threads);
    let ctx = SweepContext::new(params, points)?;
    let res_x = params.grid.res_x;
    let res_y = params.grid.res_y;
    let bandwidth = params.bandwidth;
    let mut values = vec![0.0_f64; res_x * res_y];
    let table = RowTable::new(&mut values, res_x);

    let start = Instant::now();
    let workers = {
        let _sweep =
            kdv_obs::span2("sweep.parallel", "rows", res_y as u64, "threads", threads as u64);
        run_scheduler(
            res_y,
            threads,
            &|| {
                let mut ws = WeightedWorkspace::new();
                ws.engine_for(params);
                ws
            },
            &|ws, j, stats| {
                let WeightedWorkspace { envelope, env_weights, engine, .. } = ws;
                let engine = engine.as_mut().expect("engine_for configured the engine");
                let k = ctx.ks[j];
                let t0 = Instant::now();
                let band = {
                    let _s = kdv_obs::span1("band.search", "row", j as u64);
                    ctx.index.band(bandwidth, k)
                };
                if band.is_empty() {
                    // the output row is already zeroed — skip the engine
                    stats.fill_nanos += t0.elapsed().as_nanos() as u64;
                    stats.rows_skipped += 1;
                    stats.envelope_sizes.push((j, 0));
                    return;
                }
                let intervals = {
                    let mut s = kdv_obs::span1("envelope.fill", "row", j as u64);
                    ctx.index.gather(band.clone(), weights, env_weights);
                    let intervals = envelope.fill_band(&ctx.index, band, bandwidth, k);
                    s.arg("size", intervals.len() as u64);
                    intervals
                };
                let t1 = Instant::now();
                // SAFETY: the scheduler claims each row exactly once.
                let out = unsafe { table.row(j) };
                {
                    let _s = kdv_obs::span1("row.sweep", "row", j as u64);
                    engine.process_row(&ctx.xs, k, intervals, env_weights, out);
                }
                stats.fill_nanos += (t1 - t0).as_nanos() as u64;
                stats.sweep_nanos += t1.elapsed().as_nanos() as u64;
                stats.envelope_sizes.push((j, intervals.len()));
            },
            &|ws| ws.space_bytes(),
        )
    };
    let mut report = SweepReport::from_workers(workers, res_y, ctx.space_bytes());
    report.wall_nanos = start.elapsed().as_nanos() as u64;
    Ok((DensityGrid::from_values(res_x, res_y, values), report))
}

/// Parallel multi-bandwidth exploration, bitwise identical to
/// [`crate::multi_bandwidth::compute_multi_bandwidth`]: per claimed row the
/// widest bandwidth's band is located once and bounds the binary search of
/// every smaller bandwidth; one bucket engine per worker is rebound per
/// bandwidth.
pub fn compute_multi_bandwidth_parallel(
    params: &KdvParams,
    points: &[Point],
    bandwidths: &[f64],
    threads: usize,
) -> Result<Vec<DensityGrid>> {
    use crate::error::KdvError;

    for &b in bandwidths {
        if !b.is_finite() || b <= 0.0 {
            return Err(KdvError::InvalidBandwidth(b));
        }
    }
    if bandwidths.is_empty() {
        return Ok(Vec::new());
    }
    let threads = resolve_threads(threads);
    let b_max = bandwidths.iter().copied().fold(f64::MIN, f64::max);
    let mut check = *params;
    check.bandwidth = b_max;
    let ctx = SweepContext::new(&check, points)?;

    let res_x = params.grid.res_x;
    let res_y = params.grid.res_y;
    let mut buffers: Vec<Vec<f64>> =
        bandwidths.iter().map(|_| vec![0.0_f64; res_x * res_y]).collect();
    let tables: Vec<RowTable> = buffers.iter_mut().map(|b| RowTable::new(b, res_x)).collect();

    run_scheduler(
        res_y,
        threads,
        &|| {
            (
                EnvelopeBuffer::for_points(ctx.points.len()),
                BucketSweep::new(params.kernel, b_max, params.weight),
            )
        },
        &|(envelope, engine), j, stats| {
            let k = ctx.ks[j];
            let t0 = Instant::now();
            // the widest band bounds every smaller bandwidth's binary search
            let band_max = {
                let _s = kdv_obs::span1("band.search", "row", j as u64);
                ctx.index.band(b_max, k)
            };
            if band_max.is_empty() {
                stats.fill_nanos += t0.elapsed().as_nanos() as u64;
                stats.rows_skipped += 1;
                stats.envelope_sizes.push((j, 0));
                return;
            }
            let t1 = Instant::now();
            for (bi, &b) in bandwidths.iter().enumerate() {
                let band = ctx.index.band_in(band_max.clone(), b, k);
                if band.is_empty() {
                    continue;
                }
                let intervals = {
                    let mut s = kdv_obs::span1("envelope.fill", "row", j as u64);
                    let intervals = envelope.fill_band(&ctx.index, band, b, k);
                    s.arg("size", intervals.len() as u64);
                    intervals
                };
                engine.set_bandwidth(b);
                // SAFETY: the scheduler claims each row exactly once, and
                // each bandwidth writes to its own raster.
                let out = unsafe { tables[bi].row(j) };
                let _s = kdv_obs::span1("row.sweep", "row", j as u64);
                engine.process_row(&ctx.xs, k, intervals, out);
            }
            stats.fill_nanos += (t1 - t0).as_nanos() as u64;
            stats.sweep_nanos += t1.elapsed().as_nanos() as u64;
            stats.envelope_sizes.push((j, band_max.len()));
        },
        &|(envelope, engine)| envelope.space_bytes() + engine.space_bytes(),
    );
    drop(tables);
    Ok(buffers.into_iter().map(|v| DensityGrid::from_values(res_x, res_y, v)).collect())
}

/// Generic work-stealing index loop for embarrassingly parallel tasks that
/// are not row sweeps (e.g. temporal frames in `kdv-temporal`). Runs
/// `task(i)` for every `i in 0..count` on up to `threads` workers and
/// returns the results in index order. `threads == 0` means "auto".
pub fn for_each_index<T: Send>(
    count: usize,
    threads: usize,
    task: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    for_each_index_with(count, threads, || (), |(), i| task(i))
}

/// [`for_each_index`] with per-worker scratch state: each worker builds one
/// `S` with `make_state` and threads it through every task it claims. This
/// is how frame loops keep buffers warm across frames without sharing them
/// between threads (e.g. one [`WeightedWorkspace`] per worker).
pub fn for_each_index_with<S, T: Send>(
    count: usize,
    threads: usize,
    make_state: impl Fn() -> S + Sync,
    task: impl Fn(&mut S, usize) -> T + Sync,
) -> Vec<T> {
    if count == 0 {
        return Vec::new();
    }
    let workers = resolve_threads(threads).min(count).max(1);
    let claimer = RowClaimer::new(count, workers);
    let mut collected: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let claimer = &claimer;
                let task = &task;
                let make_state = &make_state;
                scope.spawn(move || {
                    let mut state = make_state();
                    let mut local = Vec::new();
                    while let Some(range) = claimer.claim() {
                        for i in range {
                            local.push((i, task(&mut state, i)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("index worker panicked")).collect()
    });
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for worker in collected.iter_mut() {
        for (i, value) in worker.drain(..) {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(value);
        }
    }
    slots.into_iter().map(|s| s.expect("index not produced")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;
    use crate::grid::GridSpec;
    use crate::kernel::KernelType;

    fn setup() -> (KdvParams, Vec<Point>) {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 100.0, 70.0), 40, 23).unwrap();
        let params = KdvParams::new(grid, KernelType::Epanechnikov, 9.0).with_weight(0.002);
        let mut state = 99u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts = (0..800).map(|_| Point::new(next() * 100.0, next() * 70.0)).collect();
        (params, pts)
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let (params, pts) = setup();
        let seq = crate::sweep_bucket::compute(&params, &pts).unwrap();
        for threads in [2, 3, 8, 64] {
            let par = compute_parallel(&params, &pts, ParallelEngine::Bucket, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
        let seq = crate::sweep_sort::compute(&params, &pts).unwrap();
        let par = compute_parallel(&params, &pts, ParallelEngine::Sort, 4).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn one_thread_falls_back() {
        let (params, pts) = setup();
        let a = compute_parallel(&params, &pts, ParallelEngine::Bucket, 1).unwrap();
        let b = crate::sweep_bucket::compute(&params, &pts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_threads_than_rows() {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 6, 2).unwrap();
        let params = KdvParams::new(grid, KernelType::Uniform, 3.0);
        let pts = vec![Point::new(5.0, 5.0)];
        let par = compute_parallel(&params, &pts, ParallelEngine::Bucket, 16).unwrap();
        let seq = crate::sweep_bucket::compute(&params, &pts).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn report_accounts_for_every_row() {
        let (params, pts) = setup();
        let (grid, report) =
            compute_parallel_with_report(&params, &pts, ParallelEngine::Bucket, 3).unwrap();
        assert_eq!(grid, crate::sweep_bucket::compute(&params, &pts).unwrap());
        assert_eq!(report.rows, 23);
        assert_eq!(report.rows_per_worker.iter().sum::<usize>(), 23);
        assert_eq!(report.envelope_sizes.len(), 23);
        // every row of this dense dataset has a non-empty envelope
        assert!(report.envelope_sizes.iter().all(|&s| s > 0));
        assert!(report.total_aux_bytes > 0);
        assert!(report.threads <= 3);
    }

    #[test]
    fn rao_parallel_matches_sequential_rao() {
        // tall raster: the RAO path transposes
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 70.0, 100.0), 23, 40).unwrap();
        let params = KdvParams::new(grid, KernelType::Quartic, 9.0).with_weight(0.002);
        let (_, pts) = setup();
        let seq = crate::rao::compute_bucket(&params, &pts).unwrap();
        for threads in [2, 5] {
            let par = compute_parallel_rao(&params, &pts, ParallelEngine::Bucket, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn weighted_parallel_matches_sequential() {
        let (params, pts) = setup();
        let weights: Vec<f64> = (0..pts.len()).map(|i| 0.25 + (i % 7) as f64).collect();
        let seq = crate::weighted::compute_weighted(&params, &pts, &weights).unwrap();
        for threads in [2, 4] {
            let par = compute_weighted_parallel(&params, &pts, &weights, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
        // weight validation propagates
        assert!(compute_weighted_parallel(&params, &pts, &weights[1..], 2).is_err());
    }

    #[test]
    fn multi_bandwidth_parallel_matches_sequential() {
        let (params, pts) = setup();
        let bandwidths = [3.0, 9.0, 25.0];
        let seq =
            crate::multi_bandwidth::compute_multi_bandwidth(&params, &pts, &bandwidths).unwrap();
        let par = compute_multi_bandwidth_parallel(&params, &pts, &bandwidths, 3).unwrap();
        assert_eq!(seq, par);
        assert!(compute_multi_bandwidth_parallel(&params, &pts, &[-1.0], 2).is_err());
        assert!(compute_multi_bandwidth_parallel(&params, &pts, &[], 2).unwrap().is_empty());
    }

    #[test]
    fn for_each_index_preserves_order() {
        let out = for_each_index(100, 4, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
        assert!(for_each_index(0, 4, |i| i).is_empty());
    }

    #[test]
    fn for_each_index_with_reuses_worker_state() {
        // each worker counts how many tasks it ran through its own state;
        // results stay in index order and every task sees a warm state
        let out = for_each_index_with(
            50,
            3,
            || 0usize,
            |seen, i| {
                *seen += 1;
                (i, *seen)
            },
        );
        assert_eq!(out.len(), 50);
        for (slot, (i, seen)) in out.iter().enumerate() {
            assert_eq!(slot, *i);
            assert!(*seen >= 1);
        }
        // a worker that claims multiple chunks must have kept its state
        assert!(out.iter().any(|&(_, seen)| seen > 1));
    }

    #[test]
    fn zero_threads_means_auto() {
        let (params, pts) = setup();
        let auto = compute_parallel(&params, &pts, ParallelEngine::Bucket, 0).unwrap();
        let seq = crate::sweep_bucket::compute(&params, &pts).unwrap();
        assert_eq!(auto, seq);
    }
}
