//! Row-parallel SLAM — an extension beyond the paper.
//!
//! The paper evaluates a single-CPU setting and lists parallel execution as
//! future work (Section 5, "Parallel/distributed and hardware-based
//! methods"). Rows are embarrassingly parallel: each row sweep touches only
//! its own envelope set and output row, so we shard rows across scoped
//! threads, each with a private engine and envelope buffer. Results are
//! bitwise identical to the sequential sweep because no floating-point
//! reassociation crosses a row boundary.

use crate::driver::{KdvParams, RowEngine, SweepContext};
use crate::envelope::EnvelopeBuffer;
use crate::error::Result;
use crate::geom::Point;
use crate::grid::DensityGrid;
use crate::sweep_bucket::BucketSweep;
use crate::sweep_sort::SortSweep;

/// Which sequential engine each worker thread instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelEngine {
    /// SLAM_SORT per row.
    Sort,
    /// SLAM_BUCKET per row.
    Bucket,
}

/// Computes the raster with `threads` workers, each sweeping a contiguous
/// band of rows. `threads == 0` or `1` falls back to the sequential path.
pub fn compute_parallel(
    params: &KdvParams,
    points: &[Point],
    engine: ParallelEngine,
    threads: usize,
) -> Result<DensityGrid> {
    if threads <= 1 {
        return match engine {
            ParallelEngine::Sort => crate::sweep_sort::compute(params, points),
            ParallelEngine::Bucket => crate::sweep_bucket::compute(params, points),
        };
    }
    let ctx = SweepContext::new(params, points)?;
    let res_x = params.grid.res_x;
    let res_y = params.grid.res_y;
    let mut values = vec![0.0_f64; res_x * res_y];
    let workers = threads.min(res_y.max(1));
    // Split the flat buffer into per-thread row bands.
    let rows_per = res_y.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest: &mut [f64] = &mut values;
        let mut start_row = 0usize;
        while start_row < res_y {
            let band_rows = rows_per.min(res_y - start_row);
            let (band, tail) = rest.split_at_mut(band_rows * res_x);
            rest = tail;
            let ctx = &ctx;
            scope.spawn(move || {
                let mut envelope = EnvelopeBuffer::with_capacity(ctx.points.len().min(1 << 20));
                let mut sort_engine;
                let mut bucket_engine;
                let eng: &mut dyn RowEngine = match engine {
                    ParallelEngine::Sort => {
                        sort_engine =
                            SortSweep::new(params.kernel, params.bandwidth, params.weight);
                        &mut sort_engine
                    }
                    ParallelEngine::Bucket => {
                        bucket_engine =
                            BucketSweep::new(params.kernel, params.bandwidth, params.weight);
                        &mut bucket_engine
                    }
                };
                for (local_j, out_row) in band.chunks_mut(res_x).enumerate() {
                    let j = start_row + local_j;
                    let k = ctx.ks[j];
                    let intervals = envelope.fill(&ctx.points, params.bandwidth, k);
                    eng.process_row(&ctx.xs, k, intervals, out_row);
                }
            });
            start_row += band_rows;
        }
    });
    Ok(DensityGrid::from_values(res_x, res_y, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;
    use crate::grid::GridSpec;
    use crate::kernel::KernelType;

    fn setup() -> (KdvParams, Vec<Point>) {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 100.0, 70.0), 40, 23).unwrap();
        let params = KdvParams::new(grid, KernelType::Epanechnikov, 9.0).with_weight(0.002);
        let mut state = 99u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts = (0..800)
            .map(|_| Point::new(next() * 100.0, next() * 70.0))
            .collect();
        (params, pts)
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let (params, pts) = setup();
        let seq = crate::sweep_bucket::compute(&params, &pts).unwrap();
        for threads in [2, 3, 8, 64] {
            let par =
                compute_parallel(&params, &pts, ParallelEngine::Bucket, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
        let seq = crate::sweep_sort::compute(&params, &pts).unwrap();
        let par = compute_parallel(&params, &pts, ParallelEngine::Sort, 4).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn one_thread_falls_back() {
        let (params, pts) = setup();
        let a = compute_parallel(&params, &pts, ParallelEngine::Bucket, 1).unwrap();
        let b = crate::sweep_bucket::compute(&params, &pts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_threads_than_rows() {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 6, 2).unwrap();
        let params = KdvParams::new(grid, KernelType::Uniform, 3.0);
        let pts = vec![Point::new(5.0, 5.0)];
        let par = compute_parallel(&params, &pts, ParallelEngine::Bucket, 16).unwrap();
        let seq = crate::sweep_bucket::compute(&params, &pts).unwrap();
        assert_eq!(par, seq);
    }
}
