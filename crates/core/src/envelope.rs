//! Envelope point sets and sweep intervals (paper Sections 3.2–3.3).
//!
//! For a pixel row at y-coordinate `k`, only points with `|k − p.y| ≤ b`
//! (Definition 1) can contribute to any pixel of the row. Each such point
//! induces an x-interval `[LB_k(p), UB_k(p)]` (Eqs. 8–9) outside of which it
//! contributes nothing; a pixel `q` on the row has `p ∈ R(q)` iff
//! `LB_k(p) ≤ q.x ≤ UB_k(p)` (Lemma 2).

use crate::geom::Point;

/// A data point restricted to one pixel row: the point itself plus its
/// lower/upper bound x-coordinates on that row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepInterval {
    /// The (recentred) data point, used to update the sweep aggregates.
    pub point: Point,
    /// `LB_k(p) = p.x − sqrt(b² − (k − p.y)²)`.
    pub lb: f64,
    /// `UB_k(p) = p.x + sqrt(b² − (k − p.y)²)`.
    pub ub: f64,
}

/// Reusable buffer for envelope extraction; one allocation reused across
/// all `Y` rows (the paper's O(n) extra space).
#[derive(Debug, Default)]
pub struct EnvelopeBuffer {
    intervals: Vec<SweepInterval>,
}

impl EnvelopeBuffer {
    /// Upper bound on pre-allocated capacity (1 Mi intervals ≈ 32 MiB):
    /// beyond this, [`EnvelopeBuffer::for_points`] lets the buffer grow on
    /// demand instead of reserving the worst case up front.
    pub const MAX_PREALLOC: usize = 1 << 20;

    /// An empty buffer; capacity grows on first use and is then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the buffer for `n` points.
    pub fn with_capacity(n: usize) -> Self {
        Self { intervals: Vec::with_capacity(n) }
    }

    /// The buffer every sweep driver should use for a dataset of `n`
    /// points: pre-sized for `n`, capped at [`EnvelopeBuffer::MAX_PREALLOC`]
    /// so huge datasets don't commit worst-case memory before the first row
    /// shows how large envelopes really get.
    pub fn for_points(n: usize) -> Self {
        Self::with_capacity(n.min(Self::MAX_PREALLOC))
    }

    /// Extracts the envelope point set `E(k)` for the row at y-coordinate
    /// `k` and fills the per-point sweep intervals; O(n) time (Lemma 1).
    ///
    /// Returns the freshly filled intervals, unsorted (SLAM_BUCKET consumes
    /// them directly; SLAM_SORT sorts endpoint arrays afterwards).
    pub fn fill(&mut self, points: &[Point], bandwidth: f64, k: f64) -> &[SweepInterval] {
        self.intervals.clear();
        let b2 = bandwidth * bandwidth;
        for p in points {
            let dy = k - p.y;
            let rem = b2 - dy * dy;
            if rem >= 0.0 {
                // |k − p.y| ≤ b  ⟹  p ∈ E(k)
                let half = rem.sqrt();
                self.intervals.push(SweepInterval { point: *p, lb: p.x - half, ub: p.x + half });
            }
        }
        &self.intervals
    }

    /// The intervals from the most recent [`EnvelopeBuffer::fill`].
    pub fn intervals(&self) -> &[SweepInterval] {
        &self.intervals
    }

    /// Number of points in the current envelope set `|E(k)|`.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the current envelope set is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Heap bytes currently held (space-consumption accounting).
    pub fn space_bytes(&self) -> usize {
        self.intervals.capacity() * std::mem::size_of::<SweepInterval>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_filters_by_row_distance() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 2.0),
            Point::new(2.0, 5.0), // too far from row
            Point::new(3.0, -2.0),
        ];
        let mut buf = EnvelopeBuffer::new();
        let e = buf.fill(&pts, 2.0, 0.0);
        // rows at k=0 with b=2: |p.y| ≤ 2 keeps y∈{0,2,-2}
        assert_eq!(e.len(), 3);
        assert_eq!(e[0].point, pts[0]);
        assert_eq!(e[1].point, pts[1]);
        assert_eq!(e[2].point, pts[3]);
    }

    #[test]
    fn interval_width_shrinks_with_row_distance() {
        let pts = vec![Point::new(10.0, 0.0)];
        let mut buf = EnvelopeBuffer::new();
        // on the row: full width 2b
        let e = buf.fill(&pts, 3.0, 0.0);
        assert!((e[0].lb - 7.0).abs() < 1e-12);
        assert!((e[0].ub - 13.0).abs() < 1e-12);
        // at |dy| = b: width collapses to a single x
        let e = buf.fill(&pts, 3.0, 3.0);
        assert_eq!(e.len(), 1);
        assert!((e[0].lb - 10.0).abs() < 1e-12);
        assert!((e[0].ub - 10.0).abs() < 1e-12);
        // beyond: excluded
        let e = buf.fill(&pts, 3.0, 3.0001);
        assert!(e.is_empty());
    }

    #[test]
    fn interval_membership_matches_distance_predicate() {
        // p ∈ R(q) ⟺ LB ≤ q.x ≤ UB (Lemma 2), sampled on a grid of q.x.
        let p = Point::new(2.5, 1.5);
        let b = 2.0;
        let k = 0.25;
        let mut buf = EnvelopeBuffer::new();
        let e = buf.fill(std::slice::from_ref(&p), b, k);
        assert_eq!(e.len(), 1);
        let iv = e[0];
        for step in -40..=40 {
            let qx = 2.5 + step as f64 * 0.1;
            let q = Point::new(qx, k);
            let in_range = q.dist(&p) <= b;
            let in_interval = iv.lb <= qx && qx <= iv.ub;
            assert_eq!(in_range, in_interval, "q.x = {qx}");
        }
    }

    #[test]
    fn for_points_caps_preallocation() {
        let small = EnvelopeBuffer::for_points(100);
        assert_eq!(small.space_bytes(), 100 * std::mem::size_of::<SweepInterval>());
        let huge = EnvelopeBuffer::for_points(usize::MAX / 64);
        assert_eq!(
            huge.space_bytes(),
            EnvelopeBuffer::MAX_PREALLOC * std::mem::size_of::<SweepInterval>()
        );
    }

    #[test]
    fn buffer_is_reused_across_rows() {
        let pts: Vec<Point> = (0..100).map(|i| Point::new(i as f64, 0.0)).collect();
        let mut buf = EnvelopeBuffer::with_capacity(pts.len());
        buf.fill(&pts, 1.0, 0.0);
        let cap_before = buf.space_bytes();
        buf.fill(&pts, 1.0, 0.5);
        assert_eq!(buf.space_bytes(), cap_before, "no reallocation between rows");
        assert_eq!(buf.len(), 100);
    }
}
