//! Envelope point sets and sweep intervals (paper Sections 3.2–3.3).
//!
//! For a pixel row at y-coordinate `k`, only points with `|k − p.y| ≤ b`
//! (Definition 1) can contribute to any pixel of the row. Each such point
//! induces an x-interval `[LB_k(p), UB_k(p)]` (Eqs. 8–9) outside of which it
//! contributes nothing; a pixel `q` on the row has `p ∈ R(q)` iff
//! `LB_k(p) ≤ q.x ≤ UB_k(p)` (Lemma 2).
//!
//! # Banded extraction
//!
//! The paper extracts `E(k)` with an O(n) scan per row, making envelope
//! extraction O(Yn) for the whole raster — the dominant cost at small
//! bandwidths where `|E(k)| ≪ n`. [`BandIndex`] removes it: the points are
//! sorted by y **once** per computation (O(n log n)), after which `E(k)` is
//! a *contiguous slice* of the sorted order, located by two binary searches
//! (O(log n)) and filled in O(|E(k)|). The index stores the coordinates as
//! structure-of-arrays (`xs`/`ys`) so the `lb/ub = x ∓ sqrt(b² − dy²)`
//! bound computation runs over dense `f64` slices and auto-vectorizes.
//! Lookups are random-access per row, so they compose with the
//! work-stealing scheduler's out-of-order row claims.
//!
//! The membership predicate is *bit-identical* to the full scan's
//! (`fl(b²) − fl(dy²) ≥ 0`): since `fl(dy²)` is monotone in `|dy|` (float
//! rounding preserves ≤), the in-band set really is one contiguous run of
//! the y-sorted order, including every boundary row with `|k − p.y| = b`.
//! [`EnvelopeBuffer::fill_band`] then performs exactly the same arithmetic
//! per point as [`EnvelopeBuffer::fill`], so banded extraction over the
//! sorted order returns bitwise-identical intervals to a full scan over the
//! same order.

use std::ops::Range;

use crate::geom::Point;

/// A data point restricted to one pixel row: the point itself plus its
/// lower/upper bound x-coordinates on that row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepInterval {
    /// The (recentred) data point, used to update the sweep aggregates.
    pub point: Point,
    /// `LB_k(p) = p.x − sqrt(b² − (k − p.y)²)`.
    pub lb: f64,
    /// `UB_k(p) = p.x + sqrt(b² − (k − p.y)²)`.
    pub ub: f64,
}

/// Y-sorted structure-of-arrays point index for banded envelope extraction.
///
/// Built once per computation (see `SweepContext`); per row it locates the
/// envelope band `{p : |k − p.y| ≤ b}` as a contiguous range of the sorted
/// order with two `partition_point` binary searches. See the module docs
/// for the exactness argument.
#[derive(Debug, Clone, Default)]
pub struct BandIndex {
    /// Point x-coordinates, in ascending-y order.
    xs: Vec<f64>,
    /// Point y-coordinates, ascending.
    ys: Vec<f64>,
    /// Sorted position → index of the point in the builder's input slice
    /// (aligns per-point payloads such as weights with the sorted order).
    perm: Vec<u32>,
}

impl BandIndex {
    /// Sorts `points` by y (stable, so duplicate-y points keep their input
    /// order and every run is deterministic) and stores the coordinates as
    /// structure-of-arrays. O(n log n) time, [`BandIndex::bytes_for`]`(n)`
    /// heap bytes.
    pub fn build(points: &[Point]) -> Self {
        assert!(points.len() <= u32::MAX as usize, "BandIndex holds at most 2^32 points");
        let mut perm: Vec<u32> = (0..points.len() as u32).collect();
        perm.sort_by(|&a, &b| points[a as usize].y.total_cmp(&points[b as usize].y));
        let xs = perm.iter().map(|&i| points[i as usize].x).collect();
        let ys = perm.iter().map(|&i| points[i as usize].y).collect();
        Self { xs, ys, perm }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// The `i`-th point of the y-sorted order.
    #[inline]
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// Index of the `i`-th sorted point in the original input slice.
    #[inline]
    pub fn original_index(&self, i: usize) -> usize {
        self.perm[i] as usize
    }

    /// The contiguous sorted-order range holding the envelope set `E(k)`
    /// for bandwidth `bandwidth`: O(log n).
    #[inline]
    pub fn band(&self, bandwidth: f64, k: f64) -> Range<usize> {
        self.band_in(0..self.ys.len(), bandwidth, k)
    }

    /// [`BandIndex::band`] restricted to a known superset range — a
    /// smaller bandwidth's band is always inside a larger one's, so
    /// multi-bandwidth passes let the widest band bound the search.
    pub fn band_in(&self, within: Range<usize>, bandwidth: f64, k: f64) -> Range<usize> {
        let b2 = bandwidth * bandwidth;
        let ys = &self.ys[within.clone()];
        // Both predicates evaluate membership with exactly the full scan's
        // arithmetic (`b2 - dy*dy >= 0.0`) and are monotone over ascending
        // y: out-of-band-below → in-band → out-of-band-above.
        let lo = ys.partition_point(|&y| {
            let dy = k - y;
            y < k && b2 - dy * dy < 0.0
        });
        let hi = ys.partition_point(|&y| {
            let dy = k - y;
            y < k || b2 - dy * dy >= 0.0
        });
        (within.start + lo)..(within.start + hi)
    }

    /// Copies the per-point payloads (e.g. weights, indexed like the
    /// builder's input slice) of one band into `out`, aligned with the
    /// intervals that [`EnvelopeBuffer::fill_band`] produces for it.
    pub fn gather(&self, band: Range<usize>, payload: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.perm[band].iter().map(|&i| payload[i as usize]));
    }

    /// Heap bytes an index over `n` points occupies: two `f64` coordinate
    /// arrays plus the `u32` permutation.
    pub const fn bytes_for(n: usize) -> usize {
        n * (2 * std::mem::size_of::<f64>() + std::mem::size_of::<u32>())
    }

    /// Heap bytes currently held (space-consumption accounting).
    pub fn space_bytes(&self) -> usize {
        (self.xs.capacity() + self.ys.capacity()) * std::mem::size_of::<f64>()
            + self.perm.capacity() * std::mem::size_of::<u32>()
    }
}

/// Reusable buffer for envelope extraction; one allocation reused across
/// all `Y` rows (the paper's O(n) extra space).
#[derive(Debug, Default)]
pub struct EnvelopeBuffer {
    intervals: Vec<SweepInterval>,
}

impl EnvelopeBuffer {
    /// Upper bound on pre-allocated capacity (1 Mi intervals ≈ 32 MiB):
    /// beyond this, [`EnvelopeBuffer::for_points`] lets the buffer grow on
    /// demand instead of reserving the worst case up front.
    pub const MAX_PREALLOC: usize = 1 << 20;

    /// An empty buffer; capacity grows on first use and is then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the buffer for `n` points.
    pub fn with_capacity(n: usize) -> Self {
        Self { intervals: Vec::with_capacity(n) }
    }

    /// The buffer every sweep driver should use for a dataset of `n`
    /// points: pre-sized for `n`, capped at [`EnvelopeBuffer::MAX_PREALLOC`]
    /// so huge datasets don't commit worst-case memory before the first row
    /// shows how large envelopes really get.
    pub fn for_points(n: usize) -> Self {
        Self::with_capacity(n.min(Self::MAX_PREALLOC))
    }

    /// Extracts the envelope point set `E(k)` for the row at y-coordinate
    /// `k` and fills the per-point sweep intervals; O(n) time (Lemma 1).
    ///
    /// Returns the freshly filled intervals, unsorted (SLAM_BUCKET consumes
    /// them directly; SLAM_SORT sorts endpoint arrays afterwards).
    pub fn fill(&mut self, points: &[Point], bandwidth: f64, k: f64) -> &[SweepInterval] {
        self.intervals.clear();
        let b2 = bandwidth * bandwidth;
        for p in points {
            let dy = k - p.y;
            let rem = b2 - dy * dy;
            if rem >= 0.0 {
                // |k − p.y| ≤ b  ⟹  p ∈ E(k)
                let half = rem.sqrt();
                self.intervals.push(SweepInterval { point: *p, lb: p.x - half, ub: p.x + half });
            }
        }
        &self.intervals
    }

    /// Banded counterpart of [`EnvelopeBuffer::fill`]: locates the row's
    /// band in `index` (O(log n)) and fills intervals from just that slice
    /// (O(|E(k)|)). The intervals are bitwise identical — same values, same
    /// order — to a full scan over the index's y-sorted point order.
    pub fn fill_banded(&mut self, index: &BandIndex, bandwidth: f64, k: f64) -> &[SweepInterval] {
        let band = index.band(bandwidth, k);
        self.fill_band(index, band, bandwidth, k)
    }

    /// Fills intervals for an already-located `band` (normally every point
    /// of the range satisfies `|k − p.y| ≤ b`, which [`BandIndex::band`]
    /// guarantees; a caller-built band may graze the support boundary, in
    /// which case the underflowed `b² − dy²` is clamped to `+0.0` before
    /// the square root — identically on the scalar and SIMD paths).
    ///
    /// The bound computation runs through [`crate::simd::fill_intervals`]:
    /// 4 points per iteration with a scalar tail when the `f64x4` path is
    /// selected, a plain scalar loop otherwise, bitwise identical either
    /// way. Instrumented with the `envelope.fill_simd` span and the
    /// `simd.lanes` counter.
    pub fn fill_band(
        &mut self,
        index: &BandIndex,
        band: Range<usize>,
        bandwidth: f64,
        k: f64,
    ) -> &[SweepInterval] {
        self.intervals.clear();
        let b2 = bandwidth * bandwidth;
        let xs = &index.xs[band.clone()];
        let ys = &index.ys[band];
        self.intervals.reserve(xs.len());
        let mut span = kdv_obs::span1("envelope.fill_simd", "points", xs.len() as u64);
        let lanes = crate::simd::fill_intervals(&mut self.intervals, xs, ys, b2, k);
        span.arg("lanes", lanes as u64);
        if kdv_obs::enabled() {
            kdv_obs::metrics::global().counter("simd.lanes").add(lanes as u64);
        }
        &self.intervals
    }

    /// The intervals from the most recent [`EnvelopeBuffer::fill`].
    pub fn intervals(&self) -> &[SweepInterval] {
        &self.intervals
    }

    /// Number of points in the current envelope set `|E(k)|`.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the current envelope set is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Heap bytes currently held (space-consumption accounting).
    pub fn space_bytes(&self) -> usize {
        self.intervals.capacity() * std::mem::size_of::<SweepInterval>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_filters_by_row_distance() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 2.0),
            Point::new(2.0, 5.0), // too far from row
            Point::new(3.0, -2.0),
        ];
        let mut buf = EnvelopeBuffer::new();
        let e = buf.fill(&pts, 2.0, 0.0);
        // rows at k=0 with b=2: |p.y| ≤ 2 keeps y∈{0,2,-2}
        assert_eq!(e.len(), 3);
        assert_eq!(e[0].point, pts[0]);
        assert_eq!(e[1].point, pts[1]);
        assert_eq!(e[2].point, pts[3]);
    }

    #[test]
    fn interval_width_shrinks_with_row_distance() {
        let pts = vec![Point::new(10.0, 0.0)];
        let mut buf = EnvelopeBuffer::new();
        // on the row: full width 2b
        let e = buf.fill(&pts, 3.0, 0.0);
        assert!((e[0].lb - 7.0).abs() < 1e-12);
        assert!((e[0].ub - 13.0).abs() < 1e-12);
        // at |dy| = b: width collapses to a single x
        let e = buf.fill(&pts, 3.0, 3.0);
        assert_eq!(e.len(), 1);
        assert!((e[0].lb - 10.0).abs() < 1e-12);
        assert!((e[0].ub - 10.0).abs() < 1e-12);
        // beyond: excluded
        let e = buf.fill(&pts, 3.0, 3.0001);
        assert!(e.is_empty());
    }

    #[test]
    fn interval_membership_matches_distance_predicate() {
        // p ∈ R(q) ⟺ LB ≤ q.x ≤ UB (Lemma 2), sampled on a grid of q.x.
        let p = Point::new(2.5, 1.5);
        let b = 2.0;
        let k = 0.25;
        let mut buf = EnvelopeBuffer::new();
        let e = buf.fill(std::slice::from_ref(&p), b, k);
        assert_eq!(e.len(), 1);
        let iv = e[0];
        for step in -40..=40 {
            let qx = 2.5 + step as f64 * 0.1;
            let q = Point::new(qx, k);
            let in_range = q.dist(&p) <= b;
            let in_interval = iv.lb <= qx && qx <= iv.ub;
            assert_eq!(in_range, in_interval, "q.x = {qx}");
        }
    }

    #[test]
    fn for_points_caps_preallocation() {
        let small = EnvelopeBuffer::for_points(100);
        assert_eq!(small.space_bytes(), 100 * std::mem::size_of::<SweepInterval>());
        let huge = EnvelopeBuffer::for_points(usize::MAX / 64);
        assert_eq!(
            huge.space_bytes(),
            EnvelopeBuffer::MAX_PREALLOC * std::mem::size_of::<SweepInterval>()
        );
    }

    #[test]
    fn band_index_matches_full_scan_bitwise() {
        // includes duplicate y values and points exactly b away from rows
        let pts = vec![
            Point::new(4.0, 2.0),
            Point::new(1.0, -3.0),
            Point::new(9.0, 2.0),
            Point::new(5.0, 0.5),
            Point::new(-2.0, 7.0),
            Point::new(3.0, 2.0),
        ];
        let index = BandIndex::build(&pts);
        let sorted: Vec<Point> = (0..index.len()).map(|i| index.point(i)).collect();
        let mut scan = EnvelopeBuffer::new();
        let mut banded = EnvelopeBuffer::new();
        for b in [0.25, 2.0, 3.5, 100.0] {
            for k in [-3.0 - b, -1.0, 0.5, 2.0 - b, 2.0 + b, 6.0, 50.0] {
                let reference = scan.fill(&sorted, b, k).to_vec();
                let got = banded.fill_banded(&index, b, k);
                assert_eq!(got, &reference[..], "b={b} k={k}");
            }
        }
    }

    #[test]
    fn band_index_keeps_duplicate_y_in_input_order() {
        let pts = vec![Point::new(2.0, 1.0), Point::new(0.0, 1.0), Point::new(1.0, 1.0)];
        let index = BandIndex::build(&pts);
        // stable sort: equal y values stay in input order
        assert_eq!(index.point(0), pts[0]);
        assert_eq!(index.point(1), pts[1]);
        assert_eq!(index.point(2), pts[2]);
        assert_eq!(index.original_index(1), 1);
        let band = index.band(3.0, 0.0);
        assert_eq!(band, 0..3);
        let mut out = Vec::new();
        index.gather(band, &[10.0, 20.0, 30.0], &mut out);
        assert_eq!(out, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn band_in_bounds_search_by_superset() {
        let pts: Vec<Point> = (0..100).map(|i| Point::new(0.0, i as f64)).collect();
        let index = BandIndex::build(&pts);
        let wide = index.band(30.0, 50.0);
        for b in [0.5, 3.0, 11.25, 30.0] {
            assert_eq!(index.band_in(wide.clone(), b, 50.0), index.band(b, 50.0), "b={b}");
        }
    }

    #[test]
    fn empty_band_and_empty_index() {
        let index = BandIndex::build(&[]);
        assert!(index.is_empty());
        assert_eq!(index.band(5.0, 0.0), 0..0);
        let pts = vec![Point::new(0.0, 10.0)];
        let index = BandIndex::build(&pts);
        assert!(index.band(2.0, 0.0).is_empty());
        assert!(index.band(2.0, 20.0).is_empty());
        assert_eq!(index.band(2.0, 9.0), 0..1);
        assert!(index.space_bytes() >= BandIndex::bytes_for(1));
    }

    #[test]
    fn buffer_is_reused_across_rows() {
        let pts: Vec<Point> = (0..100).map(|i| Point::new(i as f64, 0.0)).collect();
        let mut buf = EnvelopeBuffer::with_capacity(pts.len());
        buf.fill(&pts, 1.0, 0.0);
        let cap_before = buf.space_bytes();
        buf.fill(&pts, 1.0, 0.5);
        assert_eq!(buf.space_bytes(), cap_before, "no reallocation between rows");
        assert_eq!(buf.len(), 100);
    }
}
