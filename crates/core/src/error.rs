//! Error type shared by the KDV engines.

use std::fmt;

/// Errors produced while configuring or running a KDV computation.
#[derive(Debug, Clone, PartialEq)]
pub enum KdvError {
    /// The raster must have at least one pixel in each dimension.
    EmptyResolution { x: usize, y: usize },
    /// The bandwidth must be finite and strictly positive.
    InvalidBandwidth(f64),
    /// The query region is degenerate (zero or negative extent).
    DegenerateRegion { width: f64, height: f64 },
    /// A data point has a non-finite coordinate.
    NonFinitePoint { index: usize },
    /// The requested weight is non-finite.
    InvalidWeight(f64),
    /// The lixel length of an NKDV computation must be finite and
    /// strictly positive.
    InvalidLixelLength(f64),
    /// A tile decomposition needs a tile side of at least one pixel.
    InvalidTileSize { tile_size: usize },
    /// A cooperative deadline expired before the computation finished
    /// (used by the experiment harness to emulate the paper's 4-hour cap).
    DeadlineExceeded,
    /// An internal coordination failure (e.g. a worker that was computing
    /// a shared result panicked, leaving its waiters nothing to reuse).
    Internal(&'static str),
}

impl fmt::Display for KdvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KdvError::EmptyResolution { x, y } => {
                write!(f, "resolution {x}x{y} must be at least 1x1")
            }
            KdvError::InvalidBandwidth(b) => {
                write!(f, "bandwidth {b} must be finite and > 0")
            }
            KdvError::DegenerateRegion { width, height } => {
                write!(f, "query region {width}x{height} must have positive extent")
            }
            KdvError::NonFinitePoint { index } => {
                write!(f, "data point #{index} has a non-finite coordinate")
            }
            KdvError::InvalidWeight(w) => write!(f, "weight {w} must be finite"),
            KdvError::InvalidLixelLength(l) => {
                write!(f, "lixel length {l} must be finite and > 0")
            }
            KdvError::InvalidTileSize { tile_size } => {
                write!(f, "tile size {tile_size} must be at least 1 pixel")
            }
            KdvError::DeadlineExceeded => write!(f, "computation exceeded its deadline"),
            KdvError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for KdvError {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, KdvError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(KdvError::EmptyResolution { x: 0, y: 5 }.to_string().contains("0x5"));
        assert!(KdvError::InvalidBandwidth(-1.0).to_string().contains("-1"));
        assert!(KdvError::NonFinitePoint { index: 7 }.to_string().contains("#7"));
    }
}
