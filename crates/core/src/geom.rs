//! Planar geometry primitives shared by every KDV method.
//!
//! The paper works in a projected coordinate system (metres), so all
//! geometry here is plain Euclidean `f64` geometry. Points are `Copy`
//! 16-byte values; algorithms store them in flat `Vec<Point>` buffers for
//! cache-friendly scans.

use std::fmt;

/// A location data point `p = (p.x, p.y)` in projected (metric) coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// x-coordinate (e.g. easting in metres).
    pub x: f64,
    /// y-coordinate (e.g. northing in metres).
    pub y: f64,
}

impl Point {
    /// Creates a point from its two coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Kernels compare against `b²`, so the square root is never needed on
    /// the hot path.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared L2 norm `‖p‖²`, used by the aggregate decomposition (Eq. 5).
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Component-wise translation by `(-dx, -dy)`; used to recentre data
    /// around the query region for numerical conditioning.
    #[inline]
    pub fn shifted(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x - dx, self.y - dy)
    }

    /// Swaps the two coordinates. The resolution-aware optimization (RAO)
    /// runs the row engines on transposed inputs.
    #[inline]
    pub fn transposed(&self) -> Point {
        Point::new(self.y, self.x)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// An axis-aligned rectangle, used for query regions, dataset MBRs and
/// spatial-index node bounds.
///
/// A `Rect` is closed on all sides: it contains points with
/// `min_x ≤ x ≤ max_x` and `min_y ≤ y ≤ max_y`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates.
    ///
    /// # Panics
    /// Panics (debug builds) if the rectangle is inverted.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "inverted rect");
        Self { min_x, min_y, max_x, max_y }
    }

    /// The empty rectangle: an identity for [`Rect::expand`].
    pub const EMPTY: Rect = Rect {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    /// Minimum bounding rectangle of a point set, or [`Rect::EMPTY`] when
    /// `points` is empty.
    pub fn mbr(points: &[Point]) -> Rect {
        let mut r = Rect::EMPTY;
        for p in points {
            r.expand(p);
        }
        r
    }

    /// Grows the rectangle to contain `p`.
    #[inline]
    pub fn expand(&mut self, p: &Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Width along the x-axis.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height along the y-axis.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// The centre point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(0.5 * (self.min_x + self.max_x), 0.5 * (self.min_y + self.max_y))
    }

    /// Whether the (closed) rectangle contains `p`.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Whether two (closed) rectangles intersect.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Squared distance from `p` to the nearest point of the rectangle
    /// (zero when `p` is inside). Used for index pruning: a node can be
    /// skipped when `min_dist_sq(q) > b²`.
    #[inline]
    pub fn min_dist_sq(&self, p: &Point) -> f64 {
        let dx = if p.x < self.min_x {
            self.min_x - p.x
        } else if p.x > self.max_x {
            p.x - self.max_x
        } else {
            0.0
        };
        let dy = if p.y < self.min_y {
            self.min_y - p.y
        } else if p.y > self.max_y {
            p.y - self.max_y
        } else {
            0.0
        };
        dx * dx + dy * dy
    }

    /// Squared distance from `p` to the farthest point of the rectangle.
    /// A node lies entirely within range when `max_dist_sq(q) ≤ b²`, in
    /// which case its pre-computed aggregates can be added in O(1)
    /// (the QUAD/aKDE trick).
    #[inline]
    pub fn max_dist_sq(&self, p: &Point) -> f64 {
        let dx = (p.x - self.min_x).abs().max((p.x - self.max_x).abs());
        let dy = (p.y - self.min_y).abs().max((p.y - self.max_y).abs());
        dx * dx + dy * dy
    }

    /// Rectangle with x/y swapped (for RAO transposition).
    #[inline]
    pub fn transposed(&self) -> Rect {
        Rect::new(self.min_y, self.min_x, self.max_y, self.max_x)
    }

    /// A rectangle scaled about its centre by `(sx, sy)` (zoom operation).
    pub fn scaled_about_center(&self, sx: f64, sy: f64) -> Rect {
        let c = self.center();
        let hw = 0.5 * self.width() * sx;
        let hh = 0.5 * self.height() * sy;
        Rect::new(c.x - hw, c.y - hh, c.x + hw, c.y + hh)
    }

    /// A rectangle translated by `(dx, dy)` (pan operation).
    pub fn translated(&self, dx: f64, dy: f64) -> Rect {
        Rect::new(self.min_x + dx, self.min_y + dy, self.max_x + dx, self.max_y + dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_and_norm() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.norm_sq(), 5.0);
    }

    #[test]
    fn point_transposed_is_involution() {
        let p = Point::new(3.5, -2.0);
        assert_eq!(p.transposed().transposed(), p);
    }

    #[test]
    fn mbr_covers_all_points() {
        let pts = [Point::new(0.0, 5.0), Point::new(-3.0, 2.0), Point::new(7.0, -1.0)];
        let r = Rect::mbr(&pts);
        assert_eq!(r, Rect::new(-3.0, -1.0, 7.0, 5.0));
        for p in &pts {
            assert!(r.contains(p));
        }
    }

    #[test]
    fn mbr_of_empty_is_empty() {
        let r = Rect::mbr(&[]);
        assert!(r.min_x > r.max_x);
    }

    #[test]
    fn min_dist_sq_inside_is_zero() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(r.min_dist_sq(&Point::new(5.0, 5.0)), 0.0);
        assert_eq!(r.min_dist_sq(&Point::new(13.0, 14.0)), 9.0 + 16.0);
    }

    #[test]
    fn max_dist_sq_is_farthest_corner() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        // farthest corner from (0,0)-adjacent exterior point (-1, 0) is (2, 2)
        assert_eq!(r.max_dist_sq(&Point::new(-1.0, 0.0)), 9.0 + 4.0);
    }

    #[test]
    fn rect_intersects() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert!(a.intersects(&Rect::new(1.0, 1.0, 3.0, 3.0)));
        assert!(a.intersects(&Rect::new(2.0, 2.0, 3.0, 3.0))); // touching
        assert!(!a.intersects(&Rect::new(2.1, 0.0, 3.0, 1.0)));
    }

    #[test]
    fn zoom_and_pan() {
        let r = Rect::new(0.0, 0.0, 10.0, 20.0);
        let z = r.scaled_about_center(0.5, 0.5);
        assert_eq!(z, Rect::new(2.5, 5.0, 7.5, 15.0));
        let t = r.translated(1.0, -1.0);
        assert_eq!(t, Rect::new(1.0, -1.0, 11.0, 19.0));
    }

    #[test]
    fn rect_transposed_swaps_axes() {
        let r = Rect::new(1.0, 2.0, 3.0, 5.0);
        let t = r.transposed();
        assert_eq!(t, Rect::new(2.0, 1.0, 5.0, 3.0));
        assert_eq!(t.transposed(), r);
    }
}
