//! # kdv-core — SLAM sweep-line algorithms for exact KDV
//!
//! A from-scratch Rust implementation of the algorithms in *SLAM: Efficient
//! Sweep Line Algorithms for Kernel Density Visualization* (Chan, U, Choi,
//! Xu — SIGMOD 2022). Kernel Density Visualization colours every pixel of
//! an `X × Y` raster with the kernel density `F_P(q) = Σ_p w·K(q, p)` of
//! `n` location points; the naive evaluation is `O(XYn)`. The SLAM family
//! computes the **exact** same raster in
//! `O(Y(X + n log n))` ([`sweep_sort`], Theorem 1),
//! `O(Y(X + n))` ([`sweep_bucket`], Theorem 2), and — with the
//! resolution-aware optimization ([`rao`], Theorem 3) —
//! `O(min(X,Y)·(max(X,Y) + n))`.
//!
//! ## Quick start
//!
//! ```
//! use kdv_core::{GridSpec, KdvEngine, KdvParams, KernelType, Method, Point, Rect};
//!
//! // a tiny dataset with a hotspot around (30, 30)
//! let points: Vec<Point> = (0..100)
//!     .map(|i| Point::new(30.0 + (i % 10) as f64, 30.0 + (i / 10) as f64))
//!     .collect();
//!
//! let grid = GridSpec::new(Rect::new(0.0, 0.0, 100.0, 100.0), 64, 48)?;
//! let params = KdvParams::new(grid, KernelType::Epanechnikov, 15.0)
//!     .with_weight(1.0 / points.len() as f64);
//!
//! let density = KdvEngine::new(Method::SlamBucketRao).compute(&params, &points)?;
//! assert_eq!(density.res_x(), 64);
//! let hottest = density.max_value();
//! assert!(hottest > 0.0);
//! # Ok::<(), kdv_core::KdvError>(())
//! ```
//!
//! ## Module tour
//!
//! * [`geom`] — points and rectangles.
//! * [`grid`] — raster mapping ([`GridSpec`]) and output ([`DensityGrid`]).
//! * [`kernel`] — uniform / Epanechnikov / quartic kernels and their
//!   aggregate decompositions (Table 2 / Table 4).
//! * [`aggregate`] — range aggregates with compensated maintenance (Eq. 5).
//! * [`envelope`] — per-row envelope point sets and sweep intervals
//!   (Definition 1, Lemma 2), extracted via a y-sorted banded index
//!   (`O(log n + |E(k)|)` per row instead of a full `O(n)` scan).
//! * [`sweep_sort`] / [`sweep_bucket`] — the two SLAM engines
//!   (Algorithms 1 and 2).
//! * [`rao`] — resolution-aware optimization (Section 3.6).
//!
//! Extensions beyond the paper (each documented as such):
//!
//! * [`parallel`] — work-stealing row-parallel runtime (plain, RAO,
//!   weighted and multi-bandwidth sweeps) with [`telemetry`] reports.
//! * [`weighted`] — per-point weights (temporal kernels, event counts).
//! * [`multi_bandwidth`] — bandwidth-exploration sweeps sharing row scans.
//! * [`grid_io`] — lossless raster persistence (binary and TSV).
//! * [`simd`] — runtime-dispatched `f64x4` layer for the density emit and
//!   envelope fill hot loops, bitwise identical to the scalar paths.
//! * [`tile`] — tile-decomposed computation whose stitched output is
//!   bitwise identical to the monolithic sweep (the compute layer under
//!   the `kdv-serve` tile cache).

pub mod aggregate;
pub mod digest;
pub mod driver;
pub mod envelope;
pub mod error;
pub mod geom;
pub mod grid;
pub mod grid_io;
pub mod kernel;
pub mod multi_bandwidth;
pub mod parallel;
pub mod rao;
pub mod simd;
pub mod stats;
pub mod sweep_bucket;
pub mod sweep_sort;
pub mod telemetry;
pub mod tile;
pub mod weighted;

pub use driver::KdvParams;
pub use error::{KdvError, Result};
pub use geom::{Point, Rect};
pub use grid::{DensityGrid, GridSpec};
pub use kernel::KernelType;

/// The SLAM method variants exposed by [`KdvEngine`] (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// SLAM_SORT — `O(Y(X + n log n))`.
    SlamSort,
    /// SLAM_BUCKET — `O(Y(X + n))`.
    SlamBucket,
    /// SLAM_SORT^(RAO) — `O(min(X,Y)(max(X,Y) + n log n))`.
    SlamSortRao,
    /// SLAM_BUCKET^(RAO) — `O(min(X,Y)(max(X,Y) + n))`; the paper's best.
    SlamBucketRao,
}

impl Method {
    /// All SLAM variants, in Table-1 order.
    pub const ALL: [Method; 4] =
        [Method::SlamSort, Method::SlamBucket, Method::SlamSortRao, Method::SlamBucketRao];

    /// Paper-style name, e.g. `"SLAM_BUCKET^(RAO)"`.
    pub fn name(&self) -> &'static str {
        match self {
            Method::SlamSort => "SLAM_SORT",
            Method::SlamBucket => "SLAM_BUCKET",
            Method::SlamSortRao => "SLAM_SORT^(RAO)",
            Method::SlamBucketRao => "SLAM_BUCKET^(RAO)",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Unified front-door for the SLAM family.
///
/// Thin dispatcher over [`sweep_sort::compute`], [`sweep_bucket::compute`]
/// and the [`rao`] wrappers; see the crate docs for an example.
#[derive(Debug, Clone, Copy)]
pub struct KdvEngine {
    method: Method,
}

impl KdvEngine {
    /// An engine running the chosen SLAM variant.
    pub const fn new(method: Method) -> Self {
        Self { method }
    }

    /// The variant this engine dispatches to.
    pub const fn method(&self) -> Method {
        self.method
    }

    /// Computes the exact density raster for `points` under `params`.
    pub fn compute(&self, params: &KdvParams, points: &[Point]) -> Result<DensityGrid> {
        match self.method {
            Method::SlamSort => sweep_sort::compute(params, points),
            Method::SlamBucket => sweep_bucket::compute(params, points),
            Method::SlamSortRao => rao::compute_sort(params, points),
            Method::SlamBucketRao => rao::compute_bucket(params, points),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_agree() {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 50.0, 80.0), 13, 21).unwrap();
        let params = KdvParams::new(grid, KernelType::Epanechnikov, 11.0).with_weight(0.01);
        let pts: Vec<Point> = (0..150)
            .map(|i| {
                let t = i as f64;
                Point::new((t * 7.13) % 50.0, (t * 3.77) % 80.0)
            })
            .collect();
        let reference = KdvEngine::new(Method::SlamSort).compute(&params, &pts).unwrap();
        for m in Method::ALL {
            let got = KdvEngine::new(m).compute(&params, &pts).unwrap();
            // RAO reassociates float ops across the transpose, so agreement
            // is to rounding error, not bitwise.
            let err = stats::max_rel_error(got.values(), reference.values());
            assert!(err < 1e-9, "{m}: err {err}");
        }
    }

    #[test]
    fn method_names_match_paper() {
        assert_eq!(Method::SlamBucketRao.name(), "SLAM_BUCKET^(RAO)");
        assert_eq!(Method::SlamSort.to_string(), "SLAM_SORT");
    }
}
