//! Multi-bandwidth KDV — bandwidth-exploration support (extension).
//!
//! Bandwidth selection is one of the exploratory operations the paper
//! motivates (Figure 2): analysts render the same region at several
//! bandwidths to pick the right smoothing level. Running SLAM once per
//! bandwidth repeats the per-computation point sort `B` times; this module
//! shares one [`SweepContext`] (one sort, one banded index) across all
//! bandwidths. Per row, the *widest* bandwidth's band is located once and
//! bounds the binary search of every smaller bandwidth
//! ([`crate::envelope::BandIndex::band_in`]), each band filling intervals
//! in `O(|E_b(k)|)`. A single bucket engine is rebound per bandwidth, so
//! scratch memory stays `O(X + max|E|)` instead of `B` copies. Total:
//! `O(n log n + Y·(log n + B·(X + |E_max|)))` versus
//! `O(B·(n log n + Y·(log n + X + |E_max|)))` for independent runs.

use crate::driver::{KdvParams, RowEngine, SweepContext};
use crate::envelope::EnvelopeBuffer;
use crate::error::{KdvError, Result};
use crate::geom::Point;
use crate::grid::DensityGrid;
use crate::sweep_bucket::BucketSweep;

/// Computes one density raster per bandwidth, sharing the per-row
/// envelope extraction across bandwidths.
///
/// `params.bandwidth` is ignored; `bandwidths` drives the computation
/// (each must be finite and positive). Results are returned in the same
/// order as `bandwidths`.
pub fn compute_multi_bandwidth(
    params: &KdvParams,
    points: &[Point],
    bandwidths: &[f64],
) -> Result<Vec<DensityGrid>> {
    for &b in bandwidths {
        if !b.is_finite() || b <= 0.0 {
            return Err(KdvError::InvalidBandwidth(b));
        }
    }
    if bandwidths.is_empty() {
        return Ok(Vec::new());
    }
    let b_max = bandwidths.iter().copied().fold(f64::MIN, f64::max);

    // validate with a representative bandwidth
    let mut check = *params;
    check.bandwidth = b_max;
    let ctx = SweepContext::new(&check, points)?;

    let res_x = params.grid.res_x;
    let res_y = params.grid.res_y;
    let mut grids: Vec<DensityGrid> =
        bandwidths.iter().map(|_| DensityGrid::zeroed(res_x, res_y)).collect();

    let mut envelope = EnvelopeBuffer::for_points(points.len());
    // one engine rebound per bandwidth — scratch buffers shared by all
    let mut engine = BucketSweep::new(params.kernel, b_max, params.weight);

    for j in 0..res_y {
        let k = ctx.ks[j];
        // the widest band bounds every smaller bandwidth's binary search
        let band_max = ctx.index.band(b_max, k);
        if band_max.is_empty() {
            continue;
        }
        for (bi, &b) in bandwidths.iter().enumerate() {
            let band = ctx.index.band_in(band_max.clone(), b, k);
            if band.is_empty() {
                continue;
            }
            let intervals = envelope.fill_band(&ctx.index, band, b, k);
            engine.set_bandwidth(b);
            engine.process_row(&ctx.xs, k, intervals, grids[bi].row_mut(j));
        }
    }
    Ok(grids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;
    use crate::grid::GridSpec;
    use crate::kernel::KernelType;
    use crate::sweep_bucket;

    fn setup() -> (KdvParams, Vec<Point>) {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 80.0, 50.0), 25, 15).unwrap();
        let params = KdvParams::new(grid, KernelType::Epanechnikov, 1.0).with_weight(0.01);
        let mut state = 9u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts = (0..400).map(|_| Point::new(next() * 80.0, next() * 50.0)).collect();
        (params, pts)
    }

    #[test]
    fn matches_independent_runs_for_each_bandwidth() {
        let (params, pts) = setup();
        let bandwidths = [2.0, 7.5, 15.0, 40.0];
        let multi = compute_multi_bandwidth(&params, &pts, &bandwidths).unwrap();
        assert_eq!(multi.len(), 4);
        for (grid, &b) in multi.iter().zip(&bandwidths) {
            let mut single_params = params;
            single_params.bandwidth = b;
            let single = sweep_bucket::compute(&single_params, &pts).unwrap();
            assert_eq!(grid, &single, "bandwidth {b} must be identical to a solo run");
        }
    }

    #[test]
    fn quartic_kernel_supported() {
        let (mut params, pts) = setup();
        params.kernel = KernelType::Quartic;
        let multi = compute_multi_bandwidth(&params, &pts, &[5.0, 20.0]).unwrap();
        let mut p5 = params;
        p5.bandwidth = 5.0;
        assert_eq!(multi[0], sweep_bucket::compute(&p5, &pts).unwrap());
    }

    #[test]
    fn order_is_preserved_even_unsorted() {
        let (params, pts) = setup();
        let multi = compute_multi_bandwidth(&params, &pts, &[30.0, 3.0, 12.0]).unwrap();
        // larger bandwidth smooths: peak density (weighted count in range)
        // ordering follows bandwidth for these kernels on clustered data
        assert_eq!(multi.len(), 3);
        let mut p = params;
        p.bandwidth = 3.0;
        assert_eq!(multi[1], sweep_bucket::compute(&p, &pts).unwrap());
    }

    #[test]
    fn empty_and_invalid_inputs() {
        let (params, pts) = setup();
        assert!(compute_multi_bandwidth(&params, &pts, &[]).unwrap().is_empty());
        assert!(matches!(
            compute_multi_bandwidth(&params, &pts, &[1.0, -2.0]),
            Err(KdvError::InvalidBandwidth(_))
        ));
    }
}
