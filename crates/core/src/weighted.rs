//! Weighted KDV — per-point weights (an extension beyond the paper).
//!
//! The paper's Eq. 1 uses a single normalisation constant `w`. Real feeds
//! often carry per-event weights (casualty counts, call priorities,
//! temporal-kernel factors for spatial-temporal KDV), i.e.
//!
//! ```text
//! F_P(q) = Σ_i w_i · K(q, p_i)
//! ```
//!
//! Because every aggregate term of Table 4 is a *sum over points*, the
//! decomposition survives weighting verbatim: replace `|R(q)|` with
//! `Σ w_i`, `A = Σ p` with `Σ w_i·p`, and so on. The sweep machinery is
//! unchanged — only the accumulator scales each insertion by the point's
//! weight. This module provides a weighted bucket sweep with the same
//! `O(Y(X + n))` complexity (plus RAO), validated against direct
//! summation.

use crate::driver::{KdvParams, SweepContext};
use crate::envelope::EnvelopeBuffer;
use crate::error::{KdvError, Result};
use crate::geom::Point;
use crate::grid::DensityGrid;
use crate::kernel::KernelType;
use crate::stats::Kahan;

/// Weighted counterpart of `RangeAggregates`: every term carries the
/// point's weight; `wsum` plays the role of the count.
#[derive(Debug, Clone, Copy, Default)]
struct WeightedAggregates {
    wsum: f64,
    ax: f64,
    ay: f64,
    s: f64,
    cx: f64,
    cy: f64,
    q4: f64,
    mxx: f64,
    mxy: f64,
    myy: f64,
}

/// Kahan-compensated weighted accumulator for one sweep side.
#[derive(Debug, Clone, Default)]
struct WeightedAccumulator {
    wsum: Kahan,
    ax: Kahan,
    ay: Kahan,
    s: Kahan,
    cx: Kahan,
    cy: Kahan,
    q4: Kahan,
    mxx: Kahan,
    mxy: Kahan,
    myy: Kahan,
    maintain_quartic: bool,
}

impl WeightedAccumulator {
    fn new(maintain_quartic: bool) -> Self {
        Self { maintain_quartic, ..Self::default() }
    }

    #[inline]
    fn insert(&mut self, p: &Point, w: f64) {
        self.wsum.add(w);
        self.ax.add(w * p.x);
        self.ay.add(w * p.y);
        let n2 = p.norm_sq();
        self.s.add(w * n2);
        if self.maintain_quartic {
            self.cx.add(w * n2 * p.x);
            self.cy.add(w * n2 * p.y);
            self.q4.add(w * n2 * n2);
            self.mxx.add(w * p.x * p.x);
            self.mxy.add(w * p.x * p.y);
            self.myy.add(w * p.y * p.y);
        }
    }

    fn reset(&mut self) {
        let mq = self.maintain_quartic;
        *self = Self::new(mq);
    }

    fn diff(&self, other: &Self) -> WeightedAggregates {
        WeightedAggregates {
            wsum: self.wsum.value() - other.wsum.value(),
            ax: self.ax.value() - other.ax.value(),
            ay: self.ay.value() - other.ay.value(),
            s: self.s.value() - other.s.value(),
            cx: self.cx.value() - other.cx.value(),
            cy: self.cy.value() - other.cy.value(),
            q4: self.q4.value() - other.q4.value(),
            mxx: self.mxx.value() - other.mxx.value(),
            mxy: self.mxy.value() - other.mxy.value(),
            myy: self.myy.value() - other.myy.value(),
        }
    }
}

/// Weighted density from aggregates — the weighted analogue of
/// `KernelType::density_from_aggregates`.
#[inline]
fn density_from_weighted(
    kernel: KernelType,
    q: &Point,
    agg: &WeightedAggregates,
    bandwidth: f64,
    global_weight: f64,
) -> f64 {
    let b2 = bandwidth * bandwidth;
    match kernel {
        KernelType::Uniform => global_weight / bandwidth * agg.wsum,
        KernelType::Epanechnikov => {
            let qn = q.norm_sq();
            let qta = q.x * agg.ax + q.y * agg.ay;
            global_weight * (agg.wsum - (agg.wsum * qn - 2.0 * qta + agg.s) / b2)
        }
        KernelType::Quartic => {
            let qn = q.norm_sq();
            let qta = q.x * agg.ax + q.y * agg.ay;
            let qtc = q.x * agg.cx + q.y * agg.cy;
            let qmq = q.x * q.x * agg.mxx + 2.0 * q.x * q.y * agg.mxy + q.y * q.y * agg.myy;
            let sum_u = agg.wsum * qn - 2.0 * qta + agg.s;
            let sum_u2 = agg.wsum * qn * qn + 4.0 * qmq + agg.q4 - 4.0 * qn * qta
                + 2.0 * qn * agg.s
                - 4.0 * qtc;
            global_weight * (agg.wsum - 2.0 / b2 * sum_u + sum_u2 / (b2 * b2))
        }
    }
}

const NIL: u32 = u32::MAX;

/// Computes the weighted KDV raster with a bucket sweep plus RAO:
/// `F(q) = params.weight · Σ_i weights[i]·K(q, p_i)`,
/// in `O(min(X,Y)·(max(X,Y) + n))` time.
///
/// # Errors
/// In addition to the usual parameter validation, every weight must be
/// finite ([`KdvError::InvalidWeight`]) and `weights.len()` must equal
/// `points.len()` (checked, returns [`KdvError::NonFinitePoint`] pointing
/// at the first missing index for a length mismatch).
pub fn compute_weighted(
    params: &KdvParams,
    points: &[Point],
    weights: &[f64],
) -> Result<DensityGrid> {
    if weights.len() != points.len() {
        return Err(KdvError::NonFinitePoint { index: weights.len().min(points.len()) });
    }
    if let Some(i) = weights.iter().position(|w| !w.is_finite()) {
        let _ = i;
        return Err(KdvError::InvalidWeight(weights[i]));
    }
    // RAO: transpose when the raster is taller than wide.
    if params.grid.res_y > params.grid.res_x {
        let t_params = params.transposed();
        let t_points: Vec<Point> = points.iter().map(Point::transposed).collect();
        let t = compute_weighted_rows(&t_params, &t_points, weights)?;
        return Ok(t.transposed());
    }
    compute_weighted_rows(params, points, weights)
}

/// Row-sweep core of [`compute_weighted`] (no RAO dispatch).
fn compute_weighted_rows(
    params: &KdvParams,
    points: &[Point],
    weights: &[f64],
) -> Result<DensityGrid> {
    let ctx = SweepContext::new(params, points)?;
    let res_x = params.grid.res_x;
    let res_y = params.grid.res_y;
    let kernel = params.kernel;
    let quartic = kernel.needs_quartic_terms();
    let bandwidth = params.bandwidth;

    let mut grid = DensityGrid::zeroed(res_x, res_y);
    let mut envelope = EnvelopeBuffer::with_capacity(points.len().min(1 << 20));
    // weights must follow the envelope selection, so track source indices
    let mut env_weights: Vec<f64> = Vec::new();

    let mut head_l: Vec<u32> = Vec::new();
    let mut head_u: Vec<u32> = Vec::new();
    let mut next_l: Vec<u32> = Vec::new();
    let mut next_u: Vec<u32> = Vec::new();
    let mut l_acc = WeightedAccumulator::new(quartic);
    let mut u_acc = WeightedAccumulator::new(quartic);

    let xs = &ctx.xs;
    let x0 = xs[0];
    let inv_gap = if res_x > 1 {
        (res_x - 1) as f64 / (xs[res_x - 1] - x0)
    } else {
        0.0
    };

    for j in 0..res_y {
        let k = ctx.ks[j];
        // envelope selection must mirror EnvelopeBuffer::fill so the
        // weight list stays aligned with the interval list
        envelope.fill(&ctx.points, bandwidth, k);
        env_weights.clear();
        let b2 = bandwidth * bandwidth;
        for (p, &w) in ctx.points.iter().zip(weights) {
            let dy = k - p.y;
            if b2 - dy * dy >= 0.0 {
                env_weights.push(w);
            }
        }
        let intervals = envelope.intervals();
        debug_assert_eq!(intervals.len(), env_weights.len());

        head_l.clear();
        head_l.resize(res_x + 1, NIL);
        head_u.clear();
        head_u.resize(res_x + 1, NIL);
        next_l.clear();
        next_l.resize(intervals.len(), NIL);
        next_u.clear();
        next_u.resize(intervals.len(), NIL);

        for (idx, iv) in intervals.iter().enumerate() {
            let bl = crate::sweep_bucket::BucketSweep::lower_bucket_index(xs, x0, inv_gap, iv.lb);
            next_l[idx] = head_l[bl];
            head_l[bl] = idx as u32;
            let bu = crate::sweep_bucket::BucketSweep::upper_bucket_index(xs, x0, inv_gap, iv.ub);
            next_u[idx] = head_u[bu];
            head_u[bu] = idx as u32;
        }

        l_acc.reset();
        u_acc.reset();
        let row = grid.row_mut(j);
        for (i, &x) in xs.iter().enumerate() {
            let mut cur = head_l[i];
            while cur != NIL {
                let idx = cur as usize;
                l_acc.insert(&intervals[idx].point, env_weights[idx]);
                cur = next_l[idx];
            }
            let mut cur = head_u[i];
            while cur != NIL {
                let idx = cur as usize;
                u_acc.insert(&intervals[idx].point, env_weights[idx]);
                cur = next_u[idx];
            }
            let agg = l_acc.diff(&u_acc);
            let q = Point::new(x, k);
            row[i] = density_from_weighted(kernel, &q, &agg, bandwidth, params.weight);
        }
    }
    Ok(grid)
}

/// Reference weighted evaluation by direct summation (for tests and as a
/// baseline in weighted workloads).
pub fn weighted_scan(params: &KdvParams, points: &[Point], weights: &[f64]) -> DensityGrid {
    let g = &params.grid;
    let mut out = DensityGrid::zeroed(g.res_x, g.res_y);
    for j in 0..g.res_y {
        for i in 0..g.res_x {
            let q = g.pixel_center(i, j);
            let mut acc = Kahan::new();
            for (p, &w) in points.iter().zip(weights) {
                acc.add(w * params.kernel.eval(&q, p, params.bandwidth));
            }
            out.set(i, j, params.weight * acc.value());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;
    use crate::grid::GridSpec;

    fn setup() -> (KdvParams, Vec<Point>, Vec<f64>) {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 60.0, 40.0), 21, 13).unwrap();
        let params = KdvParams::new(grid, KernelType::Epanechnikov, 9.0).with_weight(0.5);
        let mut state = 55u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let points: Vec<Point> = (0..300)
            .map(|_| Point::new(next() * 60.0, next() * 40.0))
            .collect();
        let weights: Vec<f64> = (0..300).map(|_| next() * 5.0).collect();
        (params, points, weights)
    }

    #[test]
    fn weighted_sweep_matches_direct_for_all_kernels() {
        let (mut params, points, weights) = setup();
        for kernel in KernelType::ALL {
            params.kernel = kernel;
            let fast = compute_weighted(&params, &points, &weights).unwrap();
            let slow = weighted_scan(&params, &points, &weights);
            let scale = slow.max_value().max(1e-300);
            for (a, b) in fast.values().iter().zip(slow.values()) {
                assert!((a - b).abs() / scale < 1e-12, "{kernel}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn unit_weights_reduce_to_unweighted() {
        let (params, points, _) = setup();
        let ones = vec![1.0; points.len()];
        let weighted = compute_weighted(&params, &points, &ones).unwrap();
        let plain = crate::rao::compute_bucket(&params, &points).unwrap();
        let scale = plain.max_value().max(1e-300);
        for (a, b) in weighted.values().iter().zip(plain.values()) {
            assert!((a - b).abs() / scale < 1e-12);
        }
    }

    #[test]
    fn rao_transpose_path_weighted() {
        // tall raster exercises the transpose branch
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 40.0, 60.0), 9, 27).unwrap();
        let params = KdvParams::new(grid, KernelType::Quartic, 11.0);
        let (_, points, weights) = setup();
        let fast = compute_weighted(&params, &points, &weights).unwrap();
        let slow = weighted_scan(&params, &points, &weights);
        let scale = slow.max_value().max(1e-300);
        for (a, b) in fast.values().iter().zip(slow.values()) {
            assert!((a - b).abs() / scale < 1e-11);
        }
        assert_eq!(fast.res_x(), 9);
        assert_eq!(fast.res_y(), 27);
    }

    #[test]
    fn zero_and_negative_weights() {
        // negative weights are legal (e.g. differencing two periods)
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 8, 8).unwrap();
        let params = KdvParams::new(grid, KernelType::Epanechnikov, 4.0);
        let pts = [Point::new(3.0, 5.0), Point::new(7.0, 5.0)];
        let w = [1.0, -1.0];
        let out = compute_weighted(&params, &pts, &w).unwrap();
        let direct = weighted_scan(&params, &pts, &w);
        for (a, b) in out.values().iter().zip(direct.values()) {
            assert!((a - b).abs() < 1e-12);
        }
        // antisymmetric configuration: the two halves mirror-negate
        assert!(out.values().iter().any(|&v| v > 0.0));
        assert!(out.values().iter().any(|&v| v < 0.0));
    }

    #[test]
    fn rejects_bad_weights() {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 4, 4).unwrap();
        let params = KdvParams::new(grid, KernelType::Uniform, 2.0);
        let pts = [Point::new(1.0, 1.0)];
        assert!(matches!(
            compute_weighted(&params, &pts, &[f64::NAN]),
            Err(KdvError::InvalidWeight(_))
        ));
        assert!(compute_weighted(&params, &pts, &[]).is_err());
    }
}
