//! Weighted KDV — per-point weights (an extension beyond the paper).
//!
//! The paper's Eq. 1 uses a single normalisation constant `w`. Real feeds
//! often carry per-event weights (casualty counts, call priorities,
//! temporal-kernel factors for spatial-temporal KDV), i.e.
//!
//! ```text
//! F_P(q) = Σ_i w_i · K(q, p_i)
//! ```
//!
//! Because every aggregate term of Table 4 is a *sum over points*, the
//! decomposition survives weighting verbatim: replace `|R(q)|` with
//! `Σ w_i`, `A = Σ p` with `Σ w_i·p`, and so on. The sweep machinery is
//! unchanged — only the accumulator scales each insertion by the point's
//! weight. This module provides a weighted bucket sweep with the same
//! `O(Y(X + n))` complexity (plus RAO), validated against direct
//! summation.

use crate::driver::{KdvParams, SweepContext};
use crate::envelope::EnvelopeBuffer;
use crate::error::{KdvError, Result};
use crate::geom::Point;
use crate::grid::DensityGrid;
use crate::kernel::KernelType;
use crate::stats::Kahan;

/// Weighted counterpart of `RangeAggregates`: every term carries the
/// point's weight; `wsum` plays the role of the count.
#[derive(Debug, Clone, Copy, Default)]
struct WeightedAggregates {
    wsum: f64,
    ax: f64,
    ay: f64,
    s: f64,
    cx: f64,
    cy: f64,
    q4: f64,
    mxx: f64,
    mxy: f64,
    myy: f64,
}

/// Kahan-compensated weighted accumulator for one sweep side.
///
/// `count` tracks the number of insertions exactly (weights may be
/// negative or zero, so `wsum` cannot detect emptiness) — the sweep uses it
/// for the rolling-frame reset, mirroring `SweepAccumulator`.
#[derive(Debug, Clone, Default)]
struct WeightedAccumulator {
    count: u64,
    wsum: Kahan,
    ax: Kahan,
    ay: Kahan,
    s: Kahan,
    cx: Kahan,
    cy: Kahan,
    q4: Kahan,
    mxx: Kahan,
    mxy: Kahan,
    myy: Kahan,
    maintain_quartic: bool,
}

impl WeightedAccumulator {
    fn new(maintain_quartic: bool) -> Self {
        Self { maintain_quartic, ..Self::default() }
    }

    #[inline]
    fn insert(&mut self, p: &Point, w: f64) {
        self.count += 1;
        self.wsum.add(w);
        self.ax.add(w * p.x);
        self.ay.add(w * p.y);
        let n2 = p.norm_sq();
        self.s.add(w * n2);
        if self.maintain_quartic {
            self.cx.add(w * n2 * p.x);
            self.cy.add(w * n2 * p.y);
            self.q4.add(w * n2 * n2);
            self.mxx.add(w * p.x * p.x);
            self.mxy.add(w * p.x * p.y);
            self.myy.add(w * p.y * p.y);
        }
    }

    fn reset(&mut self) {
        let mq = self.maintain_quartic;
        *self = Self::new(mq);
    }

    /// Weighted analogue of `SweepAccumulator::shift_x`: translates the
    /// frame along x by `delta` (`wsum` plays the role of the count).
    fn shift_x(&mut self, delta: f64) {
        if self.count == 0 {
            return;
        }
        let n = self.wsum.value();
        let d = delta;
        let ax = self.ax.value();
        self.ax.add(-n * d);
        if self.maintain_quartic {
            let ay = self.ay.value();
            let s = self.s.value();
            let cx = self.cx.value();
            let mxx = self.mxx.value();
            let mxy = self.mxy.value();
            let d2 = d * d;
            self.s.add(-2.0 * d * ax + n * d2);
            self.q4.add(
                -4.0 * d * cx + 2.0 * d2 * s + 4.0 * d2 * mxx - 4.0 * d * d2 * ax + n * d2 * d2,
            );
            self.cx.add(-d * (s + 2.0 * mxx) + 3.0 * d2 * ax - n * d * d2);
            self.cy.add(-2.0 * d * mxy + d2 * ay);
            self.mxx.add(-2.0 * d * ax + n * d2);
            self.mxy.add(-d * ay);
        } else {
            self.s.add(-2.0 * d * ax + n * d * d);
        }
    }

    fn diff(&self, other: &Self) -> WeightedAggregates {
        WeightedAggregates {
            wsum: self.wsum.value() - other.wsum.value(),
            ax: self.ax.value() - other.ax.value(),
            ay: self.ay.value() - other.ay.value(),
            s: self.s.value() - other.s.value(),
            cx: self.cx.value() - other.cx.value(),
            cy: self.cy.value() - other.cy.value(),
            q4: self.q4.value() - other.q4.value(),
            mxx: self.mxx.value() - other.mxx.value(),
            mxy: self.mxy.value() - other.mxy.value(),
            myy: self.myy.value() - other.myy.value(),
        }
    }
}

impl WeightedAggregates {
    /// Snapshot in the shared emit form: `wsum` plays the role of the
    /// count, the polynomial is identical term-for-term (see
    /// [`crate::simd::density_at`]).
    #[inline]
    fn emit(&self) -> crate::simd::EmitAggregates {
        crate::simd::EmitAggregates {
            n: self.wsum,
            ax: self.ax,
            ay: self.ay,
            s: self.s,
            cx: self.cx,
            cy: self.cy,
            q4: self.q4,
            mxx: self.mxx,
            mxy: self.mxy,
            myy: self.myy,
        }
    }
}

/// Weighted density from aggregates — the weighted analogue of
/// `KernelType::density_from_aggregates`. The scalar sweep path evaluates
/// through this directly; the vector path goes through
/// [`crate::simd::density_at`] with `n = wsum`, which mirrors this
/// expression tree bit-for-bit (pinned by the emit-path test below).
#[inline]
fn density_from_weighted(
    kernel: KernelType,
    q: &Point,
    agg: &WeightedAggregates,
    bandwidth: f64,
    global_weight: f64,
) -> f64 {
    let b2 = bandwidth * bandwidth;
    match kernel {
        KernelType::Uniform => global_weight / bandwidth * agg.wsum,
        KernelType::Epanechnikov => {
            let qn = q.norm_sq();
            let qta = q.x * agg.ax + q.y * agg.ay;
            global_weight * (agg.wsum - (agg.wsum * qn - 2.0 * qta + agg.s) / b2)
        }
        KernelType::Quartic => {
            let qn = q.norm_sq();
            let qta = q.x * agg.ax + q.y * agg.ay;
            let qtc = q.x * agg.cx + q.y * agg.cy;
            let qmq = q.x * q.x * agg.mxx + 2.0 * q.x * q.y * agg.mxy + q.y * q.y * agg.myy;
            let sum_u = agg.wsum * qn - 2.0 * qta + agg.s;
            let sum_u2 = agg.wsum * qn * qn + 4.0 * qmq + agg.q4 - 4.0 * qn * qta
                + 2.0 * qn * agg.s
                - 4.0 * qtc;
            global_weight * (agg.wsum - 2.0 / b2 * sum_u + sum_u2 / (b2 * b2))
        }
    }
}

const NIL: u32 = u32::MAX;

/// Reusable weighted bucket-sweep row engine.
///
/// Mirrors [`crate::sweep_bucket::BucketSweep`] — identical bucketing,
/// scatter skip (`bl == bu`), rolling recentred frame and early
/// deactivation (see the `sweep_sort` module docs) — except that every
/// insertion carries the point's weight. Factored out of
/// [`compute_weighted`] so the sequential and parallel drivers share one
/// implementation.
pub(crate) struct WeightedRowSweep {
    kernel: KernelType,
    bandwidth: f64,
    global_weight: f64,
    head_l: Vec<u32>,
    head_u: Vec<u32>,
    next_l: Vec<u32>,
    next_u: Vec<u32>,
    l_acc: WeightedAccumulator,
    u_acc: WeightedAccumulator,
    emit: crate::simd::EmitBuffer,
}

impl WeightedRowSweep {
    pub(crate) fn new(kernel: KernelType, bandwidth: f64, global_weight: f64) -> Self {
        let quartic = kernel.needs_quartic_terms();
        Self {
            kernel,
            bandwidth,
            global_weight,
            head_l: Vec::new(),
            head_u: Vec::new(),
            next_l: Vec::new(),
            next_u: Vec::new(),
            l_acc: WeightedAccumulator::new(quartic),
            u_acc: WeightedAccumulator::new(quartic),
            emit: crate::simd::EmitBuffer::default(),
        }
    }

    /// Rebinds the engine to new kernel parameters, keeping the bucket
    /// scratch buffers (the accumulators are reset at every row start, so
    /// only the quartic flag needs refreshing).
    pub(crate) fn reconfigure(&mut self, kernel: KernelType, bandwidth: f64, global_weight: f64) {
        let quartic = kernel.needs_quartic_terms();
        self.kernel = kernel;
        self.bandwidth = bandwidth;
        self.global_weight = global_weight;
        if self.l_acc.maintain_quartic != quartic {
            self.l_acc = WeightedAccumulator::new(quartic);
            self.u_acc = WeightedAccumulator::new(quartic);
        }
    }

    /// Fills one pixel row. `env_weights[i]` is the weight of
    /// `intervals[i].point` (aligned by [`fill_env_weights`]).
    pub(crate) fn process_row(
        &mut self,
        xs: &[f64],
        k: f64,
        intervals: &[crate::envelope::SweepInterval],
        env_weights: &[f64],
        out: &mut [f64],
    ) {
        debug_assert_eq!(intervals.len(), env_weights.len());
        let x_count = xs.len();
        debug_assert_eq!(out.len(), x_count);
        self.head_l.clear();
        self.head_l.resize(x_count + 1, NIL);
        self.head_u.clear();
        self.head_u.resize(x_count + 1, NIL);
        self.next_l.clear();
        self.next_l.resize(intervals.len(), NIL);
        self.next_u.clear();
        self.next_u.resize(intervals.len(), NIL);

        let x0 = xs[0];
        let inv_gap = if x_count > 1 { (x_count - 1) as f64 / (xs[x_count - 1] - x0) } else { 0.0 };

        use crate::sweep_bucket::BucketSweep;
        for (idx, iv) in intervals.iter().enumerate() {
            let bl = BucketSweep::lower_bucket_index(xs, x0, inv_gap, iv.lb);
            let bu = BucketSweep::upper_bucket_index(xs, x0, inv_gap, iv.ub);
            if bl == bu {
                continue;
            }
            self.next_l[idx] = self.head_l[bl];
            self.head_l[bl] = idx as u32;
            self.next_u[idx] = self.head_u[bu];
            self.head_u[bu] = idx as u32;
        }

        // Two variants, dispatched once per row on [`crate::simd::mode`] —
        // see `BucketSweep::process_row`. Scalar: the fused per-pixel loop
        // through `density_from_weighted`. Vector: event-free pixel
        // stretches share one aggregate snapshot and frame, recorded as
        // runs and evaluated by `EmitBuffer::flush` (4 pixels per
        // iteration), bitwise identical to the per-pixel loop.
        self.l_acc.reset();
        self.u_acc.reset();
        let shift_limit = 4.0 * self.bandwidth;
        let mut frame_x = xs[0];
        let mode = crate::simd::mode();
        let mut span = kdv_obs::span1("emit.simd", "mode", mode as u64);
        let lanes = match mode {
            crate::simd::SimdMode::Scalar => {
                for (i, &x) in xs.iter().enumerate() {
                    if self.l_acc.count == self.u_acc.count {
                        self.l_acc.reset();
                        self.u_acc.reset();
                        frame_x = x;
                    } else if x - frame_x > shift_limit {
                        let delta = x - frame_x;
                        self.l_acc.shift_x(delta);
                        self.u_acc.shift_x(delta);
                        frame_x = x;
                    }
                    let mut cur = self.head_l[i];
                    while cur != NIL {
                        let idx = cur as usize;
                        let p = &intervals[idx].point;
                        self.l_acc.insert(&Point::new(p.x - frame_x, p.y - k), env_weights[idx]);
                        cur = self.next_l[idx];
                    }
                    let agg = self.l_acc.diff(&self.u_acc);
                    let q = Point::new(x - frame_x, 0.0);
                    out[i] = density_from_weighted(
                        self.kernel,
                        &q,
                        &agg,
                        self.bandwidth,
                        self.global_weight,
                    );
                    let mut cur = self.head_u[i + 1];
                    while cur != NIL {
                        let idx = cur as usize;
                        let p = &intervals[idx].point;
                        self.u_acc.insert(&Point::new(p.x - frame_x, p.y - k), env_weights[idx]);
                        cur = self.next_u[idx];
                    }
                }
                0
            }
            crate::simd::SimdMode::Vector => {
                self.emit.clear();
                let mut i = 0usize;
                while i < x_count {
                    let x = xs[i];
                    if self.l_acc.count == self.u_acc.count {
                        self.l_acc.reset();
                        self.u_acc.reset();
                        frame_x = x;
                    } else if x - frame_x > shift_limit {
                        let delta = x - frame_x;
                        self.l_acc.shift_x(delta);
                        self.u_acc.shift_x(delta);
                        frame_x = x;
                    }
                    let mut cur = self.head_l[i];
                    while cur != NIL {
                        let idx = cur as usize;
                        let p = &intervals[idx].point;
                        self.l_acc.insert(&Point::new(p.x - frame_x, p.y - k), env_weights[idx]);
                        cur = self.next_l[idx];
                    }
                    // `count` (insertions, not `wsum`) detects emptiness
                    // exactly as the per-pixel loop does; empty ⟹ the reset
                    // above ran and the lower-bound drain inserted nothing,
                    // so every run pixel evaluates at `q = (+0.0, 0.0)`
                    // with zeroed aggregates.
                    let empty = self.l_acc.count == self.u_acc.count;
                    let mut e = i + 1;
                    if empty {
                        while e < x_count && self.head_l[e] == NIL && self.head_u[e] == NIL {
                            e += 1;
                        }
                    } else {
                        while e < x_count
                            && self.head_l[e] == NIL
                            && self.head_u[e] == NIL
                            && xs[e] - frame_x <= shift_limit
                        {
                            e += 1;
                        }
                    }
                    if empty {
                        self.emit.push_fill(
                            i,
                            e,
                            crate::simd::density_at(
                                self.kernel,
                                &crate::simd::EmitAggregates::default(),
                                0.0,
                                self.bandwidth,
                                self.global_weight,
                            ),
                        );
                        frame_x = xs[e - 1];
                    } else {
                        let agg = self.l_acc.diff(&self.u_acc);
                        self.emit.push_run(i, e, frame_x, agg.emit());
                    }
                    let mut cur = self.head_u[e];
                    while cur != NIL {
                        let idx = cur as usize;
                        let p = &intervals[idx].point;
                        self.u_acc.insert(&Point::new(p.x - frame_x, p.y - k), env_weights[idx]);
                        cur = self.next_u[idx];
                    }
                    i = e;
                }
                self.emit.flush(self.kernel, self.bandwidth, self.global_weight, xs, out)
            }
        };
        span.arg("lanes", lanes as u64);
    }

    /// Auxiliary heap bytes held by the engine.
    pub(crate) fn space_bytes(&self) -> usize {
        (self.head_l.capacity()
            + self.head_u.capacity()
            + self.next_l.capacity()
            + self.next_u.capacity())
            * std::mem::size_of::<u32>()
            + self.emit.space_bytes()
    }
}

/// Validates the weight vector against the point set: lengths must match
/// and every weight must be finite. Shared by the sequential and parallel
/// weighted drivers.
pub(crate) fn validate_weights(points: &[Point], weights: &[f64]) -> Result<()> {
    if weights.len() != points.len() {
        return Err(KdvError::NonFinitePoint { index: weights.len().min(points.len()) });
    }
    if let Some(i) = weights.iter().position(|w| !w.is_finite()) {
        return Err(KdvError::InvalidWeight(weights[i]));
    }
    Ok(())
}

/// Reusable buffers for repeated weighted sweeps.
///
/// STKDV animations render hundreds of frames with the same raster and
/// kernel; allocating a fresh envelope buffer, weight scratch and engine
/// per frame wastes both time and allocator churn. One workspace per
/// worker, passed to [`compute_weighted_with`], keeps every buffer warm
/// across frames.
#[derive(Default)]
pub struct WeightedWorkspace {
    pub(crate) envelope: EnvelopeBuffer,
    pub(crate) env_weights: Vec<f64>,
    pub(crate) engine: Option<WeightedRowSweep>,
    /// Scratch for the RAO transpose path.
    pub(crate) t_points: Vec<Point>,
}

impl WeightedWorkspace {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Auxiliary heap bytes currently held.
    pub fn space_bytes(&self) -> usize {
        self.envelope.space_bytes()
            + self.env_weights.capacity() * std::mem::size_of::<f64>()
            + self.engine.as_ref().map_or(0, |e| e.space_bytes())
            + self.t_points.capacity() * std::mem::size_of::<Point>()
    }

    /// The row engine configured for `params`, reusing prior scratch.
    pub(crate) fn engine_for(&mut self, params: &KdvParams) -> &mut WeightedRowSweep {
        let engine = self.engine.get_or_insert_with(|| {
            WeightedRowSweep::new(params.kernel, params.bandwidth, params.weight)
        });
        engine.reconfigure(params.kernel, params.bandwidth, params.weight);
        engine
    }
}

/// Computes the weighted KDV raster with a bucket sweep plus RAO:
/// `F(q) = params.weight · Σ_i weights[i]·K(q, p_i)`,
/// in `O(min(X,Y)·(max(X,Y) + n))` time.
///
/// # Errors
/// In addition to the usual parameter validation, every weight must be
/// finite ([`KdvError::InvalidWeight`]) and `weights.len()` must equal
/// `points.len()` (checked, returns [`KdvError::NonFinitePoint`] pointing
/// at the first missing index for a length mismatch).
pub fn compute_weighted(
    params: &KdvParams,
    points: &[Point],
    weights: &[f64],
) -> Result<DensityGrid> {
    compute_weighted_with(params, points, weights, &mut WeightedWorkspace::new())
}

/// [`compute_weighted`] reusing a caller-owned [`WeightedWorkspace`] —
/// the allocation-free path for frame loops (STKDV) and repeated queries.
pub fn compute_weighted_with(
    params: &KdvParams,
    points: &[Point],
    weights: &[f64],
    workspace: &mut WeightedWorkspace,
) -> Result<DensityGrid> {
    validate_weights(points, weights)?;
    // RAO: transpose when the raster is taller than wide.
    if params.grid.res_y > params.grid.res_x {
        let t_params = params.transposed();
        let mut t_points = std::mem::take(&mut workspace.t_points);
        t_points.clear();
        t_points.extend(points.iter().map(Point::transposed));
        let result = compute_weighted_rows(&t_params, &t_points, weights, workspace);
        workspace.t_points = t_points;
        return Ok(result?.transposed());
    }
    compute_weighted_rows(params, points, weights, workspace)
}

/// Row-sweep core of [`compute_weighted`] (no RAO dispatch): banded
/// envelope extraction per row, empty rows skipped outright.
fn compute_weighted_rows(
    params: &KdvParams,
    points: &[Point],
    weights: &[f64],
    workspace: &mut WeightedWorkspace,
) -> Result<DensityGrid> {
    let ctx = SweepContext::new(params, points)?;
    let res_x = params.grid.res_x;
    let res_y = params.grid.res_y;
    let bandwidth = params.bandwidth;

    let mut grid = DensityGrid::zeroed(res_x, res_y);
    workspace.engine_for(params);
    let WeightedWorkspace { envelope, env_weights, engine, .. } = workspace;
    let engine = engine.as_mut().expect("engine_for configured the engine");

    for j in 0..res_y {
        let k = ctx.ks[j];
        let band = ctx.index.band(bandwidth, k);
        if band.is_empty() {
            continue;
        }
        ctx.index.gather(band.clone(), weights, env_weights);
        let intervals = envelope.fill_band(&ctx.index, band, bandwidth, k);
        engine.process_row(&ctx.xs, k, intervals, env_weights, grid.row_mut(j));
    }
    Ok(grid)
}

/// Reference weighted evaluation by direct summation (for tests and as a
/// baseline in weighted workloads).
pub fn weighted_scan(params: &KdvParams, points: &[Point], weights: &[f64]) -> DensityGrid {
    let g = &params.grid;
    let mut out = DensityGrid::zeroed(g.res_x, g.res_y);
    for j in 0..g.res_y {
        for i in 0..g.res_x {
            let q = g.pixel_center(i, j);
            let mut acc = Kahan::new();
            for (p, &w) in points.iter().zip(weights) {
                acc.add(w * params.kernel.eval(&q, p, params.bandwidth));
            }
            out.set(i, j, params.weight * acc.value());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;
    use crate::grid::GridSpec;

    fn setup() -> (KdvParams, Vec<Point>, Vec<f64>) {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 60.0, 40.0), 21, 13).unwrap();
        let params = KdvParams::new(grid, KernelType::Epanechnikov, 9.0).with_weight(0.5);
        let mut state = 55u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let points: Vec<Point> =
            (0..300).map(|_| Point::new(next() * 60.0, next() * 40.0)).collect();
        let weights: Vec<f64> = (0..300).map(|_| next() * 5.0).collect();
        (params, points, weights)
    }

    #[test]
    fn weighted_sweep_matches_direct_for_all_kernels() {
        // Tolerance covers the rolling-frame shift rounding (a few e-12
        // relative, see sweep_sort's module docs), not just summation noise.
        let (mut params, points, weights) = setup();
        for kernel in KernelType::ALL {
            params.kernel = kernel;
            let fast = compute_weighted(&params, &points, &weights).unwrap();
            let slow = weighted_scan(&params, &points, &weights);
            let scale = slow.max_value().max(1e-300);
            for (a, b) in fast.values().iter().zip(slow.values()) {
                assert!((a - b).abs() / scale < 1e-10, "{kernel}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn unit_weights_reduce_to_unweighted() {
        let (params, points, _) = setup();
        let ones = vec![1.0; points.len()];
        let weighted = compute_weighted(&params, &points, &ones).unwrap();
        let plain = crate::rao::compute_bucket(&params, &points).unwrap();
        let scale = plain.max_value().max(1e-300);
        for (a, b) in weighted.values().iter().zip(plain.values()) {
            assert!((a - b).abs() / scale < 1e-12);
        }
    }

    #[test]
    fn rao_transpose_path_weighted() {
        // tall raster exercises the transpose branch
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 40.0, 60.0), 9, 27).unwrap();
        let params = KdvParams::new(grid, KernelType::Quartic, 11.0);
        let (_, points, weights) = setup();
        let fast = compute_weighted(&params, &points, &weights).unwrap();
        let slow = weighted_scan(&params, &points, &weights);
        let scale = slow.max_value().max(1e-300);
        for (a, b) in fast.values().iter().zip(slow.values()) {
            assert!((a - b).abs() / scale < 1e-11);
        }
        assert_eq!(fast.res_x(), 9);
        assert_eq!(fast.res_y(), 27);
    }

    #[test]
    fn zero_and_negative_weights() {
        // negative weights are legal (e.g. differencing two periods)
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 8, 8).unwrap();
        let params = KdvParams::new(grid, KernelType::Epanechnikov, 4.0);
        let pts = [Point::new(3.0, 5.0), Point::new(7.0, 5.0)];
        let w = [1.0, -1.0];
        let out = compute_weighted(&params, &pts, &w).unwrap();
        let direct = weighted_scan(&params, &pts, &w);
        for (a, b) in out.values().iter().zip(direct.values()) {
            assert!((a - b).abs() < 1e-12);
        }
        // antisymmetric configuration: the two halves mirror-negate
        assert!(out.values().iter().any(|&v| v > 0.0));
        assert!(out.values().iter().any(|&v| v < 0.0));
    }

    #[test]
    fn workspace_reuse_matches_fresh_computation() {
        let (params, points, weights) = setup();
        let mut ws = WeightedWorkspace::new();
        let first = compute_weighted_with(&params, &points, &weights, &mut ws).unwrap();
        assert_eq!(first, compute_weighted(&params, &points, &weights).unwrap());
        // a different kernel/bandwidth through the same (warm) workspace
        let mut p2 = params;
        p2.kernel = KernelType::Quartic;
        p2.bandwidth = 4.0;
        let second = compute_weighted_with(&p2, &points, &weights, &mut ws).unwrap();
        assert_eq!(second, compute_weighted(&p2, &points, &weights).unwrap());
        // RAO transpose path through the workspace as well
        let tall = GridSpec::new(Rect::new(0.0, 0.0, 40.0, 60.0), 9, 27).unwrap();
        let p3 = KdvParams::new(tall, KernelType::Epanechnikov, 8.0);
        let third = compute_weighted_with(&p3, &points, &weights, &mut ws).unwrap();
        assert_eq!(third, compute_weighted(&p3, &points, &weights).unwrap());
        assert!(ws.space_bytes() > 0);
    }

    #[test]
    fn banded_weighted_matches_full_scan_extraction_bitwise() {
        // Reference: the pre-change full-scan extraction (O(n) per row)
        // over the same canonical point order, weights aligned via the
        // index permutation. The banded path must be bitwise identical.
        let (params, points, weights) = setup();
        for bandwidth in [0.8, 9.0, 70.0] {
            let mut p = params;
            p.bandwidth = bandwidth;
            let ctx = SweepContext::new(&p, &points).unwrap();
            let sorted_weights: Vec<f64> =
                (0..ctx.index.len()).map(|i| weights[ctx.index.original_index(i)]).collect();
            let mut grid = DensityGrid::zeroed(p.grid.res_x, p.grid.res_y);
            let mut envelope = EnvelopeBuffer::for_points(points.len());
            let mut env_weights = Vec::new();
            let mut engine = WeightedRowSweep::new(p.kernel, bandwidth, p.weight);
            let b2 = bandwidth * bandwidth;
            for j in 0..p.grid.res_y {
                let k = ctx.ks[j];
                let intervals = envelope.fill(&ctx.points, bandwidth, k);
                env_weights.clear();
                for (pt, &w) in ctx.points.iter().zip(&sorted_weights) {
                    let dy = k - pt.y;
                    if b2 - dy * dy >= 0.0 {
                        env_weights.push(w);
                    }
                }
                if intervals.is_empty() {
                    continue;
                }
                engine.process_row(&ctx.xs, k, intervals, &env_weights, grid.row_mut(j));
            }
            let banded =
                compute_weighted_rows(&p, &points, &weights, &mut WeightedWorkspace::new())
                    .unwrap();
            assert_eq!(banded, grid, "b={bandwidth}");
        }
    }

    /// The sweep now emits through `simd::density_at` with `n = wsum`; that
    /// expression tree must mirror the weighted reference bit-for-bit.
    #[test]
    fn emit_path_matches_density_from_weighted_bitwise() {
        let mut l = WeightedAccumulator::new(true);
        for (i, p) in [
            Point::new(0.5, -1.5),
            Point::new(-2.25, 0.75),
            Point::new(3.0, 3.0),
            Point::new(1e-4, -0.3),
        ]
        .iter()
        .enumerate()
        {
            l.insert(p, 0.25 + i as f64 * 1.5);
        }
        let agg = l.diff(&WeightedAccumulator::new(true));
        let emit = agg.emit();
        for kernel in KernelType::ALL {
            for dx in [-3.5, 0.0, 0.125, 2.75] {
                for b in [1.25, 8.0] {
                    let q = Point::new(dx, 0.0);
                    let reference = density_from_weighted(kernel, &q, &agg, b, 0.6);
                    let got = crate::simd::density_at(kernel, &emit, dx, b, 0.6);
                    assert_eq!(got.to_bits(), reference.to_bits(), "{kernel} dx={dx} b={b}");
                }
            }
        }
    }

    #[test]
    fn rejects_bad_weights() {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 4, 4).unwrap();
        let params = KdvParams::new(grid, KernelType::Uniform, 2.0);
        let pts = [Point::new(1.0, 1.0)];
        assert!(matches!(
            compute_weighted(&params, &pts, &[f64::NAN]),
            Err(KdvError::InvalidWeight(_))
        ));
        assert!(compute_weighted(&params, &pts, &[]).is_err());
    }
}
