//! Tile-decomposed sweep computation — the compute layer under the
//! `kdv-serve` tile cache (an extension beyond the paper).
//!
//! Interactive pan/zoom workloads (the paper's Section 1 motivation and
//! Figure 16) re-request overlapping viewports of the same point set. A
//! tile cache amortises that repetition, but only if a tile's bits do not
//! depend on which viewport asked for it and if stitched tiles reproduce
//! the monolithic raster *exactly* — approximation is what the SLAM family
//! exists to avoid.
//!
//! Both properties fall out of the sweep's structure. The monolithic
//! drivers ([`crate::driver::sweep_grid`]) process the raster one pixel
//! row at a time and rows never interact: each row sweep reads only its
//! own envelope set and writes only its own output row. A *tile row band*
//! (all tiles covering the same `tile_size` pixel rows) can therefore be
//! computed by running the ordinary full-width row sweeps for exactly
//! those rows and slicing the results into tiles:
//!
//! * **Bitwise-identical stitching.** Every pixel is produced by the same
//!   floating-point program as in the monolithic sweep — same
//!   [`crate::driver::SweepContext`] recentring, same banded envelope
//!   extraction, same rolling recentred accumulator frame walking the
//!   whole row (the PR 1 precision fix carries over unchanged). Cutting
//!   the row into tiles *after* the sweep moves memory, not arithmetic.
//! * **Viewport independence.** A tile's bits are a function of the grid
//!   specification, kernel, bandwidth, weight and point set alone, so a
//!   cache keyed on those is sound. (Starting the accumulator frame at a
//!   tile's left edge instead would make the bits depend on where the
//!   enclosing sweep began — exactly the history-dependence that breaks
//!   cacheability.)
//!
//! The row band is also the unit of sharing: one sweep fills *every* tile
//! in the band, so a cache miss on one tile prefetches its horizontal
//! neighbours from the same aggregates — the access pattern of a pan.
//!
//! Cost: a band costs `O(tile_size · (X + |E|))` like the equivalent rows
//! of the monolithic sweep; computing a single tile in isolation costs the
//! same band (the price of exactness), which the cache turns into
//! amortised reuse.

use std::ops::Range;

use crate::driver::{KdvParams, RowEngine, SweepContext};
use crate::envelope::EnvelopeBuffer;
use crate::error::{KdvError, Result};
use crate::geom::Point;
use crate::grid::DensityGrid;
use crate::parallel::for_each_index_with;
use crate::sweep_bucket::BucketSweep;
use crate::weighted::WeightedWorkspace;

/// Partition of an `X × Y` raster into square tiles of side `tile_size`
/// (edge tiles are clipped). Pure index arithmetic — the geometry stays in
/// [`crate::grid::GridSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tiling {
    /// Raster width in pixels.
    pub res_x: usize,
    /// Raster height in pixels.
    pub res_y: usize,
    /// Tile side length in pixels (≥ 1).
    pub tile_size: usize,
}

impl Tiling {
    /// Creates a tiling; `tile_size` must be at least 1.
    pub fn new(res_x: usize, res_y: usize, tile_size: usize) -> Result<Self> {
        if res_x == 0 || res_y == 0 {
            return Err(KdvError::EmptyResolution { x: res_x, y: res_y });
        }
        if tile_size == 0 {
            return Err(KdvError::InvalidTileSize { tile_size });
        }
        Ok(Self { res_x, res_y, tile_size })
    }

    /// Number of tile columns.
    #[inline]
    pub fn tiles_x(&self) -> usize {
        self.res_x.div_ceil(self.tile_size)
    }

    /// Number of tile rows (bands).
    #[inline]
    pub fn tiles_y(&self) -> usize {
        self.res_y.div_ceil(self.tile_size)
    }

    /// Total tile count.
    #[inline]
    pub fn tile_count(&self) -> usize {
        self.tiles_x() * self.tiles_y()
    }

    /// Pixel columns covered by tile column `tx` (clipped at the raster
    /// edge).
    #[inline]
    pub fn tile_cols(&self, tx: usize) -> Range<usize> {
        let start = tx * self.tile_size;
        start..(start + self.tile_size).min(self.res_x)
    }

    /// Pixel rows covered by tile row `ty` (clipped at the raster edge).
    #[inline]
    pub fn tile_rows(&self, ty: usize) -> Range<usize> {
        let start = ty * self.tile_size;
        start..(start + self.tile_size).min(self.res_y)
    }

    /// Position of tile `(tx, ty)` in the row-major tile order emitted by
    /// [`compute_tiles`].
    #[inline]
    pub fn index_of(&self, tx: usize, ty: usize) -> usize {
        ty * self.tiles_x() + tx
    }
}

/// One computed tile: a row-major density buffer covering pixel columns
/// `tx·tile_size..` and rows `ty·tile_size..` of the parent raster.
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    /// Tile column in the parent tiling.
    pub tx: usize,
    /// Tile row in the parent tiling.
    pub ty: usize,
    /// Width in pixels (may be clipped at the raster edge).
    pub width: usize,
    /// Height in pixels (may be clipped at the raster edge).
    pub height: usize,
    values: Vec<f64>,
}

impl Tile {
    /// Builds a tile from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `values.len() != width * height`.
    pub fn new(tx: usize, ty: usize, width: usize, height: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), width * height, "tile buffer/extent mismatch");
        Self { tx, ty, width, height, values }
    }

    /// Density at tile-local pixel `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[j * self.width + i]
    }

    /// The row-major density buffer.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Tile-local row `j` as a slice.
    #[inline]
    pub fn row(&self, j: usize) -> &[f64] {
        &self.values[j * self.width..(j + 1) * self.width]
    }

    /// Heap bytes held by the density buffer (the unit of the cache's
    /// byte budget, matching the `space_bytes()` accounting convention).
    #[inline]
    pub fn bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<f64>() + std::mem::size_of::<Self>()
    }
}

/// Runs the ordinary full-width row sweeps for `rows`, writing the
/// results row-major into `out` (`rows.len() × ctx.xs.len()`). Rows whose
/// envelope band is empty are skipped and stay exactly zero, as in
/// [`crate::driver::sweep_grid`]. This is the canonical band computation shared by the
/// stitched drivers below and the `kdv-serve` tile cache: running it for
/// any row range produces the same bits the monolithic sweep produces for
/// those rows.
pub fn sweep_rows<E: RowEngine>(
    ctx: &SweepContext,
    bandwidth: f64,
    rows: Range<usize>,
    engine: &mut E,
    envelope: &mut EnvelopeBuffer,
    out: &mut [f64],
) {
    let x_count = ctx.xs.len();
    assert_eq!(out.len(), rows.len() * x_count, "band buffer/row-range mismatch");
    out.fill(0.0);
    for (slot, j) in rows.enumerate() {
        let k = ctx.ks[j];
        let band = {
            let _s = kdv_obs::span1("band.search", "row", j as u64);
            ctx.index.band(bandwidth, k)
        };
        if band.is_empty() {
            continue;
        }
        let intervals = {
            let mut s = kdv_obs::span1("envelope.fill", "row", j as u64);
            let intervals = envelope.fill_band(&ctx.index, band, bandwidth, k);
            s.arg("size", intervals.len() as u64);
            intervals
        };
        let _s = kdv_obs::span1("row.sweep", "row", j as u64);
        engine.process_row(&ctx.xs, k, intervals, &mut out[slot * x_count..(slot + 1) * x_count]);
    }
}

/// Computes one tile row band — the ordinary full-width row sweeps for
/// band `ty`, sliced into that band's tiles (in `tx` order). `band` is
/// reusable scratch (resized as needed). This is the unit the `kdv-serve`
/// cache computes on a miss: one call fills *every* tile of the band.
pub fn compute_band<E: RowEngine>(
    ctx: &SweepContext,
    tiling: &Tiling,
    bandwidth: f64,
    ty: usize,
    engine: &mut E,
    envelope: &mut EnvelopeBuffer,
    band: &mut Vec<f64>,
) -> Vec<Tile> {
    let rows = tiling.tile_rows(ty);
    let _s = kdv_obs::span2("tile.band", "ty", ty as u64, "rows", rows.len() as u64);
    band.resize(rows.len() * tiling.res_x, 0.0);
    sweep_rows(ctx, bandwidth, rows.clone(), engine, envelope, band);
    slice_band(tiling, ty, rows, band)
}

/// Weighted counterpart of [`sweep_rows`]: the ordinary full-width
/// weighted row sweeps for `rows`, written row-major into `out`.
/// `weights` is in *original* point order — the gather through the banded
/// index applies the canonical-order permutation per row, exactly as
/// [`crate::weighted::compute_weighted`] does, so any row range produces
/// the same bits the monolithic weighted sweep produces for those rows.
/// This is the compute path under the serve layer's coreset overview
/// tier, where the weights are coreset multiplicities.
pub fn sweep_rows_weighted(
    ctx: &SweepContext,
    params: &KdvParams,
    rows: Range<usize>,
    weights: &[f64],
    workspace: &mut WeightedWorkspace,
    out: &mut [f64],
) {
    let x_count = ctx.xs.len();
    assert_eq!(out.len(), rows.len() * x_count, "band buffer/row-range mismatch");
    out.fill(0.0);
    let bandwidth = params.bandwidth;
    workspace.engine_for(params);
    let WeightedWorkspace { envelope, env_weights, engine, .. } = workspace;
    let engine = engine.as_mut().expect("engine_for configured the engine");
    for (slot, j) in rows.enumerate() {
        let k = ctx.ks[j];
        let band = {
            let _s = kdv_obs::span1("band.search", "row", j as u64);
            ctx.index.band(bandwidth, k)
        };
        if band.is_empty() {
            continue;
        }
        ctx.index.gather(band.clone(), weights, env_weights);
        let intervals = {
            let mut s = kdv_obs::span1("envelope.fill", "row", j as u64);
            let intervals = envelope.fill_band(&ctx.index, band, bandwidth, k);
            s.arg("size", intervals.len() as u64);
            intervals
        };
        let _s = kdv_obs::span1("row.sweep", "row", j as u64);
        engine.process_row(
            &ctx.xs,
            k,
            intervals,
            env_weights,
            &mut out[slot * x_count..(slot + 1) * x_count],
        );
    }
}

/// Weighted counterpart of [`compute_band`]: one tile row band computed
/// by full-width *weighted* row sweeps and sliced into tiles. The unit
/// the serve layer computes on a coreset-tier cache miss.
pub fn compute_band_weighted(
    ctx: &SweepContext,
    tiling: &Tiling,
    params: &KdvParams,
    ty: usize,
    weights: &[f64],
    workspace: &mut WeightedWorkspace,
    band: &mut Vec<f64>,
) -> Vec<Tile> {
    let rows = tiling.tile_rows(ty);
    let _s = kdv_obs::span2("tile.band", "ty", ty as u64, "rows", rows.len() as u64);
    band.resize(rows.len() * tiling.res_x, 0.0);
    sweep_rows_weighted(ctx, params, rows.clone(), weights, workspace, band);
    slice_band(tiling, ty, rows, band)
}

/// Delta-restricted weighted band accumulation — the streaming patch
/// primitive. Runs the ordinary full-width weighted row sweeps for
/// `rows` over `ctx` (a context built over a *delta batch*, not the base
/// set) into `scratch`, then folds the result elementwise into `out`
/// (the band's existing densities).
///
/// Kernel sums are additive, so `base band + delta band` is the live
/// band; signed weights make the same call an append (`+w`) or an
/// expiration (`-w`). Exactly-zero delta pixels are *skipped* rather
/// than added: `t + 0.0` flushes a `-0.0` to `+0.0`, so skipping keeps
/// the fold bit-transparent for pixels the delta cannot touch — a batch
/// outside the band's bandwidth radius folds to a perfect no-op, and the
/// caller may elide it entirely without changing a bit. Both the cold
/// rebuild path and the cached-tile patch path in `kdv-serve` go through
/// this one function, which is what makes patch-then-serve bitwise-equal
/// to rebuild-from-scratch by construction.
pub fn accumulate_rows_weighted(
    ctx: &SweepContext,
    params: &KdvParams,
    rows: Range<usize>,
    weights: &[f64],
    workspace: &mut WeightedWorkspace,
    scratch: &mut Vec<f64>,
    out: &mut [f64],
) {
    let x_count = ctx.xs.len();
    assert_eq!(out.len(), rows.len() * x_count, "band buffer/row-range mismatch");
    let _s =
        kdv_obs::span2("tile.patch", "rows", rows.len() as u64, "points", ctx.points.len() as u64);
    scratch.resize(rows.len() * x_count, 0.0);
    sweep_rows_weighted(ctx, params, rows, weights, workspace, scratch);
    for (o, &d) in out.iter_mut().zip(scratch.iter()) {
        if d != 0.0 {
            *o += d;
        }
    }
}

/// Slices one computed row band (full raster width) into its tiles —
/// pure memory movement, shared by the batch tile paths and the
/// `kdv-serve` band compute/patch paths.
pub fn slice_band(tiling: &Tiling, ty: usize, band_rows: Range<usize>, band: &[f64]) -> Vec<Tile> {
    let _s = kdv_obs::span1("tile.slice", "tiles", tiling.tiles_x() as u64);
    let height = band_rows.len();
    let mut tiles = Vec::with_capacity(tiling.tiles_x());
    for tx in 0..tiling.tiles_x() {
        let cols = tiling.tile_cols(tx);
        let width = cols.len();
        let mut values = Vec::with_capacity(width * height);
        for j in 0..height {
            values.extend_from_slice(
                &band[j * tiling.res_x + cols.start..j * tiling.res_x + cols.end],
            );
        }
        tiles.push(Tile::new(tx, ty, width, height, values));
    }
    tiles
}

/// Computes every tile of the raster with SLAM_BUCKET row sweeps, one
/// shared full-width sweep per row band. Tiles are returned in row-major
/// `(ty, tx)` order (see [`Tiling::index_of`]).
pub fn compute_tiles(params: &KdvParams, points: &[Point], tile_size: usize) -> Result<Vec<Tile>> {
    let tiling = Tiling::new(params.grid.res_x, params.grid.res_y, tile_size)?;
    let ctx = SweepContext::new(params, points)?;
    let mut engine = BucketSweep::new(params.kernel, params.bandwidth, params.weight);
    let mut envelope = EnvelopeBuffer::for_points(ctx.points.len());
    let mut band = Vec::new();
    let mut tiles = Vec::with_capacity(tiling.tile_count());
    for ty in 0..tiling.tiles_y() {
        tiles.extend(compute_band(
            &ctx,
            &tiling,
            params.bandwidth,
            ty,
            &mut engine,
            &mut envelope,
            &mut band,
        ));
    }
    Ok(tiles)
}

/// [`compute_tiles`] with row bands distributed over the work-stealing
/// runtime (`threads == 0` means "auto", as everywhere). Each band is
/// swept start-to-finish by one worker's engine, so the output is bitwise
/// identical to the sequential path for every thread count.
pub fn compute_tiles_parallel(
    params: &KdvParams,
    points: &[Point],
    tile_size: usize,
    threads: usize,
) -> Result<Vec<Tile>> {
    let tiling = Tiling::new(params.grid.res_x, params.grid.res_y, tile_size)?;
    let ctx = SweepContext::new(params, points)?;
    let per_band: Vec<Vec<Tile>> = for_each_index_with(
        tiling.tiles_y(),
        threads,
        || {
            (
                BucketSweep::new(params.kernel, params.bandwidth, params.weight),
                EnvelopeBuffer::for_points(ctx.points.len()),
                Vec::new(),
            )
        },
        |(engine, envelope, band), ty| {
            compute_band(&ctx, &tiling, params.bandwidth, ty, engine, envelope, band)
        },
    );
    Ok(per_band.into_iter().flatten().collect())
}

/// Reassembles tiles (in any order) into the full raster.
///
/// # Panics
/// Panics if a tile's extent disagrees with the tiling or a pixel is left
/// uncovered — a stitching bug must never degrade silently into a
/// half-zero raster.
pub fn stitch(tiling: &Tiling, tiles: &[Tile]) -> DensityGrid {
    let _s = kdv_obs::span1("tile.stitch", "tiles", tiles.len() as u64);
    assert_eq!(tiles.len(), tiling.tile_count(), "tile count mismatch");
    let mut grid = DensityGrid::zeroed(tiling.res_x, tiling.res_y);
    let mut covered = 0usize;
    for tile in tiles {
        let cols = tiling.tile_cols(tile.tx);
        let rows = tiling.tile_rows(tile.ty);
        assert_eq!((tile.width, tile.height), (cols.len(), rows.len()), "tile extent mismatch");
        for (j, row) in rows.clone().enumerate() {
            grid.row_mut(row)[cols.start..cols.end].copy_from_slice(tile.row(j));
        }
        covered += tile.width * tile.height;
    }
    assert_eq!(covered, tiling.res_x * tiling.res_y, "stitched tiles must cover every pixel");
    grid
}

/// Computes the raster through the tile path — partition, per-band sweep,
/// stitch — and returns the reassembled grid. Bitwise identical to
/// [`crate::sweep_bucket::compute`] for every `tile_size` (the conformance
/// harness holds this to the exact policy).
pub fn compute_stitched(
    params: &KdvParams,
    points: &[Point],
    tile_size: usize,
) -> Result<DensityGrid> {
    let tiling = Tiling::new(params.grid.res_x, params.grid.res_y, tile_size)?;
    let tiles = compute_tiles(params, points, tile_size)?;
    Ok(stitch(&tiling, &tiles))
}

/// Parallel [`compute_stitched`]; bitwise identical for every thread
/// count.
pub fn compute_stitched_parallel(
    params: &KdvParams,
    points: &[Point],
    tile_size: usize,
    threads: usize,
) -> Result<DensityGrid> {
    let tiling = Tiling::new(params.grid.res_x, params.grid.res_y, tile_size)?;
    let tiles = compute_tiles_parallel(params, points, tile_size, threads)?;
    Ok(stitch(&tiling, &tiles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::sweep_grid;
    use crate::geom::Rect;
    use crate::grid::GridSpec;
    use crate::kernel::KernelType;
    use crate::sweep_bucket;

    fn setup(res_x: usize, res_y: usize, bandwidth: f64) -> (KdvParams, Vec<Point>) {
        let grid = GridSpec::new(Rect::new(-10.0, 5.0, 90.0, 70.0), res_x, res_y).unwrap();
        let params = KdvParams::new(grid, KernelType::Quartic, bandwidth).with_weight(0.004);
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts = (0..400).map(|_| Point::new(-20.0 + next() * 120.0, next() * 80.0)).collect();
        (params, pts)
    }

    #[test]
    fn tiling_partitions_exactly() {
        let t = Tiling::new(100, 37, 16).unwrap();
        assert_eq!((t.tiles_x(), t.tiles_y()), (7, 3));
        assert_eq!(t.tile_cols(6), 96..100);
        assert_eq!(t.tile_rows(2), 32..37);
        let covered: usize = (0..t.tiles_y()).map(|ty| t.tile_rows(ty).len() * t.res_x).sum();
        assert_eq!(covered, 100 * 37);
        assert!(Tiling::new(10, 10, 0).is_err());
        assert!(Tiling::new(0, 10, 4).is_err());
    }

    #[test]
    fn stitched_matches_monolithic_bitwise() {
        let (params, pts) = setup(50, 33, 12.0);
        let mono = sweep_bucket::compute(&params, &pts).unwrap();
        for tile_size in [1, 7, 16, 33, 50, 256] {
            let stitched = compute_stitched(&params, &pts, tile_size).unwrap();
            assert_eq!(stitched, mono, "tile_size={tile_size}");
        }
    }

    #[test]
    fn parallel_tiles_match_sequential_bitwise() {
        let (params, pts) = setup(41, 29, 8.0);
        let seq = compute_tiles(&params, &pts, 16).unwrap();
        for threads in [1, 2, 5] {
            let par = compute_tiles_parallel(&params, &pts, 16, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn tiles_smaller_than_bandwidth_still_exact() {
        // bandwidth spans many tiles: interval endpoints cross every seam
        let (params, pts) = setup(64, 48, 55.0);
        let mono = sweep_bucket::compute(&params, &pts).unwrap();
        let stitched = compute_stitched(&params, &pts, 4).unwrap();
        assert_eq!(stitched, mono);
    }

    #[test]
    fn sweep_rows_agrees_with_sweep_grid_rows() {
        let (params, pts) = setup(30, 24, 9.0);
        let full = {
            let mut engine = BucketSweep::new(params.kernel, params.bandwidth, params.weight);
            sweep_grid(&params, &pts, &mut engine).unwrap()
        };
        let ctx = SweepContext::new(&params, &pts).unwrap();
        let mut engine = BucketSweep::new(params.kernel, params.bandwidth, params.weight);
        let mut envelope = EnvelopeBuffer::for_points(ctx.points.len());
        let rows = 5..17;
        let mut out = vec![f64::NAN; rows.len() * 30];
        sweep_rows(&ctx, params.bandwidth, rows.clone(), &mut engine, &mut envelope, &mut out);
        for (slot, j) in rows.enumerate() {
            assert_eq!(&out[slot * 30..(slot + 1) * 30], full.row(j), "row {j}");
        }
    }

    #[test]
    fn weighted_band_matches_monolithic_weighted_bitwise() {
        // wide raster: compute_weighted takes the non-RAO row path, which
        // is the exact floating-point program the band sweep re-runs, so
        // agreement is bitwise.
        let (params, pts) = setup(50, 33, 12.0);
        let weights: Vec<f64> = (0..pts.len()).map(|i| 0.25 + (i % 9) as f64 * 0.5).collect();
        let mono = crate::weighted::compute_weighted(&params, &pts, &weights).unwrap();
        let ctx = SweepContext::new(&params, &pts).unwrap();
        for tile_size in [1, 7, 16, 33] {
            let tiling = Tiling::new(50, 33, tile_size).unwrap();
            let mut workspace = WeightedWorkspace::new();
            let mut band = Vec::new();
            let mut tiles = Vec::new();
            for ty in 0..tiling.tiles_y() {
                tiles.extend(compute_band_weighted(
                    &ctx,
                    &tiling,
                    &params,
                    ty,
                    &weights,
                    &mut workspace,
                    &mut band,
                ));
            }
            let stitched = stitch(&tiling, &tiles);
            assert_eq!(stitched, mono, "tile_size={tile_size}");
        }
    }

    #[test]
    fn weighted_rows_match_full_weighted_rows() {
        let (params, pts) = setup(30, 24, 9.0);
        let weights: Vec<f64> = (0..pts.len()).map(|i| (i % 5) as f64 * 0.3 + 0.1).collect();
        let full = crate::weighted::compute_weighted(&params, &pts, &weights).unwrap();
        let ctx = SweepContext::new(&params, &pts).unwrap();
        let mut workspace = WeightedWorkspace::new();
        let rows = 4..19;
        let mut out = vec![f64::NAN; rows.len() * 30];
        sweep_rows_weighted(&ctx, &params, rows.clone(), &weights, &mut workspace, &mut out);
        for (slot, j) in rows.enumerate() {
            assert_eq!(&out[slot * 30..(slot + 1) * 30], full.row(j), "row {j}");
        }
    }

    #[test]
    fn stitch_panics_on_missing_tile() {
        let tiling = Tiling::new(8, 8, 4).unwrap();
        let tiles: Vec<Tile> =
            (0..3).map(|i| Tile::new(i % 2, i / 2, 4, 4, vec![0.0; 16])).collect();
        let result = std::panic::catch_unwind(|| stitch(&tiling, &tiles));
        assert!(result.is_err());
    }

    #[test]
    fn empty_input_stitches_to_zero() {
        let (params, _) = setup(20, 20, 5.0);
        let stitched = compute_stitched(&params, &[], 7).unwrap();
        assert_eq!(stitched.max_value(), 0.0);
    }
}
