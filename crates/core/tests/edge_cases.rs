//! Pinning tests for degenerate inputs: every engine must reject invalid
//! parameters with a typed error (never a panic) and produce finite,
//! correct rasters for boundary-shaped but valid inputs — empty point
//! sets, single-pixel rasters, and 1×Y / X×1 degenerate grids. The
//! conformance harness fuzzes these shapes too (`crates/conformance`);
//! these tests pin the contracts explicitly so a regression names the
//! exact broken promise.

use kdv_core::driver::{validate_points, KdvParams};
use kdv_core::weighted::{compute_weighted, weighted_scan};
use kdv_core::{
    multi_bandwidth, rao, GridSpec, KdvEngine, KdvError, KernelType, Method, Point, Rect,
};

fn spec(res_x: usize, res_y: usize) -> GridSpec {
    GridSpec::new(Rect::new(0.0, 0.0, 100.0, 80.0), res_x, res_y).unwrap()
}

fn some_points() -> Vec<Point> {
    vec![Point::new(10.0, 20.0), Point::new(50.0, 40.0), Point::new(99.0, 79.0)]
}

#[test]
fn empty_input_yields_an_all_zero_grid() {
    for kernel in KernelType::ALL {
        let params = KdvParams::new(spec(16, 12), kernel, 25.0);
        for method in Method::ALL {
            let grid = KdvEngine::new(method).compute(&params, &[]).unwrap();
            assert!(
                grid.values().iter().all(|&v| v == 0.0),
                "{method:?}/{kernel:?}: empty input must produce exact zeros"
            );
        }
    }
}

#[test]
fn non_positive_or_non_finite_bandwidth_is_a_typed_error() {
    let pts = some_points();
    for bad in [0.0, -3.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let params = KdvParams::new(spec(8, 8), KernelType::Epanechnikov, bad);
        for method in Method::ALL {
            match KdvEngine::new(method).compute(&params, &pts) {
                Err(KdvError::InvalidBandwidth(b)) => {
                    assert!(b.is_nan() && bad.is_nan() || b == bad)
                }
                other => {
                    panic!("{method:?} with b={bad}: expected InvalidBandwidth, got {other:?}")
                }
            }
        }
    }
}

#[test]
fn non_finite_weight_is_a_typed_error() {
    let pts = some_points();
    for bad in [f64::NAN, f64::INFINITY] {
        let params = KdvParams::new(spec(8, 8), KernelType::Quartic, 20.0).with_weight(bad);
        assert!(
            matches!(
                KdvEngine::new(Method::SlamSort).compute(&params, &pts),
                Err(KdvError::InvalidWeight(_))
            ),
            "weight {bad} must be rejected"
        );
    }
}

#[test]
fn non_finite_points_are_a_typed_error_with_the_offending_index() {
    let pts = vec![Point::new(1.0, 2.0), Point::new(f64::NAN, 0.0)];
    assert_eq!(validate_points(&pts), Err(KdvError::NonFinitePoint { index: 1 }));
    let params = KdvParams::new(spec(8, 8), KernelType::Uniform, 20.0);
    for method in Method::ALL {
        assert!(
            matches!(
                KdvEngine::new(method).compute(&params, &pts),
                Err(KdvError::NonFinitePoint { index: 1 })
            ),
            "{method:?} must reject the NaN point"
        );
    }
}

#[test]
fn single_pixel_grid_matches_direct_evaluation() {
    let pts = some_points();
    for kernel in KernelType::ALL {
        let params = KdvParams::new(spec(1, 1), kernel, 80.0);
        let q = params.grid.pixel_center(0, 0);
        let expected = kernel.density_scan(&q, &pts, 80.0, 1.0);
        for method in Method::ALL {
            let grid = KdvEngine::new(method).compute(&params, &pts).unwrap();
            assert_eq!(grid.values().len(), 1);
            let got = grid.values()[0];
            assert!(got.is_finite());
            let err = (got - expected).abs() / expected.abs().max(1e-300);
            assert!(err < 1e-9, "{method:?}/{kernel:?}: {got} vs {expected}");
        }
    }
}

#[test]
fn degenerate_one_row_and_one_column_grids_stay_finite_and_exact() {
    let pts = some_points();
    for (rx, ry) in [(1usize, 9usize), (9, 1), (1, 1)] {
        let params = KdvParams::new(spec(rx, ry), KernelType::Quartic, 60.0);
        let reference: Vec<f64> = (0..ry)
            .flat_map(|j| (0..rx).map(move |i| (i, j)).collect::<Vec<_>>().into_iter())
            .map(|(i, j)| {
                let q = params.grid.pixel_center(i, j);
                KernelType::Quartic.density_scan(&q, &pts, 60.0, 1.0)
            })
            .collect();
        for method in Method::ALL {
            let grid = KdvEngine::new(method).compute(&params, &pts).unwrap();
            for (got, expected) in grid.values().iter().zip(&reference) {
                assert!(got.is_finite(), "{method:?} {rx}x{ry}: non-finite output");
                let err = (got - expected).abs() / expected.abs().max(1e-300);
                assert!(err < 1e-9, "{method:?} {rx}x{ry}: {got} vs {expected}");
            }
        }
    }
}

#[test]
fn weighted_engines_handle_empty_and_degenerate_inputs() {
    let params = KdvParams::new(spec(1, 7), KernelType::Epanechnikov, 40.0);
    // empty input: exact zeros, no panic
    let grid = compute_weighted(&params, &[], &[]).unwrap();
    assert!(grid.values().iter().all(|&v| v == 0.0));
    // degenerate 1×Y grid agrees with the weighted scan
    let pts = some_points();
    let ws = [0.5, -1.0, 2.0];
    let got = compute_weighted(&params, &pts, &ws).unwrap();
    let reference = weighted_scan(&params, &pts, &ws);
    let peak = reference.values().iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    for (a, b) in got.values().iter().zip(reference.values()) {
        assert!(a.is_finite());
        assert!((a - b).abs() <= 1e-9 * peak.max(1.0));
    }
    // mismatched weights length is a typed error, not a panic
    assert!(compute_weighted(&params, &pts, &[1.0]).is_err());
}

#[test]
fn multi_bandwidth_rejects_a_bad_bandwidth_in_the_list() {
    let params = KdvParams::new(spec(4, 4), KernelType::Epanechnikov, 10.0);
    let pts = some_points();
    for bad in [0.0, -1.0, f64::NAN] {
        assert!(
            matches!(
                multi_bandwidth::compute_multi_bandwidth(&params, &pts, &[10.0, bad]),
                Err(KdvError::InvalidBandwidth(_))
            ),
            "bandwidth list containing {bad} must be rejected"
        );
    }
}

#[test]
fn rao_transpose_handles_degenerate_grids() {
    // RAO transposes the raster internally; 1×Y and X×1 exercise both
    // orientations of the degenerate case
    let pts = some_points();
    for (rx, ry) in [(1usize, 5usize), (5, 1)] {
        let params = KdvParams::new(spec(rx, ry), KernelType::Epanechnikov, 50.0);
        let plain = KdvEngine::new(Method::SlamBucket).compute(&params, &pts).unwrap();
        let transposed = rao::compute_bucket(&params, &pts).unwrap();
        let peak = plain.values().iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        for (a, b) in transposed.values().iter().zip(plain.values()) {
            assert!(a.is_finite());
            assert!((a - b).abs() <= 1e-9 * peak.max(1.0));
        }
    }
}
