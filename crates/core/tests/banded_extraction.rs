//! Property tests for banded envelope extraction: the y-sorted
//! [`BandIndex`] must return exactly the interval set of the full-scan
//! `fill`, including boundary rows at `|k − p.y| = b` and duplicate
//! y-coordinates (the regimes where a naive binary-search predicate could
//! disagree with the scan predicate by one ulp).

use kdv_core::envelope::{BandIndex, EnvelopeBuffer, SweepInterval};
use kdv_core::geom::Point;
use proptest::prelude::*;

/// Bit-exact fingerprint of one interval (membership *and* bounds).
fn bits(intervals: &[SweepInterval]) -> Vec<[u64; 4]> {
    intervals
        .iter()
        .map(|iv| [iv.point.x.to_bits(), iv.point.y.to_bits(), iv.lb.to_bits(), iv.ub.to_bits()])
        .collect()
}

/// Points with heavily duplicated y-coordinates: y lives on a coarse
/// lattice so ties in the sort and exact boundary hits are common.
fn lattice_points() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0f64..100.0, 0u32..64), 1..120).prop_map(|raw| {
        raw.into_iter().map(|(x, yi)| Point::new(x, yi as f64 * 0.78125)).collect::<Vec<Point>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `fill_banded` equals full-scan `fill` over the same canonical
    /// (y-sorted) order bit for bit — same membership, same sequence,
    /// same bounds — and as a multiset equals a scan of the unsorted
    /// input. Each case probes a generic row plus an exact boundary row
    /// `k = p.y ± b` for a sampled point.
    #[test]
    fn banded_matches_full_scan(
        pts in lattice_points(),
        b in 0.25f64..60.0,
        kraw in -10.0f64..60.0,
        sel in 0usize..120,
        above in 0u8..2,
    ) {
        let index = BandIndex::build(&pts);
        let sorted: Vec<Point> = (0..index.len()).map(|i| index.point(i)).collect();
        let p = pts[sel % pts.len()];
        let boundary = if above == 1 { p.y + b } else { p.y - b };
        for k in [kraw, boundary] {
            let mut banded = EnvelopeBuffer::for_points(pts.len());
            let mut scan_sorted = EnvelopeBuffer::for_points(pts.len());
            let mut scan_orig = EnvelopeBuffer::for_points(pts.len());
            let got = bits(banded.fill_banded(&index, b, k));
            let want = bits(scan_sorted.fill(&sorted, b, k));
            prop_assert_eq!(&got, &want, "sequence mismatch at k={}", k);
            let mut got_sorted = got;
            let mut orig = bits(scan_orig.fill(&pts, b, k));
            got_sorted.sort_unstable();
            orig.sort_unstable();
            prop_assert_eq!(got_sorted, orig, "multiset mismatch at k={}", k);
        }
    }

    /// Duplicate-y points appear in input order within the band (the sort
    /// is stable), so `gather` aligns per-point payloads exactly.
    #[test]
    fn band_preserves_input_order_of_ties(
        pts in lattice_points(),
        b in 0.25f64..60.0,
        kraw in 0.0f64..50.0,
    ) {
        let index = BandIndex::build(&pts);
        let band = index.band(b, kraw);
        let mut last_seen: std::collections::HashMap<u64, usize> = Default::default();
        for i in band {
            let orig = index.original_index(i);
            let y = index.point(i).y.to_bits();
            if let Some(&prev) = last_seen.get(&y) {
                prop_assert!(prev < orig, "ties must keep input order");
            }
            last_seen.insert(y, orig);
        }
    }

    /// Bounding the search by any superset band (a larger bandwidth's
    /// band) returns exactly the unbounded result — the multi-bandwidth
    /// fast path.
    #[test]
    fn band_in_superset_equals_direct(
        pts in lattice_points(),
        b1 in 0.25f64..60.0,
        b2 in 0.25f64..60.0,
        kraw in -10.0f64..60.0,
    ) {
        let (small, big) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let index = BandIndex::build(&pts);
        let superset = index.band(big, kraw);
        prop_assert_eq!(
            index.band_in(superset, small, kraw),
            index.band(small, kraw)
        );
    }
}
