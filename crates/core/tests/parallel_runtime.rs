//! Regression tests for the work-stealing parallel runtime: heavily
//! clustered datasets make per-row costs wildly uneven, which is exactly
//! where a static band split loses — and where dynamic scheduling must
//! still reproduce the sequential raster bit for bit.

use kdv_core::driver::KdvParams;
use kdv_core::geom::{Point, Rect};
use kdv_core::grid::GridSpec;
use kdv_core::parallel::{
    compute_multi_bandwidth_parallel, compute_parallel, compute_parallel_rao,
    compute_parallel_with_report, compute_weighted_parallel, default_threads, ParallelEngine,
};
use kdv_core::{rao, sweep_bucket, sweep_sort, KernelType};

/// A pathologically clustered dataset: 90% of the points live in a band
/// covering ~6% of the rows, so those rows carry envelope sets ~15× the
/// average — the load-imbalance worst case for static row bands.
fn clustered_points() -> Vec<Point> {
    let mut state = 0xC0FFEEu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut pts = Vec::new();
    for _ in 0..1_800 {
        // dense horizontal band at y ∈ [42, 48]
        pts.push(Point::new(next() * 100.0, 42.0 + next() * 6.0));
    }
    for _ in 0..200 {
        pts.push(Point::new(next() * 100.0, next() * 100.0));
    }
    pts
}

fn params(kernel: KernelType) -> KdvParams {
    let grid = GridSpec::new(Rect::new(0.0, 0.0, 100.0, 100.0), 48, 37).unwrap();
    KdvParams::new(grid, kernel, 4.0).with_weight(5e-4)
}

fn thread_counts() -> Vec<usize> {
    vec![2, 3, 8, default_threads()]
}

#[test]
fn clustered_bucket_parallel_is_bitwise_sequential() {
    let pts = clustered_points();
    for kernel in KernelType::ALL {
        let p = params(kernel);
        let seq = sweep_bucket::compute(&p, &pts).unwrap();
        for threads in thread_counts() {
            let par = compute_parallel(&p, &pts, ParallelEngine::Bucket, threads).unwrap();
            assert_eq!(par, seq, "bucket kernel={kernel} threads={threads}");
        }
    }
}

#[test]
fn clustered_sort_parallel_is_bitwise_sequential() {
    let pts = clustered_points();
    let p = params(KernelType::Quartic);
    let seq = sweep_sort::compute(&p, &pts).unwrap();
    for threads in thread_counts() {
        let par = compute_parallel(&p, &pts, ParallelEngine::Sort, threads).unwrap();
        assert_eq!(par, seq, "sort threads={threads}");
    }
}

#[test]
fn clustered_rao_parallel_is_bitwise_sequential() {
    // tall raster so the RAO path actually transposes
    let grid = GridSpec::new(Rect::new(0.0, 0.0, 100.0, 100.0), 17, 53).unwrap();
    let p = KdvParams::new(grid, KernelType::Epanechnikov, 4.0).with_weight(5e-4);
    let pts = clustered_points();
    let seq = rao::compute_bucket(&p, &pts).unwrap();
    for threads in thread_counts() {
        let par = compute_parallel_rao(&p, &pts, ParallelEngine::Bucket, threads).unwrap();
        assert_eq!(par, seq, "rao threads={threads}");
    }
}

#[test]
fn clustered_weighted_parallel_is_bitwise_sequential() {
    let pts = clustered_points();
    let weights: Vec<f64> = (0..pts.len()).map(|i| 0.1 + (i % 11) as f64 * 0.3).collect();
    let p = params(KernelType::Quartic);
    let seq = kdv_core::weighted::compute_weighted(&p, &pts, &weights).unwrap();
    for threads in thread_counts() {
        let par = compute_weighted_parallel(&p, &pts, &weights, threads).unwrap();
        assert_eq!(par, seq, "weighted threads={threads}");
    }
}

#[test]
fn clustered_multi_bandwidth_parallel_is_bitwise_sequential() {
    let pts = clustered_points();
    let p = params(KernelType::Epanechnikov);
    let bandwidths = [2.0, 4.0, 12.0];
    let seq = kdv_core::multi_bandwidth::compute_multi_bandwidth(&p, &pts, &bandwidths).unwrap();
    for threads in thread_counts() {
        let par = compute_multi_bandwidth_parallel(&p, &pts, &bandwidths, threads).unwrap();
        assert_eq!(par, seq, "multi threads={threads}");
    }
}

#[test]
fn report_reflects_the_cluster() {
    let pts = clustered_points();
    let p = params(KernelType::Epanechnikov);
    let (_, report) = compute_parallel_with_report(&p, &pts, ParallelEngine::Bucket, 3).unwrap();
    assert_eq!(report.rows, 37);
    assert_eq!(report.rows_per_worker.iter().sum::<usize>(), 37);
    assert_eq!(report.envelope_sizes.len(), 37);
    // the dense band must dominate the envelope-size distribution
    let max = report.max_envelope();
    let mean = report.total_envelope() as f64 / report.rows as f64;
    assert!(
        max as f64 > 3.0 * mean,
        "expected a skewed envelope distribution, max {max} mean {mean:.1}"
    );
    assert!(report.imbalance() >= 1.0);
    assert!(!report.summary().is_empty());
}
