//! Seam-focused properties of the tile compute layer: for *any* tile
//! size — degenerate, misaligned, smaller than the bandwidth, larger than
//! the raster — the stitched output is byte-for-byte the monolithic
//! raster, and individual tiles are viewport-independent (the soundness
//! precondition of the `kdv-serve` cache).

use kdv_core::driver::KdvParams;
use kdv_core::tile::{compute_stitched, compute_stitched_parallel, compute_tiles, Tiling};
use kdv_core::{sweep_bucket, GridSpec, KernelType, Point, Rect};

/// Deterministic xorshift point cloud with a couple of tight clusters —
/// clusters make band populations uneven across tile rows.
fn clustered_points(n: usize, seed: u64, region: Rect) -> Vec<Point> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let w = region.max_x - region.min_x;
    let h = region.max_y - region.min_y;
    let mut pts = Vec::with_capacity(n);
    for i in 0..n {
        if i % 3 == 0 {
            // cluster near one corner, spilling past the region edge
            pts.push(Point::new(
                region.min_x - 0.1 * w + next() * 0.3 * w,
                region.min_y + 0.7 * h + next() * 0.4 * h,
            ));
        } else {
            pts.push(Point::new(region.min_x + next() * w, region.min_y + next() * h));
        }
    }
    pts
}

fn bytes_of(grid: &kdv_core::DensityGrid) -> Vec<u64> {
    grid.values().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn stitched_equals_monolithic_for_every_tile_size() {
    let region = Rect::new(-500.0, 220.0, -380.0, 310.0);
    let grid = GridSpec::new(region, 97, 61).unwrap();
    let pts = clustered_points(350, 0xA11CE, region);
    for kernel in [KernelType::Uniform, KernelType::Epanechnikov, KernelType::Quartic] {
        let params = KdvParams::new(grid, kernel, 17.5).with_weight(1.0 / 350.0);
        let mono = sweep_bucket::compute(&params, &pts).unwrap();
        // 1 = per-pixel tiles; 7/13 misaligned with everything; 61/97 hit
        // exactly one raster dimension; 128 exceeds both.
        for tile_size in [1, 7, 13, 61, 97, 128] {
            let stitched = compute_stitched(&params, &pts, tile_size).unwrap();
            assert_eq!(
                bytes_of(&stitched),
                bytes_of(&mono),
                "{kernel:?} tile_size={tile_size} diverged from monolithic"
            );
        }
    }
}

#[test]
fn tiles_much_smaller_than_bandwidth_stay_exact() {
    // bandwidth 80 over 4-pixel tiles: every envelope interval crosses
    // dozens of tile seams, and most rows' active sets span the raster
    let region = Rect::new(0.0, 0.0, 120.0, 90.0);
    let grid = GridSpec::new(region, 72, 54).unwrap();
    let pts = clustered_points(200, 0xBEE, region);
    let params = KdvParams::new(grid, KernelType::Quartic, 80.0).with_weight(0.005);
    let mono = sweep_bucket::compute(&params, &pts).unwrap();
    for tile_size in [2, 4] {
        let stitched = compute_stitched(&params, &pts, tile_size).unwrap();
        assert_eq!(bytes_of(&stitched), bytes_of(&mono), "tile_size={tile_size}");
    }
}

#[test]
fn unaligned_viewport_windows_match_the_full_raster() {
    // Serving cuts arbitrary pixel windows out of tiles; verify windows
    // that straddle seams at odd offsets agree with the raster bytes.
    let region = Rect::new(1000.0, -2000.0, 1150.0, -1880.0);
    let grid = GridSpec::new(region, 83, 59).unwrap();
    let pts = clustered_points(260, 0xD0E, region);
    let params = KdvParams::new(grid, KernelType::Epanechnikov, 21.0).with_weight(0.01);
    let mono = sweep_bucket::compute(&params, &pts).unwrap();
    let tiling = Tiling::new(83, 59, 16).unwrap();
    let tiles = compute_tiles(&params, &pts, 16).unwrap();
    // windows chosen to start/end mid-tile in both axes
    for (px, py, w, h) in [(3, 5, 30, 27), (15, 16, 17, 17), (47, 31, 36, 28), (0, 58, 83, 1)] {
        for j in 0..h {
            for i in 0..w {
                let (x, y) = (px + i, py + j);
                let tile = &tiles[tiling.index_of(x / 16, y / 16)];
                assert_eq!(
                    tile.get(x % 16, y % 16).to_bits(),
                    mono.get(x, y).to_bits(),
                    "window ({px},{py},{w},{h}) pixel ({x},{y})"
                );
            }
        }
    }
}

#[test]
fn tile_bits_do_not_depend_on_tiling_geometry() {
    // The same pixel served under different tile sizes must carry the
    // same bits — tiles are slices of one canonical row program, not
    // per-tile recomputations.
    let region = Rect::new(-40.0, -40.0, 60.0, 45.0);
    let grid = GridSpec::new(region, 55, 38).unwrap();
    let pts = clustered_points(180, 0xFAB, region);
    let params = KdvParams::new(grid, KernelType::Uniform, 12.0).with_weight(0.02);
    let reference = compute_stitched(&params, &pts, 9).unwrap();
    for tile_size in [3, 20, 55] {
        let other = compute_stitched(&params, &pts, tile_size).unwrap();
        assert_eq!(bytes_of(&other), bytes_of(&reference), "tile_size={tile_size}");
    }
}

#[test]
fn parallel_stitching_matches_sequential_for_every_thread_count() {
    let region = Rect::new(0.0, 0.0, 200.0, 160.0);
    let grid = GridSpec::new(region, 64, 50).unwrap();
    let pts = clustered_points(300, 0xC0DE, region);
    let params = KdvParams::new(grid, KernelType::Quartic, 25.0).with_weight(1.0 / 300.0);
    let seq = compute_stitched(&params, &pts, 16).unwrap();
    for threads in [1, 2, 3, 8] {
        let par = compute_stitched_parallel(&params, &pts, 16, threads).unwrap();
        assert_eq!(bytes_of(&par), bytes_of(&seq), "threads={threads}");
    }
}

#[test]
fn degenerate_rasters_tile_cleanly() {
    // 1×Y, X×1 and 1×1 rasters with any tile size
    let region = Rect::new(5.0, 5.0, 25.0, 30.0);
    let pts = clustered_points(40, 0x1D, region);
    for (rx, ry) in [(1, 19), (23, 1), (1, 1)] {
        let grid = GridSpec::new(region, rx, ry).unwrap();
        let params = KdvParams::new(grid, KernelType::Epanechnikov, 8.0).with_weight(0.1);
        let mono = sweep_bucket::compute(&params, &pts).unwrap();
        for tile_size in [1, 2, 64] {
            let stitched = compute_stitched(&params, &pts, tile_size).unwrap();
            assert_eq!(bytes_of(&stitched), bytes_of(&mono), "{rx}x{ry} tile={tile_size}");
        }
    }
}
