//! Property tests of the span recorder under the work-stealing parallel
//! scheduler: whatever the raster shape, thread count, or engine, every
//! span begin must find its matching end across the per-thread buffers,
//! and the [`SweepReport`] derived from the span stream must agree
//! structurally with the report the workers assembled directly.
//!
//! The recorder is process-global, so every case runs under
//! [`kdv_obs::span::exclusive`] and this file is its own integration-test
//! binary (proptest drives cases sequentially; no sibling test races the
//! sink).

use kdv_core::driver::KdvParams;
use kdv_core::geom::{Point, Rect};
use kdv_core::grid::GridSpec;
use kdv_core::parallel::{compute_parallel_with_report, ParallelEngine};
use kdv_core::telemetry::SweepReport;
use kdv_core::KernelType;
use proptest::prelude::*;

/// Runs one instrumented parallel sweep and returns the worker-assembled
/// report plus the recorded trace.
fn run_instrumented(
    points: &[Point],
    res: (usize, usize),
    bandwidth: f64,
    threads: usize,
    engine: ParallelEngine,
) -> (SweepReport, kdv_obs::Trace) {
    let _guard = kdv_obs::span::exclusive();
    let extent = Rect::new(0.0, 0.0, 1_000.0, 1_000.0);
    let grid = GridSpec::new(extent, res.0, res.1).expect("valid grid");
    let params = KdvParams::new(grid, KernelType::Epanechnikov, bandwidth).with_weight(1.0);
    kdv_obs::span::clear();
    kdv_obs::set_enabled(true);
    let out = compute_parallel_with_report(&params, points, engine, threads);
    kdv_obs::set_enabled(false);
    kdv_obs::span::flush_thread();
    let trace = kdv_obs::span::take_trace();
    let (_, report) = out.expect("sweep must succeed");
    (report, trace)
}

fn problem() -> impl Strategy<Value = (Vec<Point>, (usize, usize), f64, usize, ParallelEngine)> {
    (
        prop::collection::vec((0.0f64..1_000.0, 0.0f64..1_000.0), 0..60),
        (1usize..24, 1usize..24),
        10.0f64..600.0,
        1usize..5,
        0u8..2,
    )
        .prop_map(|(raw, res, b, threads, sort)| {
            let pts = raw.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let engine = if sort == 1 { ParallelEngine::Sort } else { ParallelEngine::Bucket };
            (pts, res, b, threads, engine)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_begin_has_a_matching_end((points, res, bandwidth, threads, engine) in problem()) {
        let (_, trace) = run_instrumented(&points, res, bandwidth, threads, engine);
        prop_assert!(
            trace.is_balanced(),
            "unbalanced trace: {} unmatched begin(s), {} unmatched end(s)",
            trace.unmatched_begins,
            trace.unmatched_ends
        );
        prop_assert!(!trace.events.is_empty(), "instrumented sweep recorded nothing");
    }

    #[test]
    fn from_trace_matches_the_report_structurally(
        (points, res, bandwidth, threads, engine) in problem()
    ) {
        let (report, trace) = run_instrumented(&points, res, bandwidth, threads, engine);
        let derived = SweepReport::from_trace(&trace, res.1);
        prop_assert_eq!(derived.rows, report.rows);
        prop_assert_eq!(derived.rows_skipped, report.rows_skipped);
        prop_assert_eq!(&derived.envelope_sizes, &report.envelope_sizes);
        // every claimed row shows up on some derived worker track
        let derived_claimed: usize = derived.rows_per_worker.iter().sum();
        let report_claimed: usize = report.rows_per_worker.iter().sum();
        prop_assert_eq!(derived_claimed, report_claimed);
        // the trace can only show threads the scheduler actually spawned
        // (idle workers record no spans and so no derived track)
        prop_assert!(derived.threads <= report.threads);
    }
}
