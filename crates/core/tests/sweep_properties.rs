//! Property-based tests of the sweep engines at the crate level,
//! including hostile coordinate regimes (city-scale magnitudes, tight
//! clusters, collinear points) that stress the aggregate decomposition's
//! conditioning.

use kdv_core::driver::KdvParams;
use kdv_core::geom::{Point, Rect};
use kdv_core::grid::{DensityGrid, GridSpec};
use kdv_core::multi_bandwidth::compute_multi_bandwidth;
use kdv_core::weighted::{compute_weighted, weighted_scan};
use kdv_core::{rao, sweep_bucket, sweep_sort, KernelType};
use proptest::prelude::*;

/// Direct per-pixel reference.
fn scan(params: &KdvParams, points: &[Point]) -> DensityGrid {
    let g = &params.grid;
    let mut out = DensityGrid::zeroed(g.res_x, g.res_y);
    for j in 0..g.res_y {
        for i in 0..g.res_x {
            let q = g.pixel_center(i, j);
            out.set(i, j, params.kernel.density_scan(&q, points, params.bandwidth, params.weight));
        }
    }
    out
}

fn max_scaled_error(a: &DensityGrid, b: &DensityGrid) -> f64 {
    let scale = b.max_value().max(1e-300);
    a.values().iter().zip(b.values()).map(|(x, y)| (x - y).abs() / scale).fold(0.0_f64, f64::max)
}

/// City-scale problems: coordinates around a large offset, clustered.
fn city_problem() -> impl Strategy<Value = (Vec<Point>, (usize, usize), f64, u8, f64 /* offset */)>
{
    (
        prop::collection::vec((0.0f64..10_000.0, 0.0f64..8_000.0), 1..150),
        (1usize..20, 1usize..20),
        10.0f64..4_000.0,
        0u8..3,
        prop::sample::select(vec![0.0, 5e5, 4e6, -3e6]),
    )
        .prop_map(|(raw, res, b, k, off)| {
            let pts = raw.into_iter().map(|(x, y)| Point::new(x + off, y + off)).collect();
            (pts, res, b, k, off)
        })
}

/// The recorded proptest regression (see `sweep_properties.proptest-regressions`),
/// promoted to an explicit case: a quartic kernel with one point whose
/// y-coordinate (≈7763) dwarfs the bandwidth (≈133). Before the rolling
/// sweep frame, the RAO path — which sweeps along that axis after
/// transposing — lost ~8 significant digits to the `Σ‖p‖⁴` cancellation
/// (observed scaled error 3.0e-8); with the frame all three paths sit at
/// ~1.5e-14.
#[test]
fn recorded_regression_quartic_large_axis_ratio() {
    let pts = [
        Point::new(361.27219404341287, 0.0),
        Point::new(357.3697509429562, 0.0),
        Point::new(427.89290904142575, 7763.393068137033),
        Point::new(0.0, 0.0),
    ];
    let grid = GridSpec::new(Rect::new(0.0, 0.0, 10_000.0, 8_000.0), 15, 16).unwrap();
    let params = KdvParams::new(grid, KernelType::Quartic, 132.97204695578574);
    let reference = scan(&params, &pts);
    for (name, result) in [
        ("sort", sweep_sort::compute(&params, &pts).unwrap()),
        ("bucket", sweep_bucket::compute(&params, &pts).unwrap()),
        ("rao", rao::compute_bucket(&params, &pts).unwrap()),
    ] {
        let err = max_scaled_error(&result, &reference);
        assert!(err < 1e-12, "{name}: err {err}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both engines match SCAN at city-scale coordinate offsets — the
    /// recentring must keep the decomposition conditioned.
    #[test]
    fn engines_conditioned_at_large_offsets(
        (pts, (rx, ry), b, ksel, off) in city_problem(),
    ) {
        let region = Rect::new(off, off, off + 10_000.0, off + 8_000.0);
        let grid = GridSpec::new(region, rx, ry).unwrap();
        let kernel = KernelType::ALL[ksel as usize % 3];
        let params = KdvParams::new(grid, kernel, b).with_weight(1.0);
        let reference = scan(&params, &pts);
        // The rolling sweep frame (sweep_sort module docs) bounds every
        // accumulator coordinate by 5b, so the decomposition error is
        // O(eps·|E(k)|) regardless of offset or raster/bandwidth ratio.
        // The flat floor absorbs the max-density scaling (the raster's
        // peak can be far below the active count near cluster edges).
        let tol = 1e-9;
        for (name, result) in [
            ("sort", sweep_sort::compute(&params, &pts).unwrap()),
            ("bucket", sweep_bucket::compute(&params, &pts).unwrap()),
            ("rao", rao::compute_bucket(&params, &pts).unwrap()),
        ] {
            let err = max_scaled_error(&result, &reference);
            prop_assert!(err < tol, "{name} kernel={kernel} off={off}: err {err} tol {tol}");
        }
    }

    /// The weighted sweep matches direct weighted summation under the
    /// same hostile regimes.
    #[test]
    fn weighted_engine_conditioned(
        (pts, (rx, ry), b, ksel, off) in city_problem(),
        wseed in 1u64..,
    ) {
        let region = Rect::new(off, off, off + 10_000.0, off + 8_000.0);
        let grid = GridSpec::new(region, rx, ry).unwrap();
        let kernel = KernelType::ALL[ksel as usize % 3];
        let params = KdvParams::new(grid, kernel, b);
        // deterministic weights in [0.5, 5.5)
        let mut state = wseed;
        let weights: Vec<f64> = (0..pts.len())
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                0.5 + 5.0 * ((state >> 11) as f64 / (1u64 << 53) as f64)
            })
            .collect();
        let fast = compute_weighted(&params, &pts, &weights).unwrap();
        let slow = weighted_scan(&params, &pts, &weights);
        let err = max_scaled_error(&fast, &slow);
        let tol = 1e-9; // same rolling-frame bound as above
        prop_assert!(err < tol, "kernel={kernel}: err {err} tol {tol}");
    }

    /// Multi-bandwidth sweeps are identical to solo bucket sweeps for
    /// every requested bandwidth.
    #[test]
    fn multi_bandwidth_identical_to_solo(
        (pts, (rx, ry), _b, ksel, off) in city_problem(),
        b1 in 10.0f64..2_000.0,
        b2 in 10.0f64..2_000.0,
    ) {
        let region = Rect::new(off, off, off + 10_000.0, off + 8_000.0);
        let grid = GridSpec::new(region, rx, ry).unwrap();
        let kernel = KernelType::ALL[ksel as usize % 3];
        let params = KdvParams::new(grid, kernel, 1.0);
        let multi = compute_multi_bandwidth(&params, &pts, &[b1, b2]).unwrap();
        for (grid_out, b) in multi.iter().zip([b1, b2]) {
            let mut solo_params = params;
            solo_params.bandwidth = b;
            let solo = sweep_bucket::compute(&solo_params, &pts).unwrap();
            prop_assert_eq!(grid_out, &solo, "b={}", b);
        }
    }

    /// Collinear degenerate datasets (all points on one horizontal line)
    /// still evaluate exactly.
    #[test]
    fn collinear_points(
        xs in prop::collection::vec(0.0f64..100.0, 1..80),
        line_y in 0.0f64..50.0,
        b in 0.5f64..60.0,
    ) {
        let pts: Vec<Point> = xs.iter().map(|&x| Point::new(x, line_y)).collect();
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 100.0, 50.0), 17, 11).unwrap();
        let params = KdvParams::new(grid, KernelType::Epanechnikov, b);
        let reference = scan(&params, &pts);
        let bucket = sweep_bucket::compute(&params, &pts).unwrap();
        let err = max_scaled_error(&bucket, &reference);
        prop_assert!(err < 1e-9, "err {err}");
    }

    /// All points coincident: the density raster is `n · K(q, p0)`.
    #[test]
    fn coincident_points(
        n in 1usize..200,
        px in 0.0f64..100.0,
        py in 0.0f64..50.0,
        b in 1.0f64..80.0,
    ) {
        let pts = vec![Point::new(px, py); n];
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 100.0, 50.0), 13, 9).unwrap();
        let params = KdvParams::new(grid, KernelType::Quartic, b);
        let out = sweep_bucket::compute(&params, &pts).unwrap();
        for j in 0..9 {
            for i in 0..13 {
                let q = grid.pixel_center(i, j);
                let expect = n as f64 * params.kernel.eval(&q, &pts[0], b);
                let tol = 1e-9 * (n as f64).max(1.0);
                prop_assert!((out.get(i, j) - expect).abs() <= tol);
            }
        }
    }
}
