//! RQS — range-query-based solutions over kd-tree / ball-tree
//! (paper Section 2.2, Table-6 columns `RQS_kd` and `RQS_ball`).
//!
//! For each pixel `q`, find the range set `R(q)` (Eq. 3) with a spatial
//! index and sum the kernel over it (Eq. 4). The index prunes far-away
//! points in practice, but the worst-case complexity stays `O(XYn)` —
//! exactly the gap SLAM closes.

use std::time::Instant;

use kdv_core::driver::KdvParams;
use kdv_core::geom::Point;
use kdv_core::grid::DensityGrid;
use kdv_core::stats::Kahan;
use kdv_core::Result;
use kdv_index::{BallTree, KdTree};

use crate::{check_deadline, Baseline, MethodOutput};

/// Which index backs the range queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RqsIndex {
    /// Bentley's kd-tree.
    KdTree,
    /// Moore's ball-tree.
    BallTree,
}

/// The range-query-based method with a selectable index.
#[derive(Debug, Clone, Copy)]
pub struct Rqs {
    index: RqsIndex,
}

impl Rqs {
    /// `RQS_kd` (kd-tree backend).
    pub const fn kd_tree() -> Self {
        Self { index: RqsIndex::KdTree }
    }

    /// `RQS_ball` (ball-tree backend).
    pub const fn ball_tree() -> Self {
        Self { index: RqsIndex::BallTree }
    }
}

impl Baseline for Rqs {
    fn name(&self) -> &'static str {
        match self.index {
            RqsIndex::KdTree => "RQS_kd",
            RqsIndex::BallTree => "RQS_ball",
        }
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn compute_with_deadline(
        &self,
        params: &KdvParams,
        points: &[Point],
        deadline: Option<Instant>,
    ) -> Result<MethodOutput> {
        params.validate()?;
        kdv_core::driver::validate_points(points)?;
        check_deadline(deadline)?;
        let g = &params.grid;
        let b = params.bandwidth;
        let w = params.weight;
        let kernel = params.kernel;
        let mut out = DensityGrid::zeroed(g.res_x, g.res_y);

        // Build the index once per computation.
        enum Tree {
            Kd(KdTree),
            Ball(BallTree),
        }
        let tree = match self.index {
            RqsIndex::KdTree => Tree::Kd(KdTree::build(points)),
            RqsIndex::BallTree => Tree::Ball(BallTree::build(points)),
        };
        let aux = match &tree {
            Tree::Kd(t) => t.space_bytes(),
            Tree::Ball(t) => t.space_bytes(),
        };

        for j in 0..g.res_y {
            check_deadline(deadline)?;
            for i in 0..g.res_x {
                let q = g.pixel_center(i, j);
                let mut acc = Kahan::new();
                match &tree {
                    Tree::Kd(t) => t.for_each_in_range(&q, b, |p| acc.add(kernel.eval(&q, p, b))),
                    Tree::Ball(t) => t.for_each_in_range(&q, b, |p| acc.add(kernel.eval(&q, p, b))),
                }
                out.set(i, j, w * acc.value());
            }
        }
        Ok(MethodOutput { grid: out, aux_space_bytes: aux })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_reference;
    use kdv_core::{GridSpec, KernelType, Rect};

    fn setup(kernel: KernelType) -> (KdvParams, Vec<Point>) {
        let grid = GridSpec::new(Rect::new(-10.0, -5.0, 30.0, 25.0), 14, 11).unwrap();
        let params = KdvParams::new(grid, kernel, 7.5).with_weight(0.02);
        let mut state = 31u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts =
            (0..400).map(|_| Point::new(-15.0 + next() * 50.0, -10.0 + next() * 40.0)).collect();
        (params, pts)
    }

    #[test]
    fn both_backends_match_scan_for_all_kernels() {
        for kernel in KernelType::ALL {
            let (params, pts) = setup(kernel);
            let reference = scan_reference(&params, &pts);
            for rqs in [Rqs::kd_tree(), Rqs::ball_tree()] {
                let got = rqs.compute(&params, &pts).unwrap();
                let err = kdv_core::stats::max_rel_error(got.grid.values(), reference.values());
                assert!(err < 1e-9, "{} {kernel}: err {err}", rqs.name());
                assert!(got.aux_space_bytes > 0, "index space must be accounted");
            }
        }
    }

    #[test]
    fn empty_dataset() {
        let (params, _) = setup(KernelType::Epanechnikov);
        for rqs in [Rqs::kd_tree(), Rqs::ball_tree()] {
            let got = rqs.compute(&params, &[]).unwrap();
            assert_eq!(got.grid.max_value(), 0.0);
        }
    }

    #[test]
    fn names() {
        assert_eq!(Rqs::kd_tree().name(), "RQS_kd");
        assert_eq!(Rqs::ball_tree().name(), "RQS_ball");
    }
}
