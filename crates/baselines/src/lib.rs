//! # kdv-baselines — the paper's comparator methods (Table 6)
//!
//! Reimplementations of the state-of-the-art methods SLAM is evaluated
//! against, built on the `kdv-index` substrates:
//!
//! | Method       | Module         | Nature |
//! |--------------|----------------|--------|
//! | `SCAN`       | [`scan`]       | exact, naive `O(XYn)` |
//! | `RQS_kd`     | [`rqs`]        | exact, kd-tree range queries |
//! | `RQS_ball`   | [`rqs`]        | exact, ball-tree range queries |
//! | `Z-order`    | [`zsample`]    | approximate, Z-order strided sampling |
//! | `aKDE`       | [`akde`]       | approximate, bounded tree traversal |
//! | `QUAD`       | [`quad`]       | exact, quadratic-bound quadtree |
//!
//! All methods implement the [`Baseline`] trait, and [`AnyMethod`] unifies
//! them with the four SLAM variants so the experiment harness can iterate
//! over the full Table-6 line-up. Every `compute` accepts an optional
//! cooperative deadline, mirroring the paper's 4-hour response-time cap.

pub mod akde;
pub mod quad;
pub mod rqs;
pub mod scan;
pub mod zsample;

use std::time::Instant;

use kdv_core::driver::KdvParams;
use kdv_core::geom::Point;
use kdv_core::grid::DensityGrid;
use kdv_core::{KdvError, Method, Result};

/// Result of one KDV computation plus the method's auxiliary space.
#[derive(Debug, Clone)]
pub struct MethodOutput {
    /// The density raster (exact or approximate depending on the method).
    pub grid: DensityGrid,
    /// Auxiliary heap bytes the method needed beyond the output raster
    /// (index structures, sweep buffers, samples) — the paper's Figure 17
    /// quantity.
    pub aux_space_bytes: usize,
}

/// A KDV method that can fill a raster, optionally racing a deadline.
pub trait Baseline {
    /// Paper-style method name (e.g. `"RQS_kd"`).
    fn name(&self) -> &'static str;

    /// Whether the method produces the exact density raster.
    fn is_exact(&self) -> bool;

    /// Computes the raster; returns [`KdvError::DeadlineExceeded`] if the
    /// cooperative `deadline` fires first (checked between pixel rows).
    fn compute_with_deadline(
        &self,
        params: &KdvParams,
        points: &[Point],
        deadline: Option<Instant>,
    ) -> Result<MethodOutput>;

    /// Computes the raster without a deadline.
    fn compute(&self, params: &KdvParams, points: &[Point]) -> Result<MethodOutput> {
        self.compute_with_deadline(params, points, None)
    }
}

/// Returns `Err(DeadlineExceeded)` when `deadline` has passed.
#[inline]
pub(crate) fn check_deadline(deadline: Option<Instant>) -> Result<()> {
    match deadline {
        Some(d) if Instant::now() >= d => Err(KdvError::DeadlineExceeded),
        _ => Ok(()),
    }
}

/// Every method of the paper's Table 6, unified for the harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnyMethod {
    /// Naive per-pixel scan.
    Scan,
    /// Range-query solution over a kd-tree.
    RqsKd,
    /// Range-query solution over a ball-tree.
    RqsBall,
    /// Z-order strided-sampling approximation with the given sample
    /// fraction (0 < f ≤ 1).
    ZOrder {
        /// Fraction of the dataset kept in the sample.
        sample_fraction: f64,
    },
    /// Gray–Moore bounded traversal with the given absolute kernel-value
    /// tolerance (`0` degenerates to an exact traversal).
    Akde {
        /// Per-point absolute kernel-value tolerance.
        epsilon: f64,
    },
    /// Quadratic-bound quadtree (exact).
    Quad,
    /// One of the four SLAM variants from `kdv-core`.
    Slam(Method),
}

impl AnyMethod {
    /// The paper's Table-6/7 line-up, in column order, with the default
    /// approximation parameters used by the experiment harness.
    pub fn paper_lineup() -> Vec<AnyMethod> {
        vec![
            AnyMethod::Scan,
            AnyMethod::RqsKd,
            AnyMethod::RqsBall,
            AnyMethod::ZOrder { sample_fraction: 0.05 },
            AnyMethod::Akde { epsilon: 1e-6 },
            AnyMethod::Quad,
            AnyMethod::Slam(Method::SlamSort),
            AnyMethod::Slam(Method::SlamBucket),
            AnyMethod::Slam(Method::SlamSortRao),
            AnyMethod::Slam(Method::SlamBucketRao),
        ]
    }

    /// Paper-style display name.
    pub fn name(&self) -> String {
        match self {
            AnyMethod::Scan => "SCAN".into(),
            AnyMethod::RqsKd => "RQS_kd".into(),
            AnyMethod::RqsBall => "RQS_ball".into(),
            AnyMethod::ZOrder { .. } => "Z-order".into(),
            AnyMethod::Akde { .. } => "aKDE".into(),
            AnyMethod::Quad => "QUAD".into(),
            AnyMethod::Slam(m) => m.name().into(),
        }
    }

    /// Whether the method is exact (Z-order and aKDE are approximate).
    pub fn is_exact(&self) -> bool {
        !matches!(self, AnyMethod::ZOrder { .. } | AnyMethod::Akde { .. })
    }

    /// Runs the method, checking the cooperative deadline between rows.
    pub fn compute_with_deadline(
        &self,
        params: &KdvParams,
        points: &[Point],
        deadline: Option<Instant>,
    ) -> Result<MethodOutput> {
        match self {
            AnyMethod::Scan => scan::Scan.compute_with_deadline(params, points, deadline),
            AnyMethod::RqsKd => rqs::Rqs::kd_tree().compute_with_deadline(params, points, deadline),
            AnyMethod::RqsBall => {
                rqs::Rqs::ball_tree().compute_with_deadline(params, points, deadline)
            }
            AnyMethod::ZOrder { sample_fraction } => zsample::ZOrderSampling::new(*sample_fraction)
                .compute_with_deadline(params, points, deadline),
            AnyMethod::Akde { epsilon } => {
                akde::Akde::new(*epsilon).compute_with_deadline(params, points, deadline)
            }
            AnyMethod::Quad => quad::Quad.compute_with_deadline(params, points, deadline),
            AnyMethod::Slam(m) => {
                // SLAM's engines are the fast path and run uninterrupted;
                // honour the deadline by checking before starting.
                check_deadline(deadline)?;
                let grid = kdv_core::KdvEngine::new(*m).compute(params, points)?;
                // aux space: recentred copy + envelope buffer (~O(n) each)
                // plus the y-sorted banded extraction index
                let aux = std::mem::size_of_val(points) * 2
                    + kdv_core::envelope::BandIndex::bytes_for(points.len());
                Ok(MethodOutput { grid, aux_space_bytes: aux })
            }
        }
    }

    /// Runs the method without a deadline.
    pub fn compute(&self, params: &KdvParams, points: &[Point]) -> Result<MethodOutput> {
        self.compute_with_deadline(params, points, None)
    }
}

impl std::fmt::Display for AnyMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Shared reference evaluation used by tests in this crate.
#[cfg(test)]
pub(crate) fn scan_reference(params: &KdvParams, points: &[Point]) -> DensityGrid {
    let g = &params.grid;
    let mut out = DensityGrid::zeroed(g.res_x, g.res_y);
    for j in 0..g.res_y {
        for i in 0..g.res_x {
            let q = g.pixel_center(i, j);
            out.set(i, j, params.kernel.density_scan(&q, points, params.bandwidth, params.weight));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::{GridSpec, KernelType, Rect};

    fn setup() -> (KdvParams, Vec<Point>) {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 40.0, 30.0), 16, 12).unwrap();
        let params = KdvParams::new(grid, KernelType::Epanechnikov, 6.0).with_weight(0.01);
        let mut state = 5u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts = (0..300).map(|_| Point::new(next() * 40.0, next() * 30.0)).collect();
        (params, pts)
    }

    #[test]
    fn exact_methods_agree_with_scan() {
        let (params, pts) = setup();
        let reference = AnyMethod::Scan.compute(&params, &pts).unwrap().grid;
        for m in AnyMethod::paper_lineup() {
            if !m.is_exact() {
                continue;
            }
            let got = m.compute(&params, &pts).unwrap().grid;
            let err = kdv_core::stats::max_rel_error(got.values(), reference.values());
            assert!(err < 1e-9, "{m}: err {err}");
        }
    }

    #[test]
    fn deadline_in_the_past_rejects() {
        let (params, pts) = setup();
        let past = Instant::now() - std::time::Duration::from_secs(1);
        for m in AnyMethod::paper_lineup() {
            let r = m.compute_with_deadline(&params, &pts, Some(past));
            assert!(
                matches!(r, Err(KdvError::DeadlineExceeded)),
                "{m} must respect an expired deadline"
            );
        }
    }

    #[test]
    fn lineup_matches_table6() {
        let names: Vec<String> = AnyMethod::paper_lineup().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            [
                "SCAN",
                "RQS_kd",
                "RQS_ball",
                "Z-order",
                "aKDE",
                "QUAD",
                "SLAM_SORT",
                "SLAM_BUCKET",
                "SLAM_SORT^(RAO)",
                "SLAM_BUCKET^(RAO)"
            ]
        );
    }
}
