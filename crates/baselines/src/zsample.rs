//! Z-order — the data-sampling approximation baseline (Zheng, Jestes,
//! Phillips, Li — SIGMOD 2013).
//!
//! Sort the dataset along the Z-order curve, keep an evenly strided sample
//! of `m = ⌈f·n⌉` points, and evaluate the KDV over the sample with the
//! weight scaled by `n/m`. Because the curve is locality preserving the
//! sample is spatially stratified, which yields the probabilistic error
//! guarantee of the original paper. The reduced evaluation itself still
//! costs `O(XY·m)` — the residual inefficiency SLAM removes.

use std::time::Instant;

use kdv_core::driver::KdvParams;
use kdv_core::geom::Point;
use kdv_core::grid::DensityGrid;
use kdv_core::stats::Kahan;
use kdv_core::Result;
use kdv_index::zorder;

use crate::{check_deadline, Baseline, MethodOutput};

/// Bits per dimension used for Morton quantisation.
const Z_BITS: u32 = 20;

/// The Z-order sampling method.
#[derive(Debug, Clone, Copy)]
pub struct ZOrderSampling {
    /// Fraction of the dataset kept in the sample, clamped to `(0, 1]`.
    sample_fraction: f64,
}

impl ZOrderSampling {
    /// A sampler keeping `fraction` of the points (values outside `(0, 1]`
    /// are clamped; at least one point is always kept).
    pub fn new(fraction: f64) -> Self {
        Self { sample_fraction: fraction.clamp(f64::MIN_POSITIVE, 1.0) }
    }

    /// The configured sample fraction.
    pub fn sample_fraction(&self) -> f64 {
        self.sample_fraction
    }
}

impl Baseline for ZOrderSampling {
    fn name(&self) -> &'static str {
        "Z-order"
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn compute_with_deadline(
        &self,
        params: &KdvParams,
        points: &[Point],
        deadline: Option<Instant>,
    ) -> Result<MethodOutput> {
        params.validate()?;
        kdv_core::driver::validate_points(points)?;
        check_deadline(deadline)?;
        let n = points.len();
        let m = ((n as f64 * self.sample_fraction).ceil() as usize).clamp(usize::from(n > 0), n);

        let zsorted = zorder::sort_by_zorder(points, Z_BITS);
        let sample = zorder::strided_sample(&zsorted, m);
        let aux = (zsorted.capacity() + sample.capacity()) * std::mem::size_of::<Point>();
        drop(zsorted);

        // each sampled point represents n/m originals
        let scale = if m == 0 { 0.0 } else { n as f64 / m as f64 };
        let g = &params.grid;
        let b = params.bandwidth;
        let w = params.weight * scale;
        let kernel = params.kernel;

        let mut out = DensityGrid::zeroed(g.res_x, g.res_y);
        for j in 0..g.res_y {
            check_deadline(deadline)?;
            for i in 0..g.res_x {
                let q = g.pixel_center(i, j);
                let mut acc = Kahan::new();
                for p in &sample {
                    acc.add(kernel.eval(&q, p, b));
                }
                out.set(i, j, w * acc.value());
            }
        }
        Ok(MethodOutput { grid: out, aux_space_bytes: aux })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_reference;
    use kdv_core::{GridSpec, KernelType, Rect};

    fn setup() -> (KdvParams, Vec<Point>) {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 100.0, 100.0), 20, 20).unwrap();
        let params = KdvParams::new(grid, KernelType::Epanechnikov, 25.0).with_weight(1e-3);
        let mut state = 404u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        // mixture: uniform background + two hotspots
        let mut pts = Vec::new();
        for _ in 0..2000 {
            pts.push(Point::new(next() * 100.0, next() * 100.0));
        }
        for _ in 0..2000 {
            pts.push(Point::new(25.0 + next() * 10.0, 25.0 + next() * 10.0));
        }
        for _ in 0..2000 {
            pts.push(Point::new(70.0 + next() * 8.0, 65.0 + next() * 8.0));
        }
        (params, pts)
    }

    #[test]
    fn full_sample_is_exact() {
        let (params, pts) = setup();
        let reference = scan_reference(&params, &pts);
        let got = ZOrderSampling::new(1.0).compute(&params, &pts).unwrap();
        let err = kdv_core::stats::max_rel_error(got.grid.values(), reference.values());
        assert!(err < 1e-9, "err {err}");
    }

    #[test]
    fn partial_sample_approximates_total_mass() {
        // stratified sampling must preserve the total density mass within
        // a few percent on a clustered dataset
        let (params, pts) = setup();
        let exact = scan_reference(&params, &pts).total();
        let approx = ZOrderSampling::new(0.1).compute(&params, &pts).unwrap().grid.total();
        let rel = (approx - exact).abs() / exact;
        assert!(rel < 0.05, "mass error {rel}");
    }

    #[test]
    fn hotspot_location_preserved() {
        let (params, pts) = setup();
        let exact = scan_reference(&params, &pts);
        let approx = ZOrderSampling::new(0.05).compute(&params, &pts).unwrap().grid;
        // argmax pixels must be within 2 pixels of each other
        let argmax = |g: &DensityGrid| {
            let mut best = (0usize, 0usize, f64::MIN);
            for j in 0..g.res_y() {
                for i in 0..g.res_x() {
                    if g.get(i, j) > best.2 {
                        best = (i, j, g.get(i, j));
                    }
                }
            }
            best
        };
        let (ie, je, _) = argmax(&exact);
        let (ia, ja, _) = argmax(&approx);
        assert!(
            ie.abs_diff(ia) <= 2 && je.abs_diff(ja) <= 2,
            "hotspot moved: exact ({ie},{je}) vs approx ({ia},{ja})"
        );
    }

    #[test]
    fn fraction_clamping() {
        assert_eq!(ZOrderSampling::new(5.0).sample_fraction(), 1.0);
        assert!(ZOrderSampling::new(-1.0).sample_fraction() > 0.0);
    }

    #[test]
    fn empty_dataset() {
        let (params, _) = setup();
        let got = ZOrderSampling::new(0.5).compute(&params, &[]).unwrap();
        assert_eq!(got.grid.max_value(), 0.0);
    }
}
