//! aKDE — bounded-traversal approximate KDE (after Gray & Moore, SDM 2003).
//!
//! A single-tree traversal per pixel over the aggregate quadtree. For each
//! node the kernel value of every contained point is bracketed by
//! `[K(max_dist), K(min_dist)]` (the Table-2 kernels are monotonically
//! decreasing in distance). When the bracket width is within the absolute
//! tolerance `ε`, the node's contribution is approximated by
//! `count · (K_lo + K_hi)/2`, guaranteeing a per-point error of at most
//! `ε/2` and hence a total error of at most `w·n·ε/2`; otherwise the
//! traversal recurses. With `ε = 0` every straddling node is expanded and
//! the result is exact (and slow — the configuration the paper's Table 7
//! reflects, where aKDE exceeds the time cap).

use std::time::Instant;

use kdv_core::driver::KdvParams;
use kdv_core::geom::Point;
use kdv_core::grid::DensityGrid;
use kdv_core::kernel::KernelType;
use kdv_core::stats::Kahan;
use kdv_core::Result;
use kdv_index::QuadTree;

use crate::{check_deadline, Baseline, MethodOutput};

/// The aKDE bounded-traversal method.
#[derive(Debug, Clone, Copy)]
pub struct Akde {
    /// Absolute per-point kernel-value tolerance.
    epsilon: f64,
}

impl Akde {
    /// A traversal with absolute kernel-value tolerance `epsilon ≥ 0`.
    pub fn new(epsilon: f64) -> Self {
        Self { epsilon: epsilon.max(0.0) }
    }

    /// Kernel value for a squared distance, assuming `d2 ≤ b²`.
    #[inline]
    fn kernel_at(kernel: KernelType, d2: f64, b: f64) -> f64 {
        let b2 = b * b;
        match kernel {
            KernelType::Uniform => 1.0 / b,
            KernelType::Epanechnikov => 1.0 - d2 / b2,
            KernelType::Quartic => {
                let t = 1.0 - d2 / b2;
                t * t
            }
        }
    }

    fn traverse(
        &self,
        tree: &QuadTree,
        id: u32,
        q: &Point,
        kernel: KernelType,
        b: f64,
        acc: &mut Kahan,
    ) {
        let (bounds, agg, children, (start, end)) = tree.node_info(id);
        if agg.count == 0 {
            return;
        }
        let b2 = b * b;
        let min_d2 = bounds.min_dist_sq(q);
        if min_d2 > b2 {
            return; // entirely outside the bandwidth
        }
        let max_d2 = bounds.max_dist_sq(q);
        if max_d2 <= b2 {
            // entirely inside: bracket by the node's distance extremes
            let k_hi = Self::kernel_at(kernel, min_d2, b);
            let k_lo = Self::kernel_at(kernel, max_d2, b);
            if k_hi - k_lo <= self.epsilon {
                acc.add(agg.count as f64 * 0.5 * (k_hi + k_lo));
                return;
            }
        }
        let is_leaf = children == [u32::MAX; 4];
        if is_leaf {
            for p in tree.points_slice(start, end) {
                let d2 = q.dist_sq(p);
                if d2 <= b2 {
                    acc.add(Self::kernel_at(kernel, d2, b));
                }
            }
            return;
        }
        for child in children {
            if child != u32::MAX {
                self.traverse(tree, child, q, kernel, b, acc);
            }
        }
    }
}

impl Baseline for Akde {
    fn name(&self) -> &'static str {
        "aKDE"
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn compute_with_deadline(
        &self,
        params: &KdvParams,
        points: &[Point],
        deadline: Option<Instant>,
    ) -> Result<MethodOutput> {
        params.validate()?;
        kdv_core::driver::validate_points(points)?;
        check_deadline(deadline)?;
        let g = &params.grid;
        let tree = QuadTree::build(points);
        let aux = tree.space_bytes();
        let mut out = DensityGrid::zeroed(g.res_x, g.res_y);
        if tree.is_empty() {
            return Ok(MethodOutput { grid: out, aux_space_bytes: aux });
        }
        for j in 0..g.res_y {
            check_deadline(deadline)?;
            for i in 0..g.res_x {
                let q = g.pixel_center(i, j);
                let mut acc = Kahan::new();
                self.traverse(&tree, tree.root_id(), &q, params.kernel, params.bandwidth, &mut acc);
                out.set(i, j, params.weight * acc.value());
            }
        }
        Ok(MethodOutput { grid: out, aux_space_bytes: aux })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_reference;
    use kdv_core::{GridSpec, Rect};

    fn setup(kernel: KernelType) -> (KdvParams, Vec<Point>) {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 50.0, 50.0), 15, 15).unwrap();
        let params = KdvParams::new(grid, kernel, 12.0).with_weight(1.0 / 600.0);
        let mut state = 2024u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts = (0..600).map(|_| Point::new(next() * 50.0, next() * 50.0)).collect();
        (params, pts)
    }

    #[test]
    fn zero_epsilon_is_exact() {
        for kernel in KernelType::ALL {
            let (params, pts) = setup(kernel);
            let reference = scan_reference(&params, &pts);
            let got = Akde::new(0.0).compute(&params, &pts).unwrap();
            let err = kdv_core::stats::max_rel_error(got.grid.values(), reference.values());
            assert!(err < 1e-9, "{kernel}: err {err}");
        }
    }

    #[test]
    fn error_bounded_by_epsilon_guarantee() {
        let (params, pts) = setup(KernelType::Epanechnikov);
        let reference = scan_reference(&params, &pts);
        for &eps in &[0.01, 0.1, 0.5] {
            let got = Akde::new(eps).compute(&params, &pts).unwrap().grid;
            // absolute bound: w * n * eps / 2
            let bound = params.weight * pts.len() as f64 * eps * 0.5 + 1e-12;
            for (a, e) in got.values().iter().zip(reference.values()) {
                assert!((a - e).abs() <= bound, "eps={eps}: |{a} - {e}| > {bound}");
            }
        }
    }

    #[test]
    fn looser_epsilon_never_increases_work() {
        // not a strict invariant of wall time, but the loose traversal must
        // still produce *some* density in hot areas
        let (params, pts) = setup(KernelType::Quartic);
        let loose = Akde::new(0.5).compute(&params, &pts).unwrap().grid;
        assert!(loose.max_value() > 0.0);
    }

    #[test]
    fn empty_dataset() {
        let (params, _) = setup(KernelType::Uniform);
        let got = Akde::new(0.01).compute(&params, &[]).unwrap();
        assert_eq!(got.grid.max_value(), 0.0);
    }
}
