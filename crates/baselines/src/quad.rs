//! QUAD — quadratic-bound quadtree KDV (Chan, Cheng, Yiu — SIGMOD 2020),
//! the paper's strongest exact competitor.
//!
//! Per pixel, traverse the aggregate quadtree: subtrees entirely outside
//! the bandwidth circle contribute nothing; subtrees entirely inside
//! contribute in O(1) through the kernel's aggregate decomposition (the
//! quadratic bound is *tight* for fully-covered nodes, so the result stays
//! exact); straddling leaves are evaluated per point. The index is built on
//! recentred coordinates for the same conditioning reason as the SLAM
//! engines.

use std::time::Instant;

use kdv_core::driver::KdvParams;
use kdv_core::geom::Point;
use kdv_core::grid::DensityGrid;
use kdv_core::stats::Kahan;
use kdv_core::Result;
use kdv_index::QuadTree;

use crate::{check_deadline, Baseline, MethodOutput};

/// The QUAD exact method.
#[derive(Debug, Clone, Copy, Default)]
pub struct Quad;

impl Baseline for Quad {
    fn name(&self) -> &'static str {
        "QUAD"
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn compute_with_deadline(
        &self,
        params: &KdvParams,
        points: &[Point],
        deadline: Option<Instant>,
    ) -> Result<MethodOutput> {
        params.validate()?;
        kdv_core::driver::validate_points(points)?;
        check_deadline(deadline)?;
        let g = &params.grid;
        let b = params.bandwidth;
        let w = params.weight;
        let kernel = params.kernel;

        // Recentre for numerical conditioning of the aggregate expansion.
        let center = g.region.center();
        let shifted: Vec<Point> = points.iter().map(|p| p.shifted(center.x, center.y)).collect();
        let tree = QuadTree::build(&shifted);
        let aux = tree.space_bytes() + shifted.capacity() * std::mem::size_of::<Point>();

        let mut out = DensityGrid::zeroed(g.res_x, g.res_y);
        for j in 0..g.res_y {
            check_deadline(deadline)?;
            for i in 0..g.res_x {
                let q = g.pixel_center(i, j).shifted(center.x, center.y);
                // two independent accumulators so the two visitor closures
                // can borrow disjoint state
                let mut node_sum = Kahan::new();
                let mut point_sum = Kahan::new();
                tree.visit_range(
                    &q,
                    b,
                    |agg| node_sum.add(kernel.density_from_aggregates(&q, agg, b, 1.0)),
                    |p| point_sum.add(kernel.eval(&q, p, b)),
                );
                out.set(i, j, w * (node_sum.value() + point_sum.value()));
            }
        }
        Ok(MethodOutput { grid: out, aux_space_bytes: aux })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_reference;
    use kdv_core::{GridSpec, KernelType, Rect};

    fn setup(kernel: KernelType, b: f64) -> (KdvParams, Vec<Point>) {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 60.0, 45.0), 20, 15).unwrap();
        let params = KdvParams::new(grid, kernel, b).with_weight(1.0 / 700.0);
        let mut state = 77u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts: Vec<Point> =
            (0..500).map(|_| Point::new(next() * 60.0, next() * 45.0)).collect();
        // hotspot clump: exercises the fully-inside O(1) path heavily
        for _ in 0..200 {
            pts.push(Point::new(30.0 + next() * 2.0, 20.0 + next() * 2.0));
        }
        (params, pts)
    }

    #[test]
    fn matches_scan_for_all_kernels_and_bandwidths() {
        for kernel in KernelType::ALL {
            for &b in &[2.0, 10.0, 80.0] {
                let (params, pts) = setup(kernel, b);
                let reference = scan_reference(&params, &pts);
                let got = Quad.compute(&params, &pts).unwrap();
                let err = kdv_core::stats::max_rel_error(got.grid.values(), reference.values());
                assert!(err < 1e-9, "{kernel} b={b}: err {err}");
            }
        }
    }

    #[test]
    fn large_coordinates_stay_conditioned() {
        // city-scale projected coordinates (~5e5 metres): the recentring
        // must keep the quartic decomposition accurate
        let grid = GridSpec::new(Rect::new(500_000.0, 4_000_000.0, 510_000.0, 4_008_000.0), 16, 12)
            .unwrap();
        let params = KdvParams::new(grid, KernelType::Quartic, 1500.0).with_weight(1e-4);
        let mut pts = Vec::new();
        for i in 0..300 {
            pts.push(Point::new(
                500_000.0 + (i * 37 % 10_000) as f64,
                4_000_000.0 + (i * 91 % 8_000) as f64,
            ));
        }
        let reference = scan_reference(&params, &pts);
        let got = Quad.compute(&params, &pts).unwrap();
        let err = kdv_core::stats::max_rel_error(got.grid.values(), reference.values());
        assert!(err < 1e-8, "err {err}");
    }

    #[test]
    fn empty_dataset() {
        let (params, _) = setup(KernelType::Epanechnikov, 5.0);
        let got = Quad.compute(&params, &[]).unwrap();
        assert_eq!(got.grid.max_value(), 0.0);
    }
}
