//! SCAN — the naive `O(XYn)` baseline (Table 6).
//!
//! For every pixel, scans the entire dataset and sums the kernel directly.
//! This is the reference implementation every exact method is tested
//! against, and the slowest column of the paper's Table 7.

use std::time::Instant;

use kdv_core::driver::KdvParams;
use kdv_core::geom::Point;
use kdv_core::grid::DensityGrid;
use kdv_core::Result;

use crate::{check_deadline, Baseline, MethodOutput};

/// The naive per-pixel scan method.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scan;

impl Baseline for Scan {
    fn name(&self) -> &'static str {
        "SCAN"
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn compute_with_deadline(
        &self,
        params: &KdvParams,
        points: &[Point],
        deadline: Option<Instant>,
    ) -> Result<MethodOutput> {
        params.validate()?;
        kdv_core::driver::validate_points(points)?;
        check_deadline(deadline)?;
        let g = &params.grid;
        let mut out = DensityGrid::zeroed(g.res_x, g.res_y);
        for j in 0..g.res_y {
            check_deadline(deadline)?;
            for i in 0..g.res_x {
                let q = g.pixel_center(i, j);
                out.set(
                    i,
                    j,
                    params.kernel.density_scan(&q, points, params.bandwidth, params.weight),
                );
            }
        }
        Ok(MethodOutput { grid: out, aux_space_bytes: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::{GridSpec, KernelType, Rect};

    #[test]
    fn single_point_density_profile() {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8).unwrap();
        let params = KdvParams::new(grid, KernelType::Epanechnikov, 4.0);
        let p = grid.pixel_center(3, 3);
        let out = Scan.compute(&params, &[p]).unwrap().grid;
        // at the point itself the kernel is 1
        assert!((out.get(3, 3) - 1.0).abs() < 1e-12);
        // one pixel away (gap 1): 1 - 1/16
        assert!((out.get(4, 3) - (1.0 - 1.0 / 16.0)).abs() < 1e-12);
        // beyond bandwidth
        assert_eq!(out.get(7, 7), 0.0);
    }

    #[test]
    fn zero_aux_space() {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 4.0, 4.0), 2, 2).unwrap();
        let params = KdvParams::new(grid, KernelType::Uniform, 1.0);
        let out = Scan.compute(&params, &[Point::new(1.0, 1.0)]).unwrap();
        assert_eq!(out.aux_space_bytes, 0);
    }

    #[test]
    fn weight_scales_linearly() {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 4.0, 4.0), 4, 4).unwrap();
        let pts = [Point::new(2.0, 2.0), Point::new(1.0, 1.0)];
        let p1 = KdvParams::new(grid, KernelType::Quartic, 3.0).with_weight(1.0);
        let p2 = p1.with_weight(2.5);
        let a = Scan.compute(&p1, &pts).unwrap().grid;
        let b = Scan.compute(&p2, &pts).unwrap().grid;
        for (x, y) in a.values().iter().zip(b.values()) {
            assert!((y - 2.5 * x).abs() < 1e-12);
        }
    }
}
