//! Pinning tests for degenerate inputs to the baseline methods: every
//! `AnyMethod` must reject invalid parameters with a typed error (never a
//! panic) and produce finite rasters for empty inputs and single-pixel
//! grids — the same contracts `crates/core/tests/edge_cases.rs` pins for
//! the sweep engines.

use kdv_baselines::AnyMethod;
use kdv_core::driver::KdvParams;
use kdv_core::{GridSpec, KdvError, KernelType, Point, Rect};

fn methods() -> Vec<AnyMethod> {
    vec![
        AnyMethod::Scan,
        AnyMethod::RqsKd,
        AnyMethod::RqsBall,
        AnyMethod::Quad,
        AnyMethod::ZOrder { sample_fraction: 1.0 },
        AnyMethod::Akde { epsilon: 1e-6 },
    ]
}

fn spec(res_x: usize, res_y: usize) -> GridSpec {
    GridSpec::new(Rect::new(0.0, 0.0, 100.0, 80.0), res_x, res_y).unwrap()
}

fn some_points() -> Vec<Point> {
    vec![Point::new(10.0, 20.0), Point::new(50.0, 40.0), Point::new(99.0, 79.0)]
}

#[test]
fn empty_input_yields_an_all_zero_grid() {
    for kernel in KernelType::ALL {
        let params = KdvParams::new(spec(12, 9), kernel, 30.0);
        for method in methods() {
            let out = method.compute(&params, &[]).unwrap();
            assert!(
                out.grid.values().iter().all(|&v| v == 0.0),
                "{}/{kernel:?}: empty input must produce exact zeros",
                method.name()
            );
        }
    }
}

#[test]
fn non_positive_or_non_finite_bandwidth_is_a_typed_error() {
    let pts = some_points();
    for bad in [0.0, -2.0, f64::NAN, f64::INFINITY] {
        let params = KdvParams::new(spec(6, 6), KernelType::Quartic, bad);
        for method in methods() {
            assert!(
                matches!(method.compute(&params, &pts), Err(KdvError::InvalidBandwidth(_))),
                "{} with b={bad}: expected InvalidBandwidth",
                method.name()
            );
        }
    }
}

#[test]
fn non_finite_points_are_a_typed_error() {
    let pts = vec![Point::new(0.0, 0.0), Point::new(0.0, f64::INFINITY)];
    let params = KdvParams::new(spec(6, 6), KernelType::Epanechnikov, 25.0);
    for method in methods() {
        assert!(
            matches!(method.compute(&params, &pts), Err(KdvError::NonFinitePoint { index: 1 })),
            "{} must reject the infinite point",
            method.name()
        );
    }
}

#[test]
fn single_pixel_grid_stays_finite_and_matches_scan() {
    let pts = some_points();
    for kernel in KernelType::ALL {
        let params = KdvParams::new(spec(1, 1), kernel, 80.0);
        let reference = AnyMethod::Scan.compute(&params, &pts).unwrap().grid;
        let expected = reference.values()[0];
        for method in methods() {
            let out = method.compute(&params, &pts).unwrap();
            assert_eq!(out.grid.values().len(), 1);
            let got = out.grid.values()[0];
            assert!(got.is_finite(), "{}/{kernel:?}: non-finite pixel", method.name());
            if method.is_exact() {
                let err = (got - expected).abs() / expected.abs().max(1e-300);
                assert!(err < 1e-6, "{}/{kernel:?}: {got} vs {expected}", method.name());
            }
        }
    }
}

#[test]
fn degenerate_one_row_and_one_column_grids_stay_finite() {
    let pts = some_points();
    for (rx, ry) in [(1usize, 7usize), (7, 1)] {
        let params = KdvParams::new(spec(rx, ry), KernelType::Uniform, 55.0);
        for method in methods() {
            let out = method.compute(&params, &pts).unwrap();
            assert_eq!(out.grid.values().len(), rx * ry);
            assert!(
                out.grid.values().iter().all(|v| v.is_finite()),
                "{} {rx}x{ry}: non-finite output",
                method.name()
            );
        }
    }
}

#[test]
fn zorder_full_fraction_on_empty_input_does_not_panic() {
    // sampling from an empty point set is the classic divide-by-zero spot
    let params = KdvParams::new(spec(4, 4), KernelType::Epanechnikov, 10.0);
    for fraction in [0.05, 0.5, 1.0] {
        let out = AnyMethod::ZOrder { sample_fraction: fraction }.compute(&params, &[]).unwrap();
        assert!(out.grid.values().iter().all(|&v| v == 0.0));
    }
}

#[test]
fn akde_zero_epsilon_matches_scan_exactly_in_budget() {
    // epsilon = 0 forces aKDE to full traversal: it must agree with SCAN
    // to summation roundoff even on degenerate grids
    let pts = some_points();
    let params = KdvParams::new(spec(1, 5), KernelType::Quartic, 70.0);
    let reference = AnyMethod::Scan.compute(&params, &pts).unwrap().grid;
    let got = AnyMethod::Akde { epsilon: 0.0 }.compute(&params, &pts).unwrap().grid;
    let peak = reference.values().iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    for (a, b) in got.values().iter().zip(reference.values()) {
        assert!((a - b).abs() <= 1e-9 * peak.max(1.0));
    }
}
