//! Concurrency stress for the tile cache and server: many threads hammer
//! a deliberately tiny cache so entries are constantly evicted and
//! recomputed, and every returned viewport must still be bitwise-equal to
//! a fresh computation. A wall-clock guard turns a deadlock or livelock
//! into a test failure instead of a hung CI job.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kdv_core::{DensityGrid, KernelType, Point, Rect};
use kdv_serve::{PyramidSpec, ServeConfig, TileServer, Viewport};

const STRESS_BUDGET: Duration = Duration::from_secs(120);

fn points(n: usize, seed: u64) -> Vec<Point> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Point::new(next() * 90.0, next() * 90.0)).collect()
}

fn make_server(cache_bytes: usize) -> TileServer {
    let pyramid = PyramidSpec::new(Rect::new(0.0, 0.0, 90.0, 90.0), 8, 40, 40, 2).unwrap();
    let config =
        ServeConfig { dataset: 42, kernel: KernelType::Quartic, bandwidth: 11.0, weight: 0.01 };
    TileServer::new(pyramid, config, points(250, 0x57E55), cache_bytes, 4)
}

/// Every viewport a stress worker may request, paired with its fresh
/// (uncached) reference raster.
fn workload(server: &TileServer) -> Vec<(Viewport, DensityGrid)> {
    let reference = make_server(usize::MAX / 4); // effectively uncapped twin
    let mut out = Vec::new();
    for zoom in 0..=2u8 {
        let (rx, ry) = server.pyramid().level_res(zoom);
        for (px, py, w, h) in [(0, 0, 24, 24), (rx / 3, ry / 4, 19, 23), (rx / 2, 0, 17, 31)] {
            let vp = Viewport { zoom, px, py, width: w.min(rx - px), height: h.min(ry - py) };
            let (grid, _) = reference.serve_viewport(&vp, 1).unwrap();
            out.push((vp, grid));
        }
    }
    out
}

#[test]
fn hammered_small_cache_serves_exact_tiles_without_deadlock() {
    let server = Arc::new(make_server(24 * 1024)); // holds only a handful of tiles
    let cases = Arc::new(workload(&server));
    let deadline = Instant::now() + STRESS_BUDGET;
    let failed = Arc::new(AtomicBool::new(false));

    let threads = 8;
    let iterations = 60;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let server = Arc::clone(&server);
            let cases = Arc::clone(&cases);
            let failed = Arc::clone(&failed);
            handles.push(scope.spawn(move || {
                for i in 0..iterations {
                    if Instant::now() > deadline || failed.load(Ordering::Relaxed) {
                        return;
                    }
                    // walk the workload in a thread-specific order so
                    // threads collide on different tiles at any instant
                    let (vp, want) = &cases[(i * (t + 3) + t) % cases.len()];
                    let (got, _) = server.serve_viewport(vp, 1).unwrap();
                    if got != *want {
                        failed.store(true, Ordering::Relaxed);
                        panic!("thread {t} iteration {i}: served bits != fresh bits for {vp:?}");
                    }
                    // the budget must hold at every instant, mid-churn
                    let (bytes, budget) = (server.cache().bytes(), server.cache().budget());
                    if bytes > budget {
                        failed.store(true, Ordering::Relaxed);
                        panic!("thread {t}: cache {bytes} B over budget {budget} B");
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("stress worker panicked");
        }
    });

    assert!(
        Instant::now() <= deadline,
        "stress run exceeded its {STRESS_BUDGET:?} wall-clock guard (livelock?)"
    );
    assert!(!failed.load(Ordering::Relaxed));
    let stats = server.cache_stats();
    assert!(stats.evictions() > 0, "budget was never exercised — misconfigured stress");
    assert!(stats.hits() > 0, "cache never hit — misconfigured stress");
    assert!(server.cache().bytes() <= server.cache().budget());
}

#[test]
fn concurrent_first_requests_agree_bitwise() {
    // All threads race the very first computation of the same viewport
    // (shared level context is built lazily, under contention).
    let server = Arc::new(make_server(1 << 20));
    let vp = Viewport { zoom: 2, px: 31, py: 17, width: 40, height: 35 };
    let grids: Vec<DensityGrid> = std::thread::scope(|scope| {
        (0..8)
            .map(|_| {
                let server = Arc::clone(&server);
                scope.spawn(move || server.serve_viewport(&vp, 1).unwrap().0)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("racer panicked"))
            .collect()
    });
    let fresh = make_server(1 << 20).serve_viewport(&vp, 1).unwrap().0;
    for (i, g) in grids.iter().enumerate() {
        assert_eq!(*g, fresh, "racer {i} diverged");
    }
}
