//! Regression tests for the exact/approximate tier boundary.
//!
//! With a coreset overview tier at zoom threshold `z`, serving zoom `z`
//! (last coreset level) and `z+1` (first exact level) for the same
//! viewport must carry the correct tier metadata, and the cache must
//! never return a coreset tile for an exact-tier key: the `TileTier`
//! discriminant in the key is what keeps the two point sets from
//! aliasing, and the 8-thread hammer here churns a tiny cache across the
//! boundary to prove it holds under concurrent eviction and recompute.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kdv_core::sweep_bucket;
use kdv_core::{DensityGrid, KernelType, Point, Rect};
use kdv_coreset::CoresetMethod;
use kdv_serve::{OverviewConfig, PyramidSpec, ServeConfig, TileServer, TileTier, Viewport};

const STRESS_BUDGET: Duration = Duration::from_secs(120);

/// Zoom threshold of the overview tier: zoom ≤ 1 is coreset, zoom 2 is
/// exact.
const THRESHOLD: u8 = 1;

fn points(n: usize, seed: u64) -> Vec<Point> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Point::new(next() * 90.0, next() * 90.0)).collect()
}

fn make_server(cache_bytes: usize) -> TileServer {
    let pyramid = PyramidSpec::new(Rect::new(0.0, 0.0, 90.0, 90.0), 8, 40, 40, 2).unwrap();
    let config =
        ServeConfig { dataset: 42, kernel: KernelType::Quartic, bandwidth: 11.0, weight: 0.01 };
    let overview = OverviewConfig {
        max_zoom: THRESHOLD,
        method: CoresetMethod::Sort,
        target_rel_epsilon: 0.02,
        seed: 9,
    };
    TileServer::with_overview_coreset(
        pyramid,
        config,
        points(250, 0x57E55),
        cache_bytes,
        4,
        overview,
    )
    .unwrap()
}

/// The exact monolithic raster of one level, cropped to the viewport.
fn exact_crop(server: &TileServer, vp: &Viewport, pts: &[Point]) -> DensityGrid {
    let cfg = server.config();
    let params = server.pyramid().level_params(vp.zoom, cfg.kernel, cfg.bandwidth, cfg.weight);
    let full = sweep_bucket::compute(&params, pts).unwrap();
    let mut out = DensityGrid::zeroed(vp.width, vp.height);
    for j in 0..vp.height {
        out.row_mut(j).copy_from_slice(&full.row(vp.py + j)[vp.px..vp.px + vp.width]);
    }
    out
}

/// The same pixel window requested at the last coreset level and the
/// first exact level must both carry correct tier metadata; the exact
/// side must be bitwise-equal to the monolithic raster and the coreset
/// side within its advertised ε.
#[test]
fn boundary_zooms_carry_correct_tier_metadata() {
    let server = make_server(1 << 22);
    let pts = points(250, 0x57E55);
    let vp_coreset = Viewport { zoom: THRESHOLD, px: 8, py: 12, width: 40, height: 32 };
    // the same geographic window one level deeper (pixel coords double)
    let vp_exact = Viewport { zoom: THRESHOLD + 1, px: 16, py: 24, width: 80, height: 64 };

    let (approx, _, tier_lo) = server.serve_viewport_tiered(&vp_coreset, 1).unwrap();
    assert_eq!(tier_lo.tier, TileTier::Coreset);
    let eps = tier_lo.epsilon.expect("coreset tier must advertise epsilon");
    assert!(eps > 0.0 && eps.is_finite());
    assert!(tier_lo.coreset_size.unwrap() <= 250);
    let reference = exact_crop(&server, &vp_coreset, &pts);
    let sup = approx
        .values()
        .iter()
        .zip(reference.values())
        .map(|(a, r)| (a - r).abs())
        .fold(0.0f64, f64::max);
    assert!(sup <= eps, "coreset level: sup {sup:e} > advertised {eps:e}");

    let (exact, _, tier_hi) = server.serve_viewport_tiered(&vp_exact, 1).unwrap();
    assert_eq!(tier_hi.tier, TileTier::Exact);
    assert_eq!(tier_hi.epsilon, None);
    assert_eq!(tier_hi.coreset_size, None);
    assert_eq!(exact, exact_crop(&server, &vp_exact, &pts), "exact tier must stay bitwise");
}

/// 8 threads hammer a tiny cache with interleaved requests at the
/// boundary zooms. Exact-tier responses must stay bitwise-equal to the
/// monolithic raster at every instant — if eviction churn ever let a
/// coreset tile answer an exact-tier key, the sup-error of that response
/// would be far above zero and the bitwise check would catch it.
#[test]
fn hammered_tier_boundary_never_leaks_coreset_tiles_into_exact_keys() {
    let server = Arc::new(make_server(24 * 1024)); // tiny: constant churn
    let pts = points(250, 0x57E55);

    // workload straddles the boundary: coreset level and exact level
    let mut cases: Vec<(Viewport, DensityGrid, TileTier)> = Vec::new();
    for (zoom, tier) in [(THRESHOLD, TileTier::Coreset), (THRESHOLD + 1, TileTier::Exact)] {
        let (rx, ry) = server.pyramid().level_res(zoom);
        for (px, py, w, h) in [(0, 0, 24, 24), (rx / 3, ry / 4, 19, 23), (rx / 2, 0, 17, 31)] {
            let vp = Viewport { zoom, px, py, width: w.min(rx - px), height: h.min(ry - py) };
            cases.push((vp, exact_crop(&server, &vp, &pts), tier));
        }
    }
    let eps = server.tier_info(THRESHOLD).epsilon.unwrap();
    let cases = Arc::new(cases);
    let deadline = Instant::now() + STRESS_BUDGET;
    let failed = Arc::new(AtomicBool::new(false));

    let threads = 8;
    let iterations = 60;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let server = Arc::clone(&server);
            let cases = Arc::clone(&cases);
            let failed = Arc::clone(&failed);
            handles.push(scope.spawn(move || {
                for i in 0..iterations {
                    if Instant::now() > deadline || failed.load(Ordering::Relaxed) {
                        return;
                    }
                    let (vp, want, tier) = &cases[(i * (t + 3) + t) % cases.len()];
                    let (got, _, info) = server.serve_viewport_tiered(vp, 1).unwrap();
                    if info.tier != *tier {
                        failed.store(true, Ordering::Relaxed);
                        panic!("thread {t}: {vp:?} reported tier {:?}", info.tier);
                    }
                    let ok = match tier {
                        // bitwise: a leaked coreset tile cannot pass this
                        TileTier::Exact => got == *want,
                        // within ε: a leaked exact tile would pass (it is
                        // strictly closer), so also check metadata above
                        TileTier::Coreset => got
                            .values()
                            .iter()
                            .zip(want.values())
                            .all(|(a, r)| (a - r).abs() <= eps),
                    };
                    if !ok {
                        failed.store(true, Ordering::Relaxed);
                        panic!("thread {t} iteration {i}: tier contract violated for {vp:?}");
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("stress worker panicked");
        }
    });

    assert!(
        Instant::now() <= deadline,
        "stress run exceeded its {STRESS_BUDGET:?} wall-clock guard (livelock?)"
    );
    assert!(!failed.load(Ordering::Relaxed));
    let stats = server.cache_stats();
    assert!(stats.evictions() > 0, "budget was never exercised — misconfigured stress");
}
