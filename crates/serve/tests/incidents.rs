//! Trigger-injection tests for the flight recorder's incident dumps.
//!
//! Each test *injects* the failure its trigger watches for — a zero
//! deadline forces a shed, a 1 ns p99 target forces an SLO breach, a
//! depth-1 queue under an open-loop burst forces a queue-full shed —
//! and asserts exactly one incident file appears, validates against the
//! Chrome-trace JSON schema, and carries the offending request's
//! context (trigger kind, request id, `serve.request` span, exemplar).
//!
//! These tests toggle the process-global flight recorder, so every one
//! of them holds `kdv_obs::span::exclusive()` for its whole body and
//! they live in this dedicated integration binary (one process), never
//! alongside unit tests that could interleave.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use kdv_core::{KernelType, Point, Rect};
use kdv_obs::ring;
use kdv_obs::{IncidentConfig, SloTargets, SloTracker};
use kdv_serve::{
    Frontend, FrontendConfig, PyramidSpec, ServeConfig, ServeError, ShedReason, TileServer,
    Viewport,
};

fn points(n: usize) -> Vec<Point> {
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Point::new(next() * 80.0, next() * 80.0)).collect()
}

fn make_server() -> Arc<TileServer> {
    let pyramid = PyramidSpec::new(Rect::new(0.0, 0.0, 80.0, 80.0), 16, 48, 48, 2).unwrap();
    let config = ServeConfig {
        dataset: 31,
        kernel: KernelType::Epanechnikov,
        bandwidth: 10.0,
        weight: 0.004,
    };
    Arc::new(TileServer::new(pyramid, config, points(200), 1 << 22, 4))
}

fn temp_incident_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdv-incidents-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn incident_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|entries| entries.filter_map(|e| e.ok()).map(|e| e.path()).collect())
        .unwrap_or_default();
    files.sort();
    files
}

fn read_valid_incident(path: &PathBuf) -> String {
    let body = std::fs::read_to_string(path).unwrap();
    kdv_obs::validate_json(&body)
        .unwrap_or_else(|off| panic!("incident not valid JSON at byte {off}: {body}"));
    assert!(body.contains("\"displayTimeUnit\":\"ms\""), "not a Chrome trace: {body}");
    assert!(body.contains("\"traceEvents\":["), "not a Chrome trace: {body}");
    body
}

#[test]
fn injected_deadline_shed_dumps_exactly_one_incident_with_the_span_tree() {
    let _x = kdv_obs::span::exclusive();
    let dir = temp_incident_dir("deadline");
    ring::clear();
    ring::arm_incidents(IncidentConfig::new(dir.clone()));

    let fe = Frontend::new(
        make_server(),
        FrontendConfig { workers: 1, deadline: Some(Duration::ZERO), ..FrontendConfig::default() },
    );
    let vp = Viewport { zoom: 1, px: 0, py: 0, width: 40, height: 40 };
    // Two shed requests inside the cooldown: the first dumps, the second
    // is suppressed — "exactly one incident per injected failure burst".
    for _ in 0..2 {
        match fe.serve(vp) {
            Err(ServeError::Shed(ShedReason::DeadlineExceeded)) => {}
            other => panic!("expected deadline shed, got {other:?}"),
        }
    }
    drop(fe);
    ring::disarm_incidents();

    let files = incident_files(&dir);
    assert_eq!(files.len(), 1, "expected exactly one dump, got {files:?}");
    let name = files[0].file_name().unwrap().to_str().unwrap();
    assert!(name.starts_with("incident-0000-shed-deadline"), "{name}");
    let body = read_valid_incident(&files[0]);
    // the dump names the trigger and the offending request id...
    assert!(body.contains("\"trigger\":\"shed.deadline\""), "{body}");
    assert!(body.contains("\"request_id\":1"), "{body}");
    // ...and contains that request's span, tagged as shed
    assert!(body.contains("\"serve.request\""), "{body}");
    assert!(body.contains("\"req\":1"), "{body}");
    assert!(body.contains("\"shed\":1"), "{body}");
    ring::clear();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_slo_breach_dumps_exactly_one_incident_with_the_exemplar() {
    let _x = kdv_obs::span::exclusive();
    let dir = temp_incident_dir("slo");
    ring::clear();
    ring::arm_incidents(IncidentConfig::new(dir.clone()));

    let fe = Frontend::new(make_server(), FrontendConfig { workers: 1, ..Default::default() });
    // 1 ns p99 target: every completed request is slow, the windowed p99
    // crosses the target on the first completion — one breach edge.
    fe.set_slo(Arc::new(SloTracker::uniform(10_000_000_000, SloTargets { p50_ns: 1, p99_ns: 1 })));
    let vp = Viewport { zoom: 1, px: 0, py: 0, width: 40, height: 40 };
    for _ in 0..3 {
        fe.serve(vp).expect("served");
    }
    drop(fe);
    ring::disarm_incidents();

    let files = incident_files(&dir);
    assert_eq!(files.len(), 1, "sustained breach must dump once, got {files:?}");
    let name = files[0].file_name().unwrap().to_str().unwrap();
    assert!(name.contains("slo-p99"), "{name}");
    let body = read_valid_incident(&files[0]);
    assert!(body.contains("\"trigger\":\"slo.p99\""), "{body}");
    assert!(body.contains("\"request_id\":1"), "{body}");
    // the offending request's exemplar links its id and class...
    assert!(body.contains("\"exemplars\":[{\"request_id\":1,\"class\":\"exact\""), "{body}");
    // ...to its captured span tree (the request span and the tile-server
    // spans under it)
    assert!(body.contains("\"serve.request\""), "{body}");
    assert!(body.contains("\"req\":1"), "{body}");
    assert!(body.contains("\"serve.viewport\""), "{body}");
    ring::clear();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_queue_full_shed_dumps_an_incident() {
    let _x = kdv_obs::span::exclusive();
    let dir = temp_incident_dir("queue");
    ring::clear();
    ring::arm_incidents(IncidentConfig::new(dir.clone()));

    let fe = Frontend::new(
        make_server(),
        FrontendConfig { workers: 1, queue_depth: 1, ..FrontendConfig::default() },
    );
    let vp = Viewport { zoom: 2, px: 0, py: 0, width: 96, height: 96 };
    let mut pending = Vec::new();
    let mut shed = false;
    for _ in 0..10_000 {
        match fe.submit(vp) {
            Ok(t) => pending.push(t),
            Err(ServeError::Shed(ShedReason::QueueFull)) => {
                shed = true;
                break;
            }
            Err(other) => panic!("unexpected {other:?}"),
        }
    }
    assert!(shed, "a depth-1 queue never rejected an open-loop burst");
    for t in pending {
        t.wait().expect("accepted request must be served");
    }
    drop(fe);
    ring::disarm_incidents();

    let files = incident_files(&dir);
    assert_eq!(files.len(), 1, "one burst, one dump: {files:?}");
    let body = read_valid_incident(&files[0]);
    assert!(body.contains("\"trigger\":\"shed.queue_full\""), "{body}");
    ring::clear();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unarmed_serving_writes_no_incidents_and_rings_stay_off() {
    let _x = kdv_obs::span::exclusive();
    ring::clear();
    assert!(!ring::recording());
    let fe = Frontend::new(
        make_server(),
        FrontendConfig { workers: 1, deadline: Some(Duration::ZERO), ..FrontendConfig::default() },
    );
    let vp = Viewport { zoom: 1, px: 0, py: 0, width: 40, height: 40 };
    let _ = fe.serve(vp);
    drop(fe);
    let (trace, overwritten) = ring::snapshot(u64::MAX);
    assert!(trace.events.is_empty(), "rings recorded while off: {trace:?}");
    assert_eq!(overwritten, 0);
    ring::clear();
}
