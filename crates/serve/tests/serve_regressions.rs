//! Pinned regressions for the serving layer.
//!
//! * Counter rollover: a long-lived cache whose counters approach
//!   `u64::MAX` must keep reporting monotone, non-wrapping statistics
//!   (the boundary is faked through [`kdv_serve::CacheStats::force`] —
//!   nobody serves 2⁶⁴ requests in a test).
//! * Thread-count independence: a `--threads 1` server must produce the
//!   same bytes as a multi-threaded one, miss or hit.

use kdv_core::{KernelType, Point, Rect};
use kdv_serve::{PyramidSpec, ServeConfig, TileServer, Viewport};

fn points(n: usize) -> Vec<Point> {
    let mut state = 0x5EA5_1DEu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Point::new(next() * 70.0, next() * 70.0)).collect()
}

fn make_server() -> TileServer {
    let pyramid = PyramidSpec::new(Rect::new(0.0, 0.0, 70.0, 70.0), 16, 48, 48, 2).unwrap();
    let config =
        ServeConfig { dataset: 3, kernel: KernelType::Epanechnikov, bandwidth: 9.0, weight: 0.005 };
    TileServer::new(pyramid, config, points(220), 1 << 22, 4)
}

#[test]
fn cache_hit_after_counter_rollover_reports_monotone_counters() {
    let server = make_server();
    let vp = Viewport { zoom: 1, px: 4, py: 4, width: 40, height: 40 };

    // warm the cache, then push the counters to the u64 boundary
    server.serve_viewport(&vp, 1).unwrap();
    server.cache_stats().force(u64::MAX - 1, u64::MAX - 1, u64::MAX);

    let before = (
        server.cache_stats().hits(),
        server.cache_stats().misses(),
        server.cache_stats().evictions(),
    );
    // an all-hits request at the boundary: hits MAX-1 -> saturates at MAX
    let (_, report) = server.serve_viewport(&vp, 1).unwrap();
    let after = (
        server.cache_stats().hits(),
        server.cache_stats().misses(),
        server.cache_stats().evictions(),
    );

    // cumulative counters never decrease (no wrap to ~0)...
    assert!(after.0 >= before.0, "hits wrapped: {before:?} -> {after:?}");
    assert!(after.1 >= before.1, "misses wrapped: {before:?} -> {after:?}");
    assert!(after.2 >= before.2, "evictions wrapped: {before:?} -> {after:?}");
    assert_eq!(after.0, u64::MAX, "hits must saturate at the boundary");
    // ...and the per-request report deltas stay sane (no underflow into
    // astronomically large counts)
    let looked_up = 9; // 3x3 tiles of 16 at zoom 1
    assert!(report.cache_hits <= looked_up, "delta hits {} implausible", report.cache_hits);
    assert!(report.cache_misses <= looked_up, "delta misses {} implausible", report.cache_misses);

    // saturated counters stay pinned through further traffic
    server.serve_viewport(&vp, 1).unwrap();
    assert_eq!(server.cache_stats().hits(), u64::MAX);
    assert!(server.cache_stats().misses() >= u64::MAX - 1);
}

#[test]
fn single_threaded_serve_matches_multi_threaded_bitwise() {
    let viewports = [
        Viewport { zoom: 0, px: 0, py: 0, width: 48, height: 48 },
        Viewport { zoom: 1, px: 11, py: 23, width: 61, height: 37 },
        Viewport { zoom: 2, px: 80, py: 5, width: 100, height: 90 },
    ];
    // separate servers so both sides compute every tile from cold
    let solo = make_server();
    let fleet = make_server();
    for vp in &viewports {
        let (a, _) = solo.serve_viewport(vp, 1).unwrap();
        let (b, _) = fleet.serve_viewport(vp, 6).unwrap();
        let a_bits: Vec<u64> = a.values().iter().map(|v| v.to_bits()).collect();
        let b_bits: Vec<u64> = b.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a_bits, b_bits, "{vp:?}: threads=1 vs threads=6 cold");
        // and warm (cache-assembled) responses agree across thread counts too
        let (aw, _) = solo.serve_viewport(vp, 6).unwrap();
        let (bw, _) = fleet.serve_viewport(vp, 1).unwrap();
        assert_eq!(aw, a, "{vp:?}: warm solo diverged");
        assert_eq!(bw, b, "{vp:?}: warm fleet diverged");
    }
}
