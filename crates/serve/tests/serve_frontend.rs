//! Concurrency hammer for the serving layer.
//!
//! Satellite of the single-flight work: N threads serve overlapping
//! viewports against ONE `TileServer` and the results must be
//! bitwise-equal to a sequential server, with the single-flight
//! counters proving each band was computed exactly once — concurrent
//! misses on the same band join the in-flight compute instead of
//! duplicating it, and per-request cache deltas stay attributed to the
//! request that caused them (hits + misses always equals the request's
//! own tile count, never a smeared global diff).

use std::sync::Arc;

use kdv_core::{KernelType, Point, Rect};
use kdv_serve::{
    Frontend, FrontendConfig, PyramidSpec, ServeConfig, Session, SessionRequest, TileServer,
    Viewport,
};

fn points(n: usize) -> Vec<Point> {
    let mut state = 0xABCDu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Point::new(next() * 80.0, next() * 80.0)).collect()
}

fn make_server() -> Arc<TileServer> {
    let pyramid = PyramidSpec::new(Rect::new(0.0, 0.0, 80.0, 80.0), 16, 48, 48, 2).unwrap();
    let config = ServeConfig {
        dataset: 7,
        kernel: KernelType::Epanechnikov,
        bandwidth: 10.0,
        weight: 0.004,
    };
    Arc::new(TileServer::new(pyramid, config, points(250), 1 << 22, 4))
}

/// Tile count of a viewport with 16-px tiles.
fn tiles_of(vp: &Viewport) -> u64 {
    let cols = (vp.px + vp.width - 1) / 16 - vp.px / 16 + 1;
    let rows = (vp.py + vp.height - 1) / 16 - vp.py / 16 + 1;
    (cols * rows) as u64
}

#[test]
fn hammer_overlapping_viewports_single_flight_and_bitwise_equal() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 3;

    // eight viewports at zoom 1, all overlapping tile rows 0..=3
    let viewports: Vec<Viewport> = (0..THREADS)
        .map(|i| Viewport {
            zoom: 1,
            px: (i * 4) % 32,
            py: 10 + (i % 3) * 2,
            width: 60,
            height: 40,
        })
        .collect();

    let shared = make_server();
    let grids: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = viewports
            .iter()
            .map(|vp| {
                let server = Arc::clone(&shared);
                scope.spawn(move || {
                    let mut last = None;
                    for _ in 0..ROUNDS {
                        let (grid, report) = server.serve_viewport(vp, 2).unwrap();
                        // per-request attribution: this request's deltas
                        // cover exactly its own tiles, regardless of what
                        // the other 7 threads are doing to the shared cache
                        assert_eq!(
                            report.cache_hits + report.cache_misses,
                            tiles_of(vp),
                            "{vp:?}: deltas must sum to the request's tile count"
                        );
                        last = Some(grid);
                    }
                    last.unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("hammer thread panicked")).collect()
    });

    // bitwise-equal to a sequential cold server, viewport by viewport
    let sequential = make_server();
    for (vp, grid) in viewports.iter().zip(&grids) {
        let (reference, _) = sequential.serve_viewport(vp, 1).unwrap();
        let got: Vec<u64> = grid.values().iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = reference.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "{vp:?}: concurrent bits diverge from sequential");
    }

    // single-flight: the 8 threads' viewports span exactly tile rows
    // 0..=3 of zoom 1, so exactly 4 band computes — every other miss on
    // those bands must have joined an in-flight compute or hit cache
    let flights = shared.flight_stats();
    assert_eq!(flights.computed(), 4, "each overlapped band computed exactly once");
    assert_eq!(
        flights.duplicate_computes(),
        0,
        "a band was swept twice despite the single-flight table"
    );
}

#[test]
fn frontend_replay_of_sessions_matches_sequential_ground_truth() {
    // four pan sessions over the same zoom-2 stripe, as in
    // traces/pan_sessions.trace but against the test pyramid
    let sessions: Vec<Session> = (0..4u32)
        .map(|id| Session {
            id,
            requests: (0..5)
                .map(|step| SessionRequest {
                    think_ms: 0,
                    viewport: Viewport {
                        zoom: 2,
                        px: (id as usize * 16 + step * 24) % 96,
                        py: 64 + (id as usize % 2) * 16,
                        width: 80,
                        height: 64,
                    },
                })
                .collect(),
        })
        .collect();

    let (seq, conc) = kdv_serve::replay::replay_both(
        make_server,
        FrontendConfig { workers: 4, queue_depth: 64, ..FrontendConfig::default() },
        &sessions,
    );
    assert_eq!(seq.len(), conc.len());
    for (s, c) in seq.iter().zip(&conc) {
        assert_eq!((s.session, s.seq), (c.session, c.seq));
        assert_eq!(s.outcome, c.outcome, "session {} seq {} bits diverged", s.session, s.seq);
        assert!(
            matches!(s.outcome, kdv_serve::ReplayOutcome::Served { .. }),
            "all requests must be served"
        );
    }
}

#[test]
fn saturation_produces_explicit_load_shed_not_latency() {
    let fe = Frontend::new(
        make_server(),
        FrontendConfig { workers: 1, queue_depth: 2, ..FrontendConfig::default() },
    );
    let vp = Viewport { zoom: 2, px: 0, py: 0, width: 96, height: 96 };
    let mut accepted = Vec::new();
    let mut shed = 0u64;
    for _ in 0..5_000 {
        match fe.submit(vp) {
            Ok(t) => accepted.push(t),
            Err(kdv_serve::ServeError::Shed(kdv_serve::ShedReason::QueueFull)) => shed += 1,
            Err(other) => panic!("unexpected {other:?}"),
        }
        if shed >= 8 {
            break;
        }
    }
    assert!(shed >= 8, "an open-loop burst never saturated a depth-2 queue");
    assert_eq!(fe.stats().shed_queue_full(), shed);
    for t in accepted {
        t.wait().expect("accepted requests still complete under overload");
    }
}
