//! Concurrency hammer for the streaming tile server: 7 serving threads
//! and 1 appender interleave on one [`LiveTileServer`], and every single
//! response must be a **pure generation** — bitwise-equal to the
//! canonical rebuild of some state the stream actually passed through,
//! never a torn mix of pre- and post-append tiles.
//!
//! The appender seals a known sequence of batches, so the full set of
//! legal response checksums (per viewport × per generation) is
//! precomputable by cold replay through [`kdv_stream::rebuild_grid`].
//! A response whose tiles straddled an append would checksum to a value
//! outside that set.
//!
//! Single-flight discipline must also hold under fire: flights are keyed
//! by `(zoom, band, generation)`, and the cache is sized to hold the
//! current generation's working set (patching retires stale-generation
//! tiles in place), so no `(band, generation)` is ever computed twice —
//! the duplicate counter stays at exactly zero.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use kdv_core::digest::grid_checksum;
use kdv_core::{DensityGrid, KernelType, Point, Rect};
use kdv_serve::{LiveConfig, LiveTileServer, PyramidSpec, ServeConfig, Viewport};
use kdv_stream::{rebuild_grid, StreamingPointSet};

fn points(n: usize, seed: u64) -> Vec<Point> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Point::new(next() * 100.0, next() * 100.0)).collect()
}

fn pyramid() -> PyramidSpec {
    PyramidSpec::new(Rect::new(0.0, 0.0, 100.0, 100.0), 16, 48, 48, 1).unwrap()
}

fn config() -> ServeConfig {
    ServeConfig { dataset: 7, kernel: KernelType::Epanechnikov, bandwidth: 14.0, weight: 0.005 }
}

/// Crops the canonical rebuild of `set`'s current state to `vp`.
fn reference(set: &StreamingPointSet, vp: &Viewport) -> DensityGrid {
    let params = pyramid().level_params(vp.zoom, config().kernel, 14.0, 0.005);
    let full = rebuild_grid(&params, &set.snapshot()).unwrap();
    let mut out = DensityGrid::zeroed(vp.width, vp.height);
    for j in 0..vp.height {
        out.row_mut(j).copy_from_slice(&full.row(vp.py + j)[vp.px..vp.px + vp.width]);
    }
    out
}

#[test]
fn hammered_live_server_never_serves_a_torn_generation() {
    const GENERATIONS: usize = 24;
    const SERVE_THREADS: usize = 7;

    let base = points(300, 0xBADC0FFE);
    let batches: Vec<Vec<Point>> =
        (0..GENERATIONS).map(|g| points(3, 0xA11CE ^ (g as u64) << 8)).collect();
    let viewports = [
        Viewport { zoom: 0, px: 0, py: 0, width: 48, height: 48 },
        Viewport { zoom: 1, px: 13, py: 29, width: 61, height: 50 },
    ];

    // Every legal response checksum: per viewport, per generation the
    // stream will pass through, computed by cold replay.
    let mut legal: HashMap<u64, (usize, usize)> = HashMap::new();
    let mut replay = StreamingPointSet::new(base.clone());
    for g in 0..=GENERATIONS {
        if g > 0 {
            replay.append(&batches[g - 1]);
        }
        for (v, vp) in viewports.iter().enumerate() {
            legal.insert(grid_checksum(&reference(&replay, vp)), (v, g));
        }
    }

    // Cache sized to hold the current generation's full working set with
    // headroom (patching retires stale generations in place, so the
    // live working set is one generation's tiles per level).
    let server = Arc::new(LiveTileServer::new(
        pyramid(),
        config(),
        LiveConfig::default(),
        base,
        512 << 10,
        4,
    ));

    let done = Arc::new(AtomicBool::new(false));
    let appender = {
        let server = Arc::clone(&server);
        let done = Arc::clone(&done);
        let batches = batches.clone();
        thread::spawn(move || {
            for batch in &batches {
                server.append(batch);
                thread::yield_now();
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    let servers: Vec<_> = (0..SERVE_THREADS)
        .map(|t| {
            let server = Arc::clone(&server);
            let done = Arc::clone(&done);
            let legal = legal.clone();
            let viewports = viewports;
            thread::spawn(move || {
                let mut served = 0usize;
                let mut rounds_after_done = 0;
                while rounds_after_done < 2 {
                    if done.load(Ordering::SeqCst) {
                        rounds_after_done += 1;
                    }
                    for (v, vp) in viewports.iter().enumerate() {
                        let (grid, _report) = server.serve_viewport(vp, 1).unwrap();
                        let sum = grid_checksum(&grid);
                        let hit = legal.get(&sum);
                        assert!(
                            matches!(hit, Some(&(lv, _)) if lv == v),
                            "thread {t}: response for viewport {v} is a torn mix \
                             (checksum {sum:#x} matches no pure generation)"
                        );
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();

    appender.join().unwrap();
    let total_served: usize = servers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_served >= SERVE_THREADS * 2, "hammer actually served traffic");

    // No (band, generation) may ever be computed twice.
    assert_eq!(
        server.flight_stats().duplicate_computes(),
        0,
        "duplicate band computes under concurrency"
    );
    // The run must actually exercise the patch path, not just recompute.
    assert!(server.live_stats().patched_bands() > 0, "hammer never patched a band");

    // And the settled state is bitwise the final rebuild.
    let mut final_set = StreamingPointSet::new(points(300, 0xBADC0FFE));
    for batch in &batches {
        final_set.append(batch);
    }
    for vp in &viewports {
        let (grid, _) = server.serve_viewport(vp, 0).unwrap();
        assert_eq!(grid, reference(&final_set, vp), "settled serve diverged from rebuild");
    }
}

#[test]
fn hammer_with_expirations_and_compaction_stays_pure() {
    // A smaller variant that mixes appends, expirations and a forced
    // compaction; every post-compaction response must equal the fresh
    // rebuild of the live set (the epoch-rebase contract).
    let base = points(200, 0x5EED);
    let server = Arc::new(LiveTileServer::new(
        pyramid(),
        config(),
        LiveConfig { patching: true, compact_every: None },
        base,
        512 << 10,
        4,
    ));
    let vp = Viewport { zoom: 1, px: 0, py: 0, width: 96, height: 48 };

    let threads: Vec<_> = (0..4)
        .map(|t| {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                for i in 0..6 {
                    if t == 0 {
                        // the single mutator: appends, expirations, and a
                        // mid-run compaction
                        server.append(&points(2, (t * 31 + i) as u64 + 1));
                        if i == 3 {
                            server.compact();
                        } else if i % 2 == 1 {
                            server.expire_oldest(1);
                        }
                    }
                    server.serve_viewport(&vp, 1).unwrap();
                }
            })
        })
        .collect();
    for handle in threads {
        handle.join().unwrap();
    }

    assert_eq!(server.flight_stats().duplicate_computes(), 0);
    // The canonical reference for the settled state: the epoch base
    // (frozen at the compaction) plus the batches sealed after it,
    // replayed through a fresh stream — bitwise what the server must
    // serve.
    let snapshot = server.snapshot();
    let mut fresh = StreamingPointSet::new(snapshot.base.as_ref().clone());
    for batch in &snapshot.batches {
        fresh.apply_signed(&batch.points, &batch.weights).unwrap();
    }
    let (grid, _) = server.serve_viewport(&vp, 0).unwrap();
    assert_eq!(grid, reference(&fresh, &vp), "post-compaction serve diverged from fresh rebuild");
}
