//! The concurrent serving front end: a worker pool over one
//! [`TileServer`] with a **bounded** admission queue, per-request
//! deadlines and explicit load-shedding.
//!
//! The design goal is that overload degrades to *fast, explicit
//! rejection* rather than unbounded latency: a full queue rejects at
//! submit time ([`ShedReason::QueueFull`]), and a request that waited in
//! the queue past its deadline is rejected when a worker picks it up
//! ([`ShedReason::DeadlineExceeded`]) instead of being served late into a
//! viewport nobody is looking at any more. Queue depth therefore bounds
//! the worst accepted wait to `depth × slowest-request`, and everything
//! beyond that is a counted rejection, not a growing tail.
//!
//! Duplicate work across concurrent requests is handled one layer down:
//! the [`TileServer`]'s single-flight band table means two workers
//! serving overlapping viewports share one band sweep — the front end
//! adds admission control and parallel execution, not coordination.
//!
//! Metrics (process-global registry): counters `serve.submitted`,
//! `serve.completed`, `serve.shed.queue_full`, `serve.shed.deadline`;
//! histograms `serve.queue_wait_ns` (time spent queued) and the
//! server-level `serve.request_ns`.
//!
//! Observability: every admitted request gets a process-unique **request
//! id** and is executed under a `serve.request` span carrying it (`req`
//! argument), so a flight-recorder incident dump ties the request id in
//! its trigger context to the exact span tree of that request. A shed
//! fires the `shed.queue_full` / `shed.deadline` incident triggers; an
//! attached [`SloTracker`] ([`Frontend::set_slo`]) records each
//! completion's submit-to-finish latency under its request class and
//! fires `slo.p99` on a breach edge. Triggers fire *after* the request
//! span has closed into the ring, so the offending span tree is always
//! part of its own dump.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kdv_core::telemetry::SweepReport;
use kdv_core::{DensityGrid, KdvError};
use kdv_obs::{RequestClass, SloTracker};

use crate::cache::TileTier;
use crate::pyramid::Viewport;
use crate::server::TileServer;

/// Why a request was rejected without being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue was full at submit time.
    QueueFull,
    /// The request waited in the queue past its deadline.
    DeadlineExceeded,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "admission queue full"),
            ShedReason::DeadlineExceeded => write!(f, "queued past deadline"),
        }
    }
}

/// How a front-end request can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Load-shed: rejected explicitly, never computed.
    Shed(ShedReason),
    /// The underlying tile server failed the request.
    Compute(KdvError),
    /// The front end shut down before the request was served.
    Closed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shed(reason) => write!(f, "request shed: {reason}"),
            ServeError::Compute(e) => write!(f, "request failed: {e}"),
            ServeError::Closed => write!(f, "front end closed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A served viewport: the raster plus the per-request report.
pub type ServeResult = Result<(DensityGrid, SweepReport), ServeError>;

/// Front-end configuration.
#[derive(Debug, Clone, Copy)]
pub struct FrontendConfig {
    /// Worker threads consuming the queue (`0` = one, clamped).
    pub workers: usize,
    /// Bounded queue capacity; submits beyond it are rejected
    /// (`0` = 1, clamped — admission control needs at least one slot).
    pub queue_depth: usize,
    /// Per-request deadline measured from submit; `None` = no deadline.
    /// A request still queued when its deadline passes is shed.
    pub deadline: Option<Duration>,
    /// Sweep threads each worker hands to `serve_viewport`
    /// (`0` = auto). Workers already parallelise across requests, so the
    /// default for a loaded front end is 1.
    pub threads_per_request: usize,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self { workers: 4, queue_depth: 64, deadline: None, threads_per_request: 1 }
    }
}

/// Saturating front-end counters.
#[derive(Debug, Default)]
pub struct FrontendStats {
    submitted: kdv_obs::Counter,
    completed: kdv_obs::Counter,
    shed_queue_full: kdv_obs::Counter,
    shed_deadline: kdv_obs::Counter,
}

impl FrontendStats {
    /// Requests accepted into the queue.
    pub fn submitted(&self) -> u64 {
        self.submitted.get()
    }

    /// Requests served to completion (ok or compute error).
    pub fn completed(&self) -> u64 {
        self.completed.get()
    }

    /// Requests rejected at submit because the queue was full.
    pub fn shed_queue_full(&self) -> u64 {
        self.shed_queue_full.get()
    }

    /// Requests rejected at dequeue because their deadline had passed.
    pub fn shed_deadline(&self) -> u64 {
        self.shed_deadline.get()
    }

    /// All load-shed rejections.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full().saturating_add(self.shed_deadline())
    }
}

/// One-shot completion slot a submitter waits on.
struct TicketState {
    slot: Mutex<Option<ServeResult>>,
    done: Condvar,
}

/// Handle to one accepted request; [`Ticket::wait`] blocks until a
/// worker completes (or sheds) it.
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    fn new() -> (Ticket, Arc<TicketState>) {
        let state = Arc::new(TicketState { slot: Mutex::new(None), done: Condvar::new() });
        (Ticket { state: Arc::clone(&state) }, state)
    }

    /// Blocks until the request completes and returns its outcome.
    pub fn wait(self) -> ServeResult {
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        while slot.is_none() {
            slot = self.state.done.wait(slot).expect("ticket poisoned");
        }
        slot.take().expect("completed")
    }
}

fn complete(state: &TicketState, result: ServeResult) {
    let mut slot = state.slot.lock().expect("ticket poisoned");
    *slot = Some(result);
    state.done.notify_all();
}

/// A queued request.
struct Job {
    id: u64,
    viewport: Viewport,
    submitted: Instant,
    ticket: Arc<TicketState>,
}

struct Inner {
    server: Arc<TileServer>,
    config: FrontendConfig,
    queue: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    shutdown: AtomicBool,
    stats: FrontendStats,
    next_id: AtomicU64,
    slo: OnceLock<Arc<SloTracker>>,
}

/// The worker-pool serving front end. Dropping it shuts the pool down:
/// queued-but-unserved requests complete with [`ServeError::Closed`].
pub struct Frontend {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Frontend {
    /// Spawns `config.workers` workers over `server`.
    pub fn new(server: Arc<TileServer>, config: FrontendConfig) -> Self {
        let inner = Arc::new(Inner {
            server,
            config,
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: FrontendStats::default(),
            next_id: AtomicU64::new(1),
            slo: OnceLock::new(),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Frontend { inner, workers }
    }

    /// The front-end counters.
    pub fn stats(&self) -> &FrontendStats {
        &self.inner.stats
    }

    /// The server this front end drives.
    pub fn server(&self) -> &Arc<TileServer> {
        &self.inner.server
    }

    /// The configuration the pool runs under.
    pub fn config(&self) -> &FrontendConfig {
        &self.inner.config
    }

    /// Attaches an SLO tracker: workers record every completion's
    /// submit-to-finish latency under its request class (exact /
    /// coreset, by the zoom's serving tier) and fire the `slo.p99`
    /// incident trigger on a breach edge. One-shot — later calls are
    /// ignored (the pool is already recording against the first).
    pub fn set_slo(&self, slo: Arc<SloTracker>) {
        let _ = self.inner.slo.set(slo);
    }

    /// The attached SLO tracker, if any.
    pub fn slo(&self) -> Option<&Arc<SloTracker>> {
        self.inner.slo.get()
    }

    /// Submits one viewport request. Returns a [`Ticket`] if admitted;
    /// rejects immediately with [`ShedReason::QueueFull`] when the
    /// bounded queue is at capacity (explicit load shedding — the caller
    /// learns *now*, instead of waiting behind an unbounded backlog).
    pub fn submit(&self, viewport: Viewport) -> Result<Ticket, ServeError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::Closed);
        }
        let depth = self.inner.config.queue_depth.max(1);
        let mut queue = self.inner.queue.lock().expect("front-end queue poisoned");
        if queue.len() >= depth {
            self.inner.stats.shed_queue_full.bump();
            kdv_obs::metrics::global().counter("serve.shed.queue_full").bump();
            drop(queue);
            kdv_obs::ring::trigger("shed.queue_full", None);
            return Err(ServeError::Shed(ShedReason::QueueFull));
        }
        let (ticket, state) = Ticket::new();
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        queue.push_back(Job { id, viewport, submitted: Instant::now(), ticket: state });
        self.inner.stats.submitted.bump();
        kdv_obs::metrics::global().counter("serve.submitted").bump();
        drop(queue);
        self.inner.not_empty.notify_one();
        Ok(ticket)
    }

    /// Convenience: submit and block for the result.
    pub fn serve(&self, viewport: Viewport) -> ServeResult {
        self.submit(viewport)?.wait()
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.not_empty.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers are gone; fail anything still queued so no submitter
        // blocks on a ticket nobody will complete.
        let mut queue = self.inner.queue.lock().expect("front-end queue poisoned");
        for job in queue.drain(..) {
            complete(&job.ticket, Err(ServeError::Closed));
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("front-end queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = inner.not_empty.wait(queue).expect("front-end queue poisoned");
            }
        };
        let waited = job.submitted.elapsed();
        let metrics = kdv_obs::metrics::global();
        metrics.histogram("serve.queue_wait_ns").record(waited.as_nanos() as u64);
        // The serve.request span must close (landing in the flight-
        // recorder ring) before any trigger fires, so the dump of a shed
        // or breach contains the offending request's own span tree.
        let mut shed = false;
        let result = {
            let mut span = kdv_obs::span1("serve.request", "req", job.id);
            span.arg("wait_us", waited.as_micros() as u64);
            if inner.config.deadline.is_some_and(|deadline| waited > deadline) {
                shed = true;
                span.arg("shed", 1);
                Err(ServeError::Shed(ShedReason::DeadlineExceeded))
            } else {
                inner
                    .server
                    .serve_viewport(&job.viewport, inner.config.threads_per_request)
                    .map_err(ServeError::Compute)
            }
        };
        if shed {
            inner.stats.shed_deadline.bump();
            metrics.counter("serve.shed.deadline").bump();
            kdv_obs::ring::trigger("shed.deadline", Some(job.id));
        } else {
            inner.stats.completed.bump();
            metrics.counter("serve.completed").bump();
            if let Some(slo) = inner.slo.get() {
                let latency_ns = job.submitted.elapsed().as_nanos() as u64;
                let class = match inner.server.tier_of(job.viewport.zoom) {
                    TileTier::Exact => RequestClass::Exact,
                    TileTier::Coreset => RequestClass::Coreset,
                };
                if slo.record(class, latency_ns, job.id).breached {
                    kdv_obs::ring::trigger("slo.p99", Some(job.id));
                }
            }
        }
        complete(&job.ticket, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pyramid::PyramidSpec;
    use crate::server::ServeConfig;
    use kdv_core::{KernelType, Point, Rect};

    fn points(n: usize) -> Vec<Point> {
        let mut state = 0xFEEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::new(next() * 100.0, next() * 100.0)).collect()
    }

    fn server() -> Arc<TileServer> {
        let pyramid = PyramidSpec::new(Rect::new(0.0, 0.0, 100.0, 100.0), 16, 48, 48, 2).unwrap();
        let config = ServeConfig {
            dataset: 11,
            kernel: KernelType::Epanechnikov,
            bandwidth: 12.0,
            weight: 0.004,
        };
        Arc::new(TileServer::new(pyramid, config, points(200), 1 << 22, 4))
    }

    #[test]
    fn serves_through_the_pool_and_matches_direct() {
        let srv = server();
        let fe = Frontend::new(Arc::clone(&srv), FrontendConfig::default());
        let vp = Viewport { zoom: 1, px: 7, py: 9, width: 50, height: 40 };
        let (grid, report) = fe.serve(vp).expect("served");
        assert_eq!(report.cache_hits + report.cache_misses, 16, "4x4 tiles of 16 at zoom 1");
        let reference = server().serve_viewport(&vp, 1).unwrap().0;
        assert_eq!(grid, reference, "front-end bits differ from direct serve");
        assert_eq!(fe.stats().completed(), 1);
        assert_eq!(fe.stats().shed(), 0);
    }

    #[test]
    fn zero_deadline_sheds_every_queued_request() {
        let fe = Frontend::new(
            server(),
            FrontendConfig { deadline: Some(Duration::ZERO), ..FrontendConfig::default() },
        );
        let vp = Viewport { zoom: 0, px: 0, py: 0, width: 20, height: 20 };
        // any nonzero queue wait exceeds a zero deadline
        match fe.serve(vp) {
            Err(ServeError::Shed(ShedReason::DeadlineExceeded)) => {}
            other => panic!("expected deadline shed, got {other:?}"),
        }
        assert_eq!(fe.stats().shed_deadline(), 1);
        assert_eq!(fe.stats().completed(), 0);
    }

    #[test]
    fn full_queue_rejects_at_submit() {
        let fe = Frontend::new(
            server(),
            FrontendConfig { workers: 1, queue_depth: 1, ..FrontendConfig::default() },
        );
        let vp = Viewport { zoom: 2, px: 0, py: 0, width: 96, height: 96 };
        // open-loop burst: keep submitting without waiting until the
        // depth-1 queue turns one away (bounded by a generous cap so a
        // regression fails rather than spins forever)
        let mut pending = Vec::new();
        let mut shed = false;
        for _ in 0..10_000 {
            match fe.submit(vp) {
                Ok(t) => pending.push(t),
                Err(ServeError::Shed(ShedReason::QueueFull)) => {
                    shed = true;
                    break;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(shed, "a depth-1 queue never rejected an open-loop burst");
        assert!(fe.stats().shed_queue_full() >= 1);
        // every *accepted* request still completes
        for t in pending {
            t.wait().expect("accepted request must be served");
        }
    }

    #[test]
    fn drop_fails_queued_requests_instead_of_hanging() {
        let fe = Frontend::new(
            server(),
            FrontendConfig { workers: 1, queue_depth: 64, ..FrontendConfig::default() },
        );
        let vp = Viewport { zoom: 2, px: 0, py: 0, width: 96, height: 96 };
        let tickets: Vec<Ticket> = (0..16).filter_map(|_| fe.submit(vp).ok()).collect();
        drop(fe);
        for t in tickets {
            match t.wait() {
                Ok(_) | Err(ServeError::Closed) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn submit_after_close_is_rejected() {
        let fe = Frontend::new(server(), FrontendConfig::default());
        let inner = Arc::clone(&fe.inner);
        drop(fe);
        assert!(inner.shutdown.load(Ordering::Acquire));
    }
}
