//! # kdv-serve — exact cached tile serving over the SLAM sweep engines
//!
//! The serving layer the paper's interactive motivation (pan/zoom KDV
//! exploration) calls for, built so that caching never costs exactness:
//!
//! * [`pyramid`] — zoom levels over a fixed region, each an exact raster
//!   of the same point set (coarse levels are never downsampled).
//! * [`cache`] — sharded, byte-budgeted LRU of computed tiles, keyed by
//!   the full provenance of a tile's bits.
//! * [`server`] — viewport assembly; misses compute whole tile row bands
//!   with `kdv_core::tile::compute_band`, so one miss prefetches the
//!   band's horizontal neighbours.
//! * [`trace`] — recorded viewport sequences (v1 single-stream, v2
//!   multi-session with think times) for `kdv serve --batch` replay and
//!   the tile benchmarks.
//! * [`frontend`] — concurrent serving front end: a worker pool over a
//!   bounded admission queue with per-request deadlines and explicit
//!   load shedding.
//! * [`replay`] — sequential and concurrent trace replayers that
//!   checksum every served grid so the two modes can be proven
//!   bitwise-identical.
//! * [`flight`] — the generic single-flight table behind band compute,
//!   shared by the frozen-set and streaming servers.
//! * [`live`] — streaming ingestion: a [`live::LiveTileServer`] over a
//!   `kdv_stream::StreamingPointSet` that **patches** cached tiles with
//!   delta sweeps instead of invalidating them, every response
//!   bitwise-equal to a rebuild from scratch.
//!
//! The invariant tying it together: a served viewport is bitwise-equal to
//! cropping the monolithic `sweep_bucket` raster of its level, for any
//! cache state, tile size and thread count. `crates/conformance` holds
//! the tile path to that contract under the exact (ULP-zero) policy.

pub mod cache;
pub mod flight;
pub mod frontend;
pub mod live;
pub mod pyramid;
pub mod replay;
pub mod server;
pub mod trace;

pub use cache::{CacheStats, InsertOutcome, TileCache, TileKey, TileTier};
pub use flight::{Flight, FlightStats, FlightTable};
pub use frontend::{
    Frontend, FrontendConfig, FrontendStats, ServeError, ServeResult, ShedReason, Ticket,
};
pub use live::{LiveConfig, LiveStats, LiveTileServer};
pub use pyramid::{PyramidSpec, TileCoord, Viewport};
pub use replay::{checksum, replay_concurrent, replay_sequential, ReplayOutcome, ReplayRecord};
pub use server::{OverviewConfig, ServeConfig, TierInfo, TileServer};
pub use trace::{Session, SessionRequest, TraceFile};
