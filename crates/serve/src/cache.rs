//! Sharded, byte-budgeted LRU cache of computed tiles.
//!
//! The cache key is the full provenance of a tile's bits — dataset,
//! kernel, bandwidth, weight and pyramid coordinate — so a hit is
//! guaranteed bitwise-equal to a fresh computation (the tile compute
//! layer is deterministic and viewport-independent; see
//! `kdv_core::tile`). Float parameters are keyed by their **bit
//! patterns**: two bandwidths that differ by one ULP are different
//! computations and must not alias.
//!
//! Concurrency: the key space is split across `shards` independent
//! `Mutex`-protected LRU maps (shard = key hash high bits), so writers on
//! different shards never contend and a band insert holds one lock at a
//! time. Each shard enforces `budget / shards` bytes by evicting from the
//! cold end of its intrusive LRU list; a tile larger than a whole shard
//! budget is rejected outright (it would evict everything and then be
//! evicted itself the moment anything else arrived).
//!
//! Hit/miss/eviction/rejection counters are **saturating** (they stick
//! at `u64::MAX` rather than wrapping), keeping reported statistics
//! monotone over the cache's lifetime however long it serves; the
//! regression test `serve_regressions::rollover` pins this via
//! [`CacheStats::force`].

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use kdv_core::tile::Tile;
use kdv_core::KernelType;

use crate::pyramid::TileCoord;

/// Which point set a tile's bits were computed from: the full dataset
/// (exact) or its ε-coreset (approximate overview tier). Part of the
/// cache key so an approximate tile can never be returned for an
/// exact-tier lookup, even if every other parameter matches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TileTier {
    /// Computed from the full point set — bitwise-equal to the
    /// monolithic raster.
    #[default]
    Exact,
    /// Computed from the dataset's ε-coreset — within the advertised
    /// sup-error bound of exact.
    Coreset,
}

impl TileTier {
    /// Stable lowercase name for metadata and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            TileTier::Exact => "exact",
            TileTier::Coreset => "coreset",
        }
    }
}

/// Full provenance of a tile's bits — the cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileKey {
    /// Identifier of the (immutable) point set the tile was computed from.
    pub dataset: u64,
    /// Spatial kernel.
    pub kernel: KernelType,
    /// Bandwidth as a bit pattern (ULP-exact keying).
    pub bandwidth_bits: u64,
    /// Normalisation weight as a bit pattern.
    pub weight_bits: u64,
    /// Pyramid address of the tile.
    pub coord: TileCoord,
    /// Exact or coreset provenance (see [`TileTier`]).
    pub tier: TileTier,
    /// Delta generation of the point set the tile was computed from
    /// (always 0 for frozen-set servers). Streaming servers bump the
    /// generation on every sealed mutation batch and every compaction,
    /// so a tile of an older state of the data can never alias a fresh
    /// one — lookups for generation `g` simply miss (or get patched
    /// forward via [`TileCache::patch`]).
    pub generation: u64,
}

impl TileKey {
    /// Builds an exact-tier key from float parameters (stored as bit
    /// patterns); use [`TileKey::with_tier`] for coreset-tier keys.
    pub fn new(
        dataset: u64,
        kernel: KernelType,
        bandwidth: f64,
        weight: f64,
        coord: TileCoord,
    ) -> Self {
        Self {
            dataset,
            kernel,
            bandwidth_bits: bandwidth.to_bits(),
            weight_bits: weight.to_bits(),
            coord,
            tier: TileTier::Exact,
            generation: 0,
        }
    }

    /// The same key re-tiered (builder style).
    pub fn with_tier(mut self, tier: TileTier) -> Self {
        self.tier = tier;
        self
    }

    /// The same key at a different delta generation (builder style).
    pub fn with_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }
}

/// Saturating cache counters, shared by all shards. Built on the
/// saturating [`kdv_obs::Counter`] — once a counter reaches `u64::MAX`
/// it stays there; wrapping would make long-lived statistics
/// non-monotone.
///
/// `evictions` means **displacement**: an entry that was cached and then
/// pushed out to keep the shard inside its budget. An oversized tile that
/// was never admitted counts under `rejected` instead — conflating the
/// two would make a cache that admits nothing look like one that churns.
///
/// `patched` counts in-place advances of a cached tile to a newer delta
/// generation ([`TileCache::patch`]). A patch reuses bits the cache
/// already paid for, so it is **neither** a miss nor a fresh insert —
/// counting it as miss+insert would make the hit rate lie about how much
/// sweep work streaming actually saved.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: kdv_obs::Counter,
    misses: kdv_obs::Counter,
    evictions: kdv_obs::Counter,
    rejected: kdv_obs::Counter,
    patched: kdv_obs::Counter,
}

impl CacheStats {
    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Entries displaced from the cache to stay inside the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Inserts refused outright (tile larger than one shard's budget) —
    /// the tile was computed, never cached, and dropped.
    pub fn rejected(&self) -> u64 {
        self.rejected.get()
    }

    /// Cached tiles advanced in place to a newer delta generation —
    /// reused bits, not misses and not fresh inserts.
    pub fn patched(&self) -> u64 {
        self.patched.get()
    }

    /// Test hook: forces the raw counter values (e.g. to the `u64`
    /// boundary) so rollover behaviour can be exercised without serving
    /// 2⁶⁴ requests. Not for production use.
    pub fn force(&self, hits: u64, misses: u64, evictions: u64) {
        self.hits.force(hits);
        self.misses.force(misses);
        self.evictions.force(evictions);
    }
}

/// What one [`TileCache::insert`] did, from the inserting caller's point
/// of view — the per-request attribution the global [`CacheStats`]
/// cannot provide under concurrency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Entries this insert displaced to fit the shard budget.
    pub evicted: u64,
    /// Whether the tile was refused outright (oversized, never cached).
    pub rejected: bool,
}

const NIL: usize = usize::MAX;

/// One LRU node: the entry plus its position in the shard's recency list.
struct Node {
    key: TileKey,
    tile: Arc<Tile>,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// One shard: a hash map into a slab of nodes threaded on an intrusive
/// doubly-linked recency list (`head` = hottest, `tail` = next victim).
/// All operations are O(1).
struct Shard {
    map: HashMap<TileKey, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
}

impl Shard {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.nodes[h].prev = idx,
        }
        self.head = idx;
    }

    fn get(&mut self, key: &TileKey) -> Option<Arc<Tile>> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(Arc::clone(&self.nodes[idx].tile))
    }

    /// Removes an entry if present, returning whether it was.
    fn remove(&mut self, key: &TileKey) -> bool {
        let Some(idx) = self.map.remove(key) else { return false };
        self.unlink(idx);
        self.bytes -= self.nodes[idx].bytes;
        self.nodes[idx].tile = Arc::new(Tile::new(0, 0, 0, 0, Vec::new()));
        self.free.push(idx);
        true
    }

    /// Inserts (or refreshes) an entry and evicts from the cold end until
    /// the shard fits `budget`. Returns the number of evictions.
    fn insert(&mut self, key: TileKey, tile: Arc<Tile>, budget: usize) -> u64 {
        let bytes = tile.bytes();
        if let Some(&idx) = self.map.get(&key) {
            // refresh: same key recomputed (identical bits by construction)
            self.bytes = self.bytes - self.nodes[idx].bytes + bytes;
            self.nodes[idx].tile = tile;
            self.nodes[idx].bytes = bytes;
            self.unlink(idx);
            self.push_front(idx);
        } else {
            let node = Node { key, tile, bytes, prev: NIL, next: NIL };
            let idx = match self.free.pop() {
                Some(i) => {
                    self.nodes[i] = node;
                    i
                }
                None => {
                    self.nodes.push(node);
                    self.nodes.len() - 1
                }
            };
            self.map.insert(key, idx);
            self.push_front(idx);
            self.bytes += bytes;
        }
        let mut evicted = 0u64;
        while self.bytes > budget && self.tail != NIL {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.nodes[victim].key);
            self.bytes -= self.nodes[victim].bytes;
            self.nodes[victim].tile = Arc::new(Tile::new(0, 0, 0, 0, Vec::new()));
            self.free.push(victim);
            evicted += 1;
        }
        evicted
    }
}

/// The sharded, byte-budgeted LRU tile cache.
pub struct TileCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    shard_mask: u64,
    stats: CacheStats,
}

impl TileCache {
    /// A cache holding at most `byte_budget` bytes of tile buffers across
    /// `shards` shards (rounded up to a power of two; the budget is split
    /// evenly, so the whole cache never exceeds `byte_budget`).
    ///
    /// Degenerate arguments are clamped rather than rejected: `shards`
    /// is forced into `[1, 4096]` (zero shards would divide by zero),
    /// and each shard keeps a budget of at least one byte so a tiny
    /// `byte_budget` (smaller than the shard count) degrades to a cache
    /// that can still admit nothing larger than a byte — not one whose
    /// zero budget silently misclassifies every insert.
    pub fn new(byte_budget: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, 1 << 12).next_power_of_two();
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_budget: (byte_budget / shards).max(1),
            shard_mask: shards as u64 - 1,
            stats: CacheStats::default(),
        }
    }

    fn shard_of(&self, key: &TileKey) -> &Mutex<Shard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        // high bits pick the shard so shard choice stays independent of
        // the map's own bucket choice (which uses the low bits)
        &self.shards[((h.finish() >> 32) & self.shard_mask) as usize]
    }

    /// Looks a tile up, refreshing its recency. Counts a hit or a miss.
    pub fn get(&self, key: &TileKey) -> Option<Arc<Tile>> {
        let mut span = kdv_obs::span("cache.lookup");
        let found = self.shard_of(key).lock().expect("cache shard poisoned").get(key);
        span.arg("hit", found.is_some() as u64);
        match found {
            Some(t) => {
                self.stats.hits.bump();
                Some(t)
            }
            None => {
                self.stats.misses.bump();
                None
            }
        }
    }

    /// Peeks without touching recency or counters (used by assertions).
    pub fn peek(&self, key: &TileKey) -> Option<Arc<Tile>> {
        let shard = self.shard_of(key).lock().expect("cache shard poisoned");
        shard.map.get(key).copied().map(|idx| Arc::clone(&shard.nodes[idx].tile))
    }

    /// Inserts a computed tile, evicting cold entries to stay inside the
    /// byte budget. Oversized tiles (larger than one shard's budget) are
    /// not cached at all — counted under `rejected` (never admitted),
    /// distinct from `evictions` (admitted and later displaced).
    ///
    /// Returns this insert's own effect so callers serving one request
    /// can attribute displacement to themselves instead of diffing the
    /// global counters (which misattributes under concurrency).
    pub fn insert(&self, key: TileKey, tile: Arc<Tile>) -> InsertOutcome {
        let mut span = kdv_obs::span1("cache.insert", "bytes", tile.bytes() as u64);
        if tile.bytes() > self.shard_budget {
            span.arg("rejected", 1);
            self.stats.rejected.bump();
            return InsertOutcome { evicted: 0, rejected: true };
        }
        let evicted = self.shard_of(&key).lock().expect("cache shard poisoned").insert(
            key,
            tile,
            self.shard_budget,
        );
        span.arg("evicted", evicted);
        if evicted > 0 {
            self.stats.evictions.add(evicted);
        }
        InsertOutcome { evicted, rejected: false }
    }

    /// Advances a cached tile to a newer delta generation **in place**:
    /// removes the entry under `old_key` (the stale generation) and
    /// stores the patched `tile` under `new_key`. Counted once under
    /// `patched` — a patch reuses bits the cache already holds, so it is
    /// deliberately *not* a miss and *not* a fresh insert (see
    /// [`CacheStats`]); evictions the re-keyed entry causes (the two
    /// keys may land on different shards with different occupancy) are
    /// still real displacement and are reported in the outcome.
    ///
    /// The two shard locks are taken strictly in sequence (remove, then
    /// insert), never nested, so `patch` cannot deadlock against
    /// concurrent patches in the opposite direction.
    pub fn patch(&self, old_key: &TileKey, new_key: TileKey, tile: Arc<Tile>) -> InsertOutcome {
        let mut span = kdv_obs::span1("cache.patch", "bytes", tile.bytes() as u64);
        self.shard_of(old_key).lock().expect("cache shard poisoned").remove(old_key);
        if tile.bytes() > self.shard_budget {
            span.arg("rejected", 1);
            self.stats.rejected.bump();
            return InsertOutcome { evicted: 0, rejected: true };
        }
        let evicted = self.shard_of(&new_key).lock().expect("cache shard poisoned").insert(
            new_key,
            tile,
            self.shard_budget,
        );
        span.arg("evicted", evicted);
        if evicted > 0 {
            self.stats.evictions.add(evicted);
        }
        self.stats.patched.bump();
        kdv_obs::metrics::global().counter("cache.patched").bump();
        InsertOutcome { evicted, rejected: false }
    }

    /// Total bytes of tile buffers currently held.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").bytes).sum()
    }

    /// Number of cached tiles.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The byte budget the cache enforces (sum of shard budgets).
    pub fn budget(&self) -> usize {
        self.shard_budget * self.shards.len()
    }

    /// The shared saturating counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tx: u32, ty: u32) -> TileKey {
        TileKey::new(1, KernelType::Epanechnikov, 10.0, 1.0, TileCoord { zoom: 0, tx, ty })
    }

    fn tile(tx: usize, px: usize) -> Arc<Tile> {
        Arc::new(Tile::new(tx, 0, px, px, vec![tx as f64; px * px]))
    }

    #[test]
    fn get_insert_and_lru_order() {
        let cache = TileCache::new(1 << 20, 1);
        assert!(cache.get(&key(0, 0)).is_none());
        cache.insert(key(0, 0), tile(0, 4));
        cache.insert(key(1, 0), tile(1, 4));
        let got = cache.get(&key(0, 0)).unwrap();
        assert_eq!(got.values()[0], 0.0);
        assert_eq!(cache.stats().hits(), 1);
        assert_eq!(cache.stats().misses(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_respects_budget_and_recency() {
        let unit = tile(0, 8).bytes();
        let cache = TileCache::new(unit * 3, 1);
        for tx in 0..3 {
            cache.insert(key(tx, 0), tile(tx as usize, 8));
        }
        assert_eq!(cache.len(), 3);
        cache.get(&key(0, 0)); // heat the oldest entry
        cache.insert(key(3, 0), tile(3, 8)); // must evict key(1,0), not key(0,0)
        assert!(cache.bytes() <= cache.budget());
        assert!(cache.peek(&key(0, 0)).is_some(), "recently used entry survived");
        assert!(cache.peek(&key(1, 0)).is_none(), "cold entry evicted");
        assert_eq!(cache.stats().evictions(), 1);
    }

    #[test]
    fn oversized_tile_is_rejected_not_evicted() {
        let cache = TileCache::new(64, 1);
        let outcome = cache.insert(key(0, 0), tile(0, 64));
        assert!(cache.is_empty());
        assert_eq!(outcome, InsertOutcome { evicted: 0, rejected: true });
        assert_eq!(cache.stats().rejected(), 1, "refused insert counts as rejected");
        assert_eq!(cache.stats().evictions(), 0, "nothing was cached, nothing displaced");
    }

    #[test]
    fn zero_shards_does_not_panic() {
        // regression: `new(budget, 0)` must clamp the shard count, not
        // divide the budget by zero
        let cache = TileCache::new(1 << 20, 0);
        let outcome = cache.insert(key(0, 0), tile(0, 4));
        assert_eq!(outcome, InsertOutcome::default());
        assert!(cache.get(&key(0, 0)).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn tiny_budget_clamps_shard_budget_to_one_byte() {
        // a budget smaller than the shard count must not truncate the
        // per-shard budget to zero (every insert would be "oversized")
        let cache = TileCache::new(3, 8);
        assert!(cache.budget() >= cache.shards.len());
        let outcome = cache.insert(key(0, 0), tile(0, 4));
        assert!(outcome.rejected, "a real tile still exceeds a 1-byte shard");
        assert!(TileCache::new(0, 0).budget() >= 1);
    }

    #[test]
    fn insert_outcome_reports_own_displacement() {
        let unit = tile(0, 8).bytes();
        let cache = TileCache::new(unit * 2, 1);
        assert_eq!(cache.insert(key(0, 0), tile(0, 8)), InsertOutcome::default());
        assert_eq!(cache.insert(key(1, 0), tile(1, 8)), InsertOutcome::default());
        let third = cache.insert(key(2, 0), tile(2, 8));
        assert_eq!(third, InsertOutcome { evicted: 1, rejected: false });
        assert_eq!(cache.stats().evictions(), 1);
        assert_eq!(cache.stats().rejected(), 0);
    }

    #[test]
    fn refresh_same_key_does_not_leak_bytes() {
        let cache = TileCache::new(1 << 20, 2);
        for _ in 0..10 {
            cache.insert(key(0, 0), tile(0, 8));
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), tile(0, 8).bytes());
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let cache = TileCache::new(1 << 20, 1);
        cache.stats().force(u64::MAX - 1, u64::MAX, 0);
        cache.insert(key(0, 0), tile(0, 4));
        cache.get(&key(0, 0)); // hit: MAX-1 -> MAX
        cache.get(&key(0, 0)); // hit at MAX stays MAX (no wrap to 0)
        cache.get(&key(9, 9)); // miss at MAX stays MAX
        assert_eq!(cache.stats().hits(), u64::MAX);
        assert_eq!(cache.stats().misses(), u64::MAX);
    }

    #[test]
    fn distinct_bandwidth_bits_do_not_alias() {
        let cache = TileCache::new(1 << 20, 4);
        let a =
            TileKey::new(1, KernelType::Quartic, 10.0, 1.0, TileCoord { zoom: 1, tx: 0, ty: 0 });
        let b = TileKey::new(
            1,
            KernelType::Quartic,
            f64::from_bits(10.0_f64.to_bits() + 1),
            1.0,
            TileCoord { zoom: 1, tx: 0, ty: 0 },
        );
        cache.insert(a, tile(7, 2));
        assert!(cache.peek(&b).is_none());
    }

    #[test]
    fn generations_do_not_alias() {
        // a tile of an older state of a streaming set must never answer
        // a lookup for the current generation
        let cache = TileCache::new(1 << 20, 4);
        let g0 = key(0, 0);
        let g1 = key(0, 0).with_generation(1);
        assert_ne!(g0, g1);
        cache.insert(g0, tile(5, 2));
        assert!(cache.peek(&g1).is_none(), "generation-1 lookup found a generation-0 tile");
    }

    #[test]
    fn patch_is_not_a_miss_and_not_an_insert() {
        // regression (PR 9 satellite): advancing a cached tile to a new
        // generation must count under `patched` alone — miscounting it as
        // miss+insert would make streaming hit rates meaningless
        let cache = TileCache::new(1 << 20, 4);
        let g0 = key(2, 3);
        let g1 = key(2, 3).with_generation(1);
        cache.insert(g0, tile(1, 4));
        let (h0, m0) = (cache.stats().hits(), cache.stats().misses());
        let outcome = cache.patch(&g0, g1, tile(9, 4));
        assert_eq!(outcome, InsertOutcome::default());
        assert_eq!(cache.stats().patched(), 1);
        assert_eq!(cache.stats().hits(), h0, "a patch is not a hit");
        assert_eq!(cache.stats().misses(), m0, "a patch is not a miss");
        assert_eq!(cache.stats().evictions(), 0);
        assert_eq!(cache.len(), 1, "patch replaces, never duplicates");
        assert!(cache.peek(&g0).is_none(), "the stale generation is gone");
        assert_eq!(cache.peek(&g1).unwrap().values()[0], 9.0);
    }

    #[test]
    fn oversized_patch_still_retires_the_stale_entry() {
        let unit = tile(0, 4).bytes();
        let cache = TileCache::new(unit, 1);
        let g0 = key(0, 0);
        cache.insert(g0, tile(0, 4));
        let outcome = cache.patch(&g0, g0.with_generation(1), tile(0, 64));
        assert!(outcome.rejected);
        assert_eq!(cache.stats().patched(), 0, "nothing was cached, so nothing was patched");
        assert!(cache.is_empty(), "the stale generation must not linger");
    }

    #[test]
    fn tiers_do_not_alias() {
        // a coreset tile must never answer an exact-tier lookup (and vice
        // versa), even with every other parameter identical
        let cache = TileCache::new(1 << 20, 4);
        let exact = key(0, 0);
        let coreset = key(0, 0).with_tier(TileTier::Coreset);
        assert_ne!(exact, coreset);
        cache.insert(coreset, tile(3, 2));
        assert!(cache.peek(&exact).is_none(), "exact lookup found a coreset tile");
        cache.insert(exact, tile(4, 2));
        assert_eq!(cache.get(&coreset).unwrap().values()[0], 3.0);
        assert_eq!(cache.get(&exact).unwrap().values()[0], 4.0);
    }
}
