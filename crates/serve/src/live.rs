//! Streaming tile serving: cached tiles **patched** with delta sweeps.
//!
//! A [`LiveTileServer`] serves viewports over a mutating
//! [`kdv_stream::StreamingPointSet`]. Where the frozen-set
//! [`crate::server::TileServer`] would have to throw every cached tile
//! away on each append, this server advances them: kernel sums are
//! additive, so a cached band of generation `g₀` becomes the band of
//! generation `g` by folding in a weighted sweep of only the delta
//! batches `g₀..g`, restricted to the band's rows
//! ([`kdv_stream::fold_batches`] →
//! [`kdv_core::tile::accumulate_rows_weighted`]). Batches whose
//! y-extent ± bandwidth misses the band are skipped entirely
//! (bandwidth-radius invalidation) — bit-transparently, because the fold
//! skips exactly-zero delta pixels.
//!
//! **Exactness contract.** The canonical raster of generation `g` is
//! defined as: epoch-base band sweep, then each batch's weighted band
//! sweep folded in batch order. Cold misses run exactly that program;
//! patches run its *suffix* starting from the cached prefix — the same
//! additions in the same order — so a served viewport is bitwise-equal
//! to a rebuild-from-scratch at generation `g`, for any cache state,
//! patch history, zoom and thread count. `crates/conformance` holds the
//! server to that contract (`streaming append/expire serve vs cold
//! rebuild`, `Policy::Bitwise`).
//!
//! **Generations never alias.** Every sealed batch and every compaction
//! bumps the stream's generation, and the generation is part of
//! [`TileKey`], so a request for the current state can never be answered
//! by a stale tile. Compaction rebases onto a re-swept (re-associated)
//! base, so post-compaction tiles are *recomputed*, not patched — the
//! contract across a compaction is equality with a fresh server over the
//! compacted live set, which the `kdv-stream` property tests pin down.
//!
//! **Counters.** A patch is neither a miss nor an insert: the request
//! reports it under `patched` ([`crate::cache::CacheStats::patched`],
//! `SweepReport::cache_patched`), and the single-flight table keys
//! flights by `(zoom, band, generation)` so a recompute forced by *new
//! data* is fresh work, while recomputing a `(band, generation)` this
//! server already produced still counts as a duplicate.
//!
//! Overview tier: when configured, zooms at or below the threshold are
//! served from an ε-coreset of the **epoch base** with the exact delta
//! batches folded on top. Folding identical exact deltas into both the
//! approximate and the exact raster leaves their sup-distance unchanged
//! up to per-pixel rounding, so the advertised bound only gains a
//! machine-epsilon-scale slack term; the coreset is rebuilt from the
//! live set at each compaction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use kdv_core::driver::{KdvParams, SweepContext};
use kdv_core::envelope::EnvelopeBuffer;
use kdv_core::parallel::for_each_index_with;
use kdv_core::sweep_bucket::BucketSweep;
use kdv_core::telemetry::SweepReport;
use kdv_core::tile::{slice_band, sweep_rows, sweep_rows_weighted, Tile, Tiling};
use kdv_core::weighted::WeightedWorkspace;
use kdv_core::{DensityGrid, KdvError, Point, Result};
use kdv_coreset::Coreset;
use kdv_stream::{fold_batches, StreamSnapshot, StreamingPointSet};

use crate::cache::{CacheStats, TileCache, TileKey, TileTier};
use crate::flight::{Flight, FlightStats, FlightTable};
use crate::pyramid::{PyramidSpec, TileCoord, Viewport};
use crate::server::{OverviewConfig, ServeConfig, TierInfo};

/// Streaming-specific configuration.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Advance stale cached tiles with delta folds (`true`) or recompute
    /// every band from scratch on any data change (`false` — the control
    /// arm `bench_stream` measures the patch speedup against).
    pub patching: bool,
    /// Compact (fold the delta into the base) once this many batches
    /// have accumulated; `None` never compacts.
    pub compact_every: Option<u64>,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self { patching: true, compact_every: None }
    }
}

/// Saturating counters specific to streaming serving.
#[derive(Debug, Default)]
pub struct LiveStats {
    patched_bands: kdv_obs::Counter,
    recomputed_bands: kdv_obs::Counter,
    folded_batches: kdv_obs::Counter,
}

impl LiveStats {
    /// Bands advanced by patching cached tiles (no base re-sweep).
    pub fn patched_bands(&self) -> u64 {
        self.patched_bands.get()
    }

    /// Bands recomputed from the epoch base (cold, unpatchable, or
    /// patching disabled).
    pub fn recomputed_bands(&self) -> u64 {
        self.recomputed_bands.get()
    }

    /// Delta batches folded into bands (patch suffixes and cold
    /// rebuilds both count; radius-skipped batches do not).
    pub fn folded_batches(&self) -> u64 {
        self.folded_batches.get()
    }
}

/// Single-flight key: a band *of one generation*. Recomputing a band
/// because the data changed is fresh work; recomputing the same
/// `(zoom, band, generation)` twice is a duplicate.
type LiveBandId = (u8, usize, u64);

/// The shared tiles of one computed band, in `tx` order.
type BandTiles = Vec<Arc<Tile>>;

/// The overview coreset of one epoch.
struct OverviewState {
    epoch: u64,
    coreset: Arc<Coreset>,
}

/// Caching tile server over a streaming point set.
pub struct LiveTileServer {
    pyramid: PyramidSpec,
    config: ServeConfig,
    live: LiveConfig,
    cache: TileCache,
    stream: Mutex<StreamingPointSet>,
    /// Per-zoom sweep context over the **epoch base**, tagged with the
    /// epoch it was built for (rebuilt lazily after compaction).
    base_contexts: Mutex<HashMap<u8, (u64, Arc<SweepContext>)>>,
    /// Per-zoom context over the overview coreset, tagged with its epoch.
    coreset_contexts: Mutex<HashMap<u8, (u64, Arc<SweepContext>)>>,
    /// Per-`(zoom, batch generation)` contexts over delta batches.
    /// Batch generations are globally unique (monotone across epochs),
    /// and the map is cleared on compaction when the batches die.
    batch_contexts: Mutex<HashMap<(u8, u64), Arc<SweepContext>>>,
    /// Which generation each band's cached tiles are at (the
    /// patch-vs-recompute decision). A band absent here has nothing
    /// usable cached.
    band_gens: Mutex<HashMap<(u8, usize), u64>>,
    flights: FlightTable<LiveBandId, Arc<BandTiles>>,
    stats: LiveStats,
    overview_config: Option<OverviewConfig>,
    overview: Mutex<Option<OverviewState>>,
}

/// What one request decided to do about one band it needs.
enum BandPlan {
    /// Patch the cached band forward from this generation.
    Patch(u64),
    /// Sweep the band from the epoch base (and fold all batches).
    Cold,
}

impl LiveTileServer {
    /// A streaming server whose epoch base is `base`.
    pub fn new(
        pyramid: PyramidSpec,
        config: ServeConfig,
        live: LiveConfig,
        base: Vec<Point>,
        cache_bytes: usize,
        cache_shards: usize,
    ) -> Self {
        Self {
            pyramid,
            config,
            live,
            cache: TileCache::new(cache_bytes, cache_shards),
            stream: Mutex::new(StreamingPointSet::new(base)),
            base_contexts: Mutex::new(HashMap::new()),
            coreset_contexts: Mutex::new(HashMap::new()),
            batch_contexts: Mutex::new(HashMap::new()),
            band_gens: Mutex::new(HashMap::new()),
            flights: FlightTable::new(),
            stats: LiveStats::default(),
            overview_config: None,
            overview: Mutex::new(None),
        }
    }

    /// [`LiveTileServer::new`] plus an approximate overview tier. The
    /// ε-coreset summarises the **epoch base**; delta batches are folded
    /// exactly on top of the coreset raster, and each compaction rebuilds
    /// the coreset from the then-live set.
    pub fn with_overview_coreset(
        pyramid: PyramidSpec,
        config: ServeConfig,
        live: LiveConfig,
        base: Vec<Point>,
        cache_bytes: usize,
        cache_shards: usize,
        overview: OverviewConfig,
    ) -> Result<Self> {
        let mut server = Self::new(pyramid, config, live, base, cache_bytes, cache_shards);
        server.overview_config = Some(overview);
        let snapshot = server.stream.lock().expect("stream poisoned").snapshot();
        server.overview_for(&snapshot)?; // build (and certify) eagerly
        Ok(server)
    }

    /// The pyramid this server answers for.
    pub fn pyramid(&self) -> &PyramidSpec {
        &self.pyramid
    }

    /// The kernel configuration this server answers under.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The cache's cumulative saturating counters.
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// The tile cache (exposed for stress tests and byte accounting).
    pub fn cache(&self) -> &TileCache {
        &self.cache
    }

    /// The single-flight band-computation counters.
    pub fn flight_stats(&self) -> &FlightStats {
        self.flights.stats()
    }

    /// The streaming-specific counters.
    pub fn live_stats(&self) -> &LiveStats {
        &self.stats
    }

    /// Current generation of the underlying stream.
    pub fn generation(&self) -> u64 {
        self.stream.lock().expect("stream poisoned").generation()
    }

    /// Current epoch of the underlying stream.
    pub fn epoch(&self) -> u64 {
        self.stream.lock().expect("stream poisoned").epoch()
    }

    /// Number of currently-live points.
    pub fn live_len(&self) -> usize {
        self.stream.lock().expect("stream poisoned").live_len()
    }

    /// The live points in arrival order (what a rebuild would sweep).
    pub fn live_points(&self) -> Vec<Point> {
        self.stream.lock().expect("stream poisoned").live_points()
    }

    /// A consistent snapshot of the stream's current state.
    pub fn snapshot(&self) -> StreamSnapshot {
        self.stream.lock().expect("stream poisoned").snapshot()
    }

    /// Appends `points` as one batch; returns the new generation.
    /// Triggers compaction when `compact_every` is reached.
    pub fn append(&self, points: &[Point]) -> u64 {
        let mut stream = self.stream.lock().expect("stream poisoned");
        stream.append(points);
        self.maybe_compact(&mut stream)
    }

    /// Expires the `n` oldest live points as one batch; returns the new
    /// generation and the expired points.
    pub fn expire_oldest(&self, n: usize) -> (u64, Vec<Point>) {
        let mut stream = self.stream.lock().expect("stream poisoned");
        let (_, expired) = stream.expire_oldest(n);
        (self.maybe_compact(&mut stream), expired)
    }

    /// Seals one mixed signed batch (see
    /// [`StreamingPointSet::apply_signed`]); returns the new generation.
    pub fn apply_signed(&self, points: &[Point], weights: &[f64]) -> Result<u64> {
        let mut stream = self.stream.lock().expect("stream poisoned");
        stream.apply_signed(points, weights)?;
        Ok(self.maybe_compact(&mut stream))
    }

    /// Forces a compaction now, regardless of `compact_every`.
    pub fn compact(&self) -> u64 {
        let mut stream = self.stream.lock().expect("stream poisoned");
        let generation = stream.compact();
        self.batch_contexts.lock().expect("batch contexts poisoned").clear();
        generation
    }

    fn maybe_compact(&self, stream: &mut StreamingPointSet) -> u64 {
        if let Some(k) = self.live.compact_every {
            if stream.batch_count() as u64 >= k {
                let generation = stream.compact();
                self.batch_contexts.lock().expect("batch contexts poisoned").clear();
                return generation;
            }
        }
        stream.generation()
    }

    /// Which tier answers requests at `zoom`.
    pub fn tier_of(&self, zoom: u8) -> TileTier {
        match self.overview_config {
            Some(cfg) if zoom <= cfg.max_zoom.min(self.pyramid.max_zoom) => TileTier::Coreset,
            _ => TileTier::Exact,
        }
    }

    fn key(&self, zoom: u8, tx: usize, ty: usize, generation: u64) -> TileKey {
        TileKey::new(
            self.config.dataset,
            self.config.kernel,
            self.config.bandwidth,
            self.config.weight,
            TileCoord { zoom, tx: tx as u32, ty: ty as u32 },
        )
        .with_tier(self.tier_of(zoom))
        .with_generation(generation)
    }

    fn level_params(&self, zoom: u8) -> KdvParams {
        self.pyramid.level_params(
            zoom,
            self.config.kernel,
            self.config.bandwidth,
            self.config.weight,
        )
    }

    /// The overview coreset for the snapshot's epoch, (re)built when a
    /// compaction has rebased the epoch since the last build.
    fn overview_for(&self, snapshot: &StreamSnapshot) -> Result<Arc<Coreset>> {
        let cfg = self.overview_config.ok_or(KdvError::Internal("no overview tier configured"))?;
        let mut state = self.overview.lock().expect("overview poisoned");
        if let Some(s) = state.as_ref() {
            if s.epoch == snapshot.epoch {
                return Ok(Arc::clone(&s.coreset));
            }
        }
        let _s = kdv_obs::span1("serve.overview.rebuild", "epoch", snapshot.epoch);
        let threshold = cfg.max_zoom.min(self.pyramid.max_zoom);
        let eval_grids = (0..=threshold).map(|z| self.pyramid.level_grid(z)).collect();
        let scale = kdv_coreset::density_scale(
            self.config.kernel,
            self.config.bandwidth,
            self.config.weight,
            snapshot.base.len(),
        );
        let spec = kdv_coreset::CoresetSpec {
            method: cfg.method,
            target_epsilon: cfg.target_rel_epsilon * scale,
            kernel: self.config.kernel,
            bandwidth: self.config.bandwidth,
            weight: self.config.weight,
            seed: cfg.seed,
            eval_grids,
        };
        let coreset = Arc::new(kdv_coreset::build(&spec, &snapshot.base)?);
        *state = Some(OverviewState { epoch: snapshot.epoch, coreset: Arc::clone(&coreset) });
        Ok(coreset)
    }

    /// Tier metadata for a request at `zoom` against `snapshot`. The
    /// coreset tier's advertised ε is the certified epoch-base bound plus
    /// a `2⁻²⁴·scale` slack absorbing the per-pixel rounding of folding
    /// the exact deltas into an approximate base raster.
    fn tier_info_for(&self, snapshot: &StreamSnapshot, zoom: u8) -> Result<TierInfo> {
        match self.tier_of(zoom) {
            TileTier::Exact => {
                Ok(TierInfo { tier: TileTier::Exact, epsilon: None, coreset_size: None })
            }
            TileTier::Coreset => {
                let coreset = self.overview_for(snapshot)?;
                let scale = kdv_coreset::density_scale(
                    self.config.kernel,
                    self.config.bandwidth,
                    self.config.weight,
                    snapshot.base.len() + snapshot.delta_len(),
                );
                Ok(TierInfo {
                    tier: TileTier::Coreset,
                    epsilon: Some(coreset.epsilon + scale * 2.0f64.powi(-24)),
                    coreset_size: Some(coreset.len()),
                })
            }
        }
    }

    /// The sweep context for this zoom's *base* raster under the
    /// snapshot's epoch: the epoch base for the exact tier, the overview
    /// coreset for the coreset tier.
    fn base_context(&self, snapshot: &StreamSnapshot, zoom: u8) -> Result<Arc<SweepContext>> {
        let (map, points): (_, Arc<Vec<Point>>) = match self.tier_of(zoom) {
            TileTier::Exact => (&self.base_contexts, Arc::clone(&snapshot.base)),
            TileTier::Coreset => {
                let coreset = self.overview_for(snapshot)?;
                // context over the coreset representatives
                (&self.coreset_contexts, Arc::new(coreset.points.clone()))
            }
        };
        let mut map = map.lock().expect("context map poisoned");
        if let Some((epoch, ctx)) = map.get(&zoom) {
            if *epoch == snapshot.epoch {
                return Ok(Arc::clone(ctx));
            }
        }
        let _s = kdv_obs::span1("pyramid.build", "zoom", zoom as u64);
        let ctx = Arc::new(SweepContext::new(&self.level_params(zoom), &points)?);
        map.insert(zoom, (snapshot.epoch, Arc::clone(&ctx)));
        Ok(ctx)
    }

    /// Sweep contexts for every batch of `snapshot` at `zoom`, in batch
    /// order, from the per-generation cache.
    fn batch_contexts_for(
        &self,
        snapshot: &StreamSnapshot,
        zoom: u8,
    ) -> Result<Vec<Arc<SweepContext>>> {
        let params = self.level_params(zoom);
        let mut map = self.batch_contexts.lock().expect("batch contexts poisoned");
        let mut out = Vec::with_capacity(snapshot.batches.len());
        for (i, batch) in snapshot.batches.iter().enumerate() {
            let generation = snapshot.epoch_generation + 1 + i as u64;
            let ctx = match map.get(&(zoom, generation)) {
                Some(ctx) => Arc::clone(ctx),
                None => {
                    let ctx = Arc::new(SweepContext::new(&params, &batch.points)?);
                    map.insert((zoom, generation), Arc::clone(&ctx));
                    ctx
                }
            };
            out.push(ctx);
        }
        Ok(out)
    }

    /// Serves one viewport against the stream's current generation; see
    /// [`LiveTileServer::serve_viewport_tiered`].
    pub fn serve_viewport(
        &self,
        viewport: &Viewport,
        threads: usize,
    ) -> Result<(DensityGrid, SweepReport)> {
        let (grid, report, _tier) = self.serve_viewport_tiered(viewport, threads)?;
        Ok((grid, report))
    }

    /// Serves one viewport against a consistent snapshot of the stream:
    /// assembles the window from generation-`g` tiles, **patching**
    /// cached older-generation bands with delta folds where possible and
    /// sweeping from the epoch base otherwise. The raster is
    /// bitwise-equal to a rebuild-from-scratch of generation `g` cropped
    /// to the viewport, for any cache state and thread count.
    ///
    /// The report's cache counters are the deltas this request itself
    /// caused; patched tiles appear under `cache_patched`, not as
    /// misses.
    pub fn serve_viewport_tiered(
        &self,
        viewport: &Viewport,
        threads: usize,
    ) -> Result<(DensityGrid, SweepReport, TierInfo)> {
        let started = Instant::now();
        let mut span = kdv_obs::span2(
            "serve.viewport",
            "zoom",
            viewport.zoom as u64,
            "pixels",
            (viewport.width * viewport.height) as u64,
        );
        let vp = viewport
            .clamped(&self.pyramid)
            .ok_or(KdvError::EmptyResolution { x: viewport.width, y: viewport.height })?;
        let snapshot = self.snapshot();
        let generation = snapshot.generation();
        span.arg("generation", generation);
        // Generation lag = stream.generation - serve.generation: how far
        // behind ingestion the bits being served are.
        kdv_obs::metrics::global().gauge("serve.generation").set(generation);
        let tier_info = self.tier_info_for(&snapshot, vp.zoom)?;
        kdv_obs::metrics::global()
            .counter(match tier_info.tier {
                TileTier::Exact => "serve.tier.exact",
                TileTier::Coreset => "serve.tier.coreset",
            })
            .bump();
        let tiling = self.pyramid.level_tiling(vp.zoom);
        let tile_size = self.pyramid.tile_size;
        let want_cols = vp.tile_cols(tile_size);
        let want_rows = vp.tile_rows(tile_size);

        // Decide per band: fresh (cached at this generation), patchable
        // (cached at an older generation of this epoch), or cold.
        let registry: HashMap<usize, u64> = {
            let reg = self.band_gens.lock().expect("band registry poisoned");
            want_rows.clone().filter_map(|ty| reg.get(&(vp.zoom, ty)).map(|&g| (ty, g))).collect()
        };
        let mut tiles: HashMap<(usize, usize), Arc<Tile>> = HashMap::new();
        let mut work: Vec<(usize, BandPlan)> = Vec::new();
        let (mut req_hits, mut req_misses) = (0u64, 0u64);
        for ty in want_rows.clone() {
            match registry.get(&ty) {
                Some(&g) if g == generation => {
                    // Expect cached tiles at the current generation:
                    // counting lookups, like any warm request.
                    let mut evicted = false;
                    for tx in want_cols.clone() {
                        match self.cache.get(&self.key(vp.zoom, tx, ty, generation)) {
                            Some(tile) => {
                                req_hits += 1;
                                tiles.insert((tx, ty), tile);
                            }
                            None => {
                                req_misses += 1;
                                evicted = true;
                            }
                        }
                    }
                    if evicted {
                        work.push((ty, BandPlan::Cold));
                    }
                }
                Some(&g) if self.live.patching && snapshot.patchable_from(g) => {
                    // Patch path: the band's bits are cached, just stale.
                    // Deliberately no counting lookups — a patch is
                    // neither a hit (the bits weren't current) nor a
                    // miss (no base sweep was needed).
                    work.push((ty, BandPlan::Patch(g)));
                }
                _ => {
                    req_misses += want_cols.len() as u64;
                    work.push((ty, BandPlan::Cold));
                }
            }
        }

        let req_evictions = AtomicU64::new(0);
        let req_rejected = AtomicU64::new(0);
        let req_patched = AtomicU64::new(0);
        if !work.is_empty() {
            let base_ctx = self.base_context(&snapshot, vp.zoom)?;
            let batch_ctxs = self.batch_contexts_for(&snapshot, vp.zoom)?;
            let coreset = match tier_info.tier {
                TileTier::Coreset => Some(self.overview_for(&snapshot)?),
                TileTier::Exact => None,
            };
            let keys: Vec<LiveBandId> =
                work.iter().map(|&(ty, _)| (vp.zoom, ty, generation)).collect();
            let plans: HashMap<usize, BandPlan> = work.into_iter().collect();
            let (lead, join) = self.flights.claim(&keys);
            let params = self.level_params(vp.zoom);
            let req = LiveLeadContext {
                snapshot: &snapshot,
                params: &params,
                tiling: &tiling,
                zoom: vp.zoom,
                generation,
                base_ctx: &base_ctx,
                batch_ctxs: &batch_ctxs,
                coreset: coreset.as_deref(),
                evictions: &req_evictions,
                rejected: &req_rejected,
                patched: &req_patched,
            };

            let led: Vec<(usize, Result<Arc<BandTiles>>)> =
                for_each_index_with(lead.len(), threads, LiveScratch::default, |scratch, i| {
                    let ((_, ty, _), ref flight) = lead[i];
                    let plan = plans.get(&ty).expect("claimed band has a plan");
                    (ty, self.lead_band(&req, ty, plan, flight, scratch))
                });

            let mut band_results: Vec<(usize, Arc<BandTiles>)> = Vec::with_capacity(keys.len());
            for (ty, result) in led {
                band_results.push((ty, result?));
            }
            for ((_, ty, _), flight) in join {
                band_results.push((ty, flight.wait()?));
            }
            for (_, shared) in band_results {
                for tile in shared.iter() {
                    if want_cols.contains(&tile.tx) && want_rows.contains(&tile.ty) {
                        tiles.insert((tile.tx, tile.ty), Arc::clone(tile));
                    }
                }
            }
        }

        // Assemble the viewport window from tile overlaps.
        let mut out = DensityGrid::zeroed(vp.width, vp.height);
        for ty in want_rows.clone() {
            let rows = tiling.tile_rows(ty);
            for tx in want_cols.clone() {
                let cols = tiling.tile_cols(tx);
                let tile = &tiles[&(tx, ty)];
                let x0 = vp.px.max(cols.start);
                let x1 = (vp.px + vp.width).min(cols.end);
                let y0 = vp.py.max(rows.start);
                let y1 = (vp.py + vp.height).min(rows.end);
                for y in y0..y1 {
                    let src = tile.row(y - rows.start);
                    out.row_mut(y - vp.py)[x0 - vp.px..x1 - vp.px]
                        .copy_from_slice(&src[x0 - cols.start..x1 - cols.start]);
                }
            }
        }

        let mut report = SweepReport::from_workers(Vec::new(), vp.height, 0)
            .with_cache_counters(req_hits, req_misses, req_evictions.load(Ordering::Relaxed))
            .with_cache_rejected(req_rejected.load(Ordering::Relaxed))
            .with_cache_patched(req_patched.load(Ordering::Relaxed));
        report.threads = threads;
        report.wall_nanos = started.elapsed().as_nanos() as u64;
        span.arg("misses", report.cache_misses);
        span.arg("patched", report.cache_patched);
        let metrics = kdv_obs::metrics::global();
        metrics.histogram("serve.request_ns").record(report.wall_nanos);
        metrics.histogram("serve.request_ns.live").record(report.wall_nanos);
        Ok((out, report, tier_info))
    }

    /// Leads one band: patches it forward from the cached generation if
    /// the plan says so and the stale tiles are all still cached, else
    /// sweeps it from the epoch base and folds every batch. Either way
    /// the band ends cached at the request's generation, the registry is
    /// advanced, and the result is published to joined waiters.
    fn lead_band(
        &self,
        req: &LiveLeadContext<'_>,
        ty: usize,
        plan: &BandPlan,
        flight: &Arc<Flight<Arc<BandTiles>>>,
        scratch: &mut LiveScratch,
    ) -> Result<Arc<BandTiles>> {
        let zoom = req.zoom;
        let mut lease = self.flights.lease((zoom, ty, req.generation), flight);
        let rows = req.tiling.tile_rows(ty);
        let metrics = kdv_obs::metrics::global();

        // Double-check after winning the flight: another request may have
        // brought this band to our generation between this request's
        // planning and its claim (its flight already came and went, so we
        // lead a second flight for work that is already done).
        if let Some(current) = self.peek_band(zoom, ty, req.generation, req.tiling) {
            let shared: Arc<BandTiles> = Arc::new(current);
            lease.complete(Ok(Arc::clone(&shared)));
            return Ok(shared);
        }
        scratch.band.resize(rows.len() * req.tiling.res_x, 0.0);

        // Try the patch path: reassemble the band from the stale cached
        // tiles, then fold only the missing suffix of batches.
        let mut patched_from = None;
        if let BandPlan::Patch(g0) = *plan {
            if let Some(stale) = self.peek_band(zoom, ty, g0, req.tiling) {
                let mut span = kdv_obs::span2("serve.patch", "ty", ty as u64, "from", g0);
                for tile in &stale {
                    let cols = req.tiling.tile_cols(tile.tx);
                    for j in 0..rows.len() {
                        scratch.band
                            [j * req.tiling.res_x + cols.start..j * req.tiling.res_x + cols.end]
                            .copy_from_slice(tile.row(j));
                    }
                }
                let offset = (g0 - req.snapshot.epoch_generation) as usize;
                let (folded, _skipped) = fold_batches(
                    req.params,
                    req.snapshot.batches_since(g0),
                    rows.clone(),
                    &mut scratch.workspace,
                    &mut scratch.delta,
                    &mut scratch.band,
                    |i, _| Ok(Arc::clone(&req.batch_ctxs[offset + i])),
                )?;
                span.arg("folded", folded);
                patched_from = Some((g0, folded));
            } else {
                // A stale tile was evicted under us; fall back to cold.
                metrics.counter("serve.patch.recompute").bump();
            }
        }

        if patched_from.is_none() {
            // Cold: canonical program from the epoch base.
            match req.coreset {
                None => {
                    let engine = scratch.engine.get_or_insert_with(|| {
                        BucketSweep::new(
                            self.config.kernel,
                            self.config.bandwidth,
                            self.config.weight,
                        )
                    });
                    sweep_rows(
                        req.base_ctx,
                        self.config.bandwidth,
                        rows.clone(),
                        engine,
                        &mut scratch.envelope,
                        &mut scratch.band,
                    );
                }
                Some(coreset) => {
                    sweep_rows_weighted(
                        req.base_ctx,
                        req.params,
                        rows.clone(),
                        &coreset.weights,
                        &mut scratch.workspace,
                        &mut scratch.band,
                    );
                }
            }
            let (folded, _skipped) = fold_batches(
                req.params,
                &req.snapshot.batches,
                rows.clone(),
                &mut scratch.workspace,
                &mut scratch.delta,
                &mut scratch.band,
                |i, _| Ok(Arc::clone(&req.batch_ctxs[i])),
            )?;
            self.stats.recomputed_bands.bump();
            self.stats.folded_batches.add(folded);
        }

        let sliced = slice_band(req.tiling, ty, rows, &scratch.band);
        let shared: Arc<BandTiles> = Arc::new(sliced.into_iter().map(Arc::new).collect());
        match patched_from {
            Some((g0, folded)) => {
                for tile in shared.iter() {
                    let old = self.key(zoom, tile.tx, tile.ty, g0);
                    let new = self.key(zoom, tile.tx, tile.ty, req.generation);
                    let outcome = self.cache.patch(&old, new, Arc::clone(tile));
                    req.evictions.fetch_add(outcome.evicted, Ordering::Relaxed);
                    req.rejected.fetch_add(outcome.rejected as u64, Ordering::Relaxed);
                    if !outcome.rejected {
                        req.patched.fetch_add(1, Ordering::Relaxed);
                    }
                }
                metrics.counter("serve.patch.bands").bump();
                metrics.counter("serve.patch.tiles").add(shared.len() as u64);
                metrics.counter("serve.patch.batches").add(folded);
                self.stats.patched_bands.bump();
                self.stats.folded_batches.add(folded);
                // The patched-away generation is retired on purpose: a
                // slow request still serving it will recompute it cold,
                // and that is legitimate work, not a dedup failure.
                self.flights.forget(&(zoom, ty, g0));
            }
            None => {
                for tile in shared.iter() {
                    let key = self.key(zoom, tile.tx, tile.ty, req.generation);
                    let outcome = self.cache.insert(key, Arc::clone(tile));
                    req.evictions.fetch_add(outcome.evicted, Ordering::Relaxed);
                    req.rejected.fetch_add(outcome.rejected as u64, Ordering::Relaxed);
                }
            }
        }

        // Advance the registry — never backwards: a slow leader serving
        // an old snapshot must not demote a band a newer request already
        // advanced past this generation.
        {
            let mut reg = self.band_gens.lock().expect("band registry poisoned");
            let entry = reg.entry((zoom, ty)).or_insert(req.generation);
            if *entry < req.generation {
                *entry = req.generation;
            }
        }
        self.flights.record_computed((zoom, ty, req.generation));
        lease.complete(Ok(Arc::clone(&shared)));
        Ok(shared)
    }

    /// Peeks every tile of a band at `generation` (no counters, no
    /// recency): the patch path's stale input. `None` if any tile of the
    /// band has been evicted (the band is then recomputed cold).
    fn peek_band(
        &self,
        zoom: u8,
        ty: usize,
        generation: u64,
        tiling: &Tiling,
    ) -> Option<BandTiles> {
        (0..tiling.tiles_x())
            .map(|tx| self.cache.peek(&self.key(zoom, tx, ty, generation)))
            .collect()
    }

    /// Drops every cached tile generation older than the current one
    /// from the registry (testing hook: forces cold recomputes without
    /// touching the cache's byte accounting).
    pub fn forget_band_registry(&self) {
        self.band_gens.lock().expect("band registry poisoned").clear();
    }
}

/// Per-request context shared by every band a request leads.
struct LiveLeadContext<'a> {
    snapshot: &'a StreamSnapshot,
    params: &'a KdvParams,
    tiling: &'a Tiling,
    zoom: u8,
    generation: u64,
    base_ctx: &'a Arc<SweepContext>,
    batch_ctxs: &'a [Arc<SweepContext>],
    coreset: Option<&'a Coreset>,
    evictions: &'a AtomicU64,
    rejected: &'a AtomicU64,
    patched: &'a AtomicU64,
}

/// Per-worker scratch for live band computes; buffers grow on first use
/// and stay warm across bands.
struct LiveScratch {
    engine: Option<BucketSweep>,
    envelope: EnvelopeBuffer,
    workspace: WeightedWorkspace,
    band: Vec<f64>,
    delta: Vec<f64>,
}

impl Default for LiveScratch {
    fn default() -> Self {
        Self {
            engine: None,
            envelope: EnvelopeBuffer::new(),
            workspace: WeightedWorkspace::new(),
            band: Vec::new(),
            delta: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::sweep_bucket;
    use kdv_core::{KernelType, Rect};
    use kdv_stream::rebuild_grid;

    fn points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::new(next() * 100.0, next() * 100.0)).collect()
    }

    fn config() -> ServeConfig {
        ServeConfig { dataset: 7, kernel: KernelType::Epanechnikov, bandwidth: 14.0, weight: 0.005 }
    }

    fn pyramid() -> PyramidSpec {
        PyramidSpec::new(Rect::new(0.0, 0.0, 100.0, 100.0), 16, 48, 48, 2).unwrap()
    }

    fn live_server(cache_bytes: usize, live: LiveConfig) -> LiveTileServer {
        LiveTileServer::new(pyramid(), config(), live, points(300, 0xBADC0FFE), cache_bytes, 4)
    }

    /// The canonical rebuild of the server's current state at the
    /// viewport's level, cropped — what every response must equal
    /// bitwise.
    fn rebuild_reference(server: &LiveTileServer, vp: &Viewport) -> DensityGrid {
        let params = server.pyramid().level_params(
            vp.zoom,
            server.config().kernel,
            server.config().bandwidth,
            server.config().weight,
        );
        let full = rebuild_grid(&params, &server.snapshot()).unwrap();
        let mut out = DensityGrid::zeroed(vp.width, vp.height);
        for j in 0..vp.height {
            out.row_mut(j).copy_from_slice(&full.row(vp.py + j)[vp.px..vp.px + vp.width]);
        }
        out
    }

    #[test]
    fn frozen_stream_matches_monolithic_bitwise() {
        let srv = live_server(1 << 22, LiveConfig::default());
        let vp = Viewport { zoom: 1, px: 13, py: 29, width: 41, height: 30 };
        let (grid, _) = srv.serve_viewport(&vp, 0).unwrap();
        let params = srv.pyramid().level_params(1, config().kernel, 14.0, 0.005);
        let full = sweep_bucket::compute(&params, &srv.live_points()).unwrap();
        let mut reference = DensityGrid::zeroed(vp.width, vp.height);
        for j in 0..vp.height {
            reference.row_mut(j).copy_from_slice(&full.row(vp.py + j)[vp.px..vp.px + vp.width]);
        }
        assert_eq!(grid, reference);
    }

    #[test]
    fn patched_serve_equals_rebuild_across_zooms() {
        let srv = live_server(1 << 22, LiveConfig::default());
        let viewports = [
            Viewport { zoom: 0, px: 0, py: 0, width: 48, height: 48 },
            Viewport { zoom: 1, px: 13, py: 29, width: 41, height: 30 },
            Viewport { zoom: 2, px: 100, py: 77, width: 50, height: 33 },
        ];
        // warm every level at generation 0
        for vp in &viewports {
            srv.serve_viewport(vp, 0).unwrap();
        }
        // mutate: appends and expirations across several generations
        srv.append(&points(7, 0xA11CE));
        srv.expire_oldest(3);
        srv.append(&points(2, 0xB0B));
        for vp in &viewports {
            let (grid, report) = srv.serve_viewport(vp, 0).unwrap();
            assert_eq!(grid, rebuild_reference(&srv, vp), "{vp:?}");
            assert_eq!(report.cache_misses, 0, "{vp:?}: patching must not miss");
            assert!(report.cache_patched > 0, "{vp:?}: tiles should be patched");
        }
        assert!(srv.live_stats().patched_bands() > 0);
        assert_eq!(srv.flight_stats().duplicate_computes(), 0);
    }

    #[test]
    fn patching_disabled_recomputes_but_matches() {
        let srv = live_server(1 << 22, LiveConfig { patching: false, compact_every: None });
        let vp = Viewport { zoom: 1, px: 5, py: 9, width: 60, height: 40 };
        srv.serve_viewport(&vp, 0).unwrap();
        srv.append(&points(5, 0xF00D));
        let (grid, report) = srv.serve_viewport(&vp, 0).unwrap();
        assert_eq!(grid, rebuild_reference(&srv, &vp));
        assert_eq!(report.cache_patched, 0, "patching disabled");
        assert!(report.cache_misses > 0, "recompute path counts real misses");
    }

    #[test]
    fn compaction_preserves_served_bits() {
        let srv = live_server(1 << 22, LiveConfig::default());
        let vp = Viewport { zoom: 1, px: 5, py: 9, width: 60, height: 40 };
        srv.append(&points(9, 0xC0DE));
        srv.expire_oldest(4);
        let (before, _) = srv.serve_viewport(&vp, 0).unwrap();
        srv.compact();
        let (after, _) = srv.serve_viewport(&vp, 0).unwrap();
        // compaction reassociates the base sweep, so the contract is
        // equality with a fresh server over the compacted live set …
        let fresh = LiveTileServer::new(
            pyramid(),
            config(),
            LiveConfig::default(),
            srv.live_points(),
            1 << 22,
            4,
        );
        let (fresh_grid, _) = fresh.serve_viewport(&vp, 0).unwrap();
        assert_eq!(after, fresh_grid, "compacted serve must equal a fresh rebuild");
        // … and on this data the re-sweep happens to agree with the
        // incremental bits only approximately, never by contract:
        let close = before
            .values()
            .iter()
            .zip(after.values())
            .all(|(a, b)| (a - b).abs() <= 1e-12 * (1.0 + a.abs()));
        assert!(close, "compaction must not change densities materially");
    }

    #[test]
    fn compact_every_triggers_and_epoch_advances() {
        let srv = live_server(1 << 22, LiveConfig { patching: true, compact_every: Some(3) });
        assert_eq!(srv.epoch(), 0);
        srv.append(&points(1, 1));
        srv.append(&points(1, 2));
        assert_eq!(srv.epoch(), 0);
        srv.append(&points(1, 3)); // third batch → compaction
        assert_eq!(srv.epoch(), 1);
        assert_eq!(srv.snapshot().batches.len(), 0);
        let vp = Viewport { zoom: 1, px: 5, py: 9, width: 60, height: 40 };
        let (grid, _) = srv.serve_viewport(&vp, 0).unwrap();
        assert_eq!(grid, rebuild_reference(&srv, &vp));
    }

    #[test]
    fn overview_tier_bound_survives_streaming() {
        let overview = OverviewConfig {
            max_zoom: 1,
            method: kdv_coreset::CoresetMethod::Grid,
            target_rel_epsilon: 0.01,
            seed: 11,
        };
        let srv = LiveTileServer::with_overview_coreset(
            pyramid(),
            config(),
            LiveConfig::default(),
            points(300, 0xBADC0FFE),
            1 << 22,
            4,
            overview,
        )
        .unwrap();
        let vp = Viewport { zoom: 1, px: 13, py: 29, width: 41, height: 30 };
        srv.serve_viewport(&vp, 0).unwrap();
        srv.append(&points(6, 0x5EED));
        srv.expire_oldest(2);
        let (grid, _, tier) = srv.serve_viewport_tiered(&vp, 0).unwrap();
        assert_eq!(tier.tier, TileTier::Coreset);
        let eps = tier.epsilon.unwrap();
        // exact live raster at this level
        let params = srv.pyramid().level_params(1, config().kernel, 14.0, 0.005);
        let exact = sweep_bucket::compute(&params, &srv.live_points()).unwrap();
        let sup = grid
            .values()
            .iter()
            .zip((0..vp.height).flat_map(|j| {
                exact.row(vp.py + j)[vp.px..vp.px + vp.width].iter().copied().collect::<Vec<_>>()
            }))
            .map(|(a, r)| (a - r).abs())
            .fold(0.0f64, f64::max);
        assert!(sup <= eps, "sup {sup:e} > advertised {eps:e}");
        // deep zoom stays exact (bitwise vs rebuild)
        let deep = Viewport { zoom: 2, px: 100, py: 77, width: 50, height: 33 };
        let (deep_grid, _, deep_tier) = srv.serve_viewport_tiered(&deep, 0).unwrap();
        assert_eq!(deep_tier.tier, TileTier::Exact);
        assert_eq!(deep_grid, rebuild_reference(&srv, &deep));
    }

    #[test]
    fn patch_counters_are_not_misses() {
        let srv = live_server(1 << 22, LiveConfig::default());
        let vp = Viewport { zoom: 1, px: 0, py: 0, width: 96, height: 96 };
        srv.serve_viewport(&vp, 0).unwrap();
        let (h0, m0) = (srv.cache_stats().hits(), srv.cache_stats().misses());
        srv.append(&points(3, 0xFEED));
        let (_, report) = srv.serve_viewport(&vp, 0).unwrap();
        assert!(report.cache_patched > 0);
        assert_eq!(report.cache_misses, 0);
        assert_eq!(srv.cache_stats().misses(), m0, "patching bumped the global miss counter");
        assert_eq!(srv.cache_stats().hits(), h0, "patch path must not count hits either");
        assert_eq!(srv.cache_stats().patched(), report.cache_patched);
    }

    #[test]
    fn forgetting_the_registry_forces_cold_recompute_same_bits() {
        let srv = live_server(1 << 22, LiveConfig::default());
        let vp = Viewport { zoom: 1, px: 13, py: 29, width: 41, height: 30 };
        srv.append(&points(4, 0xDEAF));
        let (patched, _) = srv.serve_viewport(&vp, 0).unwrap();
        srv.forget_band_registry();
        let (cold, report) = srv.serve_viewport(&vp, 0).unwrap();
        assert!(report.cache_misses > 0);
        assert_eq!(patched, cold, "cold and patched bits must be identical");
    }
}
