//! Generic single-flight computation table.
//!
//! Concurrent misses on the same unit of work elect one **leader** under
//! the table's lock; the leader computes once and publishes the result
//! (or its error) to every waiter. Extracted from the band-compute path
//! of [`crate::server::TileServer`] so the streaming server can reuse the
//! exact same discipline with a richer key — its flights are keyed by
//! `(zoom, band, generation)`, because a band recomputed for a *newer
//! state of the data* is fresh work, not a duplicate.
//!
//! The table also keeps the ever-computed key set, bounded by the key
//! space (pyramid bands × live generations retained), so *duplicate*
//! computes — recomputing a key this table already saw, which only a
//! cache eviction or a dedup bug can cause — are observable.
//! [`FlightStats::duplicate_computes`] must stay at zero under an
//! adequately sized cache however many threads hammer the server, which
//! `ci.sh serve-load` (frozen sets) and the live hammer test (streaming
//! sets) both assert.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

use kdv_core::{KdvError, Result};

/// One in-flight computation: the leader publishes the value (or its
/// error) into `slot` exactly once and wakes every waiter.
pub struct Flight<T> {
    slot: Mutex<Option<Result<T>>>,
    done: Condvar,
}

impl<T: Clone> Flight<T> {
    fn new() -> Self {
        Self { slot: Mutex::new(None), done: Condvar::new() }
    }

    /// Publishes the leader's result exactly once and wakes all waiters.
    pub fn publish(&self, result: Result<T>) {
        let mut slot = self.slot.lock().expect("flight poisoned");
        if slot.is_none() {
            *slot = Some(result);
        }
        self.done.notify_all();
    }

    /// Blocks until the leader publishes, then returns a clone of the
    /// result.
    pub fn wait(&self) -> Result<T> {
        let mut slot = self.slot.lock().expect("flight poisoned");
        while slot.is_none() {
            slot = self.done.wait(slot).expect("flight poisoned");
        }
        slot.as_ref().expect("published").clone()
    }
}

/// Saturating single-flight counters. `computed` counts computations
/// actually executed, `joined` counts misses that reused another
/// request's in-flight computation instead of starting their own, and
/// `duplicate_computes` counts computes of a key this table had already
/// recorded before — wasted work that only a cache eviction (or a dedup
/// bug) can cause.
#[derive(Debug, Default)]
pub struct FlightStats {
    computed: kdv_obs::Counter,
    joined: kdv_obs::Counter,
    duplicates: kdv_obs::Counter,
}

impl FlightStats {
    /// Computations executed through this table.
    pub fn computed(&self) -> u64 {
        self.computed.get()
    }

    /// Misses that joined an in-flight computation instead of starting a
    /// duplicate one.
    pub fn joined(&self) -> u64 {
        self.joined.get()
    }

    /// Computes of a key that had already been computed before (zero
    /// unless the cache evicted it in between).
    pub fn duplicate_computes(&self) -> u64 {
        self.duplicates.get()
    }
}

/// A single-flight table over work keyed by `K`: misses claim keys
/// (becoming leader or joiner), leaders record completion, and the table
/// remembers every key ever computed for duplicate detection.
pub struct FlightTable<K, T> {
    inflight: Mutex<HashMap<K, Arc<Flight<T>>>>,
    computed: Mutex<HashSet<K>>,
    stats: FlightStats,
}

impl<K: Eq + Hash + Clone, T: Clone> FlightTable<K, T> {
    /// An empty table.
    pub fn new() -> Self {
        Self {
            inflight: Mutex::new(HashMap::new()),
            computed: Mutex::new(HashSet::new()),
            stats: FlightStats::default(),
        }
    }

    /// The table's saturating counters.
    pub fn stats(&self) -> &FlightStats {
        &self.stats
    }

    /// Splits one request's missing keys into flights this request
    /// **leads** (it was first; it must compute and publish) and flights
    /// it **joins** (another request is already computing the same key).
    /// All keys are claimed under one lock acquisition, so two requests
    /// missing an overlapping key set agree on exactly one leader per
    /// key.
    #[allow(clippy::type_complexity)]
    pub fn claim(&self, keys: &[K]) -> (Vec<(K, Arc<Flight<T>>)>, Vec<(K, Arc<Flight<T>>)>) {
        use std::collections::hash_map::Entry;
        let mut lead = Vec::new();
        let mut join = Vec::new();
        let mut map = self.inflight.lock().expect("inflight table poisoned");
        for key in keys {
            match map.entry(key.clone()) {
                Entry::Occupied(e) => {
                    self.stats.joined.bump();
                    kdv_obs::metrics::global().counter("serve.band.joined").bump();
                    join.push((key.clone(), Arc::clone(e.get())));
                }
                Entry::Vacant(v) => {
                    let flight = Arc::new(Flight::new());
                    v.insert(Arc::clone(&flight));
                    lead.push((key.clone(), flight));
                }
            }
        }
        (lead, join)
    }

    /// Removes a finished flight from the in-flight table (waiters that
    /// already hold the `Arc` still read its published result).
    pub fn deregister(&self, key: &K) {
        self.inflight.lock().expect("inflight table poisoned").remove(key);
    }

    /// Retires a key from the ever-computed set: its result was
    /// deliberately discarded (e.g. a streaming tile patched forward to
    /// a newer generation retires the stale generation), so a later
    /// recompute of it is legitimate work, not a dedup failure.
    pub fn forget(&self, key: &K) {
        self.computed.lock().expect("computed set poisoned").remove(key);
    }

    /// Records that `key` was computed, bumping the computed counter and
    /// — if this table had already recorded the same key — the duplicate
    /// counter. Returns whether it was a duplicate.
    pub fn record_computed(&self, key: K) -> bool {
        let duplicate = !self.computed.lock().expect("computed set poisoned").insert(key);
        self.stats.computed.bump();
        let metrics = kdv_obs::metrics::global();
        metrics.counter("serve.band.computed").bump();
        if duplicate {
            self.stats.duplicates.bump();
            metrics.counter("serve.band.duplicate").bump();
            // A duplicate compute is wasted work the dedup design says
            // cannot happen under an adequate cache — worth a flight dump.
            kdv_obs::ring::trigger("duplicate.compute", None);
        }
        duplicate
    }

    /// A publish-on-drop lease for a led flight: if the leader panics
    /// before [`FlightLease::complete`], waiters receive an error instead
    /// of blocking forever, and the flight is deregistered either way.
    pub fn lease<'a>(&'a self, key: K, flight: &'a Arc<Flight<T>>) -> FlightLease<'a, K, T> {
        FlightLease { table: self, key, flight, published: false }
    }
}

impl<K: Eq + Hash + Clone, T: Clone> Default for FlightTable<K, T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Publish-on-drop guard for a led flight (see [`FlightTable::lease`]).
pub struct FlightLease<'a, K: Eq + Hash + Clone, T: Clone> {
    table: &'a FlightTable<K, T>,
    key: K,
    flight: &'a Arc<Flight<T>>,
    published: bool,
}

impl<K: Eq + Hash + Clone, T: Clone> FlightLease<'_, K, T> {
    /// Publishes the leader's result and deregisters the flight.
    pub fn complete(&mut self, result: Result<T>) {
        self.flight.publish(result);
        self.table.deregister(&self.key);
        self.published = true;
    }
}

impl<K: Eq + Hash + Clone, T: Clone> Drop for FlightLease<'_, K, T> {
    fn drop(&mut self) {
        if !self.published {
            self.flight.publish(Err(KdvError::Internal("band compute leader panicked")));
            self.table.deregister(&self.key);
            kdv_obs::ring::trigger("leader.panic", None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn one_leader_per_key_and_joiners_share_the_result() {
        let table: FlightTable<u32, u64> = FlightTable::new();
        let (lead, join) = table.claim(&[1, 2]);
        assert_eq!((lead.len(), join.len()), (2, 0));
        let (lead2, join2) = table.claim(&[2, 3]);
        assert_eq!((lead2.len(), join2.len()), (1, 1), "key 2 joins, key 3 leads");
        for (key, flight) in lead.iter().chain(lead2.iter()) {
            let mut lease = table.lease(*key, flight);
            table.record_computed(*key);
            lease.complete(Ok(u64::from(*key) * 10));
        }
        assert_eq!(join2[0].1.wait().unwrap(), 20);
        assert_eq!(table.stats().computed(), 3);
        assert_eq!(table.stats().joined(), 1);
        assert_eq!(table.stats().duplicate_computes(), 0);
    }

    #[test]
    fn recompute_of_a_recorded_key_counts_as_duplicate() {
        let table: FlightTable<u32, u64> = FlightTable::new();
        assert!(!table.record_computed(7));
        assert!(table.record_computed(7));
        assert_eq!(table.stats().duplicate_computes(), 1);
    }

    #[test]
    fn dropped_lease_fails_waiters_instead_of_hanging() {
        let table: FlightTable<u32, u64> = FlightTable::new();
        let (lead, _) = table.claim(&[9]);
        let (_, join) = table.claim(&[9]);
        let waiter = {
            let flight = Arc::clone(&join[0].1);
            thread::spawn(move || flight.wait())
        };
        drop(table.lease(9, &lead[0].1)); // leader "panics" without publishing
        assert!(waiter.join().unwrap().is_err());
        // the flight is deregistered, so the key can be claimed afresh
        let (lead2, join2) = table.claim(&[9]);
        assert_eq!((lead2.len(), join2.len()), (1, 0));
    }
}
