//! Trace replayers: sequential (ground truth) and concurrent (through
//! the [`Frontend`] worker pool), both checksumming every served grid.
//!
//! The concurrent replayer spawns one thread per trace session; each
//! session is a closed loop — submit a viewport, wait for the result,
//! sleep its think time, move on. Because the serving path is exact
//! (a served viewport is bitwise-equal to cropping the monolithic
//! raster for any cache state and thread count), the per-request
//! checksums from a concurrent replay must equal those of a sequential
//! replay of the same sessions — which is exactly what the hammer tests
//! and `ci.sh serve-load` assert.

use std::sync::Arc;
use std::time::{Duration, Instant};

use kdv_core::DensityGrid;

use crate::frontend::{Frontend, ServeError, ShedReason};
use crate::server::TileServer;
use crate::trace::Session;

/// FNV-1a over the grid dimensions and the raw bit pattern of every
/// density value. Bitwise-sensitive: any single-ULP difference between
/// two grids produces a different checksum. Thin re-export of the shared
/// [`kdv_core::digest::grid_checksum`] so replay digests and the SIMD
/// dispatch probe use one definition.
pub fn checksum(grid: &DensityGrid) -> u64 {
    kdv_core::digest::grid_checksum(grid)
}

/// How one replayed request ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// Served; `checksum` fingerprints the grid bits.
    Served { checksum: u64 },
    /// Explicitly load-shed by the front end.
    Shed(ShedReason),
    /// Failed with a compute or shutdown error.
    Failed(String),
}

/// One request's replay record.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayRecord {
    /// Trace session id the request belongs to.
    pub session: u32,
    /// Position of the request within its session (0-based).
    pub seq: usize,
    /// End-to-end latency observed by the (virtual) user.
    pub latency_ns: u64,
    /// What happened.
    pub outcome: ReplayOutcome,
}

/// Replays every session's requests one at a time, in round-robin
/// session order, directly against the server (no front end, no
/// queueing). This is the single-threaded ground truth the concurrent
/// replay is compared against; think times are ignored. Like
/// [`replay_concurrent`], records come back sorted by `(session, seq)`.
pub fn replay_sequential(
    server: &TileServer,
    sessions: &[Session],
    threads: usize,
) -> Vec<ReplayRecord> {
    let mut records = Vec::new();
    let mut cursors = vec![0usize; sessions.len()];
    loop {
        let mut progressed = false;
        for (si, session) in sessions.iter().enumerate() {
            let seq = cursors[si];
            let Some(req) = session.requests.get(seq) else { continue };
            cursors[si] += 1;
            progressed = true;
            let start = Instant::now();
            let outcome = match server.serve_viewport(&req.viewport, threads) {
                Ok((grid, _)) => ReplayOutcome::Served { checksum: checksum(&grid) },
                Err(e) => ReplayOutcome::Failed(e.to_string()),
            };
            records.push(ReplayRecord {
                session: session.id,
                seq,
                latency_ns: start.elapsed().as_nanos() as u64,
                outcome,
            });
        }
        if !progressed {
            break;
        }
    }
    records.sort_by_key(|r| (r.session, r.seq));
    records
}

/// Replays the sessions concurrently through `frontend`, one thread per
/// session, each a closed loop over its own requests. With
/// `honor_think` the thread sleeps each request's think time before
/// submitting it; without, sessions hammer the front end back to back.
///
/// Records come back sorted by `(session, seq)` so they line up with a
/// [`replay_sequential`] run of the same sessions for comparison.
pub fn replay_concurrent(
    frontend: &Frontend,
    sessions: &[Session],
    honor_think: bool,
) -> Vec<ReplayRecord> {
    let mut records: Vec<ReplayRecord> = std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .iter()
            .map(|session| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(session.requests.len());
                    for (seq, req) in session.requests.iter().enumerate() {
                        if honor_think && req.think_ms > 0 {
                            std::thread::sleep(Duration::from_millis(req.think_ms));
                        }
                        let start = Instant::now();
                        let outcome = match frontend.serve(req.viewport) {
                            Ok((grid, _)) => ReplayOutcome::Served { checksum: checksum(&grid) },
                            Err(ServeError::Shed(reason)) => ReplayOutcome::Shed(reason),
                            Err(e) => ReplayOutcome::Failed(e.to_string()),
                        };
                        out.push(ReplayRecord {
                            session: session.id,
                            seq,
                            latency_ns: start.elapsed().as_nanos() as u64,
                            outcome,
                        });
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("replay session thread panicked"))
            .collect()
    });
    records.sort_by_key(|r| (r.session, r.seq));
    records
}

/// Upper-bound latency quantile (ns) over served-or-shed records;
/// `q` in `[0, 1]`. Returns 0 for an empty run.
pub fn latency_quantile_ns(records: &[ReplayRecord], q: f64) -> u64 {
    let mut lat: Vec<u64> = records.iter().map(|r| r.latency_ns).collect();
    if lat.is_empty() {
        return 0;
    }
    lat.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0) * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
    lat[rank - 1]
}

/// Convenience used by the benchmarks and the hammer tests: replays
/// `sessions` both ways against *fresh* state and asserts nothing —
/// just returns `(sequential, concurrent)` record sets for the caller
/// to compare.
pub fn replay_both(
    make_server: impl Fn() -> Arc<TileServer>,
    frontend_config: crate::frontend::FrontendConfig,
    sessions: &[Session],
) -> (Vec<ReplayRecord>, Vec<ReplayRecord>) {
    let sequential = replay_sequential(&make_server(), sessions, 1);
    let frontend = Frontend::new(make_server(), frontend_config);
    let concurrent = replay_concurrent(&frontend, sessions, false);
    (sequential, concurrent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::FrontendConfig;
    use crate::pyramid::{PyramidSpec, Viewport};
    use crate::server::ServeConfig;
    use crate::trace::SessionRequest;
    use kdv_core::{KernelType, Point, Rect};

    fn points(n: usize) -> Vec<Point> {
        let mut state = 0xD00Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::new(next() * 50.0, next() * 50.0)).collect()
    }

    fn server() -> Arc<TileServer> {
        let pyramid = PyramidSpec::new(Rect::new(0.0, 0.0, 50.0, 50.0), 16, 64, 64, 2).unwrap();
        let config =
            ServeConfig { dataset: 5, kernel: KernelType::Quartic, bandwidth: 9.0, weight: 0.01 };
        Arc::new(TileServer::new(pyramid, config, points(150), 1 << 22, 4))
    }

    fn pan_sessions(n: u32) -> Vec<Session> {
        (0..n)
            .map(|id| Session {
                id,
                requests: (0..6)
                    .map(|step| SessionRequest {
                        think_ms: 0,
                        viewport: Viewport {
                            zoom: 1,
                            px: (id as usize * 8 + step * 16) % 80,
                            py: (id as usize * 4) % 64,
                            width: 48,
                            height: 40,
                        },
                    })
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn checksum_is_bitwise_sensitive() {
        let mut a = DensityGrid::zeroed(4, 4);
        let b = a.clone();
        assert_eq!(checksum(&a), checksum(&b));
        a.set(2, 1, f64::from_bits(1)); // one ULP above zero
        assert_ne!(checksum(&a), checksum(&b));
    }

    #[test]
    fn concurrent_replay_matches_sequential_bitwise() {
        let sessions = pan_sessions(4);
        let (seq, conc) = replay_both(
            server,
            FrontendConfig { workers: 4, ..FrontendConfig::default() },
            &sessions,
        );
        assert_eq!(seq.len(), conc.len());
        for (s, c) in seq.iter().zip(&conc) {
            assert_eq!((s.session, s.seq), (c.session, c.seq));
            assert_eq!(s.outcome, c.outcome, "session {} seq {}", s.session, s.seq);
            assert!(matches!(s.outcome, ReplayOutcome::Served { .. }));
        }
    }

    #[test]
    fn think_times_are_honored() {
        let sessions = vec![Session {
            id: 0,
            requests: vec![SessionRequest {
                think_ms: 30,
                viewport: Viewport { zoom: 0, px: 0, py: 0, width: 16, height: 16 },
            }],
        }];
        let frontend = Frontend::new(server(), FrontendConfig::default());
        let start = Instant::now();
        let records = replay_concurrent(&frontend, &sessions, true);
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert_eq!(records.len(), 1);
        assert!(matches!(records[0].outcome, ReplayOutcome::Served { .. }));
    }

    #[test]
    fn latency_quantiles_bound_the_sample() {
        let recs: Vec<ReplayRecord> = (1..=100)
            .map(|i| ReplayRecord {
                session: 0,
                seq: i as usize,
                latency_ns: i,
                outcome: ReplayOutcome::Served { checksum: 0 },
            })
            .collect();
        assert_eq!(latency_quantile_ns(&recs, 0.5), 50);
        assert_eq!(latency_quantile_ns(&recs, 0.99), 99);
        assert_eq!(latency_quantile_ns(&recs, 1.0), 100);
        assert_eq!(latency_quantile_ns(&[], 0.5), 0);
    }
}
