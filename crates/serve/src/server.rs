//! The tile server: viewport requests in, exact density rasters out.
//!
//! A [`TileServer`] owns one immutable point set and a [`PyramidSpec`],
//! and answers [`Viewport`] requests by assembling cached tiles. A miss
//! computes the whole **tile row band** the missing tile lives in — one
//! full-level-width sweep per band via [`kdv_core::tile::compute_band`] —
//! and inserts every tile of the band, so a pan that walks horizontally
//! across a level keeps hitting tiles its first request already paid for
//! (the shared-aggregate amortisation described in `kdv_core::tile`).
//!
//! Exactness contract: a served viewport is bitwise-equal to cropping the
//! monolithic `sweep_bucket` raster of the whole level, whether the tiles
//! came from the cache or were computed on the spot, for any thread
//! count. The cache key carries the full provenance of the bits
//! ([`crate::cache::TileKey`]), and tile computation is
//! viewport-independent, so cached and fresh tiles cannot diverge.
//!
//! Concurrency: band computation is **single-flight**. Concurrent misses
//! on the same `(zoom, ty)` row band elect one leader under the in-flight
//! table's lock; the leader computes the band once and publishes the
//! tiles to every waiter, so two users panning the same region share one
//! sweep instead of duplicating it (this is also the cross-request
//! batching unit — a band *is* the batch, and every request that needs
//! any tile of it joins the same computation). [`FlightStats`] counts
//! leaders, joiners and duplicate computes; under an adequately sized
//! cache the duplicate counter stays at zero however many threads hammer
//! the server, which `ci.sh serve-load` asserts.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use kdv_core::driver::SweepContext;
use kdv_core::envelope::EnvelopeBuffer;
use kdv_core::parallel::for_each_index_with;
use kdv_core::sweep_bucket::BucketSweep;
use kdv_core::telemetry::SweepReport;
use kdv_core::tile::{compute_band, compute_band_weighted, Tile, Tiling};
use kdv_core::weighted::WeightedWorkspace;
use kdv_core::{DensityGrid, KdvError, KernelType, Point, Result};
use kdv_coreset::{Coreset, CoresetMethod, CoresetSpec};

use crate::cache::{CacheStats, TileCache, TileKey, TileTier};
use crate::flight::{Flight, FlightStats, FlightTable};
use crate::pyramid::{PyramidSpec, TileCoord, Viewport};

/// Kernel configuration a server answers requests under (one server = one
/// dataset × one kernel configuration; vary either and the tile bits
/// change, which is exactly what the cache key encodes).
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Identifier of the point set, embedded in every cache key.
    pub dataset: u64,
    /// Spatial kernel.
    pub kernel: KernelType,
    /// Kernel bandwidth.
    pub bandwidth: f64,
    /// Normalisation weight.
    pub weight: f64,
}

/// Configuration of the approximate overview tier: pyramid levels at or
/// below `max_zoom` are served from an ε-coreset of the dataset instead
/// of the full point set (deep zooms stay exact). The coreset is built
/// once at server construction, with the certificate measured on exactly
/// the level grids this tier will answer on.
#[derive(Debug, Clone, Copy)]
pub struct OverviewConfig {
    /// Highest zoom served from the coreset (inclusive); `zoom >
    /// max_zoom` requests stay exact over the full set.
    pub max_zoom: u8,
    /// Coreset construction method.
    pub method: CoresetMethod,
    /// Target sup-error, relative to the density scale `|w|·n·K(0)`
    /// (see [`kdv_coreset::density_scale`]). The achieved (certified)
    /// bound is reported in [`TierInfo::epsilon`].
    pub target_rel_epsilon: f64,
    /// Construction seed (meaningful for the `Sample` method).
    pub seed: u64,
}

/// Which tier answered a request, plus the approximation metadata a
/// client needs to label the result. Attached to every served viewport
/// by [`TileServer::serve_viewport_tiered`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierInfo {
    /// Exact or coreset provenance of every tile in the response.
    pub tier: TileTier,
    /// Certified sup-error bound of the response vs the exact raster
    /// (`None` for the exact tier, which is bitwise-equal instead).
    pub epsilon: Option<f64>,
    /// Number of coreset representatives the tier sweeps over (`None`
    /// for the exact tier).
    pub coreset_size: Option<usize>,
}

/// The built overview tier: the coreset and the zoom threshold it
/// answers for.
struct OverviewTier {
    coreset: Coreset,
    max_zoom: u8,
}

/// Identity of one tile row band within a server (the server fixes
/// dataset, kernel, bandwidth and weight, so `(zoom, ty)` is the full
/// single-flight key — the tier is a function of the zoom).
type BandId = (u8, usize);

/// The shared tiles of one computed band, in `tx` order.
type BandTiles = Vec<Arc<Tile>>;

/// Caching tile server over one point set and pyramid.
pub struct TileServer {
    pyramid: PyramidSpec,
    config: ServeConfig,
    points: Vec<Point>,
    cache: TileCache,
    /// Lazily-built per-level sweep contexts (recentred points + banded
    /// index + pixel coordinates), indexed by zoom. Shared by every
    /// request at that level.
    contexts: Vec<OnceLock<Arc<SweepContext>>>,
    /// Single-flight table over bands keyed by `(zoom, ty)`: a miss
    /// either leads (computes and publishes) or joins the existing
    /// flight. The table's ever-computed set is bounded by the pyramid's
    /// band count, not by traffic.
    flights: FlightTable<BandId, Arc<BandTiles>>,
    /// Approximate overview tier, when configured.
    overview: Option<OverviewTier>,
}

impl TileServer {
    /// A server for `points` over `pyramid`, caching at most
    /// `cache_bytes` bytes of tiles across `cache_shards` shards.
    pub fn new(
        pyramid: PyramidSpec,
        config: ServeConfig,
        points: Vec<Point>,
        cache_bytes: usize,
        cache_shards: usize,
    ) -> Self {
        let contexts = (0..=pyramid.max_zoom as usize).map(|_| OnceLock::new()).collect();
        Self {
            pyramid,
            config,
            points,
            cache: TileCache::new(cache_bytes, cache_shards),
            contexts,
            flights: FlightTable::new(),
            overview: None,
        }
    }

    /// [`TileServer::new`] plus an approximate overview tier: builds an
    /// ε-coreset of `points` (certified on exactly the level grids of
    /// zooms `0..=overview.max_zoom`) and serves those levels from it,
    /// while deeper zooms stay exact over the full set. The achieved ε
    /// is surfaced by [`TileServer::tier_info`] and in every
    /// [`TierInfo`] this server attaches to a response.
    pub fn with_overview_coreset(
        pyramid: PyramidSpec,
        config: ServeConfig,
        points: Vec<Point>,
        cache_bytes: usize,
        cache_shards: usize,
        overview: OverviewConfig,
    ) -> Result<Self> {
        let threshold = overview.max_zoom.min(pyramid.max_zoom);
        let eval_grids = (0..=threshold).map(|z| pyramid.level_grid(z)).collect();
        let scale = kdv_coreset::density_scale(
            config.kernel,
            config.bandwidth,
            config.weight,
            points.len(),
        );
        let spec = CoresetSpec {
            method: overview.method,
            target_epsilon: overview.target_rel_epsilon * scale,
            kernel: config.kernel,
            bandwidth: config.bandwidth,
            weight: config.weight,
            seed: overview.seed,
            eval_grids,
        };
        let coreset = kdv_coreset::build(&spec, &points)?;
        let mut server = Self::new(pyramid, config, points, cache_bytes, cache_shards);
        server.overview = Some(OverviewTier { coreset, max_zoom: threshold });
        Ok(server)
    }

    /// Which tier answers requests at `zoom`.
    pub fn tier_of(&self, zoom: u8) -> TileTier {
        match &self.overview {
            Some(tier) if zoom <= tier.max_zoom => TileTier::Coreset,
            _ => TileTier::Exact,
        }
    }

    /// Tier metadata for `zoom`: the tier plus, for the coreset tier,
    /// the advertised ε and coreset size.
    pub fn tier_info(&self, zoom: u8) -> TierInfo {
        match self.tier_of(zoom) {
            TileTier::Exact => {
                TierInfo { tier: TileTier::Exact, epsilon: None, coreset_size: None }
            }
            TileTier::Coreset => {
                let tier = self.overview.as_ref().expect("coreset tier implies overview");
                TierInfo {
                    tier: TileTier::Coreset,
                    epsilon: Some(tier.coreset.epsilon),
                    coreset_size: Some(tier.coreset.len()),
                }
            }
        }
    }

    /// The pyramid this server answers for.
    pub fn pyramid(&self) -> &PyramidSpec {
        &self.pyramid
    }

    /// The kernel configuration this server answers under.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The cache's cumulative saturating counters.
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// The tile cache (exposed for stress tests and byte accounting).
    pub fn cache(&self) -> &TileCache {
        &self.cache
    }

    /// The single-flight band-computation counters.
    pub fn flight_stats(&self) -> &FlightStats {
        self.flights.stats()
    }

    fn key(&self, zoom: u8, tx: usize, ty: usize) -> TileKey {
        TileKey::new(
            self.config.dataset,
            self.config.kernel,
            self.config.bandwidth,
            self.config.weight,
            TileCoord { zoom, tx: tx as u32, ty: ty as u32 },
        )
        .with_tier(self.tier_of(zoom))
    }

    /// The point set the given zoom sweeps over: the coreset for
    /// overview levels, the full set for exact levels.
    fn tier_points(&self, zoom: u8) -> &[Point] {
        match self.tier_of(zoom) {
            TileTier::Exact => &self.points,
            TileTier::Coreset => {
                &self.overview.as_ref().expect("coreset tier implies overview").coreset.points
            }
        }
    }

    /// The level's shared sweep context, built on first use over the
    /// level tier's point set. Concurrent first requests may build it
    /// twice; construction is deterministic, so either copy yields the
    /// same bits and one is dropped.
    fn level_context(&self, zoom: u8) -> Result<Arc<SweepContext>> {
        let slot = &self.contexts[zoom as usize];
        if let Some(ctx) = slot.get() {
            return Ok(Arc::clone(ctx));
        }
        let _s = kdv_obs::span1("pyramid.build", "zoom", zoom as u64);
        let params = self.pyramid.level_params(
            zoom,
            self.config.kernel,
            self.config.bandwidth,
            self.config.weight,
        );
        let built = Arc::new(SweepContext::new(&params, self.tier_points(zoom))?);
        Ok(Arc::clone(slot.get_or_init(|| built)))
    }

    /// Fresh per-worker band-compute scratch for the given zoom's tier.
    fn band_scratch(&self, zoom: u8, points_len: usize) -> BandScratch {
        match self.tier_of(zoom) {
            TileTier::Exact => BandScratch::Exact(
                BucketSweep::new(self.config.kernel, self.config.bandwidth, self.config.weight),
                EnvelopeBuffer::for_points(points_len),
                Vec::new(),
            ),
            TileTier::Coreset => BandScratch::Coreset(WeightedWorkspace::new(), Vec::new()),
        }
    }

    /// Computes one led band, caches its tiles, records the single-flight
    /// counters and publishes the result to any joined waiters. Always
    /// publishes and deregisters, even if the sweep panics (the lease
    /// guard publishes an error so waiters fail instead of hanging).
    /// Exact-tier bands run the plain bucket sweep; coreset-tier bands
    /// run the weighted sweep over the coreset multiplicities.
    fn lead_band(
        &self,
        req: &LeadContext<'_>,
        ty: usize,
        flight: &Arc<Flight<Arc<BandTiles>>>,
        scratch: &mut BandScratch,
    ) -> Arc<BandTiles> {
        let zoom = req.zoom;
        let mut lease = self.flights.lease((zoom, ty), flight);
        let computed = match scratch {
            BandScratch::Exact(engine, envelope, band) => {
                compute_band(req.ctx, req.tiling, self.config.bandwidth, ty, engine, envelope, band)
            }
            BandScratch::Coreset(workspace, band) => {
                let tier = self.overview.as_ref().expect("coreset scratch implies overview");
                let params = self.pyramid.level_params(
                    zoom,
                    self.config.kernel,
                    self.config.bandwidth,
                    self.config.weight,
                );
                compute_band_weighted(
                    req.ctx,
                    req.tiling,
                    &params,
                    ty,
                    &tier.coreset.weights,
                    workspace,
                    band,
                )
            }
        };
        let shared: Arc<BandTiles> = Arc::new(computed.into_iter().map(Arc::new).collect());
        for tile in shared.iter() {
            // Every tile of the band goes into the cache — the sweep
            // already paid for them (pan prefetch).
            let outcome = self.cache.insert(self.key(zoom, tile.tx, tile.ty), Arc::clone(tile));
            req.evictions.fetch_add(outcome.evicted, Ordering::Relaxed);
            req.rejected.fetch_add(outcome.rejected as u64, Ordering::Relaxed);
        }
        self.flights.record_computed((zoom, ty));
        lease.complete(Ok(Arc::clone(&shared)));
        shared
    }

    /// Serves one viewport: assembles the requested pixel window from
    /// cached tiles, computing (and caching) any missing row bands on the
    /// work-stealing runtime (`threads == 0` means "auto"). Misses are
    /// **single-flight** per band: if another request is already
    /// computing a needed band, this request waits for that result
    /// instead of duplicating the sweep.
    ///
    /// Returns the `width × height` density raster plus a [`SweepReport`]
    /// whose cache counters are the **deltas this request itself
    /// caused** — counted along this request's own lookups and inserts,
    /// never inferred from the global counters (which would misattribute
    /// other requests' traffic under concurrency). The raster is
    /// bitwise-equal to cropping the monolithic level raster, for any
    /// cache state and thread count.
    pub fn serve_viewport(
        &self,
        viewport: &Viewport,
        threads: usize,
    ) -> Result<(DensityGrid, SweepReport)> {
        let (grid, report, _tier) = self.serve_viewport_tiered(viewport, threads)?;
        Ok((grid, report))
    }

    /// [`TileServer::serve_viewport`] plus the [`TierInfo`] metadata of
    /// the level that answered: which tier it was and, for the coreset
    /// tier, the advertised ε and coreset size.
    pub fn serve_viewport_tiered(
        &self,
        viewport: &Viewport,
        threads: usize,
    ) -> Result<(DensityGrid, SweepReport, TierInfo)> {
        let started = Instant::now();
        let mut span = kdv_obs::span2(
            "serve.viewport",
            "zoom",
            viewport.zoom as u64,
            "pixels",
            (viewport.width * viewport.height) as u64,
        );
        let vp = viewport
            .clamped(&self.pyramid)
            .ok_or(KdvError::EmptyResolution { x: viewport.width, y: viewport.height })?;
        let tier_info = self.tier_info(vp.zoom);
        {
            let _s = kdv_obs::span2(
                "serve.tier",
                "zoom",
                vp.zoom as u64,
                "coreset",
                u64::from(tier_info.tier == TileTier::Coreset),
            );
            kdv_obs::metrics::global()
                .counter(match tier_info.tier {
                    TileTier::Exact => "serve.tier.exact",
                    TileTier::Coreset => "serve.tier.coreset",
                })
                .bump();
        }
        let tiling = self.pyramid.level_tiling(vp.zoom);
        let tile_size = self.pyramid.tile_size;
        let want_cols = vp.tile_cols(tile_size);
        let want_rows = vp.tile_rows(tile_size);

        // Look every needed tile up first, counting this request's own
        // hits and misses; group the misses by row band.
        let mut tiles: HashMap<(usize, usize), Arc<Tile>> = HashMap::new();
        let mut missing_bands: BTreeSet<usize> = BTreeSet::new();
        let (mut req_hits, mut req_misses) = (0u64, 0u64);
        for ty in want_rows.clone() {
            for tx in want_cols.clone() {
                match self.cache.get(&self.key(vp.zoom, tx, ty)) {
                    Some(tile) => {
                        req_hits += 1;
                        tiles.insert((tx, ty), tile);
                    }
                    None => {
                        req_misses += 1;
                        missing_bands.insert(ty);
                    }
                }
            }
        }

        let req_evictions = AtomicU64::new(0);
        let req_rejected = AtomicU64::new(0);
        if !missing_bands.is_empty() {
            let ctx = self.level_context(vp.zoom)?;
            let keys: Vec<BandId> = missing_bands.into_iter().map(|ty| (vp.zoom, ty)).collect();
            let (lead, join) = self.flights.claim(&keys);
            let req = LeadContext {
                ctx: &ctx,
                tiling: &tiling,
                zoom: vp.zoom,
                evictions: &req_evictions,
                rejected: &req_rejected,
            };

            // Compute the bands this request leads, in parallel, each
            // publishing to its flight as soon as it finishes.
            let led: Vec<(usize, Arc<BandTiles>)> = for_each_index_with(
                lead.len(),
                threads,
                || self.band_scratch(vp.zoom, ctx.points.len()),
                |scratch, i| {
                    let ((_, ty), ref flight) = lead[i];
                    let shared = self.lead_band(&req, ty, flight, scratch);
                    (ty, shared)
                },
            );

            // Collect led results, then wait for the flights other
            // requests are computing on this request's behalf.
            let mut band_results: Vec<(usize, Arc<BandTiles>)> = led;
            for ((_, ty), flight) in join {
                band_results.push((ty, flight.wait()?));
            }
            for (_, shared) in band_results {
                for tile in shared.iter() {
                    if want_cols.contains(&tile.tx) && want_rows.contains(&tile.ty) {
                        tiles.insert((tile.tx, tile.ty), Arc::clone(tile));
                    }
                }
            }
        }

        // Assemble the viewport window from tile overlaps.
        let mut out = DensityGrid::zeroed(vp.width, vp.height);
        for ty in want_rows.clone() {
            let rows = tiling.tile_rows(ty);
            for tx in want_cols.clone() {
                let cols = tiling.tile_cols(tx);
                let tile = &tiles[&(tx, ty)];
                let x0 = vp.px.max(cols.start);
                let x1 = (vp.px + vp.width).min(cols.end);
                let y0 = vp.py.max(rows.start);
                let y1 = (vp.py + vp.height).min(rows.end);
                for y in y0..y1 {
                    let src = tile.row(y - rows.start);
                    out.row_mut(y - vp.py)[x0 - vp.px..x1 - vp.px]
                        .copy_from_slice(&src[x0 - cols.start..x1 - cols.start]);
                }
            }
        }

        let mut report = SweepReport::from_workers(Vec::new(), vp.height, 0)
            .with_cache_counters(req_hits, req_misses, req_evictions.load(Ordering::Relaxed))
            .with_cache_rejected(req_rejected.load(Ordering::Relaxed));
        report.threads = threads;
        report.wall_nanos = started.elapsed().as_nanos() as u64;
        span.arg("misses", report.cache_misses);
        let metrics = kdv_obs::metrics::global();
        metrics.histogram("serve.request_ns").record(report.wall_nanos);
        metrics
            .histogram(match tier_info.tier {
                TileTier::Exact => "serve.request_ns.exact",
                TileTier::Coreset => "serve.request_ns.coreset",
            })
            .record(report.wall_nanos);
        Ok((out, report, tier_info))
    }
}

/// Per-worker band-compute scratch, tier-shaped: the exact tier drives
/// the plain bucket row engine, the coreset tier drives the weighted
/// engine through its workspace.
enum BandScratch {
    Exact(BucketSweep, EnvelopeBuffer, Vec<f64>),
    Coreset(WeightedWorkspace, Vec<f64>),
}

/// Per-request context shared by every band this request leads: the
/// level's sweep context and tiling, plus the request-local eviction /
/// rejection accumulators (leaders insert from parallel worker threads,
/// so the deltas are atomics).
struct LeadContext<'a> {
    ctx: &'a SweepContext,
    tiling: &'a Tiling,
    zoom: u8,
    evictions: &'a AtomicU64,
    rejected: &'a AtomicU64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::sweep_bucket;
    use kdv_core::Rect;

    fn points(n: usize) -> Vec<Point> {
        let mut state = 0xBADC0FFEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::new(next() * 100.0, next() * 100.0)).collect()
    }

    fn server(cache_bytes: usize) -> TileServer {
        let pyramid = PyramidSpec::new(Rect::new(0.0, 0.0, 100.0, 100.0), 16, 48, 48, 2).unwrap();
        let config = ServeConfig {
            dataset: 7,
            kernel: KernelType::Epanechnikov,
            bandwidth: 14.0,
            weight: 0.005,
        };
        TileServer::new(pyramid, config, points(300), cache_bytes, 4)
    }

    /// Crops the monolithic level raster to the viewport — the reference
    /// every served viewport must match bitwise.
    fn crop_reference(server: &TileServer, vp: &Viewport) -> DensityGrid {
        let params = server.pyramid().level_params(
            vp.zoom,
            server.config().kernel,
            server.config().bandwidth,
            server.config().weight,
        );
        let full = sweep_bucket::compute(&params, &server.points).unwrap();
        let mut out = DensityGrid::zeroed(vp.width, vp.height);
        for j in 0..vp.height {
            out.row_mut(j).copy_from_slice(&full.row(vp.py + j)[vp.px..vp.px + vp.width]);
        }
        out
    }

    #[test]
    fn viewport_matches_cropped_monolithic_bitwise() {
        let srv = server(1 << 22);
        for vp in [
            Viewport { zoom: 0, px: 0, py: 0, width: 48, height: 48 },
            Viewport { zoom: 1, px: 13, py: 29, width: 41, height: 30 },
            Viewport { zoom: 2, px: 100, py: 77, width: 50, height: 33 },
        ] {
            let (grid, _) = srv.serve_viewport(&vp, 0).unwrap();
            assert_eq!(grid, crop_reference(&srv, &vp), "{vp:?}");
        }
    }

    #[test]
    fn second_request_hits_cache_and_matches() {
        let srv = server(1 << 22);
        let vp = Viewport { zoom: 1, px: 5, py: 9, width: 60, height: 40 };
        let (cold, r1) = srv.serve_viewport(&vp, 2).unwrap();
        assert_eq!(r1.cache_hits, 0);
        assert!(r1.cache_misses > 0);
        let (warm, r2) = srv.serve_viewport(&vp, 2).unwrap();
        assert_eq!(r2.cache_misses, 0);
        assert!(r2.cache_hits > 0);
        assert_eq!(warm, cold, "cached bits differ from fresh bits");
    }

    #[test]
    fn pan_reuses_band_tiles() {
        let srv = server(1 << 22);
        let a = Viewport { zoom: 1, px: 0, py: 20, width: 32, height: 16 };
        let (_, r1) = srv.serve_viewport(&a, 0).unwrap();
        assert!(r1.cache_misses > 0);
        // pan right within the same row bands: every tile was prefetched
        let b = Viewport { zoom: 1, px: 48, py: 20, width: 32, height: 16 };
        let (grid, r2) = srv.serve_viewport(&b, 0).unwrap();
        assert_eq!(r2.cache_misses, 0, "horizontal pan should be all hits");
        assert_eq!(grid, crop_reference(&srv, &b));
    }

    #[test]
    fn degenerate_viewports_are_rejected() {
        let srv = server(1 << 20);
        let out_of_level = Viewport { zoom: 9, px: 0, py: 0, width: 4, height: 4 };
        assert!(srv.serve_viewport(&out_of_level, 0).is_err());
        let empty = Viewport { zoom: 0, px: 0, py: 0, width: 0, height: 4 };
        assert!(srv.serve_viewport(&empty, 0).is_err());
    }

    fn tiered_server(cache_bytes: usize, threshold: u8) -> TileServer {
        let pyramid = PyramidSpec::new(Rect::new(0.0, 0.0, 100.0, 100.0), 16, 48, 48, 2).unwrap();
        let config = ServeConfig {
            dataset: 7,
            kernel: KernelType::Epanechnikov,
            bandwidth: 14.0,
            weight: 0.005,
        };
        let overview = OverviewConfig {
            max_zoom: threshold,
            method: CoresetMethod::Grid,
            target_rel_epsilon: 0.01,
            seed: 11,
        };
        TileServer::with_overview_coreset(pyramid, config, points(300), cache_bytes, 4, overview)
            .unwrap()
    }

    #[test]
    fn coreset_tier_serves_within_advertised_epsilon() {
        let srv = tiered_server(1 << 22, 1);
        for vp in [
            Viewport { zoom: 0, px: 0, py: 0, width: 48, height: 48 },
            Viewport { zoom: 1, px: 13, py: 29, width: 41, height: 30 },
        ] {
            let (grid, _, tier) = srv.serve_viewport_tiered(&vp, 0).unwrap();
            assert_eq!(tier.tier, TileTier::Coreset, "{vp:?}");
            let eps = tier.epsilon.expect("coreset tier advertises epsilon");
            assert!(tier.coreset_size.unwrap() < 300, "coreset should shrink the point set");
            let exact = crop_reference(&srv, &vp);
            let sup = grid
                .values()
                .iter()
                .zip(exact.values())
                .map(|(a, r)| (a - r).abs())
                .fold(0.0f64, f64::max);
            assert!(sup <= eps, "{vp:?}: sup {sup:e} > advertised {eps:e}");
        }
    }

    #[test]
    fn exact_tier_above_threshold_stays_bitwise() {
        let srv = tiered_server(1 << 22, 1);
        let vp = Viewport { zoom: 2, px: 100, py: 77, width: 50, height: 33 };
        let (grid, _, tier) = srv.serve_viewport_tiered(&vp, 0).unwrap();
        assert_eq!(tier, TierInfo { tier: TileTier::Exact, epsilon: None, coreset_size: None });
        assert_eq!(grid, crop_reference(&srv, &vp), "exact tier must stay bitwise-equal");
    }

    #[test]
    fn untiered_server_is_all_exact() {
        let srv = server(1 << 20);
        for zoom in 0..=2 {
            assert_eq!(srv.tier_of(zoom), TileTier::Exact);
            assert_eq!(srv.tier_info(zoom).epsilon, None);
        }
    }

    #[test]
    fn tiny_cache_still_serves_exact_results() {
        let srv = server(1024); // far too small to hold a band
        let vp = Viewport { zoom: 1, px: 10, py: 10, width: 50, height: 50 };
        let (grid, report) = srv.serve_viewport(&vp, 0).unwrap();
        assert_eq!(grid, crop_reference(&srv, &vp));
        // a 1024-byte budget cannot admit a single tile: every insert is
        // rejected as oversized (not miscounted as an eviction)
        assert!(report.cache_rejected > 0, "tiny budget must reject oversized tiles");
        assert_eq!(report.cache_evictions, 0, "nothing admitted, so nothing displaced");
        assert!(srv.cache().bytes() <= srv.cache().budget());
    }
}
