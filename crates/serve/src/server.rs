//! The tile server: viewport requests in, exact density rasters out.
//!
//! A [`TileServer`] owns one immutable point set and a [`PyramidSpec`],
//! and answers [`Viewport`] requests by assembling cached tiles. A miss
//! computes the whole **tile row band** the missing tile lives in — one
//! full-level-width sweep per band via [`kdv_core::tile::compute_band`] —
//! and inserts every tile of the band, so a pan that walks horizontally
//! across a level keeps hitting tiles its first request already paid for
//! (the shared-aggregate amortisation described in `kdv_core::tile`).
//!
//! Exactness contract: a served viewport is bitwise-equal to cropping the
//! monolithic `sweep_bucket` raster of the whole level, whether the tiles
//! came from the cache or were computed on the spot, for any thread
//! count. The cache key carries the full provenance of the bits
//! ([`crate::cache::TileKey`]), and tile computation is
//! viewport-independent, so cached and fresh tiles cannot diverge.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use kdv_core::driver::SweepContext;
use kdv_core::envelope::EnvelopeBuffer;
use kdv_core::parallel::for_each_index_with;
use kdv_core::sweep_bucket::BucketSweep;
use kdv_core::telemetry::SweepReport;
use kdv_core::tile::{compute_band, Tile};
use kdv_core::{DensityGrid, KdvError, KernelType, Point, Result};

use crate::cache::{CacheStats, TileCache, TileKey};
use crate::pyramid::{PyramidSpec, TileCoord, Viewport};

/// Kernel configuration a server answers requests under (one server = one
/// dataset × one kernel configuration; vary either and the tile bits
/// change, which is exactly what the cache key encodes).
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Identifier of the point set, embedded in every cache key.
    pub dataset: u64,
    /// Spatial kernel.
    pub kernel: KernelType,
    /// Kernel bandwidth.
    pub bandwidth: f64,
    /// Normalisation weight.
    pub weight: f64,
}

/// Caching tile server over one point set and pyramid.
pub struct TileServer {
    pyramid: PyramidSpec,
    config: ServeConfig,
    points: Vec<Point>,
    cache: TileCache,
    /// Lazily-built per-level sweep contexts (recentred points + banded
    /// index + pixel coordinates), indexed by zoom. Shared by every
    /// request at that level.
    contexts: Vec<OnceLock<Arc<SweepContext>>>,
}

impl TileServer {
    /// A server for `points` over `pyramid`, caching at most
    /// `cache_bytes` bytes of tiles across `cache_shards` shards.
    pub fn new(
        pyramid: PyramidSpec,
        config: ServeConfig,
        points: Vec<Point>,
        cache_bytes: usize,
        cache_shards: usize,
    ) -> Self {
        let contexts = (0..=pyramid.max_zoom as usize).map(|_| OnceLock::new()).collect();
        Self { pyramid, config, points, cache: TileCache::new(cache_bytes, cache_shards), contexts }
    }

    /// The pyramid this server answers for.
    pub fn pyramid(&self) -> &PyramidSpec {
        &self.pyramid
    }

    /// The kernel configuration this server answers under.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The cache's cumulative saturating counters.
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// The tile cache (exposed for stress tests and byte accounting).
    pub fn cache(&self) -> &TileCache {
        &self.cache
    }

    fn key(&self, zoom: u8, tx: usize, ty: usize) -> TileKey {
        TileKey::new(
            self.config.dataset,
            self.config.kernel,
            self.config.bandwidth,
            self.config.weight,
            TileCoord { zoom, tx: tx as u32, ty: ty as u32 },
        )
    }

    /// The level's shared sweep context, built on first use. Concurrent
    /// first requests may build it twice; construction is deterministic,
    /// so either copy yields the same bits and one is dropped.
    fn level_context(&self, zoom: u8) -> Result<Arc<SweepContext>> {
        let slot = &self.contexts[zoom as usize];
        if let Some(ctx) = slot.get() {
            return Ok(Arc::clone(ctx));
        }
        let _s = kdv_obs::span1("pyramid.build", "zoom", zoom as u64);
        let params = self.pyramid.level_params(
            zoom,
            self.config.kernel,
            self.config.bandwidth,
            self.config.weight,
        );
        let built = Arc::new(SweepContext::new(&params, &self.points)?);
        Ok(Arc::clone(slot.get_or_init(|| built)))
    }

    /// Serves one viewport: assembles the requested pixel window from
    /// cached tiles, computing (and caching) any missing row bands on the
    /// work-stealing runtime (`threads == 0` means "auto").
    ///
    /// Returns the `width × height` density raster plus a [`SweepReport`]
    /// whose cache counters are the **deltas** this request caused.
    /// The raster is bitwise-equal to cropping the monolithic level
    /// raster, for any cache state and thread count.
    pub fn serve_viewport(
        &self,
        viewport: &Viewport,
        threads: usize,
    ) -> Result<(DensityGrid, SweepReport)> {
        let started = Instant::now();
        let mut span = kdv_obs::span2(
            "serve.viewport",
            "zoom",
            viewport.zoom as u64,
            "pixels",
            (viewport.width * viewport.height) as u64,
        );
        let (hits0, misses0, evictions0) = (
            self.cache.stats().hits(),
            self.cache.stats().misses(),
            self.cache.stats().evictions(),
        );
        let vp = viewport
            .clamped(&self.pyramid)
            .ok_or(KdvError::EmptyResolution { x: viewport.width, y: viewport.height })?;
        let tiling = self.pyramid.level_tiling(vp.zoom);
        let tile_size = self.pyramid.tile_size;
        let want_cols = vp.tile_cols(tile_size);
        let want_rows = vp.tile_rows(tile_size);

        // Look every needed tile up first; group the misses by row band.
        let mut tiles: HashMap<(usize, usize), Arc<Tile>> = HashMap::new();
        let mut missing_bands: BTreeSet<usize> = BTreeSet::new();
        for ty in want_rows.clone() {
            for tx in want_cols.clone() {
                match self.cache.get(&self.key(vp.zoom, tx, ty)) {
                    Some(tile) => {
                        tiles.insert((tx, ty), tile);
                    }
                    None => {
                        missing_bands.insert(ty);
                    }
                }
            }
        }

        if !missing_bands.is_empty() {
            let ctx = self.level_context(vp.zoom)?;
            let bands: Vec<usize> = missing_bands.into_iter().collect();
            let computed: Vec<Vec<Tile>> = for_each_index_with(
                bands.len(),
                threads,
                || {
                    (
                        BucketSweep::new(
                            self.config.kernel,
                            self.config.bandwidth,
                            self.config.weight,
                        ),
                        EnvelopeBuffer::for_points(ctx.points.len()),
                        Vec::new(),
                    )
                },
                |(engine, envelope, band), i| {
                    compute_band(
                        &ctx,
                        &tiling,
                        self.config.bandwidth,
                        bands[i],
                        engine,
                        envelope,
                        band,
                    )
                },
            );
            for band_tiles in computed {
                for tile in band_tiles {
                    let (tx, ty) = (tile.tx, tile.ty);
                    let tile = Arc::new(tile);
                    // Every tile of the band goes into the cache — the
                    // sweep already paid for them (pan prefetch).
                    self.cache.insert(self.key(vp.zoom, tx, ty), Arc::clone(&tile));
                    if want_cols.contains(&tx) && want_rows.contains(&ty) {
                        tiles.insert((tx, ty), tile);
                    }
                }
            }
        }

        // Assemble the viewport window from tile overlaps.
        let mut out = DensityGrid::zeroed(vp.width, vp.height);
        for ty in want_rows.clone() {
            let rows = tiling.tile_rows(ty);
            for tx in want_cols.clone() {
                let cols = tiling.tile_cols(tx);
                let tile = &tiles[&(tx, ty)];
                let x0 = vp.px.max(cols.start);
                let x1 = (vp.px + vp.width).min(cols.end);
                let y0 = vp.py.max(rows.start);
                let y1 = (vp.py + vp.height).min(rows.end);
                for y in y0..y1 {
                    let src = tile.row(y - rows.start);
                    out.row_mut(y - vp.py)[x0 - vp.px..x1 - vp.px]
                        .copy_from_slice(&src[x0 - cols.start..x1 - cols.start]);
                }
            }
        }

        let mut report = SweepReport::from_workers(Vec::new(), vp.height, 0).with_cache_counters(
            self.cache.stats().hits().saturating_sub(hits0),
            self.cache.stats().misses().saturating_sub(misses0),
            self.cache.stats().evictions().saturating_sub(evictions0),
        );
        report.threads = threads;
        report.wall_nanos = started.elapsed().as_nanos() as u64;
        span.arg("misses", report.cache_misses);
        kdv_obs::metrics::global().histogram("serve.request_ns").record(report.wall_nanos);
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::sweep_bucket;
    use kdv_core::Rect;

    fn points(n: usize) -> Vec<Point> {
        let mut state = 0xBADC0FFEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::new(next() * 100.0, next() * 100.0)).collect()
    }

    fn server(cache_bytes: usize) -> TileServer {
        let pyramid = PyramidSpec::new(Rect::new(0.0, 0.0, 100.0, 100.0), 16, 48, 48, 2).unwrap();
        let config = ServeConfig {
            dataset: 7,
            kernel: KernelType::Epanechnikov,
            bandwidth: 14.0,
            weight: 0.005,
        };
        TileServer::new(pyramid, config, points(300), cache_bytes, 4)
    }

    /// Crops the monolithic level raster to the viewport — the reference
    /// every served viewport must match bitwise.
    fn crop_reference(server: &TileServer, vp: &Viewport) -> DensityGrid {
        let params = server.pyramid().level_params(
            vp.zoom,
            server.config().kernel,
            server.config().bandwidth,
            server.config().weight,
        );
        let full = sweep_bucket::compute(&params, &server.points).unwrap();
        let mut out = DensityGrid::zeroed(vp.width, vp.height);
        for j in 0..vp.height {
            out.row_mut(j).copy_from_slice(&full.row(vp.py + j)[vp.px..vp.px + vp.width]);
        }
        out
    }

    #[test]
    fn viewport_matches_cropped_monolithic_bitwise() {
        let srv = server(1 << 22);
        for vp in [
            Viewport { zoom: 0, px: 0, py: 0, width: 48, height: 48 },
            Viewport { zoom: 1, px: 13, py: 29, width: 41, height: 30 },
            Viewport { zoom: 2, px: 100, py: 77, width: 50, height: 33 },
        ] {
            let (grid, _) = srv.serve_viewport(&vp, 0).unwrap();
            assert_eq!(grid, crop_reference(&srv, &vp), "{vp:?}");
        }
    }

    #[test]
    fn second_request_hits_cache_and_matches() {
        let srv = server(1 << 22);
        let vp = Viewport { zoom: 1, px: 5, py: 9, width: 60, height: 40 };
        let (cold, r1) = srv.serve_viewport(&vp, 2).unwrap();
        assert_eq!(r1.cache_hits, 0);
        assert!(r1.cache_misses > 0);
        let (warm, r2) = srv.serve_viewport(&vp, 2).unwrap();
        assert_eq!(r2.cache_misses, 0);
        assert!(r2.cache_hits > 0);
        assert_eq!(warm, cold, "cached bits differ from fresh bits");
    }

    #[test]
    fn pan_reuses_band_tiles() {
        let srv = server(1 << 22);
        let a = Viewport { zoom: 1, px: 0, py: 20, width: 32, height: 16 };
        let (_, r1) = srv.serve_viewport(&a, 0).unwrap();
        assert!(r1.cache_misses > 0);
        // pan right within the same row bands: every tile was prefetched
        let b = Viewport { zoom: 1, px: 48, py: 20, width: 32, height: 16 };
        let (grid, r2) = srv.serve_viewport(&b, 0).unwrap();
        assert_eq!(r2.cache_misses, 0, "horizontal pan should be all hits");
        assert_eq!(grid, crop_reference(&srv, &b));
    }

    #[test]
    fn degenerate_viewports_are_rejected() {
        let srv = server(1 << 20);
        let out_of_level = Viewport { zoom: 9, px: 0, py: 0, width: 4, height: 4 };
        assert!(srv.serve_viewport(&out_of_level, 0).is_err());
        let empty = Viewport { zoom: 0, px: 0, py: 0, width: 0, height: 4 };
        assert!(srv.serve_viewport(&empty, 0).is_err());
    }

    #[test]
    fn tiny_cache_still_serves_exact_results() {
        let srv = server(1024); // far too small to hold a band
        let vp = Viewport { zoom: 1, px: 10, py: 10, width: 50, height: 50 };
        let (grid, report) = srv.serve_viewport(&vp, 0).unwrap();
        assert_eq!(grid, crop_reference(&srv, &vp));
        assert!(report.cache_evictions > 0, "small budget must evict");
        assert!(srv.cache().bytes() <= srv.cache().budget());
    }
}
