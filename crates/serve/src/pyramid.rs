//! The zoom pyramid: one raster resolution per zoom level over a fixed
//! world region, partitioned into fixed-size tiles.
//!
//! Level `z` covers the *same* region as level 0 at `2^z ×` the base
//! resolution, so zooming in refines pixels without moving the region —
//! and, crucially, every level is computed from the **same point set**
//! with the exact sweep. Coarse levels are never downsampled from fine
//! ones (that would be a resampling approximation); each level is its own
//! exact KDV raster, so any tile of any level is bitwise-reproducible
//! from `(dataset, kernel, bandwidth, zoom, tx, ty)` alone — the cache
//! key's soundness argument.

use kdv_core::driver::KdvParams;
use kdv_core::tile::Tiling;
use kdv_core::{GridSpec, KdvError, KernelType, Rect, Result};

/// Address of one tile in the pyramid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileCoord {
    /// Zoom level (0 = coarsest).
    pub zoom: u8,
    /// Tile column within the level.
    pub tx: u32,
    /// Tile row within the level.
    pub ty: u32,
}

/// Pyramid geometry: region, per-level resolutions and the tile grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PyramidSpec {
    /// World region covered by every level.
    pub region: Rect,
    /// Tile side length in pixels.
    pub tile_size: usize,
    /// Level-0 raster width in pixels.
    pub base_res_x: usize,
    /// Level-0 raster height in pixels.
    pub base_res_y: usize,
    /// Deepest zoom level served (level resolutions are `base << zoom`).
    pub max_zoom: u8,
}

impl PyramidSpec {
    /// Creates a pyramid, validating the geometry and guarding the
    /// `base << max_zoom` shifts against overflow.
    pub fn new(
        region: Rect,
        tile_size: usize,
        base_res_x: usize,
        base_res_y: usize,
        max_zoom: u8,
    ) -> Result<Self> {
        // GridSpec::new validates region and the base resolution.
        GridSpec::new(region, base_res_x, base_res_y)?;
        if tile_size == 0 {
            return Err(KdvError::InvalidTileSize { tile_size });
        }
        if max_zoom >= 24
            || base_res_x.checked_shl(max_zoom as u32).is_none()
            || base_res_y.checked_shl(max_zoom as u32).is_none()
        {
            return Err(KdvError::EmptyResolution { x: base_res_x, y: base_res_y });
        }
        Ok(Self { region, tile_size, base_res_x, base_res_y, max_zoom })
    }

    /// A pyramid whose level 0 is exactly one tile (the slippy-map
    /// convention).
    pub fn single_tile_base(region: Rect, tile_size: usize, max_zoom: u8) -> Result<Self> {
        Self::new(region, tile_size, tile_size, tile_size, max_zoom)
    }

    /// Raster resolution of level `zoom`.
    #[inline]
    pub fn level_res(&self, zoom: u8) -> (usize, usize) {
        (self.base_res_x << zoom, self.base_res_y << zoom)
    }

    /// The level's raster specification (same region at every level).
    pub fn level_grid(&self, zoom: u8) -> GridSpec {
        let (rx, ry) = self.level_res(zoom);
        GridSpec { region: self.region, res_x: rx, res_y: ry }
    }

    /// The level's tile partition.
    pub fn level_tiling(&self, zoom: u8) -> Tiling {
        let (rx, ry) = self.level_res(zoom);
        Tiling { res_x: rx, res_y: ry, tile_size: self.tile_size }
    }

    /// KDV parameters for one level under the given kernel configuration.
    pub fn level_params(
        &self,
        zoom: u8,
        kernel: KernelType,
        bandwidth: f64,
        weight: f64,
    ) -> KdvParams {
        KdvParams::new(self.level_grid(zoom), kernel, bandwidth).with_weight(weight)
    }

    /// Whether `zoom` is served by this pyramid.
    #[inline]
    pub fn has_zoom(&self, zoom: u8) -> bool {
        zoom <= self.max_zoom
    }
}

/// A rectangular pixel window into one pyramid level — what a client
/// requests when panning or zooming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Viewport {
    /// Zoom level of the request.
    pub zoom: u8,
    /// Left pixel column (inclusive) in the level raster.
    pub px: usize,
    /// Bottom pixel row (inclusive) in the level raster.
    pub py: usize,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

impl Viewport {
    /// Clamps the viewport to the level raster, shrinking it if it hangs
    /// over the edge. Returns `None` if nothing remains (zero-size or
    /// fully outside).
    pub fn clamped(&self, pyramid: &PyramidSpec) -> Option<Viewport> {
        if !pyramid.has_zoom(self.zoom) || self.width == 0 || self.height == 0 {
            return None;
        }
        let (rx, ry) = pyramid.level_res(self.zoom);
        if self.px >= rx || self.py >= ry {
            return None;
        }
        Some(Viewport {
            zoom: self.zoom,
            px: self.px,
            py: self.py,
            width: self.width.min(rx - self.px),
            height: self.height.min(ry - self.py),
        })
    }

    /// Tile columns intersected by the viewport (assumes it is clamped).
    pub fn tile_cols(&self, tile_size: usize) -> std::ops::Range<usize> {
        self.px / tile_size..(self.px + self.width - 1) / tile_size + 1
    }

    /// Tile rows intersected by the viewport (assumes it is clamped).
    pub fn tile_rows(&self, tile_size: usize) -> std::ops::Range<usize> {
        self.py / tile_size..(self.py + self.height - 1) / tile_size + 1
    }

    /// Number of pixels in the viewport.
    #[inline]
    pub fn num_pixels(&self) -> usize {
        self.width * self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pyramid() -> PyramidSpec {
        PyramidSpec::new(Rect::new(0.0, 0.0, 1000.0, 800.0), 64, 80, 50, 4).unwrap()
    }

    #[test]
    fn level_resolutions_double() {
        let p = pyramid();
        assert_eq!(p.level_res(0), (80, 50));
        assert_eq!(p.level_res(3), (640, 400));
        assert_eq!(p.level_grid(2).region, p.region);
        let t = p.level_tiling(1);
        assert_eq!((t.res_x, t.res_y, t.tile_size), (160, 100, 64));
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(PyramidSpec::new(r, 0, 8, 8, 2).is_err());
        assert!(PyramidSpec::new(r, 16, 0, 8, 2).is_err());
        assert!(PyramidSpec::new(r, 16, 8, 8, 60).is_err());
        assert!(PyramidSpec::single_tile_base(r, 256, 3).is_ok());
    }

    #[test]
    fn viewport_clamps_and_finds_tiles() {
        let p = pyramid();
        // level 2: 320x200, tiles of 64 -> 5x4 tile grid (last row clipped)
        let vp = Viewport { zoom: 2, px: 300, py: 190, width: 100, height: 100 };
        let c = vp.clamped(&p).unwrap();
        assert_eq!((c.width, c.height), (20, 10));
        assert_eq!(c.tile_cols(64), 4..5);
        assert_eq!(c.tile_rows(64), 2..4);
        // fully outside or degenerate viewports vanish
        assert!(Viewport { zoom: 2, px: 320, py: 0, width: 5, height: 5 }.clamped(&p).is_none());
        assert!(Viewport { zoom: 9, px: 0, py: 0, width: 5, height: 5 }.clamped(&p).is_none());
        assert!(Viewport { zoom: 2, px: 0, py: 0, width: 0, height: 5 }.clamped(&p).is_none());
    }

    #[test]
    fn tile_ranges_cover_exact_pixels() {
        let vp = Viewport { zoom: 0, px: 64, py: 0, width: 64, height: 64 };
        assert_eq!(vp.tile_cols(64), 1..2, "aligned viewport touches exactly one tile column");
        let off = Viewport { zoom: 0, px: 63, py: 0, width: 2, height: 1 };
        assert_eq!(off.tile_cols(64), 0..2, "one-pixel overhang pulls in the neighbour");
    }
}
