//! Viewport trace files — recorded pan/zoom sessions for batch replay.
//!
//! **v1** — one request per line, five whitespace-separated integers:
//!
//! ```text
//! # zoom px py width height
//! 1 0 0 256 256
//! 1 64 0 256 256
//! ```
//!
//! **v2** — multi-session: each line carries a session id and the think
//! time (milliseconds the simulated user paused before issuing the
//! request), seven fields total:
//!
//! ```text
//! # session think_ms zoom px py width height
//! 0 0   2 0   384 512 512
//! 1 25  2 128 384 512 512
//! ```
//!
//! Lines from different sessions may interleave freely; a session's
//! requests replay in file order. A file must be uniformly v1 or v2
//! (mixed arities are a parse error). `#` starts a comment (whole-line
//! or trailing); blank lines are skipped. The format is deliberately
//! trivial so traces can be captured with a shell one-liner and diffed
//! in review; `kdv serve --batch` replays v1 sequentially against a
//! [`crate::server::TileServer`] and v2 concurrently through the
//! [`crate::frontend::Frontend`] (one thread per session).
//!
//! **Live feed** — a third, tagged format for streaming replay
//! ([`parse_live`]): each line is a timestamped event, either a point
//! arrival or a viewport request, in non-decreasing time order:
//!
//! ```text
//! # p <t_ms> <x> <y>                      — point arrives at t
//! # v <t_ms> <zoom> <px> <py> <w> <h>     — viewport requested at t
//! p 0    512.5 103.25
//! p 40   498.0 141.0
//! v 100  2 0 384 512 512
//! ```
//!
//! `kdv serve --live` replays a feed against a
//! [`crate::live::LiveTileServer`]: arrivals between two requests are
//! flushed as **one** sealed delta batch immediately before the later
//! request, so the generation ladder a replay walks is a pure function
//! of the file.

use kdv_core::Point;

use crate::pyramid::Viewport;

/// A parse failure, carrying the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Parses a trace file's contents into viewport requests, in file order.
pub fn parse(text: &str) -> Result<Vec<Viewport>, TraceError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let fields: Vec<&str> = body.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(TraceError {
                line,
                message: format!(
                    "expected 5 fields `zoom px py width height`, got {}",
                    fields.len()
                ),
            });
        }
        let num = |i: usize, name: &str| -> Result<usize, TraceError> {
            fields[i].parse::<usize>().map_err(|_| TraceError {
                line,
                message: format!("{name} `{}` is not a non-negative integer", fields[i]),
            })
        };
        let zoom = num(0, "zoom")?;
        if zoom > u8::MAX as usize {
            return Err(TraceError { line, message: format!("zoom {zoom} out of range") });
        }
        out.push(Viewport {
            zoom: zoom as u8,
            px: num(1, "px")?,
            py: num(2, "py")?,
            width: num(3, "width")?,
            height: num(4, "height")?,
        });
    }
    Ok(out)
}

/// Formats requests back into the trace line format ([`parse`] inverse).
pub fn format(viewports: &[Viewport]) -> String {
    let mut s = String::from("# zoom px py width height\n");
    for vp in viewports {
        s.push_str(&format!("{} {} {} {} {}\n", vp.zoom, vp.px, vp.py, vp.width, vp.height));
    }
    s
}

/// One request of a recorded session: the viewport plus the think time
/// the simulated user paused before issuing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionRequest {
    /// Milliseconds of user think time before this request.
    pub think_ms: u64,
    /// The requested viewport.
    pub viewport: Viewport,
}

/// One client session of a multi-session trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// Session id from the trace file.
    pub id: u32,
    /// Requests in file order.
    pub requests: Vec<SessionRequest>,
}

/// A parsed trace file of either version, normalised to sessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFile {
    /// `1` (five-field single-session) or `2` (seven-field
    /// multi-session).
    pub version: u8,
    /// Sessions in order of first appearance; a v1 file becomes one
    /// session with id 0 and zero think times.
    pub sessions: Vec<Session>,
}

impl TraceFile {
    /// Total request count across sessions.
    pub fn num_requests(&self) -> usize {
        self.sessions.iter().map(|s| s.requests.len()).sum()
    }
}

fn parse_viewport(fields: &[&str], line: usize) -> Result<Viewport, TraceError> {
    let num = |i: usize, name: &str| -> Result<usize, TraceError> {
        fields[i].parse::<usize>().map_err(|_| TraceError {
            line,
            message: format!("{name} `{}` is not a non-negative integer", fields[i]),
        })
    };
    let zoom = num(0, "zoom")?;
    if zoom > u8::MAX as usize {
        return Err(TraceError { line, message: format!("zoom {zoom} out of range") });
    }
    Ok(Viewport {
        zoom: zoom as u8,
        px: num(1, "px")?,
        py: num(2, "py")?,
        width: num(3, "width")?,
        height: num(4, "height")?,
    })
}

/// Parses a trace file of either version into sessions. The arity of the
/// first data line fixes the version; every later line must match it.
pub fn parse_sessions(text: &str) -> Result<TraceFile, TraceError> {
    let mut version: Option<u8> = None;
    let mut order: Vec<u32> = Vec::new();
    let mut sessions: std::collections::HashMap<u32, Vec<SessionRequest>> =
        std::collections::HashMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let fields: Vec<&str> = body.split_whitespace().collect();
        let line_version = match fields.len() {
            5 => 1,
            7 => 2,
            n => {
                return Err(TraceError {
                    line,
                    message: format!(
                        "expected 5 fields (v1 `zoom px py width height`) or 7 (v2 \
                         `session think_ms zoom px py width height`), got {n}"
                    ),
                })
            }
        };
        match version {
            None => version = Some(line_version),
            Some(v) if v != line_version => {
                return Err(TraceError {
                    line,
                    message: format!(
                        "mixed trace versions: file started as v{v}, this line is v{line_version}"
                    ),
                })
            }
            Some(_) => {}
        }
        let (session, think_ms, vp_fields) = if line_version == 1 {
            (0u32, 0u64, &fields[..])
        } else {
            let session = fields[0].parse::<u32>().map_err(|_| TraceError {
                line,
                message: format!("session `{}` is not a non-negative integer", fields[0]),
            })?;
            let think_ms = fields[1].parse::<u64>().map_err(|_| TraceError {
                line,
                message: format!("think_ms `{}` is not a non-negative integer", fields[1]),
            })?;
            (session, think_ms, &fields[2..])
        };
        let viewport = parse_viewport(vp_fields, line)?;
        if !sessions.contains_key(&session) {
            order.push(session);
        }
        sessions.entry(session).or_default().push(SessionRequest { think_ms, viewport });
    }
    Ok(TraceFile {
        version: version.unwrap_or(1),
        sessions: order
            .into_iter()
            .map(|id| Session { id, requests: sessions.remove(&id).expect("ordered") })
            .collect(),
    })
}

/// Formats sessions back into the v2 trace format ([`parse_sessions`]
/// inverse, interleaving sessions request-by-request the way a live
/// capture would record them).
pub fn format_sessions(sessions: &[Session]) -> String {
    let mut s = String::from("# session think_ms zoom px py width height\n");
    let mut cursors = vec![0usize; sessions.len()];
    loop {
        let mut wrote = false;
        for (session, cursor) in sessions.iter().zip(cursors.iter_mut()) {
            if let Some(r) = session.requests.get(*cursor) {
                let vp = r.viewport;
                s.push_str(&format!(
                    "{} {} {} {} {} {} {}\n",
                    session.id, r.think_ms, vp.zoom, vp.px, vp.py, vp.width, vp.height
                ));
                *cursor += 1;
                wrote = true;
            }
        }
        if !wrote {
            return s;
        }
    }
}

/// One timestamped event of a live feed ([`parse_live`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LiveEvent {
    /// A point arriving at `at_ms`.
    Arrival {
        /// Milliseconds since the start of the feed.
        at_ms: u64,
        /// The arriving point.
        point: Point,
    },
    /// A viewport requested at `at_ms`.
    Request {
        /// Milliseconds since the start of the feed.
        at_ms: u64,
        /// The requested viewport.
        viewport: Viewport,
    },
}

impl LiveEvent {
    /// The event's timestamp in feed milliseconds.
    pub fn at_ms(&self) -> u64 {
        match self {
            LiveEvent::Arrival { at_ms, .. } | LiveEvent::Request { at_ms, .. } => *at_ms,
        }
    }
}

/// Parses a live feed (`p t x y` arrivals and `v t zoom px py w h`
/// requests, `#` comments) into events in file order. Timestamps must be
/// non-decreasing — a feed is a recording, and replay relies on file
/// order being time order.
pub fn parse_live(text: &str) -> Result<Vec<LiveEvent>, TraceError> {
    let mut out: Vec<LiveEvent> = Vec::new();
    let mut last_ms = 0u64;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let fields: Vec<&str> = body.split_whitespace().collect();
        let int = |i: usize, name: &str| -> Result<u64, TraceError> {
            fields[i].parse::<u64>().map_err(|_| TraceError {
                line,
                message: format!("{name} `{}` is not a non-negative integer", fields[i]),
            })
        };
        let event = match fields[0] {
            "p" => {
                if fields.len() != 4 {
                    return Err(TraceError {
                        line,
                        message: format!("expected `p t x y` (4 fields), got {}", fields.len()),
                    });
                }
                let coord = |i: usize, name: &str| -> Result<f64, TraceError> {
                    match fields[i].parse::<f64>() {
                        Ok(v) if v.is_finite() => Ok(v),
                        _ => Err(TraceError {
                            line,
                            message: format!("{name} `{}` is not a finite number", fields[i]),
                        }),
                    }
                };
                LiveEvent::Arrival {
                    at_ms: int(1, "t")?,
                    point: Point::new(coord(2, "x")?, coord(3, "y")?),
                }
            }
            "v" => {
                if fields.len() != 7 {
                    return Err(TraceError {
                        line,
                        message: format!(
                            "expected `v t zoom px py width height` (7 fields), got {}",
                            fields.len()
                        ),
                    });
                }
                LiveEvent::Request {
                    at_ms: int(1, "t")?,
                    viewport: parse_viewport(&fields[2..], line)?,
                }
            }
            tag => {
                return Err(TraceError {
                    line,
                    message: format!("unknown event tag `{tag}` (expected `p` or `v`)"),
                })
            }
        };
        if event.at_ms() < last_ms {
            return Err(TraceError {
                line,
                message: format!(
                    "timestamp {} goes backwards (previous event at {})",
                    event.at_ms(),
                    last_ms
                ),
            });
        }
        last_ms = event.at_ms();
        out.push(event);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# a recorded pan\n\n1 0 0 256 256\n1 64 0 256 256 # trailing note\n";
        let vps = parse(text).unwrap();
        assert_eq!(vps.len(), 2);
        assert_eq!(vps[1], Viewport { zoom: 1, px: 64, py: 0, width: 256, height: 256 });
    }

    #[test]
    fn rejects_malformed_lines_with_position() {
        let err = parse("1 0 0 256\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("5 fields"));
        let err = parse("1 0 0 256 256\n2 x 0 1 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("px"));
        assert!(parse("999 0 0 1 1\n").is_err());
    }

    #[test]
    fn format_round_trips() {
        let vps = vec![
            Viewport { zoom: 0, px: 0, py: 0, width: 48, height: 48 },
            Viewport { zoom: 2, px: 7, py: 31, width: 100, height: 60 },
        ];
        assert_eq!(parse(&format(&vps)).unwrap(), vps);
    }

    #[test]
    fn v2_parses_interleaved_sessions_in_file_order() {
        let text = "# session think_ms zoom px py width height\n\
                    0 0  1 0  0 64 64\n\
                    1 50 1 32 0 64 64   # second user joins\n\
                    0 25 1 64 0 64 64\n\
                    1 0  0 0  0 32 32\n";
        let t = parse_sessions(text).unwrap();
        assert_eq!(t.version, 2);
        assert_eq!(t.num_requests(), 4);
        assert_eq!(t.sessions.len(), 2);
        assert_eq!(t.sessions[0].id, 0);
        assert_eq!(t.sessions[0].requests.len(), 2);
        assert_eq!(t.sessions[0].requests[1].think_ms, 25);
        assert_eq!(t.sessions[1].requests[0].think_ms, 50);
        assert_eq!(
            t.sessions[1].requests[1].viewport,
            Viewport { zoom: 0, px: 0, py: 0, width: 32, height: 32 }
        );
    }

    #[test]
    fn v1_file_parses_as_one_zero_think_session() {
        let t = parse_sessions("1 0 0 256 256\n1 64 0 256 256\n").unwrap();
        assert_eq!(t.version, 1);
        assert_eq!(t.sessions.len(), 1);
        assert_eq!(t.sessions[0].id, 0);
        assert!(t.sessions[0].requests.iter().all(|r| r.think_ms == 0));
        assert_eq!(t.num_requests(), 2);
    }

    #[test]
    fn mixed_versions_and_bad_fields_are_rejected_with_position() {
        let err = parse_sessions("1 0 0 256 256\n0 0 1 0 0 256 256\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("mixed trace versions"));
        let err = parse_sessions("0 x 1 0 0 256 256\n").unwrap_err();
        assert!(err.message.contains("think_ms"));
        let err = parse_sessions("0 0 1 0 0 256\n").unwrap_err();
        assert!(err.to_string().contains("expected 5 fields"));
        assert!(parse_sessions("0 0 999 0 0 1 1\n").is_err());
    }

    #[test]
    fn format_sessions_round_trips() {
        let sessions = vec![
            Session {
                id: 0,
                requests: vec![
                    SessionRequest {
                        think_ms: 0,
                        viewport: Viewport { zoom: 1, px: 0, py: 0, width: 64, height: 64 },
                    },
                    SessionRequest {
                        think_ms: 10,
                        viewport: Viewport { zoom: 1, px: 32, py: 0, width: 64, height: 64 },
                    },
                ],
            },
            Session {
                id: 3,
                requests: vec![SessionRequest {
                    think_ms: 5,
                    viewport: Viewport { zoom: 0, px: 0, py: 0, width: 48, height: 48 },
                }],
            },
        ];
        let t = parse_sessions(&format_sessions(&sessions)).unwrap();
        assert_eq!(t.version, 2);
        assert_eq!(t.sessions, sessions);
    }

    #[test]
    fn empty_trace_defaults_to_v1_with_no_sessions() {
        let t = parse_sessions("# nothing here\n").unwrap();
        assert_eq!((t.version, t.sessions.len(), t.num_requests()), (1, 0, 0));
    }

    #[test]
    fn live_feed_parses_arrivals_and_requests_in_order() {
        let text = "# a live feed\n\
                    p 0   512.5 103.25\n\
                    p 40  498.0 141.0   # second arrival\n\
                    v 100 2 0 384 512 512\n\
                    p 100 7 7\n\
                    v 160 0 0 0 256 256\n";
        let events = parse_live(text).unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0], LiveEvent::Arrival { at_ms: 0, point: Point::new(512.5, 103.25) });
        assert_eq!(
            events[2],
            LiveEvent::Request {
                at_ms: 100,
                viewport: Viewport { zoom: 2, px: 0, py: 384, width: 512, height: 512 },
            }
        );
        assert!(events.windows(2).all(|w| w[0].at_ms() <= w[1].at_ms()));
    }

    #[test]
    fn live_feed_rejects_malformed_events_with_position() {
        let err = parse_live("p 0 1.0\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("4 fields"));
        let err = parse_live("p 0 1.0 nan\n").unwrap_err();
        assert!(err.message.contains("finite"));
        let err = parse_live("v 0 2 0 0 64\n").unwrap_err();
        assert!(err.message.contains("7 fields"));
        let err = parse_live("p 10 1 1\nq 20 1 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown event tag"));
        let err = parse_live("p 50 1 1\np 40 2 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("backwards"));
    }
}
