//! Viewport trace files — recorded pan/zoom sessions for batch replay.
//!
//! One request per line, five whitespace-separated integers:
//!
//! ```text
//! # zoom px py width height
//! 1 0 0 256 256
//! 1 64 0 256 256
//! ```
//!
//! `#` starts a comment (whole-line or trailing); blank lines are
//! skipped. The format is deliberately trivial so traces can be captured
//! with a shell one-liner and diffed in review; `kdv serve --batch`
//! replays one of these against a [`crate::server::TileServer`].

use crate::pyramid::Viewport;

/// A parse failure, carrying the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Parses a trace file's contents into viewport requests, in file order.
pub fn parse(text: &str) -> Result<Vec<Viewport>, TraceError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let fields: Vec<&str> = body.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(TraceError {
                line,
                message: format!(
                    "expected 5 fields `zoom px py width height`, got {}",
                    fields.len()
                ),
            });
        }
        let num = |i: usize, name: &str| -> Result<usize, TraceError> {
            fields[i].parse::<usize>().map_err(|_| TraceError {
                line,
                message: format!("{name} `{}` is not a non-negative integer", fields[i]),
            })
        };
        let zoom = num(0, "zoom")?;
        if zoom > u8::MAX as usize {
            return Err(TraceError { line, message: format!("zoom {zoom} out of range") });
        }
        out.push(Viewport {
            zoom: zoom as u8,
            px: num(1, "px")?,
            py: num(2, "py")?,
            width: num(3, "width")?,
            height: num(4, "height")?,
        });
    }
    Ok(out)
}

/// Formats requests back into the trace line format ([`parse`] inverse).
pub fn format(viewports: &[Viewport]) -> String {
    let mut s = String::from("# zoom px py width height\n");
    for vp in viewports {
        s.push_str(&format!("{} {} {} {} {}\n", vp.zoom, vp.px, vp.py, vp.width, vp.height));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# a recorded pan\n\n1 0 0 256 256\n1 64 0 256 256 # trailing note\n";
        let vps = parse(text).unwrap();
        assert_eq!(vps.len(), 2);
        assert_eq!(vps[1], Viewport { zoom: 1, px: 64, py: 0, width: 256, height: 256 });
    }

    #[test]
    fn rejects_malformed_lines_with_position() {
        let err = parse("1 0 0 256\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("5 fields"));
        let err = parse("1 0 0 256 256\n2 x 0 1 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("px"));
        assert!(parse("999 0 0 1 1\n").is_err());
    }

    #[test]
    fn format_round_trips() {
        let vps = vec![
            Viewport { zoom: 0, px: 0, py: 0, width: 48, height: 48 },
            Viewport { zoom: 2, px: 7, py: 31, width: 100, height: 60 },
        ];
        assert_eq!(parse(&format(&vps)).unwrap(), vps);
    }
}
