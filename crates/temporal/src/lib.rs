//! # kdv-temporal — spatial-temporal KDV on top of SLAM
//!
//! The paper lists spatial-temporal KDV (STKDV) as future work. This crate
//! builds it from the pieces already in the workspace: the density of a
//! pixel `q` at a frame time `t` is
//!
//! ```text
//! F(q, t) = Σ_i  K_time(t, t_i) · K_space(q, p_i)
//! ```
//!
//! with a finite-support temporal kernel. For each frame, the temporal
//! kernel fixes a per-event weight, so the spatial part reduces to a
//! *weighted* KDV — exactly what `kdv_core::weighted` computes in
//! `O(min(X,Y)·(max(X,Y) + n_t))` for the `n_t` events inside the frame's
//! temporal support. Records are sorted by time once; each frame's support
//! window is then located by binary search, so a whole animation costs
//! `O(n log n + Σ_t frame_cost)`.

pub mod frames;
pub mod stkdv;

pub use frames::FrameSpec;
pub use stkdv::{compute_stkdv, compute_stkdv_parallel, Frame, StKdvConfig, TemporalKernel};
