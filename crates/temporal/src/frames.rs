//! Frame specifications: the time axis of an STKDV animation.

/// An evenly spaced sequence of frame times.
///
/// Frame `i` is centred at `start + i·stride` for `i = 0..count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSpec {
    /// Centre time of the first frame (unix seconds).
    pub start: i64,
    /// Spacing between consecutive frame centres (seconds, > 0).
    pub stride: i64,
    /// Number of frames.
    pub count: usize,
}

impl FrameSpec {
    /// Creates a frame spec.
    ///
    /// # Panics
    /// Panics if `stride <= 0`.
    pub fn new(start: i64, stride: i64, count: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        Self { start, stride, count }
    }

    /// A spec covering `[from, to]` with `count` evenly spaced frames
    /// (at least one; `to > from` required for more than one frame).
    pub fn spanning(from: i64, to: i64, count: usize) -> Self {
        let count = count.max(1);
        let stride = if count > 1 { ((to - from) / (count as i64 - 1)).max(1) } else { 1 };
        Self { start: from, stride, count }
    }

    /// Centre time of frame `i`.
    #[inline]
    pub fn frame_time(&self, i: usize) -> i64 {
        self.start + self.stride * i as i64
    }

    /// Iterator over all frame centre times.
    pub fn times(&self) -> impl Iterator<Item = i64> + '_ {
        (0..self.count).map(|i| self.frame_time(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_times_are_evenly_spaced() {
        let f = FrameSpec::new(100, 50, 4);
        let times: Vec<i64> = f.times().collect();
        assert_eq!(times, vec![100, 150, 200, 250]);
    }

    #[test]
    fn spanning_covers_interval() {
        let f = FrameSpec::spanning(0, 900, 10);
        assert_eq!(f.count, 10);
        assert_eq!(f.frame_time(0), 0);
        assert_eq!(f.frame_time(9), 900);
    }

    #[test]
    fn spanning_single_frame() {
        let f = FrameSpec::spanning(42, 42, 1);
        assert_eq!(f.count, 1);
        assert_eq!(f.frame_time(0), 42);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let _ = FrameSpec::new(0, 0, 3);
    }
}
