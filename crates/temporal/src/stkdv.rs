//! Spatial-temporal KDV: per-frame weighted SLAM sweeps.

use kdv_core::driver::KdvParams;
use kdv_core::geom::Point;
use kdv_core::grid::DensityGrid;
use kdv_core::weighted::{compute_weighted_with, WeightedWorkspace};
use kdv_core::Result;
use kdv_data::record::EventRecord;

use crate::frames::FrameSpec;

/// Finite-support temporal kernels over `u = |t − t_i| / b_t ∈ [0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TemporalKernel {
    /// Every event inside the window counts fully (a sliding time filter).
    Uniform,
    /// Linear decay to the window edge: `1 − u`.
    Triangular,
    /// Quadratic decay `1 − u²` (the temporal analogue of the paper's
    /// default spatial kernel).
    #[default]
    Epanechnikov,
}

impl TemporalKernel {
    /// Kernel value at normalised distance `u` (0 outside `[0, 1]`).
    #[inline]
    pub fn eval(&self, u: f64) -> f64 {
        if !(0.0..=1.0).contains(&u) {
            return 0.0;
        }
        match self {
            TemporalKernel::Uniform => 1.0,
            TemporalKernel::Triangular => 1.0 - u,
            TemporalKernel::Epanechnikov => 1.0 - u * u,
        }
    }
}

/// Configuration of an STKDV animation.
#[derive(Debug, Clone, Copy)]
pub struct StKdvConfig {
    /// Spatial raster, kernel, bandwidth and global weight.
    pub params: KdvParams,
    /// Frame times.
    pub frames: FrameSpec,
    /// Temporal bandwidth `b_t` in seconds (> 0): events farther than this
    /// from a frame's centre time do not contribute to that frame.
    pub temporal_bandwidth: i64,
    /// Temporal kernel shape.
    pub temporal_kernel: TemporalKernel,
}

/// One rendered frame of an STKDV animation.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame centre time.
    pub time: i64,
    /// Number of events inside the temporal support.
    pub events: usize,
    /// The spatial density raster at this time.
    pub grid: DensityGrid,
}

/// Computes every frame of the animation.
///
/// Events are sorted by timestamp once (`O(n log n)`); each frame then
/// locates its temporal support by binary search and runs one weighted
/// SLAM sweep over only those events.
///
/// ```
/// use kdv_core::driver::KdvParams;
/// use kdv_core::{GridSpec, KernelType, Point, Rect};
/// use kdv_data::record::EventRecord;
/// use kdv_temporal::{compute_stkdv, FrameSpec, StKdvConfig, TemporalKernel};
///
/// let events: Vec<EventRecord> = (0..50)
///     .map(|i| EventRecord {
///         point: Point::new(50.0 + (i % 7) as f64, 50.0 + (i / 7) as f64),
///         timestamp: 1_000 + i,
///         category: 0,
///     })
///     .collect();
/// let grid = GridSpec::new(Rect::new(0.0, 0.0, 100.0, 100.0), 32, 32)?;
/// let config = StKdvConfig {
///     params: KdvParams::new(grid, KernelType::Epanechnikov, 10.0),
///     frames: FrameSpec::new(1_000, 25, 3),
///     temporal_bandwidth: 30,
///     temporal_kernel: TemporalKernel::Epanechnikov,
/// };
/// let frames = compute_stkdv(&config, &events)?;
/// assert_eq!(frames.len(), 3);
/// assert!(frames[0].grid.max_value() > 0.0);
/// # Ok::<(), kdv_core::KdvError>(())
/// ```
pub fn compute_stkdv(config: &StKdvConfig, records: &[EventRecord]) -> Result<Vec<Frame>> {
    compute_stkdv_threaded(config, records, 1)
}

/// [`compute_stkdv`] with frames distributed over a work-stealing thread
/// pool ([`kdv_core::parallel::for_each_index`]). Frames are independent
/// weighted sweeps, so each is computed whole by one worker and the result
/// is bitwise identical to the sequential driver for every thread count
/// (`threads == 0` means "auto", `<= 1` stays on the calling thread).
pub fn compute_stkdv_parallel(
    config: &StKdvConfig,
    records: &[EventRecord],
    threads: usize,
) -> Result<Vec<Frame>> {
    compute_stkdv_threaded(config, records, threads)
}

/// Per-worker scratch reused across frames: the event/weight selection
/// buffers plus the weighted sweep's [`WeightedWorkspace`] (envelope
/// buffer, per-row weight scratch, row engine, transpose scratch). One
/// animation allocates these once per worker instead of once per frame.
#[derive(Default)]
struct FrameScratch {
    points: Vec<Point>,
    weights: Vec<f64>,
    sweep: WeightedWorkspace,
}

fn compute_stkdv_threaded(
    config: &StKdvConfig,
    records: &[EventRecord],
    threads: usize,
) -> Result<Vec<Frame>> {
    if config.temporal_bandwidth <= 0 {
        return Err(kdv_core::KdvError::InvalidBandwidth(config.temporal_bandwidth as f64));
    }
    // sort by time once
    let mut sorted: Vec<&EventRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.timestamp);
    let times: Vec<i64> = sorted.iter().map(|r| r.timestamp).collect();
    let frame_times: Vec<i64> = config.frames.times().collect();

    if threads <= 1 {
        let mut scratch = FrameScratch::default();
        let mut frames = Vec::with_capacity(frame_times.len());
        for &t in &frame_times {
            frames.push(compute_frame(config, &sorted, &times, t, &mut scratch)?);
        }
        return Ok(frames);
    }
    kdv_core::parallel::for_each_index_with(
        frame_times.len(),
        threads,
        FrameScratch::default,
        |scratch, i| compute_frame(config, &sorted, &times, frame_times[i], scratch),
    )
    .into_iter()
    .collect()
}

/// Renders one frame: select the temporal support `[t − b_t, t + b_t]` by
/// binary search, weight each event by the temporal kernel, run one
/// weighted SLAM sweep through the worker's reusable scratch.
fn compute_frame(
    config: &StKdvConfig,
    sorted: &[&EventRecord],
    times: &[i64],
    t: i64,
    scratch: &mut FrameScratch,
) -> Result<Frame> {
    let bt = config.temporal_bandwidth;
    let lo = times.partition_point(|&ts| ts < t - bt);
    let hi = times.partition_point(|&ts| ts <= t + bt);
    scratch.points.clear();
    scratch.weights.clear();
    for r in &sorted[lo..hi] {
        let u = (r.timestamp - t).abs() as f64 / bt as f64;
        let w = config.temporal_kernel.eval(u);
        if w > 0.0 {
            scratch.points.push(r.point);
            scratch.weights.push(w);
        }
    }
    let grid = compute_weighted_with(
        &config.params,
        &scratch.points,
        &scratch.weights,
        &mut scratch.sweep,
    )?;
    Ok(Frame { time: t, events: scratch.points.len(), grid })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::geom::Rect;
    use kdv_core::grid::GridSpec;
    use kdv_core::weighted::weighted_scan;
    use kdv_core::KernelType;

    fn records() -> Vec<EventRecord> {
        // two bursts: one early around (20, 20), one late around (70, 60)
        let mut recs = Vec::new();
        for i in 0..60 {
            recs.push(EventRecord {
                point: Point::new(20.0 + (i % 8) as f64, 20.0 + (i / 8) as f64),
                timestamp: 1_000 + i,
                category: 0,
            });
            recs.push(EventRecord {
                point: Point::new(70.0 + (i % 8) as f64, 60.0 + (i / 8) as f64),
                timestamp: 9_000 + i,
                category: 0,
            });
        }
        recs
    }

    fn config(frames: FrameSpec, kernel: TemporalKernel) -> StKdvConfig {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 100.0, 80.0), 20, 16).unwrap();
        StKdvConfig {
            params: KdvParams::new(grid, KernelType::Epanechnikov, 10.0),
            frames,
            temporal_bandwidth: 500,
            temporal_kernel: kernel,
        }
    }

    #[test]
    fn frames_follow_the_bursts() {
        let cfg = config(FrameSpec::new(1_030, 8_000, 2), TemporalKernel::Epanechnikov);
        let frames = compute_stkdv(&cfg, &records()).unwrap();
        assert_eq!(frames.len(), 2);
        // frame 0 (t=1030) sees only the early burst near (20, 20)
        assert_eq!(frames[0].events, 60);
        let g0 = &frames[0].grid;
        let spec = cfg.params.grid;
        let hot0 = (0..16)
            .flat_map(|j| (0..20).map(move |i| (i, j)))
            .max_by(|a, b| g0.get(a.0, a.1).total_cmp(&g0.get(b.0, b.1)))
            .unwrap();
        let c0 = spec.pixel_center(hot0.0, hot0.1);
        assert!(c0.x < 50.0 && c0.y < 40.0, "frame 0 hotspot at {c0}");
        // frame 1 (t=9030) sees only the late burst near (70, 60)
        let g1 = &frames[1].grid;
        let hot1 = (0..16)
            .flat_map(|j| (0..20).map(move |i| (i, j)))
            .max_by(|a, b| g1.get(a.0, a.1).total_cmp(&g1.get(b.0, b.1)))
            .unwrap();
        let c1 = spec.pixel_center(hot1.0, hot1.1);
        assert!(c1.x > 50.0 && c1.y > 40.0, "frame 1 hotspot at {c1}");
    }

    #[test]
    fn matches_direct_weighted_evaluation() {
        let cfg = config(FrameSpec::new(1_000, 100, 3), TemporalKernel::Triangular);
        let recs = records();
        let frames = compute_stkdv(&cfg, &recs).unwrap();
        for frame in &frames {
            // direct: weight every record by the temporal kernel and scan
            let mut pts = Vec::new();
            let mut ws = Vec::new();
            for r in &recs {
                let u = (r.timestamp - frame.time).abs() as f64 / cfg.temporal_bandwidth as f64;
                let w = cfg.temporal_kernel.eval(u);
                if w > 0.0 {
                    pts.push(r.point);
                    ws.push(w);
                }
            }
            let direct = weighted_scan(&cfg.params, &pts, &ws);
            let scale = direct.max_value().max(1e-300);
            for (a, b) in frame.grid.values().iter().zip(direct.values()) {
                assert!((a - b).abs() / scale < 1e-11);
            }
        }
    }

    #[test]
    fn empty_window_yields_zero_frame() {
        let cfg = config(FrameSpec::new(100_000, 10, 1), TemporalKernel::Uniform);
        let frames = compute_stkdv(&cfg, &records()).unwrap();
        assert_eq!(frames[0].events, 0);
        assert_eq!(frames[0].grid.max_value(), 0.0);
    }

    #[test]
    fn uniform_temporal_kernel_is_a_time_filter() {
        let cfg = config(FrameSpec::new(1_030, 1, 1), TemporalKernel::Uniform);
        let recs = records();
        let frames = compute_stkdv(&cfg, &recs).unwrap();
        // uniform weights: equals the unweighted KDV over the window
        let window: Vec<Point> =
            recs.iter().filter(|r| (r.timestamp - 1_030).abs() <= 500).map(|r| r.point).collect();
        let plain = kdv_core::rao::compute_bucket(&cfg.params, &window).unwrap();
        let scale = plain.max_value().max(1e-300);
        for (a, b) in frames[0].grid.values().iter().zip(plain.values()) {
            assert!((a - b).abs() / scale < 1e-12);
        }
    }

    #[test]
    fn parallel_frames_match_sequential_bitwise() {
        let cfg = config(FrameSpec::new(1_000, 700, 13), TemporalKernel::Epanechnikov);
        let recs = records();
        let seq = compute_stkdv(&cfg, &recs).unwrap();
        for threads in [2, 3, 8] {
            let par = compute_stkdv_parallel(&cfg, &recs, threads).unwrap();
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.time, b.time, "threads={threads}");
                assert_eq!(a.events, b.events, "threads={threads}");
                assert_eq!(a.grid, b.grid, "threads={threads} t={}", a.time);
            }
        }
    }

    #[test]
    fn non_positive_temporal_bandwidth_is_an_error() {
        for bt in [0, -7] {
            let mut cfg = config(FrameSpec::new(1_000, 100, 2), TemporalKernel::Uniform);
            cfg.temporal_bandwidth = bt;
            assert!(
                matches!(
                    compute_stkdv(&cfg, &records()),
                    Err(kdv_core::KdvError::InvalidBandwidth(_))
                ),
                "temporal bandwidth {bt} must be rejected, not panic"
            );
        }
    }

    #[test]
    fn temporal_kernel_shapes() {
        assert_eq!(TemporalKernel::Uniform.eval(0.5), 1.0);
        assert_eq!(TemporalKernel::Triangular.eval(0.25), 0.75);
        assert_eq!(TemporalKernel::Epanechnikov.eval(0.5), 0.75);
        for k in [TemporalKernel::Uniform, TemporalKernel::Triangular, TemporalKernel::Epanechnikov]
        {
            assert_eq!(k.eval(1.5), 0.0);
            assert_eq!(k.eval(-0.1), 0.0);
        }
    }
}
