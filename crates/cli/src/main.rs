//! `kdv` — command-line front-end for the SLAM-KDV workspace.
//!
//! Subcommands:
//!
//! * `generate` — synthesise a city dataset to CSV.
//! * `render`   — compute a KDV over a CSV dataset and write a PPM heat
//!   map (plus optional ASCII preview).
//! * `bench`    — time one method on a dataset.
//! * `hotspots` — extract and rank hotspot regions from a dataset's KDV.
//! * `stkdv`    — render a spatial-temporal KDV animation (one PPM per frame).
//! * `serve`    — replay a viewport trace through the caching tile server.
//! * `info`     — dataset statistics (n, MBR, Scott bandwidth).
//!
//! Run `kdv help` for usage. Argument parsing is hand-rolled: the surface
//! is tiny and the dependency budget is reserved for algorithmic crates.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kdv_analysis::hotspots_by_peak_fraction;
use kdv_baselines::AnyMethod;
use kdv_core::driver::KdvParams;
use kdv_core::grid::{DensityGrid, GridSpec};
use kdv_core::parallel::{
    compute_parallel, compute_parallel_rao, compute_parallel_rao_with_report,
    compute_parallel_with_report, default_threads, ParallelEngine,
};
use kdv_core::telemetry::SweepReport;
use kdv_core::{KernelType, Method};
use kdv_data::catalog::City;
use kdv_data::csvio;
use kdv_obs::stats::ns_to_ms;
use kdv_obs::{RequestClass, SloTargets, SloTracker};
use kdv_temporal::{compute_stkdv_parallel, FrameSpec, StKdvConfig, TemporalKernel};
use kdv_viz::{ascii_art, render, ColorMap, Scale};

const USAGE: &str = "kdv — SLAM kernel density visualization tools

USAGE:
  kdv generate --city <seattle|la|ny|sf> [--scale F] [--out FILE.csv]
  kdv render   --input FILE.csv [--res WxH] [--kernel K] [--bandwidth B]
               [--method M] [--colormap C] [--scale-mode S] [--out FILE.ppm] [--ascii]
               [--threads N] [--simd scalar|auto] [--stats]
               [--trace-out FILE] [--metrics-out FILE]
  kdv bench    --input FILE.csv --method M [--res WxH] [--kernel K] [--bandwidth B]
               [--threads N] [--simd scalar|auto] [--stats]
               [--trace-out FILE] [--metrics-out FILE]
  kdv hotspots --input FILE.csv [--res WxH] [--kernel K] [--bandwidth B]
               [--peak-fraction F] [--top N]
  kdv stkdv    --input FILE.csv --frames N [--res WxH] [--kernel K] [--bandwidth B]
               [--time-bandwidth SECS] [--out-prefix PREFIX] [--threads N]
  kdv serve    --input FILE.csv --batch TRACE.txt [--tile-size N] [--base-res WxH]
               [--max-zoom Z] [--kernel K] [--bandwidth B] [--cache-mb M]
               [--threads N] [--out-prefix PREFIX] [--stats]
               [--workers N] [--queue-depth N] [--deadline-ms MS]
               [--coreset-zoom Z] [--coreset-eps REL] [--coreset-method M]
               [--slo-p99-ms MS] [--incident-dir DIR] [--prom-out FILE]
               [--top [SECS]] [--trace-out FILE] [--metrics-out FILE]
  kdv serve    --input FILE.csv --live FEED.trace [--window N]
               [--compact-every N] [--no-patch] [--tile-size N]
               [--base-res WxH] [--max-zoom Z] [--kernel K] [--bandwidth B]
               [--cache-mb M] [--threads N] [--stats]
               [--slo-p99-ms MS] [--incident-dir DIR] [--prom-out FILE]
               [--top [SECS]] [--trace-out FILE] [--metrics-out FILE]
  kdv info     --input FILE.csv

OPTIONS:
  --kernel       uniform | epanechnikov | quartic        (default epanechnikov)
  --method       scan | rqs-kd | rqs-ball | zorder | akde | quad |
                 slam-sort | slam-bucket | slam-sort-rao | slam-bucket-rao
                 (default slam-bucket-rao)
  --bandwidth    metres; omitted = Scott's rule
  --res          raster, e.g. 640x480                    (default 640x480)
  --colormap     heat | gray | viridis                   (default heat)
  --scale-mode   linear | sqrt | log                     (default sqrt)
  --threads      sweep worker threads; 0 or omitted = all cores
                 (SLAM methods, stkdv and serve)
  --simd         scalar | auto: force the density-emit/envelope-fill
                 hot loops onto the portable scalar path, or (default)
                 use the f64x4 lanes when the CPU supports them; both
                 paths are bitwise identical. KDV_SIMD=scalar|auto is
                 the environment equivalent (the flag wins)
  --stats        print the sweep telemetry report (SLAM methods only);
                 with --trace-out/--metrics-out also prints a per-phase
                 span summary table
  --trace-out    record structured spans and write a Chrome trace-event
                 JSON file (load in Perfetto / chrome://tracing)
  --metrics-out  write a flat JSON snapshot of the metrics registry
                 (counters, gauges, log2 histograms) for this run

SERVE OPTIONS:
  --batch        viewport trace file, `#` comments allowed. v1: one
                 `zoom px py width height` line per request, replayed
                 sequentially. v2: `session think_ms zoom px py width
                 height` lines, replayed concurrently (one thread per
                 session) through the worker-pool front end
  --tile-size    tile side length in pixels                (default 256)
  --base-res     level-0 raster, e.g. 512x512; level z doubles per zoom
                 (default one tile: tile-size x tile-size)
  --max-zoom     deepest zoom level served                 (default 4)
  --cache-mb     tile cache budget in MiB                  (default 256)
  --workers      front-end worker threads for v2 replay    (default 4);
                 with a v1 trace, forces it through the front end too
  --queue-depth  bounded admission queue; submits beyond it are
                 load-shed with an explicit rejection      (default 64)
  --deadline-ms  shed requests still queued after this many ms
                 (default: no deadline)
  --coreset-zoom serve zoom levels <= Z from a certified eps-coreset of
                 the dataset (the approximate overview tier); deeper
                 zooms stay exact. Prints the achieved eps and coreset
                 size, and --stats shows each request's tier
  --coreset-eps  relative eps target for the overview tier, as a
                 fraction of the density scale |w|*n*K(0)  (default 0.01)
  --coreset-method grid | sort | sample coreset construction
                 (default grid)
  --out-prefix   write each served viewport as PREFIX_NNN.ppm
                 (sequential v1 replay only)
  --stats        print per-request cache deltas and a final summary;
                 concurrent replay also prints p50/p99 latency, shed
                 counts and single-flight band counters
  --live         timestamped live feed (`p t x y` arrivals, `v t zoom px
                 py w h` requests): replays through the streaming tile
                 server, which patches cached tiles with each sealed
                 delta batch instead of rebuilding them. Every response
                 is bitwise-equal to a cold rebuild of its generation
  --window       keep at most N live points: each flush expires the
                 oldest points beyond the window (FIFO)
  --compact-every fold the delta into the epoch base every N sealed
                 batches (generation keying keeps stale tiles out)
  --no-patch     disable tile patching (stale bands recompute from the
                 epoch base instead — the A/B arm for the patch win)
  --slo-p99-ms   windowed SLO target: track p50/p99 latency per request
                 class (exact / coreset / live) over a 10 s sliding
                 window and count p99 breaches against this target (the
                 p50 target is half of it). Slow requests record
                 exemplars linking their id to the captured span tree;
                 with --incident-dir a breach edge dumps an incident
  --incident-dir arm the always-on flight recorder: per-thread span
                 rings capture completed spans at near-zero cost, and a
                 deadline or queue-full shed, a duplicate band compute,
                 an SLO p99 breach, or an abandoned band leader
                 snapshots the recent spans plus a metrics snapshot to
                 a Perfetto-loadable incident file in this directory
  --prom-out     write the final metrics registry in Prometheus text
                 exposition format (counters, gauges, histograms)
  --top          print a `top`-style stats line every SECS seconds
                 (default 1): qps, windowed p50/p99 per tier, cache
                 hit/patch rates, shed and inflight counts, and the
                 ingest-to-serve generation lag
";

/// Minimal `--key value` argument map with flag support.
struct Args {
    values: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse(args: &[String]) -> Self {
        let mut values = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(key) = a.strip_prefix("--") {
                match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        values.push((key.to_string(), v.clone()));
                        i += 2;
                    }
                    _ => {
                        flags.push(key.to_string());
                        i += 1;
                    }
                }
            } else {
                i += 1;
            }
        }
        Self { values, flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// Observability session driven by `--trace-out` / `--metrics-out`.
///
/// Constructing one turns the span recorder on when either flag is
/// present (it stays off — a single relaxed load per span site —
/// otherwise). [`ObsSession::finish`] drains the recorder, writes the
/// requested export files, and prints the per-phase summary table when
/// `--stats` was also given.
struct ObsSession {
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    baseline: kdv_obs::Snapshot,
    stats: bool,
}

impl ObsSession {
    fn from_args(args: &Args) -> Self {
        let trace_out = args.get("trace-out").map(PathBuf::from);
        let metrics_out = args.get("metrics-out").map(PathBuf::from);
        if trace_out.is_some() || metrics_out.is_some() {
            kdv_obs::span::clear();
            kdv_obs::set_enabled(true);
        }
        Self {
            trace_out,
            metrics_out,
            baseline: kdv_obs::metrics::global().snapshot(),
            stats: args.has_flag("stats"),
        }
    }

    /// Whether either export flag was given (the recorder is live).
    fn active(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }

    fn finish(self) -> Result<(), String> {
        if !self.active() {
            return Ok(());
        }
        kdv_obs::set_enabled(false);
        kdv_obs::span::flush_thread();
        let trace = kdv_obs::span::take_trace();
        if let Some(path) = &self.trace_out {
            std::fs::write(path, kdv_obs::chrome_trace_json(&trace))
                .map_err(|e| format!("{}: {e}", path.display()))?;
            println!("wrote {} span(s) to {}", trace.events.len(), path.display());
        }
        if let Some(path) = &self.metrics_out {
            let snap = kdv_obs::metrics::global().snapshot().diff(&self.baseline);
            std::fs::write(path, kdv_obs::metrics_json(&snap))
                .map_err(|e| format!("{}: {e}", path.display()))?;
            println!("wrote {} metric(s) to {}", snap.values.len(), path.display());
        }
        if self.stats {
            print!("{}", kdv_obs::phase_summary(&trace));
        }
        Ok(())
    }
}

/// Sliding window backing the SLO tracker and the `[top]` line.
const SLO_WINDOW_NS: u64 = 10_000_000_000;

/// Samples the tile cache for the `[top]` line: `(hits, misses, patched)`.
type CacheSampler = dyn Fn() -> (u64, u64, u64) + Send + Sync;

/// Serving telemetry driven by `--slo-p99-ms`, `--incident-dir`,
/// `--prom-out` and `--top`.
///
/// Construction arms the flight recorder's incident dumps when
/// `--incident-dir` is given and builds a windowed [`SloTracker`] when
/// either `--slo-p99-ms` or `--top` asks for latency tracking.
/// [`ServeTelemetry::finish`] stops the `[top]` reporter, prints the
/// breach/incident summary, and writes the Prometheus snapshot.
struct ServeTelemetry {
    slo: Option<Arc<SloTracker>>,
    explicit_slo: bool,
    incident_dir: Option<PathBuf>,
    prom_out: Option<PathBuf>,
    top_every: Option<Duration>,
    top: Option<TopReporter>,
}

impl ServeTelemetry {
    fn from_args(args: &Args) -> Result<Self, String> {
        let slo_p99_ms: Option<f64> = args
            .get("slo-p99-ms")
            .map(|v| v.parse().map_err(|_| "bad --slo-p99-ms".to_string()))
            .transpose()?;
        let top_every = match args.get("top") {
            Some(secs) => {
                let s: f64 = secs.parse().map_err(|_| "bad --top")?;
                if s <= 0.0 {
                    return Err("bad --top (need a positive period in seconds)".into());
                }
                Some(Duration::from_secs_f64(s))
            }
            None if args.has_flag("top") => Some(Duration::from_secs(1)),
            None => None,
        };
        // `--top` without an explicit target still needs windowed latency
        // tracking; a 500 ms default p99 keeps breach noise down.
        let slo = (slo_p99_ms.is_some() || top_every.is_some()).then(|| {
            let p99 = slo_p99_ms.unwrap_or(500.0);
            Arc::new(SloTracker::uniform(SLO_WINDOW_NS, SloTargets::from_ms(p99 / 2.0, p99)))
        });
        let incident_dir = args.get("incident-dir").map(PathBuf::from);
        if let Some(dir) = &incident_dir {
            kdv_obs::arm_incidents(kdv_obs::IncidentConfig::new(dir.clone()));
        }
        Ok(Self {
            slo,
            explicit_slo: slo_p99_ms.is_some(),
            incident_dir,
            prom_out: args.get("prom-out").map(PathBuf::from),
            top_every,
            top: None,
        })
    }

    /// Starts the periodic `[top]` reporter once the server exists (the
    /// sampler closure reads its cache stats).
    fn start_top(&mut self, cache: Box<CacheSampler>) {
        if let (Some(every), Some(slo)) = (self.top_every, self.slo.clone()) {
            self.top = Some(TopReporter::start(every, slo, cache));
        }
    }

    /// Records one served request into the SLO tracker; a breach edge
    /// fires the flight recorder's `slo.p99` trigger.
    fn record(&self, class: RequestClass, latency_ns: u64, request_id: u64) {
        if let Some(slo) = &self.slo {
            if slo.record(class, latency_ns, request_id).breached {
                kdv_obs::trigger("slo.p99", Some(request_id));
            }
        }
    }

    fn finish(mut self) -> Result<(), String> {
        if let Some(top) = self.top.take() {
            top.stop();
        }
        if self.explicit_slo {
            if let Some(slo) = &self.slo {
                let total: u64 = RequestClass::ALL.iter().map(|&c| slo.breaches(c)).sum();
                println!(
                    "slo: p99 target {:.1} ms per class, {} breach transition(s)",
                    ns_to_ms(slo.targets(RequestClass::Exact).p99_ns),
                    total
                );
            }
        }
        if let Some(dir) = &self.incident_dir {
            kdv_obs::disarm_incidents();
            let dumps = kdv_obs::metrics::global().snapshot().counter("obs.incidents").unwrap_or(0);
            println!("flight recorder: {} incident dump(s) in {}", dumps, dir.display());
        }
        if let Some(path) = &self.prom_out {
            let snap = kdv_obs::metrics::global().snapshot();
            std::fs::write(path, kdv_obs::prometheus_text(&snap))
                .map_err(|e| format!("{}: {e}", path.display()))?;
            println!(
                "wrote {} metric(s) as prometheus text to {}",
                snap.values.len(),
                path.display()
            );
        }
        Ok(())
    }
}

/// Background thread printing the `[top]` stats line every period (and
/// once more on stop, so short replays still report).
struct TopReporter {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl TopReporter {
    fn start(every: Duration, slo: Arc<SloTracker>, cache: Box<CacheSampler>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || loop {
            std::thread::park_timeout(every);
            println!("{}", top_line(&slo, cache.as_ref()));
            if flag.load(Ordering::Relaxed) {
                break;
            }
        });
        Self { stop, handle }
    }

    fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.thread().unpark();
        let _ = self.handle.join();
    }
}

/// One `[top]`-style stats line: qps and windowed p50/p99 per request
/// class, cache hit/patch rates, shed and inflight counts, and the
/// ingest-to-serve generation lag.
fn top_line(slo: &SloTracker, cache: &CacheSampler) -> String {
    use std::fmt::Write as _;
    let snap = kdv_obs::metrics::global().snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let gauge = |name: &str| match snap.get(name) {
        Some(kdv_obs::metrics::MetricValue::Gauge(v)) => *v,
        _ => 0,
    };
    let mut requests = 0u64;
    let mut tiers = String::new();
    for class in RequestClass::ALL {
        let h = slo.windowed(class);
        if h.count > 0 {
            requests += h.count;
            let _ = write!(
                tiers,
                " | {} {}",
                class.name(),
                kdv_obs::stats::fmt_p50_p99_ms(
                    h.quantile_upper_bound(0.5),
                    h.quantile_upper_bound(0.99),
                )
            );
        }
    }
    let (hits, misses, patched) = cache();
    let lookups = hits + misses;
    let hit_rate = if lookups == 0 { 0.0 } else { 100.0 * hits as f64 / lookups as f64 };
    let shed = counter("serve.shed.queue_full") + counter("serve.shed.deadline");
    let inflight = counter("serve.submitted")
        .saturating_sub(counter("serve.completed"))
        .saturating_sub(counter("serve.shed.deadline"));
    let lag = gauge("stream.generation").saturating_sub(gauge("serve.generation"));
    let qps = requests as f64 / (slo.window_ns() as f64 / 1e9);
    let mut out = format!("[top] qps {qps:.1}{tiers}");
    let _ = write!(out, " | cache {hit_rate:.1}% hit, {patched} patched");
    let _ = write!(out, " | shed {shed} | inflight {inflight} | gen lag {lag}");
    let dropped = kdv_obs::span::dropped_events();
    if dropped > 0 {
        let _ = write!(out, " | dropped {dropped}");
    }
    out
}

fn parse_city(s: &str) -> Result<City, String> {
    match s.to_ascii_lowercase().as_str() {
        "seattle" => Ok(City::Seattle),
        "la" | "losangeles" | "los-angeles" => Ok(City::LosAngeles),
        "ny" | "newyork" | "new-york" => Ok(City::NewYork),
        "sf" | "sanfrancisco" | "san-francisco" => Ok(City::SanFrancisco),
        other => Err(format!("unknown city '{other}'")),
    }
}

fn parse_method(s: &str) -> Result<AnyMethod, String> {
    match s.to_ascii_lowercase().as_str() {
        "scan" => Ok(AnyMethod::Scan),
        "rqs-kd" => Ok(AnyMethod::RqsKd),
        "rqs-ball" => Ok(AnyMethod::RqsBall),
        "zorder" | "z-order" => Ok(AnyMethod::ZOrder { sample_fraction: 0.05 }),
        "akde" => Ok(AnyMethod::Akde { epsilon: 1e-6 }),
        "quad" => Ok(AnyMethod::Quad),
        "slam-sort" => Ok(AnyMethod::Slam(Method::SlamSort)),
        "slam-bucket" => Ok(AnyMethod::Slam(Method::SlamBucket)),
        "slam-sort-rao" => Ok(AnyMethod::Slam(Method::SlamSortRao)),
        "slam-bucket-rao" => Ok(AnyMethod::Slam(Method::SlamBucketRao)),
        other => Err(format!("unknown method '{other}'")),
    }
}

fn parse_res(s: &str) -> Result<(usize, usize), String> {
    let (x, y) = s.split_once(['x', 'X']).ok_or("resolution must be WxH")?;
    Ok((x.parse().map_err(|_| "bad width")?, y.parse().map_err(|_| "bad height")?))
}

/// Loads a CSV dataset and assembles the KDV parameters shared by the
/// `render` and `bench` subcommands.
fn load_problem(args: &Args) -> Result<(Vec<kdv_core::Point>, KdvParams), String> {
    let input = args.get("input").ok_or("--input FILE.csv is required")?;
    let dataset = csvio::read_csv_file(Path::new(input)).map_err(|e| e.to_string())?;
    if dataset.is_empty() {
        return Err("dataset is empty".into());
    }
    let points = dataset.points();
    let mbr = dataset.mbr();
    let (rx, ry) = args.get("res").map(parse_res).transpose()?.unwrap_or((640, 480));
    let kernel: KernelType =
        args.get("kernel").unwrap_or("epanechnikov").parse().map_err(|e: String| e)?;
    let bandwidth = match args.get("bandwidth") {
        Some(b) => b.parse().map_err(|_| "bad --bandwidth")?,
        None => kdv_data::scott_bandwidth(&points),
    };
    let grid = GridSpec::new(mbr, rx, ry).map_err(|e| e.to_string())?;
    let params = KdvParams::new(grid, kernel, bandwidth).with_weight(1.0 / points.len() as f64);
    Ok((points, params))
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let city = parse_city(args.get("city").ok_or("--city is required")?)?;
    let scale: f64 = args.get("scale").unwrap_or("0.01").parse().map_err(|_| "bad --scale")?;
    let out = PathBuf::from(
        args.get("out")
            .map(str::to_string)
            .unwrap_or_else(|| format!("{}.csv", city.name().to_lowercase().replace(' ', "_"))),
    );
    let dataset = city.dataset(scale);
    csvio::write_csv_file(&out, &dataset).map_err(|e| e.to_string())?;
    println!(
        "wrote {} events for {} (scale {scale}) to {}",
        dataset.len(),
        city.name(),
        out.display()
    );
    Ok(())
}

/// Applies `--simd scalar|auto` to the process-wide SIMD dispatch
/// (`scalar` forces the portable path, `auto` restores runtime feature
/// detection). Overrides the `KDV_SIMD` environment variable; omitted
/// means the environment/startup resolution stands.
fn apply_simd_flag(args: &Args) -> Result<(), String> {
    match args.get("simd") {
        Some("scalar") => kdv_core::simd::set_override(Some(kdv_core::simd::SimdMode::Scalar)),
        Some("auto") => kdv_core::simd::set_override(None),
        Some(other) => return Err(format!("bad --simd '{other}' (scalar|auto)")),
        None => {}
    }
    Ok(())
}

/// Parses `--threads` (`0`/omitted = all cores, per [`default_threads`]).
fn parse_threads(args: &Args) -> Result<usize, String> {
    match args.get("threads") {
        Some(t) => {
            let n: usize = t.parse().map_err(|_| "bad --threads")?;
            Ok(if n == 0 { default_threads() } else { n })
        }
        None => Ok(default_threads()),
    }
}

/// Runs `method` honouring `--threads`/`--stats`: SLAM variants dispatch
/// to the work-stealing parallel runtime; baselines stay sequential (with
/// a note if parallel options were requested for them).
fn compute_with_runtime(
    method: AnyMethod,
    params: &KdvParams,
    points: &[kdv_core::Point],
    threads: usize,
    stats: bool,
) -> Result<(DensityGrid, Option<SweepReport>), String> {
    let AnyMethod::Slam(m) = method else {
        if threads > 1 || stats {
            eprintln!(
                "note: --threads/--stats apply to SLAM methods only; running {} sequentially",
                method.name()
            );
        }
        let result = method.compute(params, points).map_err(|e| e.to_string())?;
        return Ok((result.grid, None));
    };
    let engine = match m {
        Method::SlamSort | Method::SlamSortRao => ParallelEngine::Sort,
        Method::SlamBucket | Method::SlamBucketRao => ParallelEngine::Bucket,
    };
    let rao = matches!(m, Method::SlamSortRao | Method::SlamBucketRao);
    let out = match (rao, stats) {
        (false, false) => {
            (compute_parallel(params, points, engine, threads).map_err(|e| e.to_string())?, None)
        }
        (true, false) => (
            compute_parallel_rao(params, points, engine, threads).map_err(|e| e.to_string())?,
            None,
        ),
        (false, true) => {
            let (g, r) = compute_parallel_with_report(params, points, engine, threads)
                .map_err(|e| e.to_string())?;
            (g, Some(r))
        }
        (true, true) => {
            let (g, r) = compute_parallel_rao_with_report(params, points, engine, threads)
                .map_err(|e| e.to_string())?;
            (g, Some(r))
        }
    };
    Ok(out)
}

fn cmd_render(args: &Args) -> Result<(), String> {
    let (points, params) = load_problem(args)?;
    let method = parse_method(args.get("method").unwrap_or("slam-bucket-rao"))?;
    let colormap: ColorMap = args.get("colormap").unwrap_or("heat").parse()?;
    let scale_mode: Scale = args.get("scale-mode").unwrap_or("sqrt").parse()?;
    let out = PathBuf::from(args.get("out").unwrap_or("kdv.ppm"));
    let threads = parse_threads(args)?;
    let stats = args.has_flag("stats");
    let obs = ObsSession::from_args(args);

    let start = Instant::now();
    let (grid, report) =
        compute_with_runtime(method, &params, &points, threads, stats || obs.active())?;
    let elapsed = start.elapsed();
    let image = render(&grid, colormap, scale_mode);
    image.save_ppm(&out).map_err(|e| e.to_string())?;
    println!(
        "{}: {}x{} raster over {} points in {:.3}s ({} thread(s)) -> {}",
        method.name(),
        params.grid.res_x,
        params.grid.res_y,
        points.len(),
        elapsed.as_secs_f64(),
        threads,
        out.display()
    );
    if let Some(report) = report {
        if obs.active() {
            report.record_metrics();
        }
        if stats {
            println!("{}", report.summary());
        }
    }
    obs.finish()?;
    if args.has_flag("ascii") {
        // coarse preview: subsample the grid to <= 72 columns
        println!("{}", ascii_art(&grid, scale_mode));
    }
    Ok(())
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    let (points, params) = load_problem(args)?;
    let method = parse_method(args.get("method").ok_or("--method is required")?)?;
    let threads = parse_threads(args)?;
    let stats = args.has_flag("stats");
    let obs = ObsSession::from_args(args);
    let start = Instant::now();
    let (_, report) =
        compute_with_runtime(method, &params, &points, threads, stats || obs.active())?;
    println!(
        "{}\t{}x{}\tn={}\tthreads={}\t{:.4}s",
        method.name(),
        params.grid.res_x,
        params.grid.res_y,
        points.len(),
        threads,
        start.elapsed().as_secs_f64()
    );
    if let Some(report) = report {
        if obs.active() {
            report.record_metrics();
        }
        if stats {
            println!("{}", report.summary());
        }
    }
    obs.finish()?;
    Ok(())
}

fn cmd_hotspots(args: &Args) -> Result<(), String> {
    let (points, params) = load_problem(args)?;
    let fraction: f64 =
        args.get("peak-fraction").unwrap_or("0.25").parse().map_err(|_| "bad --peak-fraction")?;
    let top: usize = args.get("top").unwrap_or("10").parse().map_err(|_| "bad --top")?;

    let grid = kdv_core::KdvEngine::new(Method::SlamBucketRao)
        .compute(&params, &points)
        .map_err(|e| e.to_string())?;
    let hotspots = hotspots_by_peak_fraction(&grid, &params.grid, fraction);
    println!(
        "{} hotspot region(s) at >= {:.0}% of peak density {:.6}:",
        hotspots.len(),
        fraction * 100.0,
        grid.max_value()
    );
    println!("{:<4} {:>10} {:>14} {:>12} {:>22}", "#", "pixels", "area (m^2)", "peak", "centroid");
    for (i, h) in hotspots.iter().take(top).enumerate() {
        println!(
            "{:<4} {:>10} {:>14.0} {:>12.6} ({:>9.1}, {:>9.1})",
            i + 1,
            h.pixels,
            h.area,
            h.peak,
            h.centroid.x,
            h.centroid.y
        );
    }
    Ok(())
}

fn cmd_stkdv(args: &Args) -> Result<(), String> {
    let input = args.get("input").ok_or("--input FILE.csv is required")?;
    let dataset = csvio::read_csv_file(Path::new(input)).map_err(|e| e.to_string())?;
    if dataset.is_empty() {
        return Err("dataset is empty".into());
    }
    let (points, params) = load_problem(args)?;
    let _ = points;
    let frames: usize =
        args.get("frames").ok_or("--frames N is required")?.parse().map_err(|_| "bad --frames")?;
    let times: Vec<i64> = dataset.records.iter().map(|r| r.timestamp).collect();
    let (t0, t1) =
        (*times.iter().min().expect("non-empty"), *times.iter().max().expect("non-empty"));
    let spec = FrameSpec::spanning(t0, t1, frames);
    let default_bt = (spec.stride * 2).max(1).to_string();
    let temporal_bandwidth: i64 = args
        .get("time-bandwidth")
        .unwrap_or(&default_bt)
        .parse()
        .map_err(|_| "bad --time-bandwidth")?;
    let prefix = args.get("out-prefix").unwrap_or("stkdv");

    let config = StKdvConfig {
        params,
        frames: spec,
        temporal_bandwidth,
        temporal_kernel: TemporalKernel::Epanechnikov,
    };
    let threads = parse_threads(args)?;
    let start = Instant::now();
    let rendered =
        compute_stkdv_parallel(&config, &dataset.records, threads).map_err(|e| e.to_string())?;
    println!(
        "computed {} frames in {:.2}s (temporal bandwidth {}s, {} thread(s))",
        rendered.len(),
        start.elapsed().as_secs_f64(),
        temporal_bandwidth,
        threads
    );
    let colormap: ColorMap = args.get("colormap").unwrap_or("heat").parse()?;
    for (i, frame) in rendered.iter().enumerate() {
        let file = format!("{prefix}_{:03}.ppm", i + 1);
        render(&frame.grid, colormap, Scale::Sqrt)
            .save_ppm(Path::new(&file))
            .map_err(|e| e.to_string())?;
        println!("frame {:>3}: t={} events={} -> {file}", i + 1, frame.time, frame.events);
    }
    Ok(())
}

/// `kdv serve --batch`: replays a recorded viewport trace against the
/// caching tile server and reports cache effectiveness. Every served
/// raster is exact — bitwise-equal to cropping the monolithic sweep of
/// the level — whether the tiles were cached or computed on the spot.
fn cmd_serve(args: &Args) -> Result<(), String> {
    if args.get("live").is_some() {
        return cmd_serve_live(args);
    }
    let input = args.get("input").ok_or("--input FILE.csv is required")?;
    let batch = args.get("batch").ok_or("--batch TRACE.txt or --live FEED.trace is required")?;
    let dataset = csvio::read_csv_file(Path::new(input)).map_err(|e| e.to_string())?;
    if dataset.is_empty() {
        return Err("dataset is empty".into());
    }
    let points = dataset.points();
    let mbr = dataset.mbr();

    let tile_size: usize =
        args.get("tile-size").unwrap_or("256").parse().map_err(|_| "bad --tile-size")?;
    let (base_x, base_y) = match args.get("base-res") {
        Some(r) => parse_res(r)?,
        None => (tile_size, tile_size),
    };
    let max_zoom: u8 = args.get("max-zoom").unwrap_or("4").parse().map_err(|_| "bad --max-zoom")?;
    let kernel: KernelType =
        args.get("kernel").unwrap_or("epanechnikov").parse().map_err(|e: String| e)?;
    let bandwidth = match args.get("bandwidth") {
        Some(b) => b.parse().map_err(|_| "bad --bandwidth")?,
        None => kdv_data::scott_bandwidth(&points),
    };
    let cache_mb: usize =
        args.get("cache-mb").unwrap_or("256").parse().map_err(|_| "bad --cache-mb")?;
    let threads = parse_threads(args)?;
    let stats = args.has_flag("stats");
    let obs = ObsSession::from_args(args);
    let mut telemetry = ServeTelemetry::from_args(args)?;

    let trace_text = std::fs::read_to_string(batch).map_err(|e| format!("{batch}: {e}"))?;
    let trace = kdv_serve::trace::parse_sessions(&trace_text).map_err(|e| e.to_string())?;
    if trace.num_requests() == 0 {
        return Err(format!("{batch}: trace contains no requests"));
    }
    let concurrent = trace.version == 2 || args.get("workers").is_some();

    let overview = match args.get("coreset-zoom") {
        Some(z) => {
            let zoom: u8 = z.parse().map_err(|_| "bad --coreset-zoom")?;
            let rel: f64 = args
                .get("coreset-eps")
                .unwrap_or("0.01")
                .parse()
                .map_err(|_| "bad --coreset-eps")?;
            let method: kdv_coreset::CoresetMethod =
                args.get("coreset-method").unwrap_or("grid").parse().map_err(|e| format!("{e}"))?;
            Some(kdv_serve::OverviewConfig {
                max_zoom: zoom,
                method,
                target_rel_epsilon: rel,
                seed: 7,
            })
        }
        None => None,
    };

    let pyramid = kdv_serve::PyramidSpec::new(mbr, tile_size, base_x, base_y, max_zoom)
        .map_err(|e| e.to_string())?;
    let config =
        kdv_serve::ServeConfig { dataset: 1, kernel, bandwidth, weight: 1.0 / points.len() as f64 };
    let n = points.len();
    let server = std::sync::Arc::new(match overview {
        Some(ov) => kdv_serve::TileServer::with_overview_coreset(
            pyramid,
            config,
            points,
            cache_mb << 20,
            16,
            ov,
        )
        .map_err(|e| e.to_string())?,
        None => kdv_serve::TileServer::new(pyramid, config, points, cache_mb << 20, 16),
    });

    println!(
        "serving {} request(s) over {} points (tile {tile_size}px, base {base_x}x{base_y}, \
         max zoom {max_zoom}, bandwidth {bandwidth:.2}, cache {cache_mb} MiB, {threads} thread(s))",
        trace.num_requests(),
        n
    );
    if let Some(ov) = &overview {
        let info = server.tier_info(0);
        println!(
            "coreset overview tier: zoom <= {} served from {} of {n} point(s) ({} coreset), \
             advertised eps {:.3e} (rel target {})",
            ov.max_zoom.min(max_zoom),
            info.coreset_size.unwrap_or(0),
            ov.method,
            info.epsilon.unwrap_or(0.0),
            ov.target_rel_epsilon
        );
    }
    {
        let server = std::sync::Arc::clone(&server);
        telemetry.start_top(Box::new(move || {
            let cs = server.cache_stats();
            (cs.hits(), cs.misses(), cs.patched())
        }));
    }
    let start = Instant::now();
    if concurrent {
        serve_concurrent(args, &trace, &server, stats, &telemetry)?;
    } else {
        serve_sequential(args, &trace, &server, threads, stats, &obs, &telemetry)?;
    }
    let cs = server.cache_stats();
    let total = cs.hits() + cs.misses();
    println!(
        "replayed {} request(s) in {:.3}s: {} hit(s) / {} miss(es) ({:.1}% hit rate), \
         {} eviction(s), {} rejected, cache {} tile(s) / {} B of {} B",
        trace.num_requests(),
        start.elapsed().as_secs_f64(),
        cs.hits(),
        cs.misses(),
        if total == 0 { 0.0 } else { 100.0 * cs.hits() as f64 / total as f64 },
        cs.evictions(),
        cs.rejected(),
        server.cache().len(),
        server.cache().bytes(),
        server.cache().budget()
    );
    telemetry.finish()?;
    obs.finish()?;
    Ok(())
}

/// `kdv serve --live`: replays a timestamped live feed through the
/// streaming tile server. Arrivals between two requests are flushed as
/// one sealed delta batch immediately before the later request; cached
/// tiles are **patched** with the delta instead of being rebuilt, and
/// every response is bitwise-equal to a cold rebuild of its generation.
fn cmd_serve_live(args: &Args) -> Result<(), String> {
    let input = args.get("input").ok_or("--input FILE.csv is required")?;
    let feed_path = args.get("live").expect("cmd_serve_live dispatched on --live");
    let dataset = csvio::read_csv_file(Path::new(input)).map_err(|e| e.to_string())?;
    if dataset.is_empty() {
        return Err("dataset is empty".into());
    }
    let points = dataset.points();
    let mbr = dataset.mbr();
    let n = points.len();

    let tile_size: usize =
        args.get("tile-size").unwrap_or("256").parse().map_err(|_| "bad --tile-size")?;
    let (base_x, base_y) = match args.get("base-res") {
        Some(r) => parse_res(r)?,
        None => (tile_size, tile_size),
    };
    let max_zoom: u8 = args.get("max-zoom").unwrap_or("4").parse().map_err(|_| "bad --max-zoom")?;
    let kernel: KernelType =
        args.get("kernel").unwrap_or("epanechnikov").parse().map_err(|e: String| e)?;
    let bandwidth = match args.get("bandwidth") {
        Some(b) => b.parse().map_err(|_| "bad --bandwidth")?,
        None => kdv_data::scott_bandwidth(&points),
    };
    let cache_mb: usize =
        args.get("cache-mb").unwrap_or("256").parse().map_err(|_| "bad --cache-mb")?;
    let threads = parse_threads(args)?;
    let stats = args.has_flag("stats");
    let obs = ObsSession::from_args(args);
    let mut telemetry = ServeTelemetry::from_args(args)?;
    let window: Option<usize> = match args.get("window") {
        Some(w) => Some(w.parse().map_err(|_| "bad --window")?),
        None => None,
    };
    let compact_every: Option<u64> = match args.get("compact-every") {
        Some(c) => Some(c.parse().map_err(|_| "bad --compact-every")?),
        None => None,
    };
    let patching = !args.has_flag("no-patch");

    let feed_text = std::fs::read_to_string(feed_path).map_err(|e| format!("{feed_path}: {e}"))?;
    let events = kdv_serve::trace::parse_live(&feed_text).map_err(|e| e.to_string())?;
    let requests =
        events.iter().filter(|e| matches!(e, kdv_serve::trace::LiveEvent::Request { .. })).count();
    if requests == 0 {
        return Err(format!("{feed_path}: feed contains no viewport requests"));
    }

    let pyramid = kdv_serve::PyramidSpec::new(mbr, tile_size, base_x, base_y, max_zoom)
        .map_err(|e| e.to_string())?;
    let config = kdv_serve::ServeConfig { dataset: 1, kernel, bandwidth, weight: 1.0 / n as f64 };
    let server = Arc::new(kdv_serve::LiveTileServer::new(
        pyramid,
        config,
        kdv_serve::LiveConfig { patching, compact_every },
        points,
        cache_mb << 20,
        16,
    ));
    {
        let server = Arc::clone(&server);
        telemetry.start_top(Box::new(move || {
            let cs = server.cache_stats();
            (cs.hits(), cs.misses(), cs.patched())
        }));
    }

    println!(
        "live replay: {} event(s), {requests} request(s) over a base of {n} point(s) \
         (tile {tile_size}px, base {base_x}x{base_y}, max zoom {max_zoom}, \
         bandwidth {bandwidth:.2}, cache {cache_mb} MiB, {threads} thread(s), patching {})",
        events.len(),
        if patching { "on" } else { "off" },
    );
    let start = Instant::now();
    let mut pending: Vec<kdv_core::geom::Point> = Vec::new();
    let mut arrived = 0usize;
    let mut expired = 0usize;
    let mut served = 0usize;
    for event in &events {
        match event {
            kdv_serve::trace::LiveEvent::Arrival { point, .. } => pending.push(*point),
            kdv_serve::trace::LiveEvent::Request { viewport: vp, at_ms } => {
                if !pending.is_empty() {
                    arrived += pending.len();
                    server.append(&pending);
                    pending.clear();
                    if let Some(w) = window {
                        let over = server.live_len().saturating_sub(w);
                        if over > 0 {
                            server.expire_oldest(over);
                            expired += over;
                        }
                    }
                }
                served += 1;
                let (_, report) = server.serve_viewport(vp, threads).map_err(|e| {
                    format!("request #{served} (zoom {} at {},{}): {e}", vp.zoom, vp.px, vp.py)
                })?;
                telemetry.record(RequestClass::Live, report.wall_nanos, served as u64);
                if obs.active() {
                    report.record_metrics();
                }
                if stats {
                    println!(
                        "t={at_ms:>6}ms gen {:>3}: zoom {} @({},{}) {}x{}  {:>8.3} ms  \
                         hits {} misses {} patched {}",
                        server.generation(),
                        vp.zoom,
                        vp.px,
                        vp.py,
                        vp.width,
                        vp.height,
                        ns_to_ms(report.wall_nanos),
                        report.cache_hits,
                        report.cache_misses,
                        report.cache_patched,
                    );
                }
            }
        }
    }
    if !pending.is_empty() {
        arrived += pending.len();
        server.append(&pending); // trailing arrivals still seal a batch
        pending.clear();
    }
    let ls = server.live_stats();
    let cs = server.cache_stats();
    println!(
        "replayed {requests} request(s) in {:.3}s: {arrived} arrival(s), {expired} expired, \
         generation {} epoch {} ({} live point(s))",
        start.elapsed().as_secs_f64(),
        server.generation(),
        server.epoch(),
        server.live_len(),
    );
    println!(
        "bands: {} patched ({} batch(es) folded), {} recomputed; cache: {} hit(s) / {} miss(es), \
         {} patched tile(s), {} eviction(s)",
        ls.patched_bands(),
        ls.folded_batches(),
        ls.recomputed_bands(),
        cs.hits(),
        cs.misses(),
        cs.patched(),
        cs.evictions(),
    );
    telemetry.finish()?;
    obs.finish()?;
    Ok(())
}

/// Sequential v1 replay: one request at a time, straight at the server.
fn serve_sequential(
    args: &Args,
    trace: &kdv_serve::TraceFile,
    server: &kdv_serve::TileServer,
    threads: usize,
    stats: bool,
    obs: &ObsSession,
    telemetry: &ServeTelemetry,
) -> Result<(), String> {
    let colormap: ColorMap = args.get("colormap").unwrap_or("heat").parse()?;
    let requests: Vec<_> =
        trace.sessions.iter().flat_map(|s| s.requests.iter().map(|r| r.viewport)).collect();
    for (i, vp) in requests.iter().enumerate() {
        let (grid, report) = server.serve_viewport(vp, threads).map_err(|e| {
            format!("request #{} (zoom {} at {},{}): {e}", i + 1, vp.zoom, vp.px, vp.py)
        })?;
        let class = match server.tier_info(vp.zoom).tier {
            kdv_serve::TileTier::Exact => RequestClass::Exact,
            kdv_serve::TileTier::Coreset => RequestClass::Coreset,
        };
        telemetry.record(class, report.wall_nanos, (i + 1) as u64);
        if obs.active() {
            report.record_metrics();
        }
        if stats {
            println!(
                "request {:>3}: zoom {} @({},{}) {}x{}  tier {:7}  {:>8.3} ms  hits {} misses {} \
                 evictions {} rejected {}",
                i + 1,
                vp.zoom,
                vp.px,
                vp.py,
                vp.width,
                vp.height,
                server.tier_info(vp.zoom).tier.name(),
                ns_to_ms(report.wall_nanos),
                report.cache_hits,
                report.cache_misses,
                report.cache_evictions,
                report.cache_rejected
            );
        }
        if let Some(prefix) = args.get("out-prefix") {
            let file = format!("{prefix}_{:03}.ppm", i + 1);
            render(&grid, colormap, Scale::Sqrt)
                .save_ppm(Path::new(&file))
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Concurrent replay through the worker-pool front end: one closed-loop
/// thread per trace session, honoring think times.
fn serve_concurrent(
    args: &Args,
    trace: &kdv_serve::TraceFile,
    server: &std::sync::Arc<kdv_serve::TileServer>,
    stats: bool,
    telemetry: &ServeTelemetry,
) -> Result<(), String> {
    if args.get("out-prefix").is_some() {
        return Err("--out-prefix is only supported for sequential (v1) replay".into());
    }
    let workers: usize = args.get("workers").unwrap_or("4").parse().map_err(|_| "bad --workers")?;
    let queue_depth: usize =
        args.get("queue-depth").unwrap_or("64").parse().map_err(|_| "bad --queue-depth")?;
    let deadline = match args.get("deadline-ms") {
        Some(ms) => {
            Some(std::time::Duration::from_millis(ms.parse().map_err(|_| "bad --deadline-ms")?))
        }
        None => None,
    };
    let fe_config =
        kdv_serve::FrontendConfig { workers, queue_depth, deadline, threads_per_request: 1 };
    println!(
        "concurrent replay: {} session(s), {} worker(s), queue depth {}, deadline {}",
        trace.sessions.len(),
        workers,
        queue_depth,
        deadline.map_or("none".to_string(), |d| format!("{} ms", d.as_millis()))
    );
    let frontend = kdv_serve::Frontend::new(std::sync::Arc::clone(server), fe_config);
    if let Some(slo) = &telemetry.slo {
        frontend.set_slo(Arc::clone(slo));
    }
    let records = kdv_serve::replay_concurrent(&frontend, &trace.sessions, true);
    if stats {
        for r in &records {
            let outcome = match &r.outcome {
                kdv_serve::ReplayOutcome::Served { checksum } => format!("ok {checksum:016x}"),
                kdv_serve::ReplayOutcome::Shed(reason) => format!("shed ({reason})"),
                kdv_serve::ReplayOutcome::Failed(e) => format!("failed: {e}"),
            };
            println!(
                "session {:>2} req {:>3}: {:>8.3} ms  {}",
                r.session,
                r.seq + 1,
                ns_to_ms(r.latency_ns),
                outcome
            );
        }
    }
    let served = records
        .iter()
        .filter(|r| matches!(r.outcome, kdv_serve::ReplayOutcome::Served { .. }))
        .count();
    let p50 = kdv_serve::replay::latency_quantile_ns(&records, 0.5);
    let p99 = kdv_serve::replay::latency_quantile_ns(&records, 0.99);
    let fs = frontend.stats();
    let flights = server.flight_stats();
    println!(
        "front end: {} served, {} shed ({} queue-full, {} deadline), {}",
        served,
        fs.shed(),
        fs.shed_queue_full(),
        fs.shed_deadline(),
        kdv_obs::stats::fmt_p50_p99_ms(p50, p99)
    );
    println!(
        "bands: {} computed, {} joined in flight, {} duplicate compute(s)",
        flights.computed(),
        flights.joined(),
        flights.duplicate_computes()
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let input = args.get("input").ok_or("--input FILE.csv is required")?;
    let dataset = csvio::read_csv_file(Path::new(input)).map_err(|e| e.to_string())?;
    let points = dataset.points();
    let mbr = dataset.mbr();
    println!("dataset:   {}", dataset.name);
    println!("events:    {}", dataset.len());
    if !dataset.is_empty() {
        println!(
            "mbr:       [{:.1}, {:.1}] x [{:.1}, {:.1}]  ({:.1} x {:.1} m)",
            mbr.min_x,
            mbr.max_x,
            mbr.min_y,
            mbr.max_y,
            mbr.width(),
            mbr.height()
        );
        println!("scott b:   {:.2} m", kdv_data::scott_bandwidth(&points));
        let ts: Vec<i64> = dataset.records.iter().map(|r| r.timestamp).collect();
        println!("time span: {} .. {}", ts.iter().min().unwrap(), ts.iter().max().unwrap());
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = Args::parse(&argv[1..]);
    let result = apply_simd_flag(&args).and_then(|()| match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "render" => cmd_render(&args),
        "bench" => cmd_bench(&args),
        "hotspots" => cmd_hotspots(&args),
        "stkdv" => cmd_stkdv(&args),
        "serve" => cmd_serve(&args),
        "info" => cmd_info(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn args_values_flags_and_last_wins() {
        let a = args(&["--res", "64x48", "--ascii", "--res", "128x96"]);
        assert_eq!(a.get("res"), Some("128x96"));
        assert!(a.has_flag("ascii"));
        assert!(!a.has_flag("res"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = args(&["--ascii", "--verbose"]);
        assert!(a.has_flag("ascii"));
        assert!(a.has_flag("verbose"));
    }

    #[test]
    fn city_aliases() {
        assert_eq!(parse_city("seattle").unwrap(), City::Seattle);
        assert_eq!(parse_city("LA").unwrap(), City::LosAngeles);
        assert_eq!(parse_city("new-york").unwrap(), City::NewYork);
        assert_eq!(parse_city("sf").unwrap(), City::SanFrancisco);
        assert!(parse_city("gotham").is_err());
    }

    #[test]
    fn method_names() {
        assert!(matches!(parse_method("scan").unwrap(), AnyMethod::Scan));
        assert!(matches!(
            parse_method("slam-bucket-rao").unwrap(),
            AnyMethod::Slam(Method::SlamBucketRao)
        ));
        assert!(matches!(parse_method("Z-ORDER").unwrap(), AnyMethod::ZOrder { .. }));
        assert!(parse_method("magic").is_err());
    }

    #[test]
    fn resolution_parsing() {
        assert_eq!(parse_res("320x240").unwrap(), (320, 240));
        assert_eq!(parse_res("1X2").unwrap(), (1, 2));
        assert!(parse_res("320").is_err());
        assert!(parse_res("ax2").is_err());
    }
}
