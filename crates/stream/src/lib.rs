//! # kdv-stream — streaming ingestion for kernel density visualization
//!
//! Every sweep engine in the workspace assumes a frozen point set, but
//! the flagship scenarios (traffic, outbreak monitoring) are naturally
//! *streaming*: points arrive continuously and old points expire. Kernel
//! sums are additive, so live data does not need a new engine — it needs
//! bookkeeping that keeps the additivity **bit-exact**:
//!
//! * [`StreamingPointSet`] — a frozen *epoch base* plus an ordered log of
//!   [`DeltaBatch`]es (signed weights: `+1` append, `-1` expiration),
//!   with a monotone **generation** counter that names every distinct
//!   state the set has ever been in.
//! * The canonical density of generation `g` is defined as the base
//!   sweep *plus each batch's weighted sweep folded in batch order* —
//!   one fixed float program per generation. A cached tile patched from
//!   generation `g₀` to `g` folds exactly the suffix batches, so the
//!   patch is bitwise-equal to a cold rebuild **by construction** (both
//!   run the same additions in the same order; see
//!   [`kdv_core::tile::accumulate_rows_weighted`]).
//! * [`StreamingPointSet::compact`] folds the live multiset into a new
//!   epoch base. Re-sweeping a merged set legally reassociates float
//!   additions, so compaction bumps the generation (old cached tiles can
//!   never alias the new bits) and the contract is *rebuild equality*:
//!   the compacted set serves bitwise-identically to a fresh
//!   [`StreamingPointSet`] constructed directly from the same live
//!   points — at any compaction trigger point.
//!
//! The serving integration (cached-tile patching, generation-keyed cache
//! entries, the patch-vs-recompute decision) lives in `kdv-serve`; this
//! crate owns the state machine and the canonical rebuild reference the
//! conformance oracle compares against.

use std::collections::VecDeque;
use std::sync::Arc;

use kdv_core::driver::{KdvParams, SweepContext};
use kdv_core::envelope::EnvelopeBuffer;
use kdv_core::sweep_bucket::BucketSweep;
use kdv_core::tile::{accumulate_rows_weighted, sweep_rows};
use kdv_core::weighted::WeightedWorkspace;
use kdv_core::{DensityGrid, KdvError, Point, Result};

/// One sealed mutation batch: points with signed unit weights (`+1.0`
/// append, `-1.0` expiration), in arrival order. A batch is the
/// *association unit* of the canonical float program — the density of a
/// generation folds whole batches in order, so batch boundaries are part
/// of the state's identity, not an implementation detail.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaBatch {
    /// Batch points, in arrival order.
    pub points: Vec<Point>,
    /// Signed unit weight per point (`+1.0` or `-1.0`).
    pub weights: Vec<f64>,
    /// Smallest point y-coordinate (world frame), for the
    /// bandwidth-radius band test.
    y_min: f64,
    /// Largest point y-coordinate (world frame).
    y_max: f64,
}

impl DeltaBatch {
    fn new(points: Vec<Point>, weights: Vec<f64>) -> Self {
        debug_assert_eq!(points.len(), weights.len());
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in &points {
            y_min = y_min.min(p.y);
            y_max = y_max.max(p.y);
        }
        Self { points, weights, y_min, y_max }
    }

    /// Number of entries in the batch.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the batch has no entries.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Bandwidth-radius band test: whether any point of this batch can
    /// contribute to a pixel row with y-coordinate in `[row_lo, row_hi]`
    /// under bandwidth `b` (Definition 1: only points with
    /// `|k − p.y| ≤ b` reach row `k`). A `false` means the batch's
    /// weighted sweep over those rows is exactly zero everywhere, and —
    /// because the fold skips exactly-zero delta pixels — eliding the
    /// sweep entirely is bit-identical to running it. Both the serve
    /// patch path and [`rebuild_grid`] use this same test, so elision
    /// can never make patch and rebuild disagree.
    pub fn touches_rows(&self, row_lo: f64, row_hi: f64, bandwidth: f64) -> bool {
        !self.is_empty() && self.y_min - bandwidth <= row_hi && self.y_max + bandwidth >= row_lo
    }
}

/// A consistent point-in-time view of a [`StreamingPointSet`]: the epoch
/// base and every batch sealed so far, cheap to take (Arc clones) and
/// safe to compute against while the set keeps mutating.
#[derive(Debug, Clone)]
pub struct StreamSnapshot {
    /// The frozen epoch base, in its canonical (arrival) order.
    pub base: Arc<Vec<Point>>,
    /// Sealed batches of this epoch, in seal order.
    pub batches: Vec<Arc<DeltaBatch>>,
    /// Epoch counter (bumped by each compaction).
    pub epoch: u64,
    /// Generation of the bare epoch base (no batches folded).
    pub epoch_generation: u64,
}

impl StreamSnapshot {
    /// Generation of this snapshot: the epoch base's generation plus one
    /// per sealed batch.
    pub fn generation(&self) -> u64 {
        self.epoch_generation + self.batches.len() as u64
    }

    /// Whether a tile cached at generation `from` can be *patched* up to
    /// this snapshot: `from` must name a state of this epoch (a
    /// pre-compaction tile was computed from a differently-associated
    /// base and cannot be advanced by folding batches).
    pub fn patchable_from(&self, from: u64) -> bool {
        from >= self.epoch_generation && from <= self.generation()
    }

    /// The batches a tile at generation `from` is missing, in fold
    /// order. Panics if `from` is not [`StreamSnapshot::patchable_from`].
    pub fn batches_since(&self, from: u64) -> &[Arc<DeltaBatch>] {
        assert!(self.patchable_from(from), "generation {from} is not of this epoch");
        &self.batches[(from - self.epoch_generation) as usize..]
    }

    /// Total delta entries across all sealed batches.
    pub fn delta_len(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }
}

/// A live point set: a frozen epoch base plus an append-only log of
/// signed delta batches, with FIFO expiration and periodic compaction.
///
/// Mutations never edit the base or a sealed batch — each one seals a
/// new batch and bumps the generation, so every generation names one
/// immutable state and the serving layer can cache against it.
#[derive(Debug)]
pub struct StreamingPointSet {
    base: Arc<Vec<Point>>,
    batches: Vec<Arc<DeltaBatch>>,
    /// Current live points in arrival order (base survivors first) — the
    /// FIFO expiration queue and the next compaction's base.
    live: VecDeque<Point>,
    epoch: u64,
    epoch_generation: u64,
}

impl StreamingPointSet {
    /// A streaming set whose epoch base is `base` (generation 0,
    /// epoch 0). The base order is canonical: two sets constructed from
    /// the same sequence are bitwise-indistinguishable forever after the
    /// same mutation history.
    pub fn new(base: Vec<Point>) -> Self {
        let live = base.iter().copied().collect();
        Self { base: Arc::new(base), batches: Vec::new(), live, epoch: 0, epoch_generation: 0 }
    }

    /// Current generation (monotone across mutations *and* compactions —
    /// two distinct states never share a generation).
    pub fn generation(&self) -> u64 {
        self.epoch_generation + self.batches.len() as u64
    }

    /// Current epoch (bumped by each compaction).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of currently-live points.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// Number of sealed batches in the current epoch.
    pub fn batch_count(&self) -> usize {
        self.batches.len()
    }

    /// Total delta entries (appends + expirations) sealed this epoch —
    /// the per-request patch cost compaction exists to bound.
    pub fn delta_len(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }

    /// The live points in arrival order (what a compaction would freeze).
    pub fn live_points(&self) -> Vec<Point> {
        self.live.iter().copied().collect()
    }

    /// Appends `points` as one sealed batch (weight `+1.0` each) and
    /// returns the new generation. Empty appends are a no-op (no batch,
    /// same generation) — replaying a history with empty appends removed
    /// reaches the identical state.
    pub fn append(&mut self, points: &[Point]) -> u64 {
        if points.is_empty() {
            return self.generation();
        }
        let weights = vec![1.0; points.len()];
        self.live.extend(points.iter().copied());
        self.seal(DeltaBatch::new(points.to_vec(), weights))
    }

    /// Expires the `n` oldest live points (FIFO — the expiring-window
    /// semantics of the traffic/outbreak scenarios) as one sealed batch
    /// of weight `-1.0` entries. Returns the new generation and the
    /// expired points; expiring from an empty set is a no-op.
    pub fn expire_oldest(&mut self, n: usize) -> (u64, Vec<Point>) {
        let n = n.min(self.live.len());
        if n == 0 {
            return (self.generation(), Vec::new());
        }
        let expired: Vec<Point> = self.live.drain(..n).collect();
        let weights = vec![-1.0; expired.len()];
        let generation = self.seal(DeltaBatch::new(expired.clone(), weights));
        (generation, expired)
    }

    /// Seals one *mixed* batch of signed unit mutations: weight `+1.0`
    /// appends the point, `-1.0` expires one live point with bitwise the
    /// same coordinates. Entries cancel *within* the batch's single
    /// weighted sweep, which is what makes an append-then-expire of the
    /// same point in one batch an exactly-zero delta (see the property
    /// tests). Errors (leaving the set unchanged) on a length mismatch,
    /// a weight other than ±1.0, or an expiration of a point that is not
    /// live.
    pub fn apply_signed(&mut self, points: &[Point], weights: &[f64]) -> Result<u64> {
        if points.len() != weights.len() {
            return Err(KdvError::Internal("signed batch points/weights length mismatch"));
        }
        if weights.iter().any(|&w| w != 1.0 && w != -1.0) {
            return Err(KdvError::Internal("signed batch weights must be +1.0 or -1.0"));
        }
        // validate + stage the live-queue edit before sealing anything
        let mut live = self.live.clone();
        for (p, &w) in points.iter().zip(weights) {
            if w == 1.0 {
                live.push_back(*p);
            } else {
                match live
                    .iter()
                    .position(|q| q.x.to_bits() == p.x.to_bits() && q.y.to_bits() == p.y.to_bits())
                {
                    Some(i) => {
                        live.remove(i);
                    }
                    None => return Err(KdvError::Internal("expired point is not live")),
                }
            }
        }
        if points.is_empty() {
            return Ok(self.generation());
        }
        self.live = live;
        Ok(self.seal(DeltaBatch::new(points.to_vec(), weights.to_vec())))
    }

    fn seal(&mut self, batch: DeltaBatch) -> u64 {
        self.batches.push(Arc::new(batch));
        let generation = self.generation();
        let metrics = kdv_obs::metrics::global();
        metrics.counter("stream.batches").bump();
        metrics
            .counter("stream.delta_points")
            .add(self.batches.last().map_or(0, |b| b.len()) as u64);
        // stream.generation - serve.generation = the live server's
        // generation lag (how far serving trails ingestion).
        metrics.gauge("stream.generation").set(generation);
        generation
    }

    /// Folds the delta into the base: the new epoch base is the current
    /// live multiset in arrival order, the batch log empties, the epoch
    /// and generation advance. Re-sweeping the merged base reassociates
    /// float additions, so the new generation guarantees no pre-compact
    /// cached tile can alias the new bits; the correctness contract is
    /// that the compacted set is bitwise-indistinguishable from a fresh
    /// [`StreamingPointSet::new`] over the same live points.
    pub fn compact(&mut self) -> u64 {
        let _s = kdv_obs::span2(
            "stream.compact",
            "live",
            self.live.len() as u64,
            "delta",
            self.delta_len() as u64,
        );
        self.epoch_generation = self.generation() + 1;
        self.epoch += 1;
        self.base = Arc::new(self.live_points());
        self.batches.clear();
        let metrics = kdv_obs::metrics::global();
        metrics.counter("stream.compactions").bump();
        metrics.gauge("stream.generation").set(self.epoch_generation);
        self.epoch_generation
    }

    /// A consistent snapshot of the current state (cheap: Arc clones).
    pub fn snapshot(&self) -> StreamSnapshot {
        StreamSnapshot {
            base: Arc::clone(&self.base),
            batches: self.batches.clone(),
            epoch: self.epoch,
            epoch_generation: self.epoch_generation,
        }
    }
}

/// Folds every batch of `batches` into the full-width row band
/// `out` (rows `row_range` of the raster), in batch order, skipping
/// batches outside the band's bandwidth radius. This is the one fold
/// both the cold rebuild and the serve layer's cached-tile patch run —
/// the shared float program that makes them bitwise-equal.
///
/// `context_for` supplies (or caches) the per-batch sweep context,
/// called with each folded batch's index within `batches`.
///
/// Returns `(folded, skipped)` batch counts, so the serve layer can
/// attribute patch work (`serve.patch.batches` / `serve.patch.skipped`)
/// without re-running the radius test.
pub fn fold_batches(
    params: &KdvParams,
    batches: &[Arc<DeltaBatch>],
    rows: std::ops::Range<usize>,
    workspace: &mut WeightedWorkspace,
    scratch: &mut Vec<f64>,
    out: &mut [f64],
    mut context_for: impl FnMut(usize, &DeltaBatch) -> Result<Arc<SweepContext>>,
) -> Result<(u64, u64)> {
    if batches.is_empty() || rows.is_empty() {
        return Ok((0, batches.len() as u64));
    }
    let (k0, k1) =
        (params.grid.pixel_center(0, rows.start).y, params.grid.pixel_center(0, rows.end - 1).y);
    let (row_lo, row_hi) = (k0.min(k1), k0.max(k1));
    let (mut folded, mut skipped) = (0u64, 0u64);
    for (i, batch) in batches.iter().enumerate() {
        if !batch.touches_rows(row_lo, row_hi, params.bandwidth) {
            kdv_obs::metrics::global().counter("serve.patch.skipped").bump();
            skipped += 1;
            continue;
        }
        let ctx = context_for(i, batch)?;
        accumulate_rows_weighted(
            &ctx,
            params,
            rows.clone(),
            &batch.weights,
            workspace,
            scratch,
            out,
        );
        folded += 1;
    }
    Ok((folded, skipped))
}

/// The canonical cold rebuild of a snapshot's full raster: the epoch
/// base swept with the bucket engine, then every sealed batch folded in
/// order via [`fold_batches`]. This is the reference the conformance
/// oracle holds streaming serving to — a patched tile must reproduce the
/// corresponding window of this raster bit for bit.
pub fn rebuild_grid(params: &KdvParams, snapshot: &StreamSnapshot) -> Result<DensityGrid> {
    let rows = 0..params.grid.res_y;
    let ctx = SweepContext::new(params, &snapshot.base)?;
    let mut engine = BucketSweep::new(params.kernel, params.bandwidth, params.weight);
    let mut envelope = EnvelopeBuffer::for_points(snapshot.base.len());
    let mut out = vec![0.0; params.grid.res_x * params.grid.res_y];
    sweep_rows(&ctx, params.bandwidth, rows.clone(), &mut engine, &mut envelope, &mut out);
    let mut workspace = WeightedWorkspace::new();
    let mut scratch = Vec::new();
    fold_batches(
        params,
        &snapshot.batches,
        rows,
        &mut workspace,
        &mut scratch,
        &mut out,
        |_, batch| Ok(Arc::new(SweepContext::new(params, &batch.points)?)),
    )?;
    Ok(DensityGrid::from_values(params.grid.res_x, params.grid.res_y, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::{GridSpec, KernelType, Rect};

    fn params() -> KdvParams {
        let grid = GridSpec::new(Rect::new(0.0, 0.0, 100.0, 100.0), 24, 24).unwrap();
        KdvParams { grid, kernel: KernelType::Epanechnikov, bandwidth: 18.0, weight: 0.01 }
    }

    fn pts(seed: u64, n: usize) -> Vec<Point> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::new(next() * 100.0, next() * 100.0)).collect()
    }

    #[test]
    fn generations_are_monotone_and_name_every_state() {
        let mut set = StreamingPointSet::new(pts(1, 20));
        assert_eq!(set.generation(), 0);
        let g1 = set.append(&pts(2, 3));
        assert_eq!(g1, 1);
        let (g2, expired) = set.expire_oldest(2);
        assert_eq!(g2, 2);
        assert_eq!(expired.len(), 2);
        assert_eq!(set.live_len(), 21);
        let g3 = set.compact();
        assert_eq!(g3, 3, "compaction takes a fresh generation");
        assert_eq!(set.epoch(), 1);
        assert_eq!(set.batch_count(), 0);
        assert_eq!(set.generation(), 3);
    }

    #[test]
    fn empty_mutations_do_not_seal_batches() {
        let mut set = StreamingPointSet::new(pts(1, 5));
        assert_eq!(set.append(&[]), 0);
        assert_eq!(set.expire_oldest(0).0, 0);
        assert_eq!(set.apply_signed(&[], &[]).unwrap(), 0);
        assert_eq!(set.batch_count(), 0);
    }

    #[test]
    fn apply_signed_validates_before_mutating() {
        let mut set = StreamingPointSet::new(pts(1, 4));
        let p = Point::new(1.0, 2.0);
        assert!(set.apply_signed(&[p], &[0.5]).is_err(), "non-unit weight");
        assert!(set.apply_signed(&[p], &[-1.0]).is_err(), "expiring a non-live point");
        assert!(set.apply_signed(&[p, p], &[1.0]).is_err(), "length mismatch");
        assert_eq!(set.generation(), 0, "failed batches leave the set untouched");
        assert_eq!(set.live_len(), 4);
        // append then expire in one batch: live set round-trips
        assert_eq!(set.apply_signed(&[p, p], &[1.0, -1.0]).unwrap(), 1);
        assert_eq!(set.live_len(), 4);
    }

    #[test]
    fn snapshot_is_stable_under_later_mutations() {
        let mut set = StreamingPointSet::new(pts(3, 10));
        set.append(&pts(4, 2));
        let snap = set.snapshot();
        set.append(&pts(5, 2));
        set.compact();
        assert_eq!(snap.generation(), 1);
        assert_eq!(snap.batches.len(), 1);
        assert!(snap.patchable_from(0));
        assert!(snap.patchable_from(1));
        assert!(!snap.patchable_from(2));
        assert_eq!(snap.batches_since(0).len(), 1);
        assert_eq!(snap.batches_since(1).len(), 0);
    }

    #[test]
    fn rebuild_matches_plain_sweep_on_frozen_set() {
        // with no batches, the canonical rebuild IS the bucket sweep
        let set = StreamingPointSet::new(pts(7, 40));
        let p = params();
        let got = rebuild_grid(&p, &set.snapshot()).unwrap();
        let reference = kdv_core::sweep_bucket::compute(&p, &set.snapshot().base).unwrap();
        assert_eq!(got, reference);
    }

    #[test]
    fn append_is_observable_in_the_density() {
        let mut set = StreamingPointSet::new(pts(7, 40));
        let p = params();
        let before = rebuild_grid(&p, &set.snapshot()).unwrap();
        set.append(&[Point::new(50.0, 50.0)]);
        let after = rebuild_grid(&p, &set.snapshot()).unwrap();
        assert_ne!(before, after, "an appended point must change the density");
    }

    #[test]
    fn out_of_radius_batch_is_skipped_bit_transparently() {
        let p = params();
        let mut set = StreamingPointSet::new(pts(9, 30));
        let base = rebuild_grid(&p, &set.snapshot()).unwrap();
        // a point far below the raster (rows span y∈[0,100], b=18)
        set.append(&[Point::new(50.0, -500.0)]);
        assert!(!set.snapshot().batches[0].touches_rows(0.0, 100.0, p.bandwidth));
        let after = rebuild_grid(&p, &set.snapshot()).unwrap();
        assert_eq!(
            kdv_core::digest::grid_checksum(&after),
            kdv_core::digest::grid_checksum(&base),
            "an out-of-radius batch must not change a single bit"
        );
    }
}
