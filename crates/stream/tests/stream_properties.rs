//! Property tests for the streaming state machine's bit-level contracts.
//!
//! Three properties carry the whole PR:
//!
//! 1. **Same-batch cancellation** — appending and expiring the same
//!    point inside one signed batch is a bitwise no-op on the density
//!    grid. The ± pair cancels *exactly* inside the batch's single
//!    compensated accumulation (`x` then `−x` from a zeroed Kahan
//!    accumulator returns to exactly zero, and negation is exact), and
//!    the fold skips exactly-zero delta pixels, so not a bit moves.
//! 2. **Patch = rebuild** — folding the suffix batches onto a rebuild of
//!    any earlier generation reproduces the full rebuild of the current
//!    generation bit for bit. This is the serve layer's tile-patching
//!    argument, proven here independent of any cache or server.
//! 3. **Compaction = fresh rebuild** — compacting at *any* trigger point
//!    yields a state whose canonical rebuild is bitwise-equal to a brand
//!    new stream constructed from the same live points. (Compaction
//!    reassociates float additions, so bit-stability *across* the
//!    compaction is deliberately not claimed — the generation bump is
//!    what keeps pre-compaction tiles from ever aliasing.)

use std::sync::Arc;

use kdv_core::digest::grid_checksum;
use kdv_core::driver::{KdvParams, SweepContext};
use kdv_core::weighted::WeightedWorkspace;
use kdv_core::{GridSpec, KernelType, Point, Rect};
use kdv_stream::{fold_batches, rebuild_grid, StreamingPointSet};
use proptest::prelude::*;

fn params(res_x: usize, res_y: usize, bandwidth: f64) -> KdvParams {
    let grid = GridSpec::new(Rect::new(0.0, 0.0, 100.0, 100.0), res_x, res_y).unwrap();
    KdvParams { grid, kernel: KernelType::Epanechnikov, bandwidth, weight: 0.01 }
}

fn point_strategy() -> impl Strategy<Value = Point> {
    // points straddle the region border so bandwidth-radius skipping is
    // exercised, not just the always-touching case
    (-40.0f64..140.0, -40.0f64..140.0).prop_map(|(x, y)| Point::new(x, y))
}

fn points_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(point_strategy(), 1..max)
}

/// A random mutation history: each step either appends a small batch or
/// expires a few oldest points.
#[derive(Debug, Clone)]
enum Step {
    Append(Vec<Point>),
    Expire(usize),
}

fn steps_strategy() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (0u8..3, points_strategy(8), 1usize..4).prop_map(|(kind, points, n)| {
            // 2:1 append:expire mix so histories grow as often as they shrink
            if kind < 2 {
                Step::Append(points)
            } else {
                Step::Expire(n)
            }
        }),
        1..8,
    )
}

fn apply(set: &mut StreamingPointSet, steps: &[Step]) {
    for step in steps {
        match step {
            Step::Append(points) => {
                set.append(points);
            }
            Step::Expire(n) => {
                set.expire_oldest(*n);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: a same-batch append+expire of one point cancels
    /// bitwise — the density grid checksum does not move. The batch's
    /// sweep only ever accumulates the ± pair, whose contributions
    /// cancel exactly from a zeroed compensated accumulator, and the
    /// fold skips exactly-zero delta pixels.
    #[test]
    fn same_batch_append_expire_is_a_bitwise_noop(
        base in points_strategy(60),
        p in point_strategy(),
        extra in points_strategy(5),
    ) {
        let params = params(23, 17, 21.0);
        let mut set = StreamingPointSet::new(base);
        // some unrelated history first, so the no-op batch lands on a
        // non-trivial state
        set.append(&extra);
        let before = grid_checksum(&rebuild_grid(&params, &set.snapshot()).unwrap());
        set.apply_signed(&[p, p], &[1.0, -1.0]).unwrap();
        prop_assert!(set.generation() > 1, "the no-op batch still seals a generation");
        let after = grid_checksum(&rebuild_grid(&params, &set.snapshot()).unwrap());
        prop_assert_eq!(after, before, "± pair in one batch must not move a single bit");
    }

    /// Property 2: folding the missing suffix of batches onto a rebuild
    /// of any earlier generation reproduces the current generation's
    /// rebuild bitwise — the tile-patching correctness argument.
    #[test]
    fn suffix_fold_equals_full_rebuild(
        base in points_strategy(60),
        steps in steps_strategy(),
        split in 0usize..8,
    ) {
        let params = params(19, 26, 17.0);
        let mut set = StreamingPointSet::new(base);
        // run history up to an arbitrary split point: the "cached" state
        let split = split.min(steps.len());
        apply(&mut set, &steps[..split]);
        let cached_snapshot = set.snapshot();
        let g0 = cached_snapshot.generation();
        let mut patched = rebuild_grid(&params, &cached_snapshot).unwrap().values().to_vec();
        // the rest of the history arrives after the tile was cached
        apply(&mut set, &steps[split..]);
        let now = set.snapshot();
        prop_assert!(now.patchable_from(g0));
        let missing = now.batches_since(g0).to_vec();
        let mut workspace = WeightedWorkspace::new();
        let mut scratch = Vec::new();
        fold_batches(
            &params,
            &missing,
            0..params.grid.res_y,
            &mut workspace,
            &mut scratch,
            &mut patched,
            |_, batch| Ok(Arc::new(SweepContext::new(&params, &batch.points)?)),
        ).unwrap();
        let patched =
            kdv_core::DensityGrid::from_values(params.grid.res_x, params.grid.res_y, patched);
        let rebuilt = rebuild_grid(&params, &now).unwrap();
        prop_assert_eq!(
            grid_checksum(&patched),
            grid_checksum(&rebuilt),
            "patching from generation {} must equal rebuild at generation {}",
            g0,
            now.generation()
        );
    }

    /// Property 3: compaction at any trigger point is indistinguishable
    /// from a brand-new stream over the same live points — and the
    /// generation strictly advances so stale tiles cannot alias.
    #[test]
    fn compaction_anywhere_equals_fresh_rebuild(
        base in points_strategy(60),
        steps in steps_strategy(),
        trigger in 0usize..8,
    ) {
        let params = params(21, 21, 19.0);
        let mut set = StreamingPointSet::new(base);
        let trigger = trigger.min(steps.len());
        apply(&mut set, &steps[..trigger]);
        let gen_before = set.generation();
        let live = set.live_points();
        set.compact();
        prop_assert!(set.generation() > gen_before, "compaction must take a fresh generation");
        prop_assert_eq!(set.live_points(), live.clone(), "compaction must not change the live set");
        let fresh = StreamingPointSet::new(live);
        let a = grid_checksum(&rebuild_grid(&params, &set.snapshot()).unwrap());
        let b = grid_checksum(&rebuild_grid(&params, &fresh.snapshot()).unwrap());
        prop_assert_eq!(a, b, "compacted state must rebuild identically to a fresh stream");
        // and the post-compaction stream keeps working incrementally
        apply(&mut set, &steps[trigger..]);
        let mut replay = StreamingPointSet::new(set.snapshot().base.as_ref().clone());
        apply(&mut replay, &steps[trigger..]);
        let c = grid_checksum(&rebuild_grid(&params, &set.snapshot()).unwrap());
        let d = grid_checksum(&rebuild_grid(&params, &replay.snapshot()).unwrap());
        prop_assert_eq!(c, d, "post-compaction history must replay bitwise");
    }

    /// FIFO expiration and the live multiset stay consistent under any
    /// history (the queue the next compaction will freeze).
    #[test]
    fn live_set_tracks_history(base in points_strategy(40), steps in steps_strategy()) {
        let mut set = StreamingPointSet::new(base.clone());
        let mut model: Vec<Point> = base;
        for step in &steps {
            match step {
                Step::Append(points) => {
                    set.append(points);
                    model.extend(points.iter().copied());
                }
                Step::Expire(n) => {
                    let n = (*n).min(model.len());
                    let (_, expired) = set.expire_oldest(n);
                    let drained: Vec<Point> = model.drain(..n).collect();
                    prop_assert_eq!(expired, drained, "FIFO order violated");
                }
            }
        }
        prop_assert_eq!(set.live_points(), model);
    }
}
