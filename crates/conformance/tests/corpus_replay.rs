//! Replays the committed regression corpus through the full oracle
//! registry on every `cargo test` run. Each corpus entry is a shrunk,
//! previously failing configuration — a failure here is a reintroduced
//! bug, not a flake. See TESTING.md for the triage guide.

use kdv_conformance::{corpus, run_case};

#[test]
fn committed_corpus_replays_clean() {
    let path = corpus::default_corpus_path();
    let cases = corpus::load(&path).unwrap_or_else(|e| panic!("loading corpus: {e}"));
    assert!(!cases.is_empty(), "committed corpus must not be empty: {}", path.display());
    let mut failures = Vec::new();
    for case in &cases {
        for r in run_case(case).iter().filter(|r| !r.pass()) {
            failures.push(format!(
                "{} on {}: {}",
                case.label,
                r.pair,
                r.error.clone().unwrap_or_else(|| format!("{:?}", r.comparison)),
            ));
        }
    }
    assert!(failures.is_empty(), "corpus regressions:\n{}", failures.join("\n"));
}

#[test]
fn corpus_contains_the_pr1_quartic_case() {
    // The quartic rolling-frame cancellation bug (fixed in PR 1) is the
    // harness's founding regression; it must stay pinned forever.
    let cases = corpus::load(&corpus::default_corpus_path()).unwrap();
    let pr1 = cases
        .iter()
        .find(|c| c.label == "pr1-quartic-cancellation")
        .expect("PR 1 case missing from corpus");
    assert_eq!(pr1.kernel, kdv_core::KernelType::Quartic);
    assert_eq!((pr1.res_x, pr1.res_y), (15, 16));
    assert_eq!(pr1.points.len(), 4);
    // lossless round-trip of the exact failing bandwidth
    assert_eq!(pr1.bandwidth.to_bits(), 132.97204695578574_f64.to_bits());
}
