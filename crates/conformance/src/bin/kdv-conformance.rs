//! `kdv-conformance` — run the engine×oracle matrix.
//!
//! ```text
//! kdv-conformance [--quick | --soak N] [--seed-start S]
//!                 [--json PATH] [--corpus PATH] [--no-append]
//! ```
//!
//! * `--quick` (default): replay the committed corpus, then a fixed seed
//!   range covering every generator shape class and all three kernels —
//!   the CI gate.
//! * `--soak N`: replay the corpus, then `N` fresh seeds starting at
//!   `--seed-start` (default 1000) — the fuzzing mode.
//!
//! Every violation is shrunk and appended to the corpus (unless
//! `--no-append`), the JSON report is written to `--json` (default
//! `target/conformance-report.json`), and the exit code is non-zero if
//! anything violated its policy — including any corpus regression.

use std::path::PathBuf;
use std::process::ExitCode;

use kdv_conformance::corpus;
use kdv_conformance::{run_case, CaseSpec, Report};

/// Seeds of the quick matrix: enough contiguous seeds that every shape
/// class of the generator appears under every kernel (seed % 3 fixes the
/// kernel, so 60 seeds ≈ 20 per kernel over 10 grid × 8 cloud classes).
const QUICK_SEEDS: std::ops::Range<u64> = 0..60;

struct Args {
    soak: Option<u64>,
    seed_start: u64,
    json: PathBuf,
    corpus: PathBuf,
    append: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        soak: None,
        seed_start: 1000,
        json: PathBuf::from("target/conformance-report.json"),
        corpus: corpus::default_corpus_path(),
        append: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.soak = None,
            "--soak" => {
                let n = it.next().ok_or("--soak needs a count")?;
                args.soak = Some(n.parse().map_err(|e| format!("--soak {n}: {e}"))?);
            }
            "--seed-start" => {
                let s = it.next().ok_or("--seed-start needs a value")?;
                args.seed_start = s.parse().map_err(|e| format!("--seed-start {s}: {e}"))?;
            }
            "--json" => args.json = PathBuf::from(it.next().ok_or("--json needs a path")?),
            "--corpus" => args.corpus = PathBuf::from(it.next().ok_or("--corpus needs a path")?),
            "--no-append" => args.append = false,
            "--help" | "-h" => {
                println!(
                    "kdv-conformance [--quick | --soak N] [--seed-start S] \
                     [--json PATH] [--corpus PATH] [--no-append]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn case_fails(case: &CaseSpec) -> bool {
    run_case(case).iter().any(|r| !r.pass())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("kdv-conformance: {e}");
            return ExitCode::from(2);
        }
    };
    let mode = match args.soak {
        None => "quick".to_string(),
        Some(n) => format!("soak {n}"),
    };
    let mut report = Report::new(&mode);
    let mut corpus_regressions = 0usize;
    let mut new_failures: Vec<CaseSpec> = Vec::new();

    // 1. replay the committed corpus — a regression here fails CI outright
    let corpus_cases = match corpus::load(&args.corpus) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("kdv-conformance: corpus: {e}");
            return ExitCode::from(2);
        }
    };
    for case in &corpus_cases {
        let results = run_case(case);
        for r in results.iter().filter(|r| !r.pass()) {
            eprintln!("CORPUS REGRESSION {} on {}: {:?}", case.label, r.pair, r.error);
            corpus_regressions += 1;
        }
        report.record(case, &results);
    }
    println!("corpus: {} case(s), {corpus_regressions} regression(s)", corpus_cases.len());

    // 2. generated cases
    let seeds: Vec<u64> = match args.soak {
        None => QUICK_SEEDS.collect(),
        Some(n) => (args.seed_start..args.seed_start + n).collect(),
    };
    for &seed in &seeds {
        let case = CaseSpec::generate(seed);
        let results = run_case(&case);
        if results.iter().any(|r| !r.pass()) {
            for r in results.iter().filter(|r| !r.pass()) {
                eprintln!(
                    "VIOLATION seed {seed} on {}: {}",
                    r.pair,
                    r.error.clone().unwrap_or_else(|| format!("{:?}", r.comparison))
                );
            }
            let shrunk = corpus::shrink(&case, case_fails);
            eprintln!("  shrunk to: {}", shrunk.describe());
            new_failures.push(shrunk);
        }
        report.record(&case, &results);
    }

    // 3. record new failures in the corpus
    if args.append {
        for (i, case) in new_failures.iter().enumerate() {
            let mut named = case.clone();
            named.label = format!("{}-f{i}", named.label);
            if let Err(e) = corpus::append(&args.corpus, &named) {
                eprintln!("kdv-conformance: appending to corpus: {e}");
            }
        }
        if !new_failures.is_empty() {
            println!(
                "appended {} shrunk failure(s) to {}",
                new_failures.len(),
                args.corpus.display()
            );
        }
    }

    // 4. report
    if let Some(dir) = args.json.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&args.json, report.to_json()) {
        eprintln!("kdv-conformance: writing {}: {e}", args.json.display());
    }
    let mut worst: Vec<(&str, &str, f64)> =
        report.iter().map(|(p, k, s)| (p, k, s.max_scaled_err)).collect();
    worst.sort_by(|a, b| b.2.total_cmp(&a.2));
    println!(
        "{} case(s), {} pair×kernel combination(s), {} violation(s); report: {}",
        report.cases,
        report.covered_combinations(),
        report.total_violations(),
        args.json.display()
    );
    for (pair, kernel, err) in worst.iter().take(5) {
        println!("  worst: {pair} [{kernel}] max scaled err {err:.3e}");
    }

    if report.total_violations() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
