//! # kdv-conformance — cross-engine differential conformance harness
//!
//! SLAM's value proposition is *exactness*: every engine in the workspace
//! must agree with a naive oracle up to floating-point conditioning. This
//! crate checks that systematically instead of ad hoc:
//!
//! * [`oracle`] — the registry pairing every density-producing engine
//!   (core sweeps, parallel drivers, weighted, multi-bandwidth, baselines,
//!   NKDV, STKDV, incremental pan) with its ground-truth reference.
//! * [`tolerance`] — the single ULP/relative-error policy replacing the
//!   per-test magic constants.
//! * [`case`] — deterministic seeded generation of adversarial
//!   configurations, serialized losslessly (floats as bit patterns).
//! * [`corpus`] — the committed, replayed regression corpus and the
//!   shrinker that minimises new failures before they are recorded.
//! * [`report`] — JSON report of max observed error per
//!   engine×kernel×config.
//!
//! The `kdv-conformance` bin runs the matrix: `--quick` in CI, `--soak N`
//! for long fuzz runs. See `TESTING.md` at the workspace root for the
//! policy rationale and triage guide.

pub mod case;
pub mod corpus;
pub mod oracle;
pub mod report;
pub mod tolerance;

pub use case::CaseSpec;
pub use oracle::{run_case, PairResult, PAIR_NAMES};
pub use report::Report;
pub use tolerance::{compare, Comparison, Policy};
