//! Deterministic adversarial case generation and lossless (de)serialization.
//!
//! A [`CaseSpec`] is one fully concrete KDV configuration: kernel, raster,
//! region, bandwidth, weight and point set. [`CaseSpec::generate`] maps a
//! `u64` seed to a case, deliberately skewed toward the configurations that
//! have historically broken engines: clustered and duplicated points,
//! collinear rows, points sitting *exactly* on the envelope boundary
//! `|k − p.y| = b`, far-from-origin regions (the PR 1 quartic
//! cancellation), tiny and region-sized bandwidths, degenerate `1×Y` /
//! `X×1` / `1×1` rasters and empty inputs.
//!
//! Serialization stores every `f64` as its 16-hex-digit bit pattern, so a
//! corpus case replays the *identical* floating-point inputs — a printed
//! decimal would round-trip through the parser and can land on a different
//! bit pattern, silently changing the computation being pinned.

use kdv_core::driver::KdvParams;
use kdv_core::{GridSpec, KernelType, Point, Rect, Result};

/// SplitMix64 — the tiny deterministic generator used for all case
/// synthesis (no external RNG dependency, stable across platforms).
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// One fully concrete conformance case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// Stable identifier (seed provenance or corpus name); no whitespace.
    pub label: String,
    /// Spatial kernel under test.
    pub kernel: KernelType,
    /// Raster width in pixels.
    pub res_x: usize,
    /// Raster height in pixels.
    pub res_y: usize,
    /// Query region.
    pub region: Rect,
    /// Spatial bandwidth.
    pub bandwidth: f64,
    /// Global normalisation weight.
    pub weight: f64,
    /// The dataset.
    pub points: Vec<Point>,
}

impl CaseSpec {
    /// The raster specification (all generated cases are valid).
    pub fn grid(&self) -> Result<GridSpec> {
        GridSpec::new(self.region, self.res_x, self.res_y)
    }

    /// The planar KDV parameters of this case.
    pub fn params(&self) -> Result<KdvParams> {
        Ok(KdvParams::new(self.grid()?, self.kernel, self.bandwidth).with_weight(self.weight))
    }

    /// Half-diagonal of the region — the conditioning length fed to
    /// [`crate::tolerance::Policy::tree_exact`].
    pub fn region_half_diagonal(&self) -> f64 {
        let w = self.region.max_x - self.region.min_x;
        let h = self.region.max_y - self.region.min_y;
        (w * w + h * h).sqrt() / 2.0
    }

    /// Largest absolute coordinate of the region — the conditioning length
    /// fed to [`crate::tolerance::Policy::pan_exact`]: pixel centres derived
    /// at magnitude `c` carry `c·ε` of rounding.
    pub fn coord_magnitude(&self) -> f64 {
        self.region
            .min_x
            .abs()
            .max(self.region.min_y.abs())
            .max(self.region.max_x.abs())
            .max(self.region.max_y.abs())
    }

    /// A deterministic seed derived from the case *content* (not the
    /// label), used to synthesise auxiliary inputs — per-point weights,
    /// event timestamps, the road network — so a corpus case is fully
    /// self-contained.
    pub fn aux_seed(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325_u64; // FNV-1a offset basis
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(self.res_x as u64);
        eat(self.res_y as u64);
        eat(self.bandwidth.to_bits());
        eat(self.weight.to_bits());
        eat(self.region.min_x.to_bits());
        eat(self.region.min_y.to_bits());
        for p in &self.points {
            eat(p.x.to_bits());
            eat(p.y.to_bits());
        }
        h
    }

    /// The tile side length the tiled-sweep pair decomposes this case
    /// with, derived from [`CaseSpec::aux_seed`] (not a corpus key — the
    /// v1 line format is closed, and deriving from the case content keeps
    /// every corpus line self-contained). The ladder deliberately spans
    /// degenerate single-pixel tiles, tiles misaligned with everything
    /// (7), a mid-size that clips most rasters (64) and the serving
    /// default (256, usually one tile covering the whole case raster).
    pub fn tile_size(&self) -> usize {
        [1, 7, 64, 256][(self.aux_seed() >> 17) as usize % 4]
    }

    /// The coreset construction method the approximate-overview pairs
    /// build with, derived from [`CaseSpec::aux_seed`] like
    /// [`CaseSpec::tile_size`] (the v1 line format is closed). Returned
    /// by name so this layer stays decoupled from `kdv-coreset`;
    /// [`crate::oracle`] parses it back into a `CoresetMethod`.
    pub fn coreset_method(&self) -> &'static str {
        ["grid", "sort", "sample"][(self.aux_seed() >> 29) as usize % 3]
    }

    /// Relative ε target of the coreset pairs, as a fraction of the
    /// density scale `|w|·n·K(0)`. The ladder spans near-lossless (the
    /// builder usually has to keep most points) to aggressively
    /// compressed (a handful of representatives must still certify).
    pub fn coreset_epsilon_rel(&self) -> f64 {
        [0.002, 0.01, 0.05, 0.2][(self.aux_seed() >> 23) as usize % 4]
    }

    /// How many points the streaming pairs append before re-serving,
    /// derived from [`CaseSpec::aux_seed`] like [`CaseSpec::tile_size`]
    /// (the v1 line format is closed). The ladder spans a single-point
    /// patch, a typical ingest batch, and a delta large enough to rival
    /// the base set — each must still serve bitwise-equal to a cold
    /// rebuild.
    pub fn append_batch(&self) -> usize {
        [1, 16, 1024][(self.aux_seed() >> 35) as usize % 3]
    }

    /// Maps `seed` to an adversarial case; `seed % 3` fixes the kernel so
    /// a contiguous seed range covers all three kernels evenly.
    pub fn generate(seed: u64) -> CaseSpec {
        let mut rng = SplitMix64(seed.wrapping_mul(0x9E6D).wrapping_add(1));
        let kernel = match seed % 3 {
            0 => KernelType::Uniform,
            1 => KernelType::Epanechnikov,
            _ => KernelType::Quartic,
        };

        let (res_x, res_y) = match rng.below(10) {
            0 => (1, 1 + rng.below(31) as usize),
            1 => (1 + rng.below(31) as usize, 1),
            2 => (1, 1),
            _ => (2 + rng.below(28) as usize, 2 + rng.below(28) as usize),
        };

        let span_x = 20.0 + rng.f64() * 180.0;
        let span_y = 20.0 + rng.f64() * 180.0;
        let offset = match rng.below(4) {
            0 => 0.0,
            1 => 5e5,
            2 => -3e6,
            _ => 4e6,
        };
        let region = Rect::new(offset, offset * 0.5, offset + span_x, offset * 0.5 + span_y);

        let span = span_x.max(span_y);
        let bandwidth = match rng.below(4) {
            0 => span * (1e-3 + rng.f64() * 5e-3), // tiny: few pixels covered
            1 => span * (0.03 + rng.f64() * 0.3),  // typical
            2 => span * (0.8 + rng.f64() * 1.2),   // region-sized
            _ => span * 4.0,                       // covers everything
        };

        let n = rng.below(160) as usize;
        let gap_y = span_y / res_y as f64;
        let mut points = Vec::new();
        match rng.below(8) {
            0 => {} // empty input
            1 => {
                points.push(Point::new(
                    region.min_x + rng.f64() * span_x,
                    region.min_y + rng.f64() * span_y,
                ));
            }
            2 => {
                // uniform, spilling one bandwidth beyond the region
                for _ in 0..n {
                    points.push(Point::new(
                        region.min_x - bandwidth + rng.f64() * (span_x + 2.0 * bandwidth),
                        region.min_y - bandwidth + rng.f64() * (span_y + 2.0 * bandwidth),
                    ));
                }
            }
            3 => {
                // 1–3 tight clusters
                let clusters = 1 + rng.below(3);
                for _ in 0..clusters {
                    let cx = region.min_x + rng.f64() * span_x;
                    let cy = region.min_y + rng.f64() * span_y;
                    let sigma = span * 1e-3;
                    for _ in 0..(n / clusters as usize).max(1) {
                        points.push(Point::new(
                            cx + (rng.f64() - 0.5) * sigma,
                            cy + (rng.f64() - 0.5) * sigma,
                        ));
                    }
                }
            }
            4 => {
                // heavy duplicates: few distinct locations, many copies
                let distinct = 1 + rng.below(4) as usize;
                let locs: Vec<Point> = (0..distinct)
                    .map(|_| {
                        Point::new(
                            region.min_x + rng.f64() * span_x,
                            region.min_y + rng.f64() * span_y,
                        )
                    })
                    .collect();
                for i in 0..n.max(distinct) {
                    points.push(locs[i % distinct]);
                }
            }
            5 => {
                // collinear horizontal, sitting exactly on a row of pixel
                // centres when possible
                let j = rng.below(res_y as u64) as f64;
                let y = region.min_y + (j + 0.5) * gap_y;
                for _ in 0..n {
                    points.push(Point::new(region.min_x + rng.f64() * span_x, y));
                }
            }
            6 => {
                // collinear vertical
                let x = region.min_x + rng.f64() * span_x;
                for _ in 0..n {
                    points.push(Point::new(x, region.min_y + rng.f64() * span_y));
                }
            }
            _ => {
                // boundary-aligned: |k − p.y| is exactly the bandwidth for
                // some pixel row k — the envelope's open/closed edge
                for _ in 0..n {
                    let j = rng.below(res_y as u64) as f64;
                    let k = region.min_y + (j + 0.5) * gap_y;
                    let side = if rng.below(2) == 0 { 1.0 } else { -1.0 };
                    points
                        .push(Point::new(region.min_x + rng.f64() * span_x, k + side * bandwidth));
                }
            }
        }

        let weight = match rng.below(3) {
            0 => 1.0,
            1 => 0.01,
            _ => 1.0 / points.len().max(1) as f64,
        };

        CaseSpec {
            label: format!("seed-{seed}"),
            kernel,
            res_x,
            res_y,
            region,
            bandwidth,
            weight,
            points,
        }
    }

    /// Serializes the case to one line of the corpus format (losslessly —
    /// every float as its bit pattern).
    pub fn to_line(&self) -> String {
        let mut pts = String::new();
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                pts.push(';');
            }
            pts.push_str(&format!("{:016x}:{:016x}", p.x.to_bits(), p.y.to_bits()));
        }
        if pts.is_empty() {
            pts.push('-');
        }
        format!(
            "v1 {} kernel={} res={}x{} region={:016x},{:016x},{:016x},{:016x} b={:016x} w={:016x} pts={} # {}",
            self.label,
            kernel_name(self.kernel),
            self.res_x,
            self.res_y,
            self.region.min_x.to_bits(),
            self.region.min_y.to_bits(),
            self.region.max_x.to_bits(),
            self.region.max_y.to_bits(),
            self.bandwidth.to_bits(),
            self.weight.to_bits(),
            pts,
            self.describe(),
        )
    }

    /// Parses one corpus line (the inverse of [`CaseSpec::to_line`]).
    pub fn from_line(line: &str) -> std::result::Result<CaseSpec, String> {
        let line = match line.find('#') {
            Some(i) => &line[..i],
            None => line,
        };
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some("v1") {
            return Err("corpus line must start with 'v1'".into());
        }
        let label = tokens.next().ok_or("missing label")?.to_string();
        let mut kernel = None;
        let mut res = None;
        let mut region = None;
        let mut bandwidth = None;
        let mut weight = None;
        let mut points = None;
        for tok in tokens {
            let (key, value) = tok.split_once('=').ok_or_else(|| format!("bad token {tok}"))?;
            match key {
                "kernel" => kernel = Some(parse_kernel(value)?),
                "res" => {
                    let (x, y) = value.split_once('x').ok_or("res must be XxY")?;
                    res = Some((
                        x.parse::<usize>().map_err(|e| e.to_string())?,
                        y.parse::<usize>().map_err(|e| e.to_string())?,
                    ));
                }
                "region" => {
                    let mut it = value.split(',').map(parse_f64_bits);
                    let (a, b, c, d) = (
                        it.next().ok_or("region needs 4 floats")??,
                        it.next().ok_or("region needs 4 floats")??,
                        it.next().ok_or("region needs 4 floats")??,
                        it.next().ok_or("region needs 4 floats")??,
                    );
                    region = Some(Rect::new(a, b, c, d));
                }
                "b" => bandwidth = Some(parse_f64_bits(value)?),
                "w" => weight = Some(parse_f64_bits(value)?),
                "pts" => {
                    let mut v = Vec::new();
                    if value != "-" {
                        for pair in value.split(';') {
                            let (x, y) = pair.split_once(':').ok_or("point must be x:y")?;
                            v.push(Point::new(parse_f64_bits(x)?, parse_f64_bits(y)?));
                        }
                    }
                    points = Some(v);
                }
                other => return Err(format!("unknown key {other}")),
            }
        }
        let (res_x, res_y) = res.ok_or("missing res")?;
        Ok(CaseSpec {
            label,
            kernel: kernel.ok_or("missing kernel")?,
            res_x,
            res_y,
            region: region.ok_or("missing region")?,
            bandwidth: bandwidth.ok_or("missing b")?,
            weight: weight.ok_or("missing w")?,
            points: points.ok_or("missing pts")?,
        })
    }

    /// Short human-readable summary (placed in the corpus line comment).
    pub fn describe(&self) -> String {
        format!(
            "{} {}x{} b={:.6} n={} at ({:.0},{:.0})",
            kernel_name(self.kernel),
            self.res_x,
            self.res_y,
            self.bandwidth,
            self.points.len(),
            self.region.min_x,
            self.region.min_y,
        )
    }
}

fn kernel_name(k: KernelType) -> &'static str {
    match k {
        KernelType::Uniform => "uniform",
        KernelType::Epanechnikov => "epanechnikov",
        KernelType::Quartic => "quartic",
    }
}

fn parse_kernel(s: &str) -> std::result::Result<KernelType, String> {
    match s {
        "uniform" => Ok(KernelType::Uniform),
        "epanechnikov" => Ok(KernelType::Epanechnikov),
        "quartic" => Ok(KernelType::Quartic),
        other => Err(format!("unknown kernel {other}")),
    }
}

fn parse_f64_bits(s: &str) -> std::result::Result<f64, String> {
    u64::from_str_radix(s, 16).map(f64::from_bits).map_err(|e| format!("bad f64 bits {s}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0, 1, 17, 994] {
            assert_eq!(CaseSpec::generate(seed), CaseSpec::generate(seed), "seed {seed}");
        }
    }

    #[test]
    fn generated_cases_are_valid() {
        for seed in 0..300 {
            let case = CaseSpec::generate(seed);
            let params = case.params().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            params.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(case.points.iter().all(|p| p.x.is_finite() && p.y.is_finite()));
        }
    }

    #[test]
    fn seed_range_covers_all_shapes() {
        let mut empties = 0;
        let mut degenerate = 0;
        let mut far = 0;
        let mut kernels = [0usize; 3];
        for seed in 0..120 {
            let c = CaseSpec::generate(seed);
            if c.points.is_empty() {
                empties += 1;
            }
            if c.res_x == 1 || c.res_y == 1 {
                degenerate += 1;
            }
            if c.region.min_x.abs() > 1e5 {
                far += 1;
            }
            kernels[match c.kernel {
                KernelType::Uniform => 0,
                KernelType::Epanechnikov => 1,
                KernelType::Quartic => 2,
            }] += 1;
        }
        assert!(empties > 0 && degenerate > 0 && far > 0, "{empties}/{degenerate}/{far}");
        assert!(kernels.iter().all(|&k| k >= 40), "{kernels:?}");
    }

    #[test]
    fn tile_size_dimension_is_covered_and_content_derived() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..200 {
            let case = CaseSpec::generate(seed);
            let ts = case.tile_size();
            assert!([1, 7, 64, 256].contains(&ts), "seed {seed}: tile size {ts}");
            seen.insert(ts);
            // content-derived: a corpus round trip picks the same size
            let back = CaseSpec::from_line(&case.to_line()).unwrap();
            assert_eq!(back.tile_size(), ts, "seed {seed}");
        }
        assert_eq!(seen.len(), 4, "all ladder rungs exercised: {seen:?}");
    }

    #[test]
    fn coreset_dimension_is_covered_and_content_derived() {
        let mut methods = std::collections::HashSet::new();
        let mut rels = std::collections::HashSet::new();
        for seed in 0..200 {
            let case = CaseSpec::generate(seed);
            methods.insert(case.coreset_method());
            rels.insert(case.coreset_epsilon_rel().to_bits());
            // content-derived: a corpus round trip picks the same point
            // on both dimensions
            let back = CaseSpec::from_line(&case.to_line()).unwrap();
            assert_eq!(back.coreset_method(), case.coreset_method(), "seed {seed}");
            assert_eq!(
                back.coreset_epsilon_rel().to_bits(),
                case.coreset_epsilon_rel().to_bits(),
                "seed {seed}"
            );
        }
        assert_eq!(methods.len(), 3, "all methods exercised: {methods:?}");
        assert_eq!(rels.len(), 4, "all ε rungs exercised");
    }

    #[test]
    fn append_batch_dimension_is_covered_and_content_derived() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..200 {
            let case = CaseSpec::generate(seed);
            let k = case.append_batch();
            assert!([1, 16, 1024].contains(&k), "seed {seed}: append batch {k}");
            seen.insert(k);
            // content-derived: a corpus round trip picks the same size
            let back = CaseSpec::from_line(&case.to_line()).unwrap();
            assert_eq!(back.append_batch(), k, "seed {seed}");
        }
        assert_eq!(seen.len(), 3, "all ladder rungs exercised: {seen:?}");
    }

    #[test]
    fn line_round_trip_is_lossless() {
        for seed in [3, 50, 77, 200] {
            let case = CaseSpec::generate(seed);
            let line = case.to_line();
            let back = CaseSpec::from_line(&line).unwrap();
            assert_eq!(case, back, "seed {seed}: {line}");
            // f64 equality in PartialEq is not bit equality for -0.0/NaN;
            // double-check the bits that matter
            assert_eq!(case.bandwidth.to_bits(), back.bandwidth.to_bits());
            for (a, b) in case.points.iter().zip(&back.points) {
                assert_eq!(a.x.to_bits(), b.x.to_bits());
                assert_eq!(a.y.to_bits(), b.y.to_bits());
            }
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(CaseSpec::from_line("v0 x").is_err());
        assert!(CaseSpec::from_line("v1 l kernel=sinc res=2x2").is_err());
        assert!(CaseSpec::from_line("v1 l kernel=uniform res=2x2 b=zz").is_err());
    }
}
