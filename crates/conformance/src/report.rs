//! Aggregated conformance results and the JSON report emitted by the
//! `kdv-conformance` bin (hand-rolled writer — the workspace is
//! dependency-free).

use std::collections::BTreeMap;

use kdv_core::KernelType;

use crate::case::CaseSpec;
use crate::oracle::PairResult;

/// Accumulated statistics for one engine×oracle pair under one kernel.
#[derive(Debug, Clone, Default)]
pub struct PairStats {
    /// Cases run.
    pub cases: usize,
    /// Largest observed error relative to the reference peak.
    pub max_scaled_err: f64,
    /// Largest observed absolute error.
    pub max_abs_err: f64,
    /// Labels of violating cases (also counts engine errors).
    pub violations: Vec<String>,
}

/// The whole run, keyed by `(pair, kernel)`.
#[derive(Debug, Clone)]
pub struct Report {
    /// Mode string for provenance (`"quick"`, `"soak 5000"`, …).
    pub mode: String,
    /// Total cases pushed through the registry.
    pub cases: usize,
    stats: BTreeMap<(String, String), PairStats>,
}

fn kernel_name(k: KernelType) -> &'static str {
    match k {
        KernelType::Uniform => "uniform",
        KernelType::Epanechnikov => "epanechnikov",
        KernelType::Quartic => "quartic",
    }
}

impl Report {
    /// An empty report for the given mode.
    pub fn new(mode: impl Into<String>) -> Self {
        Self { mode: mode.into(), cases: 0, stats: BTreeMap::new() }
    }

    /// Folds one case's pair results into the aggregates.
    pub fn record(&mut self, case: &CaseSpec, results: &[PairResult]) {
        self.cases += 1;
        for r in results {
            let key = (r.pair.to_string(), kernel_name(case.kernel).to_string());
            let entry = self.stats.entry(key).or_default();
            entry.cases += 1;
            if let Some(c) = r.comparison {
                if c.max_scaled_err.is_finite() {
                    entry.max_scaled_err = entry.max_scaled_err.max(c.max_scaled_err);
                    entry.max_abs_err = entry.max_abs_err.max(c.max_abs_err);
                }
            }
            if !r.pass() {
                entry.violations.push(match &r.error {
                    Some(e) => format!("{} [{e}]", case.label),
                    None => case.label.clone(),
                });
            }
        }
    }

    /// Total violations across all pairs and kernels.
    pub fn total_violations(&self) -> usize {
        self.stats.values().map(|s| s.violations.len()).sum()
    }

    /// Number of distinct `(pair, kernel)` combinations that ran ≥ 1 case.
    pub fn covered_combinations(&self) -> usize {
        self.stats.values().filter(|s| s.cases > 0).count()
    }

    /// Iterates `(pair, kernel, stats)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &PairStats)> {
        self.stats.iter().map(|((p, k), s)| (p.as_str(), k.as_str(), s))
    }

    /// Serializes the report as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"mode\": {},\n", json_string(&self.mode)));
        out.push_str(&format!("  \"cases\": {},\n", self.cases));
        out.push_str(&format!("  \"total_violations\": {},\n", self.total_violations()));
        out.push_str("  \"pairs\": [\n");
        let entries: Vec<String> = self
            .iter()
            .map(|(pair, kernel, s)| {
                let violations: Vec<String> =
                    s.violations.iter().map(|v| json_string(v)).collect();
                format!(
                    "    {{\"pair\": {}, \"kernel\": {}, \"cases\": {}, \"max_scaled_err\": {}, \"max_abs_err\": {}, \"violations\": [{}]}}",
                    json_string(pair),
                    json_string(kernel),
                    s.cases,
                    json_number(s.max_scaled_err),
                    json_number(s.max_abs_err),
                    violations.join(", "),
                )
            })
            .collect();
        out.push_str(&entries.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "\"non-finite\"".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{run_case, PAIR_NAMES};

    #[test]
    fn report_aggregates_and_serializes() {
        let mut report = Report::new("test");
        for seed in [4, 5, 6] {
            let case = CaseSpec::generate(seed);
            report.record(&case, &run_case(&case));
        }
        assert_eq!(report.cases, 3);
        assert_eq!(report.total_violations(), 0);
        // 3 seeds = 3 kernels, one combination per registry pair each
        assert_eq!(report.covered_combinations(), PAIR_NAMES.len() * 3);
        let json = report.to_json();
        assert!(json.contains("\"mode\": \"test\""));
        assert!(json.contains("SLAM_BUCKET vs SCAN"));
        assert!(json.contains("\"total_violations\": 0"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_number(f64::INFINITY), "\"non-finite\"");
    }
}
